//! The `dtas` command-line driver: the paper's pipeline without writing
//! Rust, as a thin wrapper over the [`Flow`] façade and the DTAS engine.
//!
//! ```text
//! dtas map  --spec add:16:cin:cout [--book FILE] [--pareto] [--cap N]
//! dtas flow --hls FILE [--book FILE] [--emit-vhdl OUT]
//! dtas lint [--hls FILE]... [--legend FILE]... [--book FILE]
//! dtas serve [--port P] [--book FILE]
//! dtas cache --cache-dir DIR [--gc [--apply]]
//! dtas help
//! ```
//!
//! `map` synthesizes one component specification against a data book and
//! prints the trade-off table; `flow` runs a behavioral entity through
//! scheduling, control compilation, linking and technology mapping;
//! `lint` runs the `core::analyze` static-analysis passes over input
//! artifacts and exits 0/1/2 for clean/warnings/errors; `serve` puts the
//! engine behind the `core::net` TCP wire protocol; `cache` inventories
//! and garbage-collects the tiered warm-start store in a `--cache-dir`.

use cells::CellLibrary;
use dtas::{
    Admission, DesignSet, Dtas, DtasService, FilterPolicy, LintRegistry, LintReport, LintTarget,
    PersistentStore, Priority, RuleSet, ServeConfig, ServiceConfig, ServiceStats, Severity,
    SynthRequest, Ticket, WireClient, WireServer,
};
use genus::kind::{ComponentKind, GateOp};
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use hls_rtl_bridge::{BridgeError, Flow};
use rand::distributions::{Distribution, Exp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "dtas - map generic RTL components onto data book cells (Dutt & Kipps, DAC'91)

USAGE:
  dtas map  --spec SPEC [--book FILE] [--pareto] [--cap N]
            [--cache-dir DIR] [--queue-depth N] [--deadline-ms MS]
            [--stats] [--format json]
      Synthesize one component specification and print its trade-off table.
      --queue-depth routes the query through the admission-controlled
      DtasService (worker pool + bounded queue) instead of calling the
      engine directly, so service accounting shows up in --stats;
      --deadline-ms bounds how long the request may wait in that queue.
      --format json prints one machine-readable document (schema
      dtas-map/1) and nothing else on stdout.
  dtas flow --hls FILE [--book FILE] [--emit-vhdl OUT] [--cache-dir DIR]
            [--format json]
      Run a behavioral entity through the full Figure-1 pipeline
      (schedule -> compile control -> link -> technology-map).
      --format json prints one dtas-flow/1 document instead of the
      human-readable reports.
  dtas lint [--hls FILE]... [--legend FILE]... [--book FILE] [--format json]
      Static analysis with stable DT### diagnostic codes. Each --hls
      entity is compiled to its linked netlist and checked (dangling or
      multiply-driven nets, width mismatches, combinational loops, ...);
      each --legend document is parsed and its generator descriptions
      checked; --book (or, when no target is named, the embedded data
      book) is checked for cost-model defects together with the default
      decomposition rule base. --format json prints one machine-readable
      dtas-lint/1 document. Exit code: 0 clean (or info-only findings),
      1 when the worst finding is a warning, 2 when any error is found.
  dtas serve [--port P] [--book FILE] [--cache-dir DIR] [--workers W]
             [--queue-depth D] [--max-inflight I] [--deadline-ms MS]
             [--admission POLICY] [--checkpoint-secs S]
      Serve the engine over TCP on 127.0.0.1 (the DTW1 wire protocol;
      port 0 picks an ephemeral port). Prints `listening on ADDR` once
      bound. --deadline-ms is the default queue deadline stamped on every
      request that does not carry its own. Closing the server's stdin is
      the SIGTERM-equivalent drain signal: the listener stops, every
      admitted ticket resolves, a final checkpoint flushes, and the
      service/cache counters print.
  dtas bench-load [--clients N] [--requests M] [--queue-depth D]
                  [--workers W] [--max-inflight I] [--admission POLICY]
                  [--deadline-ms MS] [--cancel-rate F] [--arrival-rate R]
                  [--connect HOST:PORT] [--spec SPEC] [--book FILE]
                  [--cache-dir DIR] [--stats]
      Drive a DtasService with N concurrent clients submitting M requests
      each (pipelined) and print throughput, queue-wait percentiles,
      log-2 latency histograms and the service counters. The CI perf
      smoke runs this; an undersized --queue-depth with --admission shed
      demonstrates load shedding.
      --deadline-ms stamps a queue deadline on every request;
      --cancel-rate F cancels each submission with probability F (0..=1);
      --arrival-rate R switches to an open-loop Poisson arrival process
      at R requests/sec across all clients (exponential inter-arrival
      gaps, no pipeline-window backpressure) and reports offered vs
      delivered throughput.
      --connect drives a remote `dtas serve` over the wire protocol
      instead (clients alternate interactive/bulk lanes; server-side
      sizing flags are rejected) and prints client RTT percentiles plus
      the server's own measured counters.

  dtas cache --cache-dir DIR [--gc [--apply]] [--max-age-secs S]
             [--format json]
      Inventory the tiered warm-start store in DIR: one line per snapshot
      key (library/rule/config fingerprints) with its format version,
      generation, base and delta sizes, segment count and age. --gc plans
      a garbage collection (orphaned temporaries, superseded generations,
      broken chains, stale formats, and — with --max-age-secs — whole
      keys idle longer than S seconds); the plan is a dry run unless
      --apply is also given. --format json prints one machine-readable
      dtas-cache/1 document. Exit code 0 whether or not anything is
      collectable; flag misuse exits 1.

ADMISSION POLICY (--admission):
  reject                 refuse when the lane is full
  block                  wait up to 5s for space (default)
  shed                   admit, evicting the oldest waiter when full
  rate:PER_SEC[:BURST]   per-lane token bucket (BURST defaults to
                         PER_SEC), composed with shed-oldest on overflow
  dtas help
      Print this message.

PERSISTENCE:
  --cache-dir DIR warm-starts the engine from DIR and flushes the explored
  design space, solved fronts and memoized results back on exit, so a
  second `dtas` process answers repeated queries from disk in microseconds
  instead of re-paying the cold solve. The store is tiered: loads map an
  immutable base segment (results decode lazily, on first request),
  checkpoints append O(dirty) delta segments, and a compaction pass folds
  long chains back into one base. Chains are keyed by library, rule-set
  and configuration fingerprints plus the codec version; anything
  incompatible (or corrupt) is rejected and the run simply starts cold.
  `dtas cache` lists and garbage-collects what accumulates in a shared
  DIR. --stats prints the cache and snapshot-store counters after the
  query.

SPEC grammar:  kind:width[:attr...]
  kind   add | alu | mux | comparator | counter | register | shifter | lu
         | decoder | encoder | multiplier | gate_and | gate_or | ...
  attrs  cin  cout  en  sr  pg          pin flags
         n=K                            mux/gate fan-in
         w2=K                           second width (e.g. multiplier)
         style=S                        generator style
         ops=add+sub+...                explicit operation set
  Each kind has a sensible default operation set (add -> ADD, alu -> the
  paper's 16 functions, counter -> LOAD+COUNT_UP+COUNT_DOWN, ...).

EXAMPLES:
  dtas map --spec add:16:cin:cout
  dtas map --spec alu:64 --cache-dir ~/.cache/dtas --queue-depth 8 --stats
  dtas cache --cache-dir ~/.cache/dtas --gc --max-age-secs 604800 --apply
  dtas map --spec alu:64 --pareto --format json
  dtas map --spec mux:8:n=4 --book my_cells.book
  dtas flow --hls gcd.ent --emit-vhdl gcd.vhd
  dtas lint
  dtas lint --hls gcd.ent --book my_cells.book --format json
  dtas serve --port 7171 --queue-depth 256 &
  dtas bench-load --clients 4 --requests 500 --connect 127.0.0.1:7171
  dtas bench-load --clients 4 --requests 500 --queue-depth 64 --stats
  dtas bench-load --clients 4 --queue-depth 2 --admission shed --stats
  dtas bench-load --clients 2 --requests 200 --arrival-rate 400 \\
                  --deadline-ms 50 --cancel-rate 0.05 --queue-depth 64
";

/// Parses the CLI's `kind:width[:attr...]` component-spec mini-language.
fn parse_spec(text: &str) -> Result<ComponentSpec, BridgeError> {
    let bad = |msg: String| BridgeError::Flow(format!("bad --spec {text:?}: {msg}"));
    let mut parts = text.split(':');
    let kind_text = parts.next().unwrap_or_default().to_ascii_lowercase();
    let kind = match kind_text.as_str() {
        "add" | "addsub" => ComponentKind::AddSub,
        "alu" => ComponentKind::Alu,
        "lu" | "logic" => ComponentKind::LogicUnit,
        "mux" => ComponentKind::Mux,
        "selector" => ComponentKind::Selector,
        "decoder" => ComponentKind::Decoder,
        "encoder" => ComponentKind::Encoder,
        "comparator" | "cmp" => ComponentKind::Comparator,
        "shifter" | "shift" => ComponentKind::Shifter,
        "barrel" => ComponentKind::BarrelShifter,
        "multiplier" | "mul" => ComponentKind::Multiplier,
        "register" | "reg" => ComponentKind::Register,
        "counter" => ComponentKind::Counter,
        other => {
            let Some(gate) = other.strip_prefix("gate_") else {
                return Err(bad(format!("unknown component kind {other:?}")));
            };
            ComponentKind::Gate(
                GateOp::parse(&gate.to_ascii_uppercase()).map_err(|e| bad(e.to_string()))?,
            )
        }
    };
    let width: usize = parts
        .next()
        .ok_or_else(|| bad("missing width (kind:width[:attr...])".into()))?
        .parse()
        .map_err(|e| bad(format!("width: {e}")))?;
    let mut spec = ComponentSpec::new(kind, width);
    let mut explicit_ops = false;
    for attr in parts {
        let attr_l = attr.to_ascii_lowercase();
        match attr_l.as_str() {
            "cin" => spec = spec.with_carry_in(true),
            "cout" => spec = spec.with_carry_out(true),
            "en" => spec = spec.with_enable(true),
            "sr" => spec = spec.with_async_set_reset(true),
            "pg" => spec = spec.with_group_pg(true),
            _ => {
                if let Some(v) = attr_l.strip_prefix("n=") {
                    spec = spec.with_inputs(v.parse().map_err(|e| bad(format!("n: {e}")))?);
                } else if let Some(v) = attr_l.strip_prefix("w2=") {
                    spec = spec.with_width2(v.parse().map_err(|e| bad(format!("w2: {e}")))?);
                } else if let Some(v) = attr_l.strip_prefix("style=") {
                    spec = spec.with_style(&v.to_ascii_uppercase());
                } else if let Some(v) = attr_l.strip_prefix("ops=") {
                    let ops: OpSet = v
                        .split('+')
                        .map(|name| Op::parse(&name.to_ascii_uppercase()))
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(|e| bad(e.to_string()))?
                        .into_iter()
                        .collect();
                    spec = spec.with_ops(ops);
                    explicit_ops = true;
                } else {
                    return Err(bad(format!("unknown attribute {attr:?}")));
                }
            }
        }
    }
    if !explicit_ops {
        let default_ops: &[Op] = match kind {
            ComponentKind::AddSub => &[Op::Add],
            ComponentKind::Alu => return Ok(spec.with_ops(Op::paper_alu16())),
            ComponentKind::Comparator => &[Op::Eq, Op::Lt, Op::Gt],
            ComponentKind::Counter => &[Op::Load, Op::CountUp, Op::CountDown],
            ComponentKind::Register => &[Op::Load],
            ComponentKind::Shifter | ComponentKind::BarrelShifter => &[Op::Shl, Op::Shr],
            ComponentKind::LogicUnit => &[Op::And, Op::Or, Op::Xor],
            _ => &[],
        };
        if !default_ops.is_empty() {
            spec = spec.with_ops(default_ops.iter().copied().collect());
        }
    }
    // Muxes need a fan-in; default 2 keeps `mux:8` meaningful.
    if kind == ComponentKind::Mux && spec.inputs == 0 {
        spec = spec.with_inputs(2);
    }
    Ok(spec)
}

/// Loads a data book file, or the embedded LSI-style 30-cell subset.
fn load_book(path: Option<&str>) -> Result<CellLibrary, BridgeError> {
    match path {
        None => Ok(cells::lsi::lsi_logic_subset()),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| BridgeError::Io(format!("{path}: {e}")))?;
            Ok(cells::databook::parse(&text)?)
        }
    }
}

/// Parses an optional numeric flag with a default.
fn parse_num(args: &Args, name: &str, default: usize) -> Result<usize, BridgeError> {
    match args.value_of(name)? {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|e| BridgeError::Flow(format!("bad --{name}: {e}"))),
    }
}

/// Parses `--admission reject|block|shed|rate:PER_SEC[:BURST]`
/// (default `block`).
fn parse_admission(args: &Args) -> Result<Admission, BridgeError> {
    let text = args.value_of("admission")?.unwrap_or("block");
    match text {
        "reject" => Ok(Admission::Reject),
        "block" => Ok(Admission::Block {
            timeout: Duration::from_secs(5),
        }),
        "shed" => Ok(Admission::ShedOldest),
        other => {
            let bad = |msg: String| {
                BridgeError::Flow(format!(
                    "bad --admission {other:?}: {msg} \
                     (expected reject, block, shed or rate:PER_SEC[:BURST])"
                ))
            };
            let Some(rate) = other.strip_prefix("rate:") else {
                return Err(bad("unknown policy".into()));
            };
            let mut parts = rate.split(':');
            let per_sec: u32 = parts
                .next()
                .filter(|p| !p.is_empty())
                .ok_or_else(|| bad("missing PER_SEC".into()))?
                .parse()
                .map_err(|e| bad(format!("PER_SEC: {e}")))?;
            let burst: u32 = match parts.next() {
                None => per_sec,
                Some(b) => b.parse().map_err(|e| bad(format!("BURST: {e}")))?,
            };
            if parts.next().is_some() {
                return Err(bad("too many fields".into()));
            }
            Ok(Admission::Rate { per_sec, burst })
        }
    }
}

/// Parses `--deadline-ms MS` into a relative queue deadline.
fn parse_deadline(args: &Args) -> Result<Option<Duration>, BridgeError> {
    Ok(args
        .value_of("deadline-ms")?
        .map(str::parse)
        .transpose()
        .map_err(|e: std::num::ParseIntError| BridgeError::Flow(format!("bad --deadline-ms: {e}")))?
        .map(Duration::from_millis))
}

/// Parses `--cancel-rate F` as a probability in `0..=1`.
fn parse_cancel_rate(args: &Args) -> Result<f64, BridgeError> {
    match args.value_of("cancel-rate")? {
        None => Ok(0.0),
        Some(v) => {
            let rate: f64 = v
                .parse()
                .map_err(|e| BridgeError::Flow(format!("bad --cancel-rate: {e}")))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(BridgeError::Flow(format!(
                    "bad --cancel-rate {rate}: must be within 0..=1"
                )));
            }
            Ok(rate)
        }
    }
}

/// Parses `--arrival-rate R` (requests/sec across all clients) into a
/// per-client exponential inter-arrival sampler.
fn parse_arrival(args: &Args, clients: usize) -> Result<Option<Exp>, BridgeError> {
    match args.value_of("arrival-rate")? {
        None => Ok(None),
        Some(v) => {
            let rate: f64 = v
                .parse()
                .map_err(|e| BridgeError::Flow(format!("bad --arrival-rate: {e}")))?;
            if !rate.is_finite() || rate <= 0.0 {
                return Err(BridgeError::Flow(format!(
                    "bad --arrival-rate {rate}: must be a positive rate in requests/sec"
                )));
            }
            Ok(Some(Exp::new(rate / clients as f64)))
        }
    }
}

/// The per-lane log-2 latency histograms, one line per lane and axis
/// (`lower_bound_us:count` pairs; `-` when a lane saw no traffic).
fn print_histograms(stats: &ServiceStats) {
    for (name, lane) in [("interactive", &stats.lanes[0]), ("bulk", &stats.lanes[1])] {
        println!("hist: lane={name} wait_us=[{}]", lane.wait_hist.render());
        println!(
            "hist: lane={name} service_us=[{}]",
            lane.service_hist.render()
        );
    }
}

/// Validates `--format` — today only `json` (absence means human text).
fn wants_json(args: &Args) -> Result<bool, BridgeError> {
    match args.value_of("format")? {
        None => Ok(false),
        Some("json") => Ok(true),
        Some(other) => Err(BridgeError::Flow(format!(
            "bad --format {other:?} (expected json)"
        ))),
    }
}

/// Escapes a string for a JSON literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number literal (`null` for the non-finite, which JSON lacks).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// The `dtas-map/1` / `dtas-flow/1` design-set fields (no surrounding
/// braces, so callers can splice them into their own object): `spec`,
/// `alternatives` (area/delay/label/cells — the determinism-fingerprint
/// fields) and `design_space`. The key schema is pinned by the
/// `--format json` contract tests in `tests/cli.rs`; treat every key as
/// load-bearing.
fn design_set_json_fields(set: &DesignSet) -> String {
    let alternatives: Vec<String> = set
        .alternatives
        .iter()
        .map(|a| {
            let cells: Vec<String> = a
                .implementation
                .cell_census()
                .into_iter()
                .map(|(cell, count)| format!("{{\"cell\":{},\"count\":{count}}}", json_str(&cell)))
                .collect();
            format!(
                "{{\"area\":{},\"delay\":{},\"label\":{},\"cells\":[{}]}}",
                json_num(a.area),
                json_num(a.delay),
                json_str(a.implementation.label()),
                cells.join(",")
            )
        })
        .collect();
    let uniform = match set.uniform_size {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    };
    format!(
        "\"spec\":{},\"alternatives\":[{}],\"design_space\":{{\
         \"unconstrained_size\":{},\"unconstrained_log10\":{},\"uniform_size\":{uniform},\
         \"spec_nodes\":{},\"impl_choices\":{},\"truncated_combinations\":{}}}",
        json_str(&set.spec.to_string()),
        alternatives.join(","),
        json_num(set.unconstrained_size),
        json_num(set.unconstrained_log10),
        set.stats.spec_nodes,
        set.stats.impl_choices,
        set.stats.truncated_combinations
    )
}

/// The `"cache"` object shared by both JSON schemas.
fn cache_json(stats: &dtas::CacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"canonical_hits\":{},\"specs_collapsed\":{}}}",
        stats.hits, stats.misses, stats.canonical_hits, stats.specs_collapsed
    )
}

/// One parsed `--flag value` / bare-flag argument list.
struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, BridgeError> {
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(BridgeError::Flow(format!(
                    "unexpected argument {arg:?} (flags are --name [value])"
                )));
            };
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => Some(it.next().unwrap().clone()),
                _ => None,
            };
            flags.push((name.to_string(), value));
        }
        Ok(Args { flags })
    }

    /// Rejects flags no command defines (typos must not exit 0).
    fn expect_only(&self, allowed: &[&str]) -> Result<(), BridgeError> {
        for (name, _) in &self.flags {
            if !allowed.contains(&name.as_str()) {
                return Err(BridgeError::Flow(format!(
                    "unknown flag --{name} (expected one of: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }

    /// The flag's value when present; an error when the flag was given
    /// without one (a forgotten value must not silently change behavior).
    fn value_of(&self, name: &str) -> Result<Option<&str>, BridgeError> {
        match self.flags.iter().find(|(n, _)| n == name) {
            None => Ok(None),
            Some((_, Some(v))) => Ok(Some(v.as_str())),
            Some((_, None)) => Err(BridgeError::Flow(format!("flag --{name} requires a value"))),
        }
    }

    /// Every value of a repeatable flag, in order; an error when any
    /// occurrence was given without a value.
    fn values_of(&self, name: &str) -> Result<Vec<&str>, BridgeError> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| {
                v.as_deref()
                    .ok_or_else(|| BridgeError::Flow(format!("flag --{name} requires a value")))
            })
            .collect()
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn require(&self, name: &str) -> Result<&str, BridgeError> {
        self.value_of(name)?
            .ok_or_else(|| BridgeError::Flow(format!("missing required flag --{name}")))
    }
}

fn cmd_map(args: &Args) -> Result<(), BridgeError> {
    args.expect_only(&[
        "spec",
        "book",
        "pareto",
        "cap",
        "cache-dir",
        "stats",
        "queue-depth",
        "deadline-ms",
        "format",
    ])?;
    let json = wants_json(args)?;
    let spec = parse_spec(args.require("spec")?)?;
    let library = load_book(args.value_of("book")?)?;
    let library_line = format!(
        "\"library\":{{\"name\":{},\"cells\":{}}}",
        json_str(library.name()),
        library.len()
    );
    if !json {
        println!("library: {} ({} cells)", library.name(), library.len());
        println!("specification: {spec}\n");
    }
    let cache_dir = args.value_of("cache-dir")?;
    let engine = Arc::new(match cache_dir {
        Some(dir) => Dtas::warm_start(library, dir),
        None => Dtas::new(library),
    });
    let mut request = SynthRequest::new(spec);
    if args.has("pareto") {
        request = request.with_root_filter(FilterPolicy::Pareto);
    }
    if let Some(cap) = args.value_of("cap")? {
        let cap: usize = cap
            .parse()
            .map_err(|e| BridgeError::Flow(format!("bad --cap: {e}")))?;
        request = request.with_front_cap(cap);
    }
    if let Some(deadline) = parse_deadline(args)? {
        // Meaningful on the --queue-depth service path (a direct engine
        // call never queues); carried on the request either way.
        request = request.with_deadline(deadline);
    }
    // With --queue-depth the query goes through the admission-controlled
    // service (worker pool + bounded queue) — same answer, but the
    // submit/dispatch path and its accounting are exercised, which is
    // what the CI cross-process smoke greps for.
    let (designs, service_stats) = match args.value_of("queue-depth")? {
        Some(depth) => {
            let queue_depth: usize = depth
                .parse()
                .map_err(|e| BridgeError::Flow(format!("bad --queue-depth: {e}")))?;
            let service = DtasService::start(
                Arc::clone(&engine),
                ServiceConfig {
                    queue_depth,
                    ..ServiceConfig::default()
                },
            );
            let outcome = service.submit(request)?.recv()?;
            (outcome.design.clone(), Some(service.shutdown()))
        }
        None => (engine.run(&request)?, None),
    };
    if json {
        // One document, nothing else on stdout — the contract the
        // `--format json` CLI tests pin.
        println!(
            "{{\"schema\":\"dtas-map/1\",{library_line},{},\"cache\":{}}}",
            design_set_json_fields(&designs),
            cache_json(&engine.cache_stats())
        );
    } else {
        println!("{designs}");
    }
    if cache_dir.is_some() {
        // Flush explicitly so a full disk or unwritable directory fails
        // the run loudly instead of being swallowed by the drop hook.
        engine.checkpoint().map_err(BridgeError::Store)?;
    }
    if args.has("stats") && !json {
        println!("{}", engine.cache_stats());
        if let Some(stats) = service_stats {
            println!("{stats}");
        }
        if let Some(reason) = engine.last_snapshot_rejection() {
            println!("store: last rejection: {reason}");
        }
    }
    Ok(())
}

fn cmd_bench_load(args: &Args) -> Result<(), BridgeError> {
    args.expect_only(&[
        "clients",
        "requests",
        "queue-depth",
        "workers",
        "max-inflight",
        "admission",
        "deadline-ms",
        "cancel-rate",
        "arrival-rate",
        "connect",
        "spec",
        "book",
        "cache-dir",
        "stats",
    ])?;
    let clients = parse_num(args, "clients", 4)?.max(1);
    let requests = parse_num(args, "requests", 1_000)?.max(1);
    let deadline = parse_deadline(args)?;
    let cancel_rate = parse_cancel_rate(args)?;
    let arrival = parse_arrival(args, clients)?;
    if let Some(addr) = args.value_of("connect")? {
        return bench_load_connect(args, addr, clients, requests);
    }
    let queue_depth = parse_num(args, "queue-depth", 1_024)?;
    let max_inflight = parse_num(args, "max-inflight", usize::MAX)?;
    let admission = parse_admission(args)?;
    let spec = parse_spec(args.value_of("spec")?.unwrap_or("add:16:cin:cout"))?;
    let library = load_book(args.value_of("book")?)?;
    let engine = Arc::new(match args.value_of("cache-dir")? {
        Some(dir) => Dtas::warm_start(library, dir),
        None => Dtas::new(library),
    });
    // Warm the spec so the run measures service throughput, not one cold
    // solve amortized over the load.
    engine.run(&spec)?;
    let service = DtasService::start(
        Arc::clone(&engine),
        ServiceConfig {
            workers: args
                .value_of("workers")?
                .map(str::parse)
                .transpose()
                .map_err(|e: std::num::ParseIntError| {
                    BridgeError::Flow(format!("bad --workers: {e}"))
                })?,
            queue_depth,
            max_inflight,
            admission,
            default_deadline: None,
            checkpoint_interval: None,
        },
    );

    /// Per-client tallies, merged after the run.
    #[derive(Default)]
    struct ClientTally {
        ok: u64,
        overloaded: u64,
        shed: u64,
        cancelled: u64,
        deadline: u64,
        failed: u64,
        waits_us: Vec<u64>,
    }
    let t0 = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let service = &service;
                let spec = &spec;
                let arrival = arrival.as_ref();
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xBE7C_0000 + i as u64);
                    let mut tally = ClientTally::default();
                    let mut pending: VecDeque<Ticket> = VecDeque::new();
                    let drain = |t: Ticket, tally: &mut ClientTally| match t.recv() {
                        Ok(outcome) => {
                            tally.ok += 1;
                            tally.waits_us.push(outcome.queued_for.as_micros() as u64);
                        }
                        Err(dtas::ServiceError::Shed) => tally.shed += 1,
                        Err(dtas::ServiceError::Cancelled) => tally.cancelled += 1,
                        Err(dtas::ServiceError::DeadlineExceeded) => tally.deadline += 1,
                        Err(_) => tally.failed += 1,
                    };
                    let mut request = SynthRequest::new(spec.clone());
                    if let Some(d) = deadline {
                        request = request.with_deadline(d);
                    }
                    // Open-loop: the next submission's wall-clock slot is
                    // scheduled in advance, independent of completions.
                    let mut next_at = Instant::now();
                    for _ in 0..requests {
                        if let Some(exp) = arrival {
                            next_at += Duration::from_secs_f64(exp.sample(&mut rng));
                            if let Some(gap) = next_at.checked_duration_since(Instant::now()) {
                                std::thread::sleep(gap);
                            }
                        }
                        match service.submit(request.clone()) {
                            Ok(ticket) => {
                                if cancel_rate > 0.0 && rng.gen_bool(cancel_rate) {
                                    ticket.cancel();
                                }
                                pending.push_back(ticket);
                                // Pipeline window: keep up to 32 tickets
                                // outstanding per client — closed-loop
                                // backpressure that would distort an
                                // open-loop arrival process, so it is
                                // off under --arrival-rate.
                                if arrival.is_none() && pending.len() >= 32 {
                                    let ticket = pending.pop_front().expect("nonempty");
                                    drain(ticket, &mut tally);
                                }
                            }
                            Err(dtas::ServiceError::Overloaded { .. }) => tally.overloaded += 1,
                            Err(_) => tally.failed += 1,
                        }
                    }
                    for ticket in pending {
                        drain(ticket, &mut tally);
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = t0.elapsed();
    let stats = service.shutdown();

    let mut merged = ClientTally::default();
    for tally in tallies {
        merged.ok += tally.ok;
        merged.overloaded += tally.overloaded;
        merged.shed += tally.shed;
        merged.cancelled += tally.cancelled;
        merged.deadline += tally.deadline;
        merged.failed += tally.failed;
        merged.waits_us.extend(tally.waits_us);
    }
    merged.waits_us.sort_unstable();
    let submitted = (clients * requests) as u64;
    println!(
        "load: clients={clients} requests={requests} submitted={submitted} ok={} overloaded={} shed={} failed={} cancelled={} deadline_expired={}",
        merged.ok, merged.overloaded, merged.shed, merged.failed, merged.cancelled, merged.deadline
    );
    let secs = elapsed.as_secs_f64().max(1e-9);
    println!(
        "throughput: completed_qps={:.0} elapsed_ms={:.1}",
        merged.ok as f64 / secs,
        elapsed.as_secs_f64() * 1e3
    );
    if arrival.is_some() {
        // Open-loop honesty: how much load was offered vs how much the
        // service actually delivered inside the run window.
        println!(
            "arrivals: offered_qps={:.0} delivered_qps={:.0} delivered_frac={:.3}",
            submitted as f64 / secs,
            merged.ok as f64 / secs,
            merged.ok as f64 / (submitted as f64).max(1.0)
        );
    }
    println!(
        "wait: p50_us={} p99_us={} max_us={}",
        dtas::service::percentile(&merged.waits_us, 50.0),
        dtas::service::percentile(&merged.waits_us, 99.0),
        merged.waits_us.last().copied().unwrap_or(0)
    );
    println!("{stats}");
    print_histograms(&stats);
    if args.has("stats") {
        println!("{}", engine.cache_stats());
    }
    Ok(())
}

/// `bench-load --connect HOST:PORT`: the same load shape as the
/// in-process run, but driven over the wire protocol against a remote
/// `dtas serve`. Clients alternate interactive/bulk lanes; the printed
/// `load:`/`throughput:` keys match the in-process run, `rtt:` replaces
/// `wait:` (round-trip time is what a wire client can observe), and the
/// server's own measured counters — including the per-lane `lanes:`
/// percentiles — are fetched over a probe connection afterwards.
fn bench_load_connect(
    args: &Args,
    addr: &str,
    clients: usize,
    requests: usize,
) -> Result<(), BridgeError> {
    for server_side in [
        "queue-depth",
        "workers",
        "max-inflight",
        "admission",
        "book",
        "cache-dir",
    ] {
        if args.has(server_side) {
            return Err(BridgeError::Flow(format!(
                "--{server_side} sizes the server; pass it to `dtas serve`, not to --connect"
            )));
        }
    }
    let spec = parse_spec(args.value_of("spec")?.unwrap_or("add:16:cin:cout"))?;
    let deadline = parse_deadline(args)?;
    let cancel_rate = parse_cancel_rate(args)?;
    let arrival = parse_arrival(args, clients)?;

    /// Per-client tallies, merged after the run.
    #[derive(Default)]
    struct ClientTally {
        ok: u64,
        overloaded: u64,
        shed: u64,
        cancelled: u64,
        deadline: u64,
        failed: u64,
        rtts_us: Vec<u64>,
    }
    fn drain(
        client: &mut WireClient,
        sent_at: &mut VecDeque<Instant>,
        tally: &mut ClientTally,
    ) -> Result<(), dtas::WireError> {
        let result = client.recv_result()?;
        let sent = sent_at.pop_front().expect("one submit per result");
        match result.result {
            Ok(_) => {
                tally.ok += 1;
                tally.rtts_us.push(sent.elapsed().as_micros() as u64);
            }
            Err(dtas::WireError::Overloaded { .. }) => tally.overloaded += 1,
            Err(dtas::WireError::Shed) => tally.shed += 1,
            Err(dtas::WireError::Cancelled) => tally.cancelled += 1,
            Err(dtas::WireError::DeadlineExceeded) => tally.deadline += 1,
            Err(_) => tally.failed += 1,
        }
        Ok(())
    }
    let t0 = Instant::now();
    let tallies: Vec<Result<ClientTally, dtas::WireError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let spec = &spec;
                let arrival = arrival.as_ref();
                scope.spawn(move || {
                    let lane = if i % 2 == 0 {
                        Priority::Interactive
                    } else {
                        Priority::Bulk
                    };
                    let mut rng = StdRng::seed_from_u64(0xBE7C_1000 + i as u64);
                    let mut client = WireClient::connect(addr, lane)?;
                    let mut tally = ClientTally::default();
                    let mut sent_at: VecDeque<Instant> = VecDeque::new();
                    let mut request = SynthRequest::new(spec.clone());
                    if let Some(d) = deadline {
                        request = request.with_deadline(d);
                    }
                    let mut next_at = Instant::now();
                    for _ in 0..requests {
                        if let Some(exp) = arrival {
                            next_at += Duration::from_secs_f64(exp.sample(&mut rng));
                            if let Some(gap) = next_at.checked_duration_since(Instant::now()) {
                                std::thread::sleep(gap);
                            }
                        }
                        let id = client.submit(&request)?;
                        if cancel_rate > 0.0 && rng.gen_bool(cancel_rate) {
                            client.cancel(id)?;
                        }
                        sent_at.push_back(Instant::now());
                        // Pipeline window: up to 32 requests in flight
                        // (closed-loop, so off under --arrival-rate).
                        if arrival.is_none() && sent_at.len() >= 32 {
                            drain(&mut client, &mut sent_at, &mut tally)?;
                        }
                    }
                    while !sent_at.is_empty() {
                        drain(&mut client, &mut sent_at, &mut tally)?;
                    }
                    Ok(tally)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = t0.elapsed();
    let mut merged = ClientTally::default();
    for tally in tallies {
        let tally = tally?;
        merged.ok += tally.ok;
        merged.overloaded += tally.overloaded;
        merged.shed += tally.shed;
        merged.cancelled += tally.cancelled;
        merged.deadline += tally.deadline;
        merged.failed += tally.failed;
        merged.rtts_us.extend(tally.rtts_us);
    }
    merged.rtts_us.sort_unstable();
    let submitted = (clients * requests) as u64;
    println!(
        "load: clients={clients} requests={requests} submitted={submitted} ok={} overloaded={} shed={} failed={} cancelled={} deadline_expired={}",
        merged.ok, merged.overloaded, merged.shed, merged.failed, merged.cancelled, merged.deadline
    );
    let secs = elapsed.as_secs_f64().max(1e-9);
    println!(
        "throughput: completed_qps={:.0} elapsed_ms={:.1}",
        merged.ok as f64 / secs,
        elapsed.as_secs_f64() * 1e3
    );
    if arrival.is_some() {
        println!(
            "arrivals: offered_qps={:.0} delivered_qps={:.0} delivered_frac={:.3}",
            submitted as f64 / secs,
            merged.ok as f64 / secs,
            merged.ok as f64 / (submitted as f64).max(1.0)
        );
    }
    println!(
        "rtt: p50_us={} p99_us={} max_us={}",
        dtas::service::percentile(&merged.rtts_us, 50.0),
        dtas::service::percentile(&merged.rtts_us, 99.0),
        merged.rtts_us.last().copied().unwrap_or(0)
    );
    let mut probe = WireClient::connect(addr, Priority::Interactive)?;
    let stats = probe.server_stats()?;
    println!("{}", stats.service);
    print_histograms(&stats.service);
    if args.has("stats") {
        println!(
            "cache: hits={} misses={}",
            stats.cache_hits, stats.cache_misses
        );
        println!("server: connections={}", stats.connections);
    }
    Ok(())
}

/// `dtas serve`: bind the wire protocol on 127.0.0.1 and run until the
/// drain signal.
fn cmd_serve(args: &Args) -> Result<(), BridgeError> {
    args.expect_only(&[
        "port",
        "book",
        "cache-dir",
        "workers",
        "queue-depth",
        "max-inflight",
        "admission",
        "deadline-ms",
        "checkpoint-secs",
    ])?;
    let port: u16 = match args.value_of("port")? {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|e| BridgeError::Flow(format!("bad --port: {e}")))?,
    };
    let library = load_book(args.value_of("book")?)?;
    let engine = Arc::new(match args.value_of("cache-dir")? {
        Some(dir) => Dtas::warm_start(library, dir),
        None => Dtas::new(library),
    });
    let service = ServiceConfig {
        workers: args
            .value_of("workers")?
            .map(str::parse)
            .transpose()
            .map_err(|e: std::num::ParseIntError| {
                BridgeError::Flow(format!("bad --workers: {e}"))
            })?,
        queue_depth: parse_num(args, "queue-depth", 1_024)?,
        max_inflight: parse_num(args, "max-inflight", usize::MAX)?,
        admission: parse_admission(args)?,
        default_deadline: parse_deadline(args)?,
        checkpoint_interval: args
            .value_of("checkpoint-secs")?
            .map(str::parse)
            .transpose()
            .map_err(|e: std::num::ParseIntError| {
                BridgeError::Flow(format!("bad --checkpoint-secs: {e}"))
            })?
            .map(Duration::from_secs),
    };
    let server = WireServer::start(
        Arc::clone(&engine),
        ServeConfig {
            service,
            ..ServeConfig::default()
        },
        ("127.0.0.1", port),
    )
    .map_err(|e| BridgeError::Io(format!("bind 127.0.0.1:{port}: {e}")))?;
    println!("listening on {}", server.local_addr());
    // The supervising process scripts against that line; make sure it is
    // visible before we block.
    std::io::Write::flush(&mut std::io::stdout())?;
    // SIGTERM-equivalent that needs no signal handling: the parent holds
    // our stdin open; EOF is the graceful-drain request. The CI loopback
    // smoke holds a fifo open for exactly this.
    std::io::copy(&mut std::io::stdin().lock(), &mut std::io::sink())?;
    let stats = server.shutdown();
    println!("{stats}");
    println!("{}", engine.cache_stats());
    Ok(())
}

fn cmd_flow(args: &Args) -> Result<(), BridgeError> {
    args.expect_only(&["hls", "book", "emit-vhdl", "cache-dir", "format"])?;
    let json = wants_json(args)?;
    let path = args.require("hls")?;
    let source =
        std::fs::read_to_string(path).map_err(|e| BridgeError::Io(format!("{path}: {e}")))?;
    let scheduled = Flow::from_hls(&source)?.schedule()?;
    if !json {
        print!("{}", scheduled.design().report());
    }
    let controlled = scheduled.compile_control()?;
    let stats = controlled.controller().stats.clone();
    if !json {
        println!(
            "controller: {} states, {} state bits, {} cubes, {} literals",
            stats.states, stats.state_bits, stats.cubes, stats.literals
        );
    }
    let linked = controlled.link()?;
    let library = load_book(args.value_of("book")?)?;
    let mapped = match args.value_of("cache-dir")? {
        Some(dir) => linked.map_cached(library, dir)?,
        None => linked.map(&Dtas::new(library))?,
    };
    if json {
        let components: Vec<String> = mapped
            .mapping()
            .iter()
            .map(|(instance, set)| {
                format!(
                    "{{\"instance\":{},{}}}",
                    json_str(instance),
                    design_set_json_fields(set)
                )
            })
            .collect();
        println!(
            "{{\"schema\":\"dtas-flow/1\",\"controller\":{{\"states\":{},\"state_bits\":{},\
             \"cubes\":{},\"literals\":{}}},\"components\":[{}],\"smallest_area\":{}}}",
            stats.states,
            stats.state_bits,
            stats.cubes,
            stats.literals,
            components.join(","),
            json_num(mapped.smallest_area())
        );
    } else {
        println!("\ntechnology mapping:\n{}", mapped.report());
    }
    if let Some(out) = args.value_of("emit-vhdl")? {
        let text = mapped.emit_vhdl();
        std::fs::write(out, &text).map_err(|e| BridgeError::Io(format!("{out}: {e}")))?;
        if !json {
            println!(
                "wrote {} lines of structural VHDL to {out}",
                text.lines().count()
            );
        }
    }
    Ok(())
}

/// Accumulates per-target lint reports for `dtas lint`, printing the
/// human-readable section for each target as it lands.
struct LintRun {
    json: bool,
    report: LintReport,
    targets: Vec<(&'static str, String)>,
}

impl LintRun {
    fn add(&mut self, kind: &'static str, name: &str, report: LintReport) {
        if !self.json {
            if report.is_clean() {
                println!("lint: {kind} {name}: clean");
            } else {
                println!("lint: {kind} {name}:");
                for d in &report.diagnostics {
                    println!("  {d}");
                }
            }
        }
        self.targets.push((kind, name.to_string()));
        self.report.merge(report);
    }
}

/// `dtas lint`: run the `core::analyze` passes over the named artifacts
/// (or self-lint the embedded data book and rule base) and derive the
/// process exit code from the worst finding.
fn cmd_lint(args: &Args) -> Result<i32, BridgeError> {
    args.expect_only(&["hls", "legend", "book", "format"])?;
    let json = wants_json(args)?;
    let registry = LintRegistry::standard();
    let mut run = LintRun {
        json,
        report: LintReport::default(),
        targets: Vec::new(),
    };
    // Netlist targets: each --hls entity is compiled through schedule ->
    // compile control -> link, and the linked datapath netlist is linted.
    for path in args.values_of("hls")? {
        let source =
            std::fs::read_to_string(path).map_err(|e| BridgeError::Io(format!("{path}: {e}")))?;
        let linked = Flow::from_hls(&source)?
            .schedule()?
            .compile_control()?
            .link()?;
        run.add("netlist", path, linked.lint());
    }
    // LEGEND targets: one parsed document each.
    for path in args.values_of("legend")? {
        let text =
            std::fs::read_to_string(path).map_err(|e| BridgeError::Io(format!("{path}: {e}")))?;
        let descs = legend::parse_document(&text)?;
        run.add("legend", path, registry.run(&LintTarget::Legend(&descs)));
    }
    // Databook + rule-base targets: whenever --book is given, or as the
    // self-lint default when no target was named at all.
    let explicit_book = args.value_of("book")?;
    if explicit_book.is_some() || run.targets.is_empty() {
        let library = load_book(explicit_book)?;
        let book_name = library.name().to_string();
        run.add(
            "databook",
            &book_name,
            registry.run(&LintTarget::Databook(&library)),
        );
        let rules = RuleSet::standard().with_lsi_extensions();
        run.add(
            "rules",
            &format!("{} rules vs {book_name}", rules.len()),
            registry.run(&LintTarget::Rules {
                rules: &rules,
                library: &library,
            }),
        );
    }
    let errors = run.report.count(Severity::Error);
    let warnings = run.report.count(Severity::Warn);
    let infos = run.report.count(Severity::Info);
    if json {
        // One dtas-lint/1 document, nothing else on stdout — the contract
        // the `--format json` CLI tests pin.
        let targets: Vec<String> = run
            .targets
            .iter()
            .map(|(kind, name)| {
                format!(
                    "{{\"kind\":{},\"name\":{}}}",
                    json_str(kind),
                    json_str(name)
                )
            })
            .collect();
        let findings: Vec<String> = run
            .report
            .diagnostics
            .iter()
            .map(|d| {
                let suggestion = match &d.suggestion {
                    Some(s) => json_str(s),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"code\":{},\"severity\":{},\"artifact\":{},\"site\":{},\
                     \"message\":{},\"suggestion\":{suggestion}}}",
                    json_str(d.code),
                    json_str(&d.severity.to_string()),
                    json_str(&d.artifact.to_string()),
                    json_str(&d.site),
                    json_str(&d.message),
                )
            })
            .collect();
        let max_severity = match run.report.max_severity() {
            Some(s) => json_str(&s.to_string()),
            None => "null".to_string(),
        };
        println!(
            "{{\"schema\":\"dtas-lint/1\",\"targets\":[{}],\"findings\":[{}],\
             \"counts\":{{\"error\":{errors},\"warn\":{warnings},\"info\":{infos}}},\
             \"max_severity\":{max_severity}}}",
            targets.join(","),
            findings.join(",")
        );
    } else {
        println!(
            "lint: {errors} error(s), {warnings} warning(s), {infos} info across {} target(s)",
            run.targets.len()
        );
    }
    Ok(match run.report.max_severity() {
        Some(Severity::Error) => 2,
        Some(Severity::Warn) => 1,
        _ => 0,
    })
}

/// `dtas cache`: inventory and garbage-collect a shared `--cache-dir`.
fn cmd_cache(args: &Args) -> Result<(), BridgeError> {
    args.expect_only(&["cache-dir", "gc", "apply", "max-age-secs", "format"])?;
    let json = wants_json(args)?;
    let dir = args.require("cache-dir")?;
    let want_gc = args.has("gc");
    if args.has("apply") && !want_gc {
        return Err(BridgeError::Flow(
            "--apply requires --gc (a plain listing deletes nothing)".into(),
        ));
    }
    let max_age = args
        .value_of("max-age-secs")?
        .map(str::parse)
        .transpose()
        .map_err(|e: std::num::ParseIntError| {
            BridgeError::Flow(format!("bad --max-age-secs: {e}"))
        })?
        .map(Duration::from_secs);
    if max_age.is_some() && !want_gc {
        return Err(BridgeError::Flow(
            "--max-age-secs is a --gc retention knob; pass --gc as well".into(),
        ));
    }
    let store = PersistentStore::new(dir);
    let entries = store.inventory().map_err(BridgeError::Store)?;
    let plan = match want_gc {
        true => Some(store.plan_gc(max_age).map_err(BridgeError::Store)?),
        false => None,
    };
    let reclaimed = match &plan {
        Some(plan) if args.has("apply") => Some(store.apply_gc(plan).map_err(BridgeError::Store)?),
        _ => None,
    };
    if json {
        // One dtas-cache/1 document, nothing else on stdout — the
        // contract the `--format json` CLI tests pin. Fingerprints are
        // 16-digit hex strings (u64s do not survive JSON doubles).
        let keys: Vec<String> = entries
            .iter()
            .map(|e| {
                format!(
                    "{{\"library\":{},\"rules\":{},\"config\":{},\"format_version\":{},\
                     \"current_format\":{},\"generation\":{},\"base_bytes\":{},\
                     \"delta_count\":{},\"delta_bytes\":{},\"total_bytes\":{},\"age_secs\":{}}}",
                    json_str(&format!("{:016x}", e.library)),
                    json_str(&format!("{:016x}", e.rules)),
                    json_str(&format!("{:016x}", e.config)),
                    e.format_version,
                    e.current_format,
                    e.generation,
                    e.base_bytes,
                    e.delta_count,
                    e.delta_bytes,
                    e.total_bytes,
                    e.age_secs
                )
            })
            .collect();
        let gc = match &plan {
            None => "null".to_string(),
            Some(plan) => {
                let files: Vec<String> = plan
                    .items
                    .iter()
                    .map(|item| {
                        format!(
                            "{{\"path\":{},\"bytes\":{},\"reason\":{}}}",
                            json_str(&item.path.display().to_string()),
                            item.bytes,
                            json_str(&item.reason.to_string())
                        )
                    })
                    .collect();
                let reclaimed = match reclaimed {
                    Some(n) => n.to_string(),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"applied\":{},\"reclaimable_bytes\":{},\"reclaimed_bytes\":{reclaimed},\
                     \"kept\":{},\"files\":[{}]}}",
                    reclaimed != "null",
                    plan.bytes(),
                    plan.kept,
                    files.join(",")
                )
            }
        };
        println!(
            "{{\"schema\":\"dtas-cache/1\",\"dir\":{},\"keys\":[{}],\"gc\":{gc}}}",
            json_str(dir),
            keys.join(",")
        );
        return Ok(());
    }
    println!("cache: {} key(s) in {dir}", entries.len());
    for e in &entries {
        let compat = match e.current_format {
            true => "",
            false => " [unreadable by this build]",
        };
        println!(
            "  lib={:016x} rules={:016x} cfg={:016x} v{} gen={} \
             base={}B deltas={} ({}B) total={}B age={}s{compat}",
            e.library,
            e.rules,
            e.config,
            e.format_version,
            e.generation,
            e.base_bytes,
            e.delta_count,
            e.delta_bytes,
            e.total_bytes,
            e.age_secs
        );
    }
    if let Some(plan) = &plan {
        for item in &plan.items {
            println!(
                "gc: {} ({}, {}B)",
                item.path.display(),
                item.reason,
                item.bytes
            );
        }
        match reclaimed {
            Some(bytes) => println!(
                "gc: reclaimed {bytes}B across {} file(s), {} kept",
                plan.items.len(),
                plan.kept
            ),
            None => println!(
                "gc: would reclaim {}B across {} file(s), {} kept \
                 (dry run; add --apply to delete)",
                plan.bytes(),
                plan.items.len(),
                plan.kept
            ),
        }
    }
    Ok(())
}

fn run() -> Result<i32, BridgeError> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("map") => cmd_map(&Args::parse(&raw[1..])?).map(|()| 0),
        Some("flow") => cmd_flow(&Args::parse(&raw[1..])?).map(|()| 0),
        Some("lint") => cmd_lint(&Args::parse(&raw[1..])?),
        Some("serve") => cmd_serve(&Args::parse(&raw[1..])?).map(|()| 0),
        Some("bench-load") => cmd_bench_load(&Args::parse(&raw[1..])?).map(|()| 0),
        Some("cache") => cmd_cache(&Args::parse(&raw[1..])?).map(|()| 0),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(0)
        }
        Some(other) => Err(BridgeError::Flow(format!(
            "unknown command {other:?} (try `dtas help`)"
        ))),
    }
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            // The single error-to-exit-code site: every failure prints one
            // `dtas: error[DT###]: ...` line and exits with the variant's
            // stable code (2 for lint refusals, 1 otherwise).
            eprintln!("dtas: error[{}]: {e}", e.code());
            std::process::exit(e.exit_code());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_covers_the_paper_queries() {
        let add = parse_spec("add:16:cin:cout").unwrap();
        assert_eq!(add.kind, ComponentKind::AddSub);
        assert_eq!(add.width, 16);
        assert!(add.carry_in && add.carry_out);
        assert_eq!(add.ops, OpSet::only(Op::Add));

        let alu = parse_spec("alu:64:cin").unwrap();
        assert_eq!(alu.ops, Op::paper_alu16());

        let mux = parse_spec("mux:8:n=4").unwrap();
        assert_eq!((mux.width, mux.inputs), (8, 4));

        let gate = parse_spec("gate_nand:1:n=3").unwrap();
        assert_eq!(gate.kind, ComponentKind::Gate(GateOp::Nand));

        let custom = parse_spec("counter:4:en:ops=load+count_up").unwrap();
        assert!(custom.enable);
        assert_eq!(custom.ops.len(), 2);
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for bad in [
            "",
            "frobnicator:8",
            "add",
            "add:x",
            "add:16:wat",
            "mux:8:n=x",
        ] {
            let err = parse_spec(bad).unwrap_err();
            assert!(matches!(err, BridgeError::Flow(_)), "{bad}");
        }
    }
}
