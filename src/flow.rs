//! The unified pipeline façade: every Figure-1 stage behind one entry
//! point and one error type.
//!
//! The paper's flow (behavioral source → high-level synthesis → control
//! compilation → linking → DTAS technology mapping → VHDL / simulation)
//! used to take a page of per-crate plumbing. [`Flow`] packages it as a
//! typed chain — each stage returns the next stage's value, every
//! fallible step returns [`BridgeError`]:
//!
//! ```
//! use cells::lsi::lsi_logic_subset;
//! use dtas::Dtas;
//! use hls_rtl_bridge::flow::{BridgeError, Flow};
//!
//! # fn main() -> Result<(), BridgeError> {
//! let mapped = Flow::from_hls("entity inc(x: in 8, y: out 8) { y = x + 1; }")?
//!     .schedule()?
//!     .compile_control()?
//!     .link()?
//!     .map(&Dtas::new(lsi_logic_subset()))?;
//! assert!(mapped.smallest_area() > 0.0);
//! let vhdl = mapped.emit_vhdl();
//! assert!(vhdl.contains("entity"));
//! # Ok(())
//! # }
//! ```
//!
//! Entry points:
//!
//! * [`Flow::from_hls`] — a behavioral entity in the `hls` language; the
//!   chain runs `.schedule() → .compile_control() → .link()` to a closed
//!   netlist.
//! * [`Flow::from_netlist`] — an existing GENUS netlist; joins the chain
//!   at the linked stage directly.
//! * [`Flow::from_legend`] — a LEGEND generator document; exposes the
//!   lowered generators and maps sample components.

use cells::databook::ParseBookError;
use cells::CellLibrary;
use controlc::{compile_controller, link, ControlError, Controller};
use dtas::{
    DesignSet, Dtas, DtasService, LintRegistry, LintReport, LintTarget, ServiceError, Severity,
    StoreError, SynthError, SynthRequest, WireError,
};
use genus::behavior::{Env, EvalError};
use genus::component::GenerateError;
use genus::netlist::{Netlist, NetlistError};
use genus::spec::ComponentSpec;
use hls::compile::{compile, CompileError, Constraints, Design};
use hls::lang::parse_entity;
use legend::lower::{lower, LoweredGenerator};
use rtlsim::equiv::EquivError;
use rtlsim::flatten::FlattenError;
use rtlsim::sim::SimError;
use rtlsim::{FlatDesign, Simulator};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use vhdl::parse::VhdlParseError;

/// The single error type of the pipeline façade: every fallible entry
/// point in this module (and the `dtas` CLI built on it) returns
/// `BridgeError`, and each subsystem's error converts in via `From` — so
/// `?` composes across all Figure-1 stages.
#[derive(Debug)]
pub enum BridgeError {
    /// DTAS synthesis failed ([`SynthError`]).
    Synth(SynthError),
    /// The behavioral source did not parse ([`hls::lang::ParseError`]).
    HlsParse(hls::lang::ParseError),
    /// Scheduling/allocation/binding failed ([`CompileError`]).
    Hls(CompileError),
    /// Control compilation or linking failed ([`ControlError`]).
    Control(ControlError),
    /// A netlist was structurally invalid ([`NetlistError`]).
    Netlist(NetlistError),
    /// A data book failed to parse ([`ParseBookError`]).
    Book(ParseBookError),
    /// A LEGEND document failed to parse ([`legend::parse::ParseError`]).
    LegendParse(legend::parse::ParseError),
    /// A LEGEND description failed to lower ([`legend::lower::LowerError`]).
    LegendLower(legend::lower::LowerError),
    /// A component generator rejected its parameters ([`GenerateError`]).
    Generate(GenerateError),
    /// A netlist failed to flatten for simulation ([`FlattenError`]).
    Flatten(FlattenError),
    /// Simulation failed ([`SimError`]).
    Sim(SimError),
    /// Equivalence checking failed or found a counterexample
    /// ([`EquivError`]).
    Equiv(EquivError),
    /// Behavioral evaluation failed ([`EvalError`]).
    Eval(EvalError),
    /// Structural VHDL failed to parse ([`VhdlParseError`]).
    VhdlParse(VhdlParseError),
    /// VHDL emission failed (an unemittable implementation).
    Emit(String),
    /// The DTAS warm-start snapshot store failed to read or write
    /// ([`StoreError`]). Only flushes report this — a damaged or
    /// incompatible snapshot is not an error, the engine just starts
    /// cold.
    Store(StoreError),
    /// The synthesis service refused or dropped the request under load:
    /// admission control turned it away
    /// ([`ServiceError::Overloaded`]) or evicted it from the queue
    /// ([`ServiceError::Shed`]). Retryable by construction — the request
    /// itself was fine, the service was full.
    Overloaded(ServiceError),
    /// The network wire protocol failed ([`WireError`]): connection
    /// loss, frame corruption, a handshake refusal, or a typed
    /// server-side error delivered over a `--connect` session.
    Wire(WireError),
    /// File I/O failed (CLI paths).
    Io(String),
    /// The façade itself was misused or a run did not converge (e.g. a
    /// simulation hit its cycle budget before the stop condition held).
    Flow(String),
    /// Strict pre-flight static analysis
    /// ([`DtasConfig::strict_preflight`](dtas::DtasConfig::strict_preflight))
    /// refused an input artifact carrying Error-severity findings. The
    /// full report rides along so callers can render every finding, not
    /// just the first.
    Lint(LintReport),
}

impl BridgeError {
    /// A stable machine-readable code for the error's stage, in the
    /// `DT0xx` namespace (artifact lints own `DT1xx`–`DT4xx`; see
    /// [`dtas::analyze`]). Codes are never reused once shipped — tooling
    /// may match on them.
    pub fn code(&self) -> &'static str {
        match self {
            BridgeError::Synth(_) => "DT001",
            BridgeError::HlsParse(_) => "DT002",
            BridgeError::Hls(_) => "DT003",
            BridgeError::Control(_) => "DT004",
            BridgeError::Netlist(_) => "DT005",
            BridgeError::Book(_) => "DT006",
            BridgeError::LegendParse(_) => "DT007",
            BridgeError::LegendLower(_) => "DT008",
            BridgeError::Generate(_) => "DT009",
            BridgeError::Flatten(_) => "DT010",
            BridgeError::Sim(_) => "DT011",
            BridgeError::Equiv(_) => "DT012",
            BridgeError::Eval(_) => "DT013",
            BridgeError::VhdlParse(_) => "DT014",
            BridgeError::Emit(_) => "DT015",
            BridgeError::Store(_) => "DT016",
            BridgeError::Overloaded(_) => "DT017",
            BridgeError::Wire(_) => "DT018",
            BridgeError::Io(_) => "DT019",
            BridgeError::Flow(_) => "DT020",
            BridgeError::Lint(_) => "DT021",
        }
    }

    /// The process exit code the `dtas` CLI maps this error to: `2` for
    /// lint refusals (matching `dtas lint`'s Error-severity exit), `1`
    /// for everything else.
    pub fn exit_code(&self) -> i32 {
        match self {
            BridgeError::Lint(_) => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for BridgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BridgeError::Synth(e) => write!(f, "synthesis: {e}"),
            BridgeError::HlsParse(e) => write!(f, "hls parse: {e}"),
            BridgeError::Hls(e) => write!(f, "{e}"),
            BridgeError::Control(e) => write!(f, "control: {e}"),
            BridgeError::Netlist(e) => write!(f, "netlist: {e}"),
            BridgeError::Book(e) => write!(f, "{e}"),
            BridgeError::LegendParse(e) => write!(f, "{e}"),
            BridgeError::LegendLower(e) => write!(f, "legend: {e}"),
            BridgeError::Generate(e) => write!(f, "generate: {e}"),
            BridgeError::Flatten(e) => write!(f, "flatten: {e}"),
            BridgeError::Sim(e) => write!(f, "simulation: {e}"),
            BridgeError::Equiv(e) => write!(f, "equivalence: {e}"),
            BridgeError::Eval(e) => write!(f, "evaluation: {e}"),
            BridgeError::VhdlParse(e) => write!(f, "{e}"),
            BridgeError::Store(e) => write!(f, "{e}"),
            BridgeError::Overloaded(e) => write!(f, "{e}"),
            BridgeError::Wire(e) => write!(f, "wire: {e}"),
            BridgeError::Emit(m) => write!(f, "vhdl emission: {m}"),
            BridgeError::Io(m) => write!(f, "io: {m}"),
            BridgeError::Flow(m) => write!(f, "flow: {m}"),
            BridgeError::Lint(report) => {
                let first = report
                    .diagnostics
                    .iter()
                    .find(|d| d.severity == Severity::Error);
                match first {
                    Some(d) => write!(
                        f,
                        "preflight lint refused the input: {d} ({} error(s) total)",
                        report.count(Severity::Error)
                    ),
                    None => write!(f, "preflight lint refused the input"),
                }
            }
        }
    }
}

impl std::error::Error for BridgeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BridgeError::Synth(e) => Some(e),
            BridgeError::HlsParse(e) => Some(e),
            BridgeError::Hls(e) => Some(e),
            BridgeError::Control(e) => Some(e),
            BridgeError::Netlist(e) => Some(e),
            BridgeError::Book(e) => Some(e),
            BridgeError::LegendParse(e) => Some(e),
            BridgeError::LegendLower(e) => Some(e),
            BridgeError::Generate(e) => Some(e),
            BridgeError::Flatten(e) => Some(e),
            BridgeError::Sim(e) => Some(e),
            BridgeError::Equiv(e) => Some(e),
            BridgeError::Eval(e) => Some(e),
            BridgeError::VhdlParse(e) => Some(e),
            BridgeError::Store(e) => Some(e),
            BridgeError::Overloaded(e) => Some(e),
            BridgeError::Wire(e) => Some(e),
            BridgeError::Emit(_)
            | BridgeError::Io(_)
            | BridgeError::Flow(_)
            | BridgeError::Lint(_) => None,
        }
    }
}

macro_rules! bridge_from {
    ($($ty:ty => $variant:ident),* $(,)?) => {
        $(impl From<$ty> for BridgeError {
            fn from(e: $ty) -> Self {
                BridgeError::$variant(e)
            }
        })*
    };
}

bridge_from! {
    SynthError => Synth,
    hls::lang::ParseError => HlsParse,
    CompileError => Hls,
    ControlError => Control,
    NetlistError => Netlist,
    ParseBookError => Book,
    legend::parse::ParseError => LegendParse,
    legend::lower::LowerError => LegendLower,
    GenerateError => Generate,
    FlattenError => Flatten,
    SimError => Sim,
    EquivError => Equiv,
    EvalError => Eval,
    VhdlParseError => VhdlParse,
    StoreError => Store,
    WireError => Wire,
}

impl From<std::io::Error> for BridgeError {
    fn from(e: std::io::Error) -> Self {
        BridgeError::Io(e.to_string())
    }
}

impl From<ServiceError> for BridgeError {
    /// Service errors split by meaning: synthesis failures keep their
    /// [`Synth`](BridgeError::Synth) identity, capacity refusals
    /// (rejected or shed) become the retryable
    /// [`Overloaded`](BridgeError::Overloaded), and lifecycle/internal
    /// failures land in [`Flow`](BridgeError::Flow).
    fn from(e: ServiceError) -> Self {
        match e {
            ServiceError::Synth(s) => BridgeError::Synth(s),
            // Deadline drops join the retryable bucket: like a shed, the
            // request was fine and a quieter service would serve it.
            ServiceError::Overloaded { .. }
            | ServiceError::Shed
            | ServiceError::DeadlineExceeded => BridgeError::Overloaded(e),
            ServiceError::Cancelled | ServiceError::ShuttingDown | ServiceError::Internal(_) => {
                BridgeError::Flow(e.to_string())
            }
        }
    }
}

// The façade's one error must compose with service stacks: assert the
// whole tree is a thread-safe `Error` at compile time.
const _: fn() = || {
    fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<BridgeError>();
};

/// Entry points of the unified pipeline (see the [module docs](self)).
pub struct Flow;

impl Flow {
    /// Starts the flow from behavioral source in the `hls` entity
    /// language.
    ///
    /// # Errors
    ///
    /// [`BridgeError::HlsParse`] on malformed source.
    pub fn from_hls(source: &str) -> Result<HlsFlow, BridgeError> {
        Ok(HlsFlow {
            entity: parse_entity(source)?,
            constraints: Constraints::default(),
        })
    }

    /// Starts the flow from a LEGEND generator document.
    ///
    /// The **whole** document is lowered eagerly: one unlowerable
    /// description fails the entry point even if earlier descriptions are
    /// fine. Callers that need per-generator tolerance should drop down
    /// to [`legend::parse_document`] + [`legend::lower::lower`] and pick
    /// through the results themselves.
    ///
    /// # Errors
    ///
    /// [`BridgeError::LegendParse`] / [`BridgeError::LegendLower`] on
    /// malformed or unlowerable descriptions, and
    /// [`BridgeError::Flow`] on an empty document.
    pub fn from_legend(source: &str) -> Result<LegendFlow, BridgeError> {
        let descriptions = legend::parse_document(source)?;
        if descriptions.is_empty() {
            return Err(BridgeError::Flow(
                "LEGEND document defines no generators".to_string(),
            ));
        }
        let lowered = descriptions
            .iter()
            .map(lower)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LegendFlow { lowered })
    }

    /// Joins the flow at the linked stage with an existing (closed or
    /// stand-alone) GENUS netlist.
    ///
    /// # Errors
    ///
    /// [`BridgeError::Netlist`] when the netlist fails validation.
    pub fn from_netlist(netlist: Netlist) -> Result<LinkedFlow, BridgeError> {
        netlist.validate()?;
        Ok(LinkedFlow {
            netlist,
            design: None,
        })
    }
}

/// A parsed behavioral entity, ready for high-level synthesis.
#[derive(Debug)]
pub struct HlsFlow {
    entity: hls::Entity,
    constraints: Constraints,
}

impl HlsFlow {
    /// Overrides the scheduler's resource constraints.
    pub fn with_constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// The parsed entity.
    pub fn entity(&self) -> &hls::Entity {
        &self.entity
    }

    /// Runs state scheduling, allocation and binding.
    ///
    /// # Errors
    ///
    /// [`BridgeError::Hls`] on unschedulable entities.
    pub fn schedule(self) -> Result<ScheduledFlow, BridgeError> {
        Ok(ScheduledFlow {
            design: compile(&self.entity, &self.constraints)?,
        })
    }
}

/// A scheduled design: datapath netlist + state sequencing table.
pub struct ScheduledFlow {
    design: Design,
}

impl ScheduledFlow {
    /// The HLS output (netlist, state table, control interface).
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Compiles the state sequencing table into minimized sequencing
    /// logic.
    ///
    /// # Errors
    ///
    /// [`BridgeError::Control`] on uncompilable tables.
    pub fn compile_control(self) -> Result<ControlledFlow, BridgeError> {
        let controller = compile_controller(&self.design.state_table)?;
        Ok(ControlledFlow {
            design: self.design,
            controller,
        })
    }
}

/// A design with its compiled controller, ready to link.
pub struct ControlledFlow {
    design: Design,
    controller: Controller,
}

impl ControlledFlow {
    /// The HLS output.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The compiled controller.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Closes the loop: the controller drives the datapath's control nets,
    /// yielding one self-contained netlist.
    ///
    /// # Errors
    ///
    /// [`BridgeError::Control`] when linking fails.
    pub fn link(self) -> Result<LinkedFlow, BridgeError> {
        let netlist = link(&self.design, &self.controller)?;
        Ok(LinkedFlow {
            netlist,
            design: Some(self.design),
        })
    }
}

/// The outcome of a clocked [`LinkedFlow::simulate`] run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Cycles executed (including the cycle whose outputs satisfied the
    /// stop condition).
    pub cycles: usize,
    /// Primary outputs at the stop cycle.
    pub outputs: Env,
}

/// A closed, self-contained netlist — the stage that emits, simulates and
/// technology-maps.
pub struct LinkedFlow {
    netlist: Netlist,
    design: Option<Design>,
}

impl LinkedFlow {
    /// The closed netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The HLS design this netlist was linked from, when the flow started
    /// at [`Flow::from_hls`].
    pub fn design(&self) -> Option<&Design> {
        self.design.as_ref()
    }

    /// Structural VHDL for the netlist.
    pub fn emit_vhdl(&self) -> String {
        vhdl::emit_netlist(&self.netlist)
    }

    /// Clocks the design with constant `inputs` until `done(outputs)`
    /// holds, up to `max_cycles`.
    ///
    /// # Errors
    ///
    /// [`BridgeError::Flatten`] / [`BridgeError::Sim`] on simulator
    /// construction or evaluation failures, and [`BridgeError::Flow`] when
    /// the stop condition never holds within the budget.
    pub fn simulate(
        &self,
        inputs: &Env,
        mut done: impl FnMut(&Env) -> bool,
        max_cycles: usize,
    ) -> Result<SimOutcome, BridgeError> {
        self.with_simulator(|sim| {
            for cycle in 1..=max_cycles {
                let outputs = sim.step(inputs)?;
                if done(&outputs) {
                    return Ok(SimOutcome {
                        cycles: cycle,
                        outputs,
                    });
                }
            }
            Err(BridgeError::Flow(format!(
                "simulation did not satisfy its stop condition within {max_cycles} cycles"
            )))
        })
    }

    /// Flattens the netlist, builds a [`Simulator`] over it, and hands it
    /// to `drive` — for waveforms, multi-phase stimulus, or anything the
    /// canned [`simulate`](Self::simulate) loop does not cover.
    ///
    /// # Errors
    ///
    /// [`BridgeError::Flatten`] / [`BridgeError::Sim`] on construction
    /// failures, plus whatever `drive` returns.
    pub fn with_simulator<R>(
        &self,
        drive: impl FnOnce(&mut Simulator) -> Result<R, BridgeError>,
    ) -> Result<R, BridgeError> {
        let flat = FlatDesign::from_netlist(&self.netlist)?;
        let mut sim = Simulator::new(&flat)?;
        drive(&mut sim)
    }

    /// Runs the [`dtas::analyze`] netlist lints over the closed netlist
    /// and returns every finding (dangling and undriven nets, multiple
    /// drivers, width mismatches, combinational loops, unreachable
    /// components, unknown references — the `DT1xx` codes).
    pub fn lint(&self) -> LintReport {
        LintRegistry::standard().run(&LintTarget::Netlist(&self.netlist))
    }

    /// Technology-maps every distinct component of the netlist with DTAS
    /// (one [`Dtas::run_batch`] pass over the spec census).
    ///
    /// When the engine's config opts into
    /// [`strict_preflight`](dtas::DtasConfig::strict_preflight), the
    /// netlist is [`lint`](Self::lint)ed first and refused if any
    /// Error-severity finding is present; accepted inputs map exactly as
    /// they would without the flag.
    ///
    /// # Errors
    ///
    /// [`BridgeError::Lint`] when strict pre-flight refuses the netlist,
    /// [`BridgeError::Synth`] on the first unmappable component.
    pub fn map(self, engine: &Dtas) -> Result<MappedFlow, BridgeError> {
        if engine.config().strict_preflight {
            let report = self.lint();
            if report.has_errors() {
                return Err(BridgeError::Lint(report));
            }
        }
        let mapping = engine.run_netlist(&self.netlist)?;
        Ok(MappedFlow {
            linked: self,
            mapping,
        })
    }

    /// Like [`map`](Self::map), but through a running [`DtasService`]:
    /// every distinct component is submitted as one bulk-lane batch and
    /// the tickets are collected, so the mapping competes fairly with the
    /// service's other traffic — interactive queries overtake it, and
    /// admission control applies instead of unbounded queueing.
    ///
    /// # Errors
    ///
    /// [`BridgeError::Overloaded`] when admission refuses or sheds a
    /// component under load (retry later, or against a service with a
    /// deeper queue), [`BridgeError::Synth`] on the first unmappable
    /// component, [`BridgeError::Flow`] when the service is shutting
    /// down.
    pub fn map_service(self, service: &DtasService) -> Result<MappedFlow, BridgeError> {
        let census = self.netlist.spec_census();
        let requests: Vec<SynthRequest> = census
            .values()
            .map(|(component, _count)| SynthRequest::new(component.spec().clone()))
            .collect();
        let tickets = service.submit_batch(requests);
        let mut mapping = BTreeMap::new();
        for (key, ticket) in census.into_keys().zip(tickets) {
            let outcome = ticket?.recv()?;
            mapping.insert(key, outcome.design.clone());
        }
        Ok(MappedFlow {
            linked: self,
            mapping,
        })
    }

    /// Like [`map`](Self::map), but through an engine warm-started from
    /// `cache_dir` (the `dtas --cache-dir` flag routes here): a snapshot
    /// from an earlier run answers repeated components from the memo, the
    /// state grown by this mapping is flushed back before returning, and
    /// an incompatible or damaged snapshot silently degrades to a cold
    /// solve.
    ///
    /// # Errors
    ///
    /// [`BridgeError::Synth`] on the first unmappable component and
    /// [`BridgeError::Store`] when the flush-back fails.
    pub fn map_cached(
        self,
        library: CellLibrary,
        cache_dir: impl Into<std::path::PathBuf>,
    ) -> Result<MappedFlow, BridgeError> {
        let engine = Dtas::warm_start(library, cache_dir);
        let mapped = self.map(&engine)?;
        engine.checkpoint().map_err(BridgeError::Store)?;
        Ok(mapped)
    }
}

/// A linked netlist plus the DTAS mapping of each distinct component.
pub struct MappedFlow {
    linked: LinkedFlow,
    mapping: BTreeMap<String, Arc<DesignSet>>,
}

impl MappedFlow {
    /// The mapped-but-still-generic netlist stage (simulation and VHDL
    /// emission remain available).
    pub fn linked(&self) -> &LinkedFlow {
        &self.linked
    }

    /// The closed netlist.
    pub fn netlist(&self) -> &Netlist {
        self.linked.netlist()
    }

    /// Alternative implementations per distinct component specification.
    pub fn mapping(&self) -> &BTreeMap<String, Arc<DesignSet>> {
        &self.mapping
    }

    /// Structural VHDL for the netlist.
    pub fn emit_vhdl(&self) -> String {
        self.linked.emit_vhdl()
    }

    /// See [`LinkedFlow::simulate`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`LinkedFlow::simulate`].
    pub fn simulate(
        &self,
        inputs: &Env,
        done: impl FnMut(&Env) -> bool,
        max_cycles: usize,
    ) -> Result<SimOutcome, BridgeError> {
        self.linked.simulate(inputs, done, max_cycles)
    }

    /// Total area of the smallest alternative of every component, weighted
    /// by instance count — the "cheapest buildable design" number.
    pub fn smallest_area(&self) -> f64 {
        let census = self.linked.netlist.spec_census();
        self.mapping
            .iter()
            .map(|(key, set)| {
                let count = census.get(key).map(|(_, n)| *n).unwrap_or(1);
                set.smallest().map(|a| a.area).unwrap_or(0.0) * count as f64
            })
            .sum()
    }

    /// A per-component mapping table: instance count, smallest-alternative
    /// cost, and alternative count for every distinct specification.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let census = self.linked.netlist.spec_census();
        let mut out = String::new();
        let mut total = 0.0;
        for (key, set) in &self.mapping {
            let count = census.get(key).map(|(_, n)| *n).unwrap_or(1);
            if let Some(best) = set.smallest() {
                let _ = writeln!(
                    out,
                    "  {count} x {key:<40} -> {:>6.1} gates {:>5.1} ns ({} alternatives)",
                    best.area,
                    best.delay,
                    set.alternatives.len()
                );
                total += best.area * count as f64;
            }
        }
        let _ = writeln!(
            out,
            "smallest-design area: {total:.0} equivalent NAND gates"
        );
        out
    }
}

/// Lowered LEGEND generators: the entry stage for generator documents.
#[derive(Debug)]
pub struct LegendFlow {
    lowered: Vec<LoweredGenerator>,
}

impl LegendFlow {
    /// Every lowered generator in document order.
    pub fn generators(&self) -> &[LoweredGenerator] {
        &self.lowered
    }

    /// The first description's lowered generator.
    pub fn generator(&self) -> &LoweredGenerator {
        &self.lowered[0]
    }

    /// The first description's sample-component specification (Figure 2's
    /// 3-bit counter, for the paper's document).
    pub fn sample_spec(&self) -> &ComponentSpec {
        self.lowered[0].sample.spec()
    }

    /// Technology-maps the first description's sample component.
    ///
    /// # Errors
    ///
    /// [`BridgeError::Synth`] when the sample spec cannot be mapped.
    pub fn map(&self, engine: &Dtas) -> Result<Arc<DesignSet>, BridgeError> {
        self.map_spec(engine, self.sample_spec().clone())
    }

    /// Technology-maps an adapted spec (e.g. the sample with a library
    /// -unsupported feature switched off).
    ///
    /// # Errors
    ///
    /// [`BridgeError::Synth`] when the spec cannot be mapped.
    pub fn map_spec(
        &self,
        engine: &Dtas,
        spec: ComponentSpec,
    ) -> Result<Arc<DesignSet>, BridgeError> {
        Ok(engine.run(&spec)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cells::lsi::lsi_logic_subset;
    use rtl_base::bits::Bits;

    #[test]
    fn hls_chain_runs_end_to_end() {
        let flow = Flow::from_hls("entity inc(x: in 8, y: out 8) { y = x + 1; }")
            .unwrap()
            .schedule()
            .unwrap()
            .compile_control()
            .unwrap()
            .link()
            .unwrap();
        let vhdl = flow.emit_vhdl();
        assert!(vhdl.contains("entity inc"));
        let inputs = Env::from([
            ("clk".to_string(), Bits::zero(1)),
            ("x".to_string(), Bits::from_u64(8, 41)),
        ]);
        let outcome = flow
            .simulate(&inputs, |out| out["y"].to_u64() == Some(42), 64)
            .unwrap();
        assert!(outcome.cycles >= 1);
        let mapped = flow.map(&Dtas::new(lsi_logic_subset())).unwrap();
        assert!(mapped.smallest_area() > 0.0);
        assert!(!mapped.mapping().is_empty());
    }

    #[test]
    fn parse_errors_carry_their_stage() {
        let err = Flow::from_hls("entity {").unwrap_err();
        assert!(matches!(err, BridgeError::HlsParse(_)));
        let err = Flow::from_legend("NAME garbage").unwrap_err();
        assert!(matches!(
            err,
            BridgeError::LegendParse(_) | BridgeError::Flow(_)
        ));
    }

    #[test]
    fn simulation_budget_overrun_is_reported() {
        let flow = Flow::from_hls("entity inc(x: in 8, y: out 8) { y = x + 1; }")
            .unwrap()
            .schedule()
            .unwrap()
            .compile_control()
            .unwrap()
            .link()
            .unwrap();
        let inputs = Env::from([
            ("clk".to_string(), Bits::zero(1)),
            ("x".to_string(), Bits::from_u64(8, 1)),
        ]);
        let err = flow.simulate(&inputs, |_| false, 3).unwrap_err();
        assert!(matches!(err, BridgeError::Flow(_)));
    }

    /// Two buffers driving each other: structurally valid, maps fine,
    /// but carries a `DT105` combinational-loop Error finding.
    fn loop_netlist() -> Netlist {
        let lib = genus::stdlib::GenusLibrary::standard();
        let buf = std::sync::Arc::new(lib.buffer(1).unwrap());
        let mut nl = Netlist::new("looped");
        nl.add_net("x", 1).unwrap();
        nl.add_net("y", 1).unwrap();
        let mut b0 = genus::component::Instance::new("b0", buf.clone());
        b0.connect("I", "x");
        b0.connect("O", "y");
        nl.add_instance(b0).unwrap();
        let mut b1 = genus::component::Instance::new("b1", buf);
        b1.connect("I", "y");
        b1.connect("O", "x");
        nl.add_instance(b1).unwrap();
        nl
    }

    #[test]
    fn strict_preflight_refuses_error_findings_default_does_not() {
        let nl = loop_netlist();
        let flow = Flow::from_netlist(nl.clone()).unwrap();
        let report = flow.lint();
        assert!(report.has_errors(), "{report}");

        // Default config: the loop maps anyway (per-component synthesis
        // never walks the net graph).
        let engine = Dtas::new(lsi_logic_subset());
        assert!(!engine.config().strict_preflight);
        let mapped = flow.map(&engine).unwrap();
        assert!(mapped.smallest_area() > 0.0);

        // Opting in refuses the same netlist with the typed error.
        let strict = Dtas::builder(lsi_logic_subset())
            .config(dtas::DtasConfig {
                strict_preflight: true,
                ..dtas::DtasConfig::default()
            })
            .build();
        let Err(err) = Flow::from_netlist(nl).unwrap().map(&strict) else {
            panic!("strict preflight accepted a looped netlist");
        };
        assert_eq!(err.code(), "DT021");
        assert_eq!(err.exit_code(), 2);
        let BridgeError::Lint(report) = err else {
            panic!("expected BridgeError::Lint");
        };
        assert!(report.diagnostics.iter().any(|d| d.code == "DT105"));
    }

    #[test]
    fn bridge_error_codes_are_stable_and_unique() {
        let errs = [
            BridgeError::Emit("x".into()),
            BridgeError::Io("x".into()),
            BridgeError::Flow("x".into()),
            BridgeError::Lint(dtas::LintReport::default()),
        ];
        let codes: Vec<&str> = errs.iter().map(BridgeError::code).collect();
        assert_eq!(codes, vec!["DT015", "DT019", "DT020", "DT021"]);
        for e in &errs[..3] {
            assert_eq!(e.exit_code(), 1);
        }
    }

    #[test]
    fn legend_flow_maps_the_figure2_sample() {
        let flow = Flow::from_legend(legend::figure2::FIGURE2).unwrap();
        assert_eq!(flow.generator().generator.name(), "COUNTER");
        // The LSI subset has no async set/reset flip-flops; adapt the
        // sample spec like the paper's example does.
        let spec = ComponentSpec {
            async_set_reset: false,
            ..flow.sample_spec().clone()
        };
        let set = flow.map_spec(&Dtas::new(lsi_logic_subset()), spec).unwrap();
        assert!(!set.alternatives.is_empty());
    }
}
