//! # hls-rtl-bridge
//!
//! A complete Rust reproduction of Dutt & Kipps, *"Bridging High-Level
//! Synthesis to RTL Technology Libraries"* (UC Irvine TR 91-28 / DAC
//! 1991): the GENUS generic component library, the LEGEND generator
//! description language, and the DTAS functional-synthesis system that
//! maps generic RTL components onto data book cells — plus the
//! surrounding Figure-1 substrates (a high-level synthesis front end, a
//! control compiler, structural VHDL I/O and a verifying RTL simulator).
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here.
//!
//! | crate | paper role |
//! |---|---|
//! | [`genus`] | generic RTL component library (types → generators → components → instances) |
//! | [`legend`] | generator-specification language (Figure 2) |
//! | [`dtas`] | functional decomposition + technology mapping (the core contribution) |
//! | [`cells`] | RTL data book model + the 30-cell LSI-style subset (§6) |
//! | [`hls`] | state scheduling, allocation, binding (Figure 1's HLS box) |
//! | [`controlc`] | control compiler for the state sequencing table |
//! | [`vhdl`] | structural/behavioral VHDL emission and parsing |
//! | [`rtlsim`] | bit-accurate simulation and equivalence checking |
//! | [`rtl_base`] | bit vectors, Pareto fronts, graph utilities |
//!
//! On top of the re-exports, this crate owns the service-grade front
//! door: the [`flow`] module chains every Figure-1 stage behind
//! [`Flow`] with the single error type [`BridgeError`], and the `dtas`
//! binary exposes the same pipeline on the command line.
//!
//! # Quickstart
//!
//! One spec against the data book (the paper's §5 example):
//!
//! ```
//! use hls_rtl_bridge::{cells, dtas, genus, BridgeError};
//!
//! # fn main() -> Result<(), BridgeError> {
//! let engine = dtas::Dtas::new(cells::lsi::lsi_logic_subset());
//! let spec = genus::spec::ComponentSpec::new(genus::kind::ComponentKind::AddSub, 16)
//!     .with_ops(genus::op::OpSet::only(genus::op::Op::Add))
//!     .with_carry_in(true)
//!     .with_carry_out(true);
//! let designs = engine.run(&spec)?;
//! println!("{designs}");
//! # Ok(())
//! # }
//! ```
//!
//! The whole Figure-1 flow through the façade:
//!
//! ```
//! use cells::lsi::lsi_logic_subset;
//! use hls_rtl_bridge::{BridgeError, Flow};
//!
//! # fn main() -> Result<(), BridgeError> {
//! let mapped = Flow::from_hls("entity inc(x: in 8, y: out 8) { y = x + 1; }")?
//!     .schedule()?
//!     .compile_control()?
//!     .link()?
//!     .map(&dtas::Dtas::new(lsi_logic_subset()))?;
//! println!("{}", mapped.report());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for the paper's scenarios (the Figure-3 64-bit ALU,
//! the Figure-2 LEGEND counter, and the full Figure-1 GCD flow) and
//! `EXPERIMENTS.md` for measured-vs-paper results.

pub mod flow;

pub use cells;
pub use controlc;
pub use dtas;
pub use flow::{BridgeError, Flow};
pub use genus;
pub use hls;
pub use legend;
pub use rtl_base;
pub use rtlsim;
pub use vhdl;
