//! # hls-rtl-bridge
//!
//! A complete Rust reproduction of Dutt & Kipps, *"Bridging High-Level
//! Synthesis to RTL Technology Libraries"* (UC Irvine TR 91-28 / DAC
//! 1991): the GENUS generic component library, the LEGEND generator
//! description language, and the DTAS functional-synthesis system that
//! maps generic RTL components onto data book cells — plus the
//! surrounding Figure-1 substrates (a high-level synthesis front end, a
//! control compiler, structural VHDL I/O and a verifying RTL simulator).
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here.
//!
//! | crate | paper role |
//! |---|---|
//! | [`genus`] | generic RTL component library (types → generators → components → instances) |
//! | [`legend`] | generator-specification language (Figure 2) |
//! | [`dtas`] | functional decomposition + technology mapping (the core contribution) |
//! | [`cells`] | RTL data book model + the 30-cell LSI-style subset (§6) |
//! | [`hls`] | state scheduling, allocation, binding (Figure 1's HLS box) |
//! | [`controlc`] | control compiler for the state sequencing table |
//! | [`vhdl`] | structural/behavioral VHDL emission and parsing |
//! | [`rtlsim`] | bit-accurate simulation and equivalence checking |
//! | [`rtl_base`] | bit vectors, Pareto fronts, graph utilities |
//!
//! # Quickstart
//!
//! ```
//! use hls_rtl_bridge::{cells, dtas, genus};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let library = cells::lsi::lsi_logic_subset();
//! let engine = dtas::Dtas::new(library);
//! let spec = genus::spec::ComponentSpec::new(genus::kind::ComponentKind::AddSub, 16)
//!     .with_ops(genus::op::OpSet::only(genus::op::Op::Add))
//!     .with_carry_in(true)
//!     .with_carry_out(true);
//! let designs = engine.synthesize(&spec)?;
//! println!("{designs}");
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for the paper's scenarios (the Figure-3 64-bit ALU,
//! the Figure-2 LEGEND counter, and the full Figure-1 GCD flow) and
//! `EXPERIMENTS.md` for measured-vs-paper results.

pub use cells;
pub use controlc;
pub use dtas;
pub use genus;
pub use hls;
pub use legend;
pub use rtl_base;
pub use rtlsim;
pub use vhdl;
