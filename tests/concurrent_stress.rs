//! Service-shaped stress coverage for the concurrent `Dtas` engine: many
//! threads hammering one shared engine with mixed hot/cold/batch queries
//! must (a) never diverge from serial fresh-engine answers, (b) never
//! serialize the hit path through an exclusive lock, and (c) survive a
//! client panicking mid-solve by rebuilding the poisoned state.

mod common;

use cells::lsi::lsi_logic_subset;
use common::{fingerprint, Fingerprint};
use dtas::{CacheStats, Dtas, DtasConfig, RuleSet, SynthError};
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

fn adder(width: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::AddSub, width)
        .with_ops(OpSet::only(Op::Add))
        .with_carry_in(true)
        .with_carry_out(true)
}

fn alu(width: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::Alu, width)
        .with_ops(Op::paper_alu16())
        .with_carry_in(true)
}

fn mux(width: usize, ways: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::Mux, width).with_inputs(ways)
}

/// N threads of mixed hot/cold/batch traffic against one engine: every
/// answer equals the serial fresh-engine answer for that spec.
#[test]
fn mixed_traffic_stays_bit_identical_to_fresh_engines() {
    let specs: Vec<ComponentSpec> = vec![
        adder(8),
        adder(16),
        adder(32),
        mux(4, 4),
        mux(8, 2),
        alu(16),
    ];
    // Serial reference: one fresh engine per spec.
    let reference: BTreeMap<String, _> = specs
        .iter()
        .map(|spec| {
            let set = Dtas::new(lsi_logic_subset()).run(spec).unwrap();
            (spec.to_string(), fingerprint(&set))
        })
        .collect();

    let shared = Dtas::new(lsi_logic_subset());
    let workers = 8;
    let rounds = 4;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let shared = &shared;
            let specs = &specs;
            let reference = &reference;
            scope.spawn(move || {
                for r in 0..rounds {
                    // Each worker walks the spec list at its own offset, so
                    // hot hits, in-flight waits and cold solves interleave.
                    for k in 0..specs.len() {
                        let spec = &specs[(k + w + r) % specs.len()];
                        let set = shared.run(spec).expect("synthesizes");
                        assert_eq!(
                            &fingerprint(&set),
                            &reference[&spec.to_string()],
                            "worker {w} round {r} diverged for {spec}"
                        );
                    }
                    // Every other round, issue the whole list as one batch.
                    if r % 2 == 0 {
                        let results = shared.run_batch(specs);
                        for (spec, result) in specs.iter().zip(results) {
                            let set = result.expect("batch synthesizes");
                            assert_eq!(
                                &fingerprint(&set),
                                &reference[&spec.to_string()],
                                "worker {w} batch diverged for {spec}"
                            );
                        }
                    }
                }
            });
        }
    });

    let stats = shared.cache_stats();
    // Counter sanity on any host: every call either hit or missed, each
    // distinct spec solved at most a bounded number of times (racing
    // first-callers may solve redundantly in a batch, but never after the
    // memo is warm), and nothing panicked.
    assert!(stats.result_shards > 1);
    assert_eq!(stats.poison_recoveries, 0);
    assert_eq!(stats.cached_results, specs.len());
    let per_worker_calls = rounds * specs.len() + rounds.div_ceil(2) * specs.len();
    assert_eq!(
        stats.hits + stats.misses,
        (workers * per_worker_calls) as u64
    );
    assert!(stats.misses >= specs.len() as u64);
    assert!(stats.hits > 0);
}

/// Once a spec is memoized, hammering it from many threads takes zero
/// exclusive locks on the shared design space — the counter-based proof
/// that hit-path clients do not serialize, valid on any host.
#[test]
fn hot_path_takes_no_exclusive_locks() {
    let engine = Dtas::new(lsi_logic_subset());
    let warm = engine.run(adder(16)).unwrap();
    let baseline = engine.cache_stats();
    let served = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let engine = &engine;
            let warm = &warm;
            let served = &served;
            scope.spawn(move || {
                for _ in 0..50 {
                    let set = engine.run(adder(16)).expect("hit");
                    assert_eq!(set.alternatives.len(), warm.alternatives.len());
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(served.load(Ordering::Relaxed), 200);
    let stats = engine.cache_stats();
    assert_eq!(
        stats.state_exclusive, baseline.state_exclusive,
        "hit-path queries must not take the shared-space write lock"
    );
    assert_eq!(stats.hits, baseline.hits + 200);
    assert_eq!(stats.misses, baseline.misses);
}

/// Distinct cold specs overlap: the exclusive lock is held for expansion
/// only, so the count of exclusive acquisitions stays proportional to the
/// number of cold solves (2 per solve: expand + front write-back), not to
/// wall-clock interleavings.
#[test]
fn cold_queries_bound_their_exclusive_lock_use() {
    let engine = Dtas::new(lsi_logic_subset());
    let cold_specs = [adder(8), mux(4, 4), mux(8, 8), adder(16)];
    std::thread::scope(|scope| {
        for spec in &cold_specs {
            let engine = &engine;
            scope.spawn(move || {
                engine.run(spec).expect("synthesizes");
            });
        }
    });
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, cold_specs.len() as u64);
    // expand + absorb per cold solve; nothing else takes the write lock.
    assert!(
        stats.state_exclusive <= 2 * cold_specs.len() as u64,
        "{stats:?}"
    );
}

/// `clear_cache` racing in-flight cold solves must never corrupt the
/// front store: a reset recycles node ids, so fronts solved against the
/// pre-reset space are dropped (generation guard) instead of absorbed
/// onto unrelated nodes. Whatever the interleaving, every later answer
/// still equals a fresh engine's.
#[test]
fn clear_cache_racing_cold_solves_stays_correct() {
    let specs = [adder(8), adder(16), mux(4, 4), mux(8, 2)];
    let reference: Vec<Fingerprint> = specs
        .iter()
        .map(|s| fingerprint(&Dtas::new(lsi_logic_subset()).run(s).unwrap()))
        .collect();
    let engine = Dtas::new(lsi_logic_subset());
    for round in 0..6 {
        std::thread::scope(|scope| {
            for (spec, expect) in specs.iter().zip(&reference) {
                let engine = &engine;
                scope.spawn(move || {
                    let set = engine.run(spec).expect("synthesizes");
                    assert_eq!(&fingerprint(&set), expect, "{spec}");
                });
            }
            // Reset mid-flight: in-flight solvers must drop (not absorb)
            // fronts keyed by the pre-reset space's node ids.
            let engine = &engine;
            scope.spawn(move || engine.clear_cache());
        });
        // After the dust settles, the (possibly reset, possibly warm)
        // engine answers every spec exactly like a fresh one.
        for (spec, expect) in specs.iter().zip(&reference) {
            let set = engine.run(spec).expect("synthesizes");
            assert_eq!(&fingerprint(&set), expect, "round {round}: {spec}");
        }
    }
    assert_eq!(engine.cache_stats().poison_recoveries, 0);
}

mod poison {
    use super::*;
    use dtas::template::NetlistTemplate;
    use dtas::Rule;

    /// A rule that panics when it sees the marked spec — simulating a
    /// client thread dying while holding the engine's write lock.
    struct PanicOnMarker;

    impl Rule for PanicOnMarker {
        fn name(&self) -> &str {
            "panic-on-marker"
        }
        fn doc(&self) -> &str {
            "test-only: panic mid-expansion for the marker spec"
        }
        fn expand(&self, spec: &ComponentSpec) -> Vec<NetlistTemplate> {
            if spec.style.as_deref() == Some("PANIC_MARKER") {
                panic!("injected rule panic");
            }
            vec![]
        }
    }

    /// A panicking client poisons the state lock; the next caller clears
    /// the poison, rebuilds, and answers correctly (documented recovery
    /// semantics) — no panic propagation, no stale state.
    #[test]
    fn engine_recovers_from_a_poisoned_state_lock() {
        let mut rules = RuleSet::standard().with_lsi_extensions();
        rules.append_library_rules(vec![Box::new(PanicOnMarker)]);
        let engine = Dtas::builder(lsi_logic_subset())
            .rules(rules)
            .config(DtasConfig {
                // Serial expansion so the panic unwinds through the write
                // guard on this thread, not a worker pool.
                threads: Some(1),
                ..DtasConfig::default()
            })
            .build();
        let before = engine.run(adder(16)).unwrap();
        let marker = ComponentSpec::new(ComponentKind::AddSub, 4)
            .with_ops(OpSet::only(Op::Add))
            .with_style("PANIC_MARKER");
        // A front override skips canonicalization (no probe expands the
        // marker early), so the panic unwinds inside the state write
        // lock — the poison scenario this test pins.
        let request = dtas::SynthRequest::new(marker).with_front_cap(8);
        let panicked =
            std::thread::scope(|scope| scope.spawn(|| engine.run(&request)).join().is_err());
        assert!(panicked, "the injected rule panic must surface");
        // A *cold* query touches the poisoned state lock: the engine
        // clears the poison, drops the half-mutated space, and re-solves —
        // bit-identically to a fresh engine.
        let cold = engine.run(mux(4, 4)).expect("recovers");
        let fresh = Dtas::new(lsi_logic_subset()).run(mux(4, 4)).unwrap();
        assert_eq!(fingerprint(&cold), fingerprint(&fresh));
        let stats: CacheStats = engine.cache_stats();
        assert!(
            stats.poison_recoveries >= 1,
            "recovery must be observable: {stats:?}"
        );
        // Memoized results (separate shard locks, not poisoned) survive.
        let after = engine.run(adder(16)).unwrap();
        assert_eq!(fingerprint(&before), fingerprint(&after));
        assert!(matches!(
            engine.run(adder(16)),
            Ok(_) | Err(SynthError::NoImplementation(_))
        ));
    }
}
