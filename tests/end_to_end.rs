//! Figure-1 end-to-end flow: behavioral source → HLS → GENUS netlist +
//! state table → control compiler → closed netlist → cycle-accurate
//! simulation of the synthesized hardware.

use controlc::close_design;
use genus::behavior::Env;
use hls::compile::{compile, Constraints};
use hls::lang::parse_entity;
use rtl_base::bits::Bits;
use rtlsim::{FlatDesign, Simulator};

fn gcd_reference(mut a: u64, mut b: u64) -> u64 {
    while a != b {
        if a > b {
            a -= b;
        } else {
            b -= a;
        }
    }
    a
}

const GCD: &str = "
entity gcd(a_in: in 8, b_in: in 8, r: out 8, done: out 1) {
    var a: 8;
    var b: 8;
    a = a_in;
    b = b_in;
    while (a != b) {
        if (a > b) { a = a - b; } else { b = b - a; }
    }
    r = a;
    done = 1;
}";

fn run_machine(src: &str, inputs: Vec<(&str, u64, usize)>, watch: &str) -> u64 {
    let entity = parse_entity(src).expect("parses");
    let design = compile(&entity, &Constraints::default()).expect("compiles");
    design.netlist.validate().expect("valid netlist");
    let closed = close_design(&design).expect("links");
    let flat = FlatDesign::from_netlist(&closed).expect("flattens");
    let mut sim = Simulator::new(&flat).expect("levelizes");
    let mut env = Env::from([("clk".to_string(), Bits::zero(1))]);
    for (name, v, w) in inputs {
        env.insert(name.to_string(), Bits::from_u64(w, v));
    }
    for _ in 0..4000 {
        let out = sim.step(&env).expect("steps");
        if out["done"].to_u64() == Some(1) {
            return out[watch].to_u64().expect("fits");
        }
    }
    panic!("machine did not assert done");
}

#[test]
fn gcd_machine_matches_reference() {
    for (a, b) in [(48, 36), (36, 48), (7, 13), (100, 100), (255, 5), (1, 255)] {
        let got = run_machine(GCD, vec![("a_in", a, 8), ("b_in", b, 8)], "r");
        assert_eq!(got, gcd_reference(a, b), "gcd({a}, {b})");
    }
}

#[test]
fn sum_of_first_n_machine() {
    // Accumulator with a down-counting loop.
    let src = "
entity sum(n_in: in 8, total: out 8, done: out 1) {
    var i: 8;
    var acc: 8;
    i = n_in;
    acc = 0;
    while (i != 0) {
        acc = acc + i;
        i = i - 1;
    }
    total = acc;
    done = 1;
}";
    for n in [0u64, 1, 5, 10] {
        let got = run_machine(src, vec![("n_in", n, 8)], "total");
        let want = (n * (n + 1) / 2) & 0xff;
        assert_eq!(got, want, "sum(1..={n})");
    }
}

#[test]
fn logic_datapath_machine() {
    // Exercises gate binding and multi-writer register muxing.
    let src = "
entity mix(x: in 8, y: in 8, z: out 8, done: out 1) {
    var t: 8;
    t = x & y;
    t = t | 3;
    t = t ^ x;
    z = ~t;
    done = 1;
}";
    let x = 0b1100_1010u64;
    let y = 0b1010_0110u64;
    let t = ((x & y) | 3) ^ x;
    let want = !t & 0xff;
    assert_eq!(run_machine(src, vec![("x", x, 8), ("y", y, 8)], "z"), want);
}

#[test]
fn datapath_alone_validates_and_emits_vhdl() {
    let entity = parse_entity(GCD).expect("parses");
    let design = compile(&entity, &Constraints::default()).expect("compiles");
    let text = vhdl::emit_netlist(&design.netlist);
    let parsed = vhdl::parse_structural(&text).expect("round-trips");
    assert_eq!(parsed.instances.len(), design.netlist.instances().len());
    assert_eq!(parsed.name, "gcd");
}
