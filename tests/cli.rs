//! Integration coverage for the `dtas` CLI binary: `map` prints a
//! trade-off table, `flow` runs the full pipeline and emits VHDL, and
//! errors land on stderr with a nonzero exit code.

use std::path::PathBuf;
use std::process::Command;

fn dtas() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dtas"))
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dtas_cli_{}_{name}", std::process::id()))
}

#[test]
fn map_prints_the_tradeoff_table() {
    let out = dtas()
        .args(["map", "--spec", "add:16:cin:cout"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ADDSUB.16+CI+CO(ADD)"), "{stdout}");
    assert!(stdout.contains("area"), "{stdout}");
    assert!(stdout.contains("add-cla-groups"), "{stdout}");
}

#[test]
fn map_accepts_an_external_book_file() {
    let book = temp_path("lsi.book");
    std::fs::write(&book, cells::lsi::LSI_DATABOOK).expect("writes book");
    let out = dtas()
        .args(["map", "--spec", "mux:4:n=4", "--book"])
        .arg(&book)
        .output()
        .expect("runs");
    let _ = std::fs::remove_file(&book);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MUX.4[4]"), "{stdout}");
}

#[test]
fn map_pareto_and_cap_shrink_the_table() {
    let full = dtas()
        .args(["map", "--spec", "add:16:cin:cout"])
        .output()
        .expect("runs");
    assert!(full.status.success(), "{full:?}");
    let capped = dtas()
        .args(["map", "--spec", "add:16:cin:cout", "--pareto", "--cap", "2"])
        .output()
        .expect("runs");
    assert!(capped.status.success(), "{capped:?}");
    let count = |raw: &[u8]| {
        String::from_utf8_lossy(raw)
            .lines()
            .filter(|l| l.starts_with(|c: char| c.is_ascii_digit()))
            .count()
    };
    assert!(count(&capped.stdout) <= 2);
    assert!(count(&full.stdout) > count(&capped.stdout));
}

#[test]
fn flow_runs_the_pipeline_and_emits_vhdl() {
    let entity = temp_path("inc.ent");
    let vhd = temp_path("inc.vhd");
    std::fs::write(&entity, "entity inc(x: in 8, y: out 8) { y = x + 1; }").expect("writes");
    let out = dtas()
        .args(["flow", "--hls"])
        .arg(&entity)
        .arg("--emit-vhdl")
        .arg(&vhd)
        .output()
        .expect("runs");
    let _ = std::fs::remove_file(&entity);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("controller:"), "{stdout}");
    assert!(stdout.contains("technology mapping:"), "{stdout}");
    assert!(stdout.contains("smallest-design area:"), "{stdout}");
    let vhdl = std::fs::read_to_string(&vhd).expect("vhdl written");
    let _ = std::fs::remove_file(&vhd);
    assert!(vhdl.contains("entity inc is"), "{vhdl}");
}

#[test]
fn errors_exit_nonzero_with_stage_context() {
    let out = dtas()
        .args(["map", "--spec", "frobnicator:8"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown component kind"), "{stderr}");

    let out = dtas()
        .args(["flow", "--hls", "/nonexistent/path.ent"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("io:"));

    let out = dtas().arg("transmogrify").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn help_prints_usage() {
    for args in [vec!["help"], vec![]] {
        let out = dtas().args(&args).output().expect("runs");
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("USAGE"), "{stdout}");
        assert!(stdout.contains("dtas map"), "{stdout}");
    }
}

#[test]
fn map_cache_dir_warm_starts_a_second_process() {
    let dir = temp_path("warm_cache");
    let _ = std::fs::remove_dir_all(&dir);
    let run = || {
        let out = dtas()
            .args(["map", "--spec", "add:16:cin:cout", "--cache-dir"])
            .arg(&dir)
            .arg("--stats")
            .output()
            .expect("runs");
        assert!(out.status.success(), "{out:?}");
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let first = run();
    assert!(first.contains("misses=1"), "{first}");
    assert!(first.contains("snapshot_loads=0"), "{first}");
    assert!(first.contains("persisted_results=1"), "{first}");

    // The second process answers from the persisted snapshot...
    let second = run();
    assert!(second.contains("hits=1 misses=0"), "{second}");
    assert!(second.contains("snapshot_loads=1"), "{second}");
    // ...with the identical trade-off table.
    let table = |s: &str| {
        s.lines()
            .take_while(|l| !l.starts_with("cache:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(table(&first), table(&second));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flow_accepts_a_cache_dir() {
    let dir = temp_path("flow_cache");
    let entity = temp_path("inc_cached.ent");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::write(&entity, "entity inc(x: in 8, y: out 8) { y = x + 1; }").expect("writes");
    for _ in 0..2 {
        let out = dtas()
            .args(["flow", "--hls"])
            .arg(&entity)
            .arg("--cache-dir")
            .arg(&dir)
            .output()
            .expect("runs");
        assert!(out.status.success(), "{out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("technology mapping:"), "{stdout}");
    }
    // The flow flushed a snapshot for the second run to load.
    let snapshots = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
        .count();
    assert_eq!(snapshots, 1);
    let _ = std::fs::remove_file(&entity);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn map_queue_depth_routes_through_the_service() {
    let out = dtas()
        .args([
            "map",
            "--spec",
            "add:16:cin:cout",
            "--queue-depth",
            "4",
            "--stats",
        ])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Same trade-off table as the direct path…
    assert!(stdout.contains("ADDSUB.16+CI+CO(ADD)"), "{stdout}");
    // …plus the service accounting line next to the cache/store lines.
    assert!(
        stdout.contains("service: admitted=1 completed=1 rejected=0 shed=0"),
        "{stdout}"
    );
    assert!(stdout.contains("cache: hits="), "{stdout}");
}

#[test]
fn bench_load_reports_throughput_and_sheds_when_undersized() {
    let out = dtas()
        .args([
            "bench-load",
            "--clients",
            "2",
            "--requests",
            "50",
            "--queue-depth",
            "16",
        ])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("ok=100 overloaded=0 shed=0 failed=0"),
        "{stdout}"
    );
    assert!(stdout.contains("throughput: completed_qps="), "{stdout}");
    assert!(stdout.contains("wait: p50_us="), "{stdout}");

    // An undersized ShedOldest queue must shed but resolve everything.
    let out = dtas()
        .args([
            "bench-load",
            "--clients",
            "2",
            "--requests",
            "200",
            "--queue-depth",
            "1",
            "--workers",
            "1",
            "--admission",
            "shed",
        ])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let service_line = stdout
        .lines()
        .find(|l| l.starts_with("service:"))
        .expect("service stats line");
    assert!(!service_line.contains("shed=0"), "{service_line}");
}
