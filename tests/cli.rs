//! Integration coverage for the `dtas` CLI binary: `map` prints a
//! trade-off table, `flow` runs the full pipeline and emits VHDL,
//! `--format json` emits exactly one machine-readable document with a
//! pinned key schema, `serve`/`--connect` round-trip over a real
//! socket, and errors land on stderr with a nonzero exit code.
//!
//! The JSON contract tests parse real output with the workspace's
//! hand-rolled `bench::json` parser instead of substring matching, so a
//! malformed document fails loudly.

use bench::json::Json;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn dtas() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dtas"))
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dtas_cli_{}_{name}", std::process::id()))
}

#[test]
fn map_prints_the_tradeoff_table() {
    let out = dtas()
        .args(["map", "--spec", "add:16:cin:cout"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ADDSUB.16+CI+CO(ADD)"), "{stdout}");
    assert!(stdout.contains("area"), "{stdout}");
    assert!(stdout.contains("add-cla-groups"), "{stdout}");
}

#[test]
fn map_accepts_an_external_book_file() {
    let book = temp_path("lsi.book");
    std::fs::write(&book, cells::lsi::LSI_DATABOOK).expect("writes book");
    let out = dtas()
        .args(["map", "--spec", "mux:4:n=4", "--book"])
        .arg(&book)
        .output()
        .expect("runs");
    let _ = std::fs::remove_file(&book);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MUX.4[4]"), "{stdout}");
}

#[test]
fn map_pareto_and_cap_shrink_the_table() {
    let full = dtas()
        .args(["map", "--spec", "add:16:cin:cout"])
        .output()
        .expect("runs");
    assert!(full.status.success(), "{full:?}");
    let capped = dtas()
        .args(["map", "--spec", "add:16:cin:cout", "--pareto", "--cap", "2"])
        .output()
        .expect("runs");
    assert!(capped.status.success(), "{capped:?}");
    let count = |raw: &[u8]| {
        String::from_utf8_lossy(raw)
            .lines()
            .filter(|l| l.starts_with(|c: char| c.is_ascii_digit()))
            .count()
    };
    assert!(count(&capped.stdout) <= 2);
    assert!(count(&full.stdout) > count(&capped.stdout));
}

#[test]
fn flow_runs_the_pipeline_and_emits_vhdl() {
    let entity = temp_path("inc.ent");
    let vhd = temp_path("inc.vhd");
    std::fs::write(&entity, "entity inc(x: in 8, y: out 8) { y = x + 1; }").expect("writes");
    let out = dtas()
        .args(["flow", "--hls"])
        .arg(&entity)
        .arg("--emit-vhdl")
        .arg(&vhd)
        .output()
        .expect("runs");
    let _ = std::fs::remove_file(&entity);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("controller:"), "{stdout}");
    assert!(stdout.contains("technology mapping:"), "{stdout}");
    assert!(stdout.contains("smallest-design area:"), "{stdout}");
    let vhdl = std::fs::read_to_string(&vhd).expect("vhdl written");
    let _ = std::fs::remove_file(&vhd);
    assert!(vhdl.contains("entity inc is"), "{vhdl}");
}

#[test]
fn errors_exit_nonzero_with_stage_context() {
    let out = dtas()
        .args(["map", "--spec", "frobnicator:8"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown component kind"), "{stderr}");

    let out = dtas()
        .args(["flow", "--hls", "/nonexistent/path.ent"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("io:"));

    let out = dtas().arg("transmogrify").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn help_prints_usage() {
    for args in [vec!["help"], vec![]] {
        let out = dtas().args(&args).output().expect("runs");
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("USAGE"), "{stdout}");
        assert!(stdout.contains("dtas map"), "{stdout}");
    }
}

#[test]
fn map_cache_dir_warm_starts_a_second_process() {
    let dir = temp_path("warm_cache");
    let _ = std::fs::remove_dir_all(&dir);
    let run = || {
        let out = dtas()
            .args(["map", "--spec", "add:16:cin:cout", "--cache-dir"])
            .arg(&dir)
            .arg("--stats")
            .output()
            .expect("runs");
        assert!(out.status.success(), "{out:?}");
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let first = run();
    assert!(first.contains("misses=1"), "{first}");
    assert!(first.contains("snapshot_loads=0"), "{first}");
    assert!(first.contains("persisted_results=1"), "{first}");

    // The second process answers from the persisted snapshot...
    let second = run();
    assert!(second.contains("hits=1 misses=0"), "{second}");
    assert!(second.contains("snapshot_loads=1"), "{second}");
    // ...with the identical trade-off table.
    let table = |s: &str| {
        s.lines()
            .take_while(|l| !l.starts_with("cache:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(table(&first), table(&second));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flow_accepts_a_cache_dir() {
    let dir = temp_path("flow_cache");
    let entity = temp_path("inc_cached.ent");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::write(&entity, "entity inc(x: in 8, y: out 8) { y = x + 1; }").expect("writes");
    for _ in 0..2 {
        let out = dtas()
            .args(["flow", "--hls"])
            .arg(&entity)
            .arg("--cache-dir")
            .arg(&dir)
            .output()
            .expect("runs");
        assert!(out.status.success(), "{out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("technology mapping:"), "{stdout}");
    }
    // The flow flushed a base segment for the second run to load.
    let snapshots = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "base"))
        .count();
    assert_eq!(snapshots, 1);
    let _ = std::fs::remove_file(&entity);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn map_queue_depth_routes_through_the_service() {
    let out = dtas()
        .args([
            "map",
            "--spec",
            "add:16:cin:cout",
            "--queue-depth",
            "4",
            "--stats",
        ])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Same trade-off table as the direct path…
    assert!(stdout.contains("ADDSUB.16+CI+CO(ADD)"), "{stdout}");
    // …plus the service accounting line next to the cache/store lines.
    assert!(
        stdout.contains("service: admitted=1 completed=1 rejected=0 shed=0"),
        "{stdout}"
    );
    assert!(stdout.contains("cache: hits="), "{stdout}");
    // The incremental-engine counters ride along in the stats block.
    assert!(stdout.contains("incremental: canonical_hits="), "{stdout}");
}

#[test]
fn bench_load_reports_throughput_and_sheds_when_undersized() {
    let out = dtas()
        .args([
            "bench-load",
            "--clients",
            "2",
            "--requests",
            "50",
            "--queue-depth",
            "16",
        ])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("ok=100 overloaded=0 shed=0 failed=0"),
        "{stdout}"
    );
    assert!(stdout.contains("throughput: completed_qps="), "{stdout}");
    assert!(stdout.contains("wait: p50_us="), "{stdout}");

    // An undersized ShedOldest queue must shed but resolve everything.
    let out = dtas()
        .args([
            "bench-load",
            "--clients",
            "2",
            "--requests",
            "200",
            "--queue-depth",
            "1",
            "--workers",
            "1",
            "--admission",
            "shed",
        ])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let service_line = stdout
        .lines()
        .find(|l| l.starts_with("service:"))
        .expect("service stats line");
    assert!(!service_line.contains("shed=0"), "{service_line}");
}

// ---------------------------------------------------------------------
// --format json contract: one parseable document, pinned key schema,
// nothing else on stdout.

/// Runs the CLI, asserts success and exactly one stdout line, and
/// parses that line as JSON.
fn run_json(args: &[&str]) -> Json {
    let out = dtas().args(args).output().expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut lines = stdout.lines();
    let doc = lines.next().expect("one line of JSON");
    assert_eq!(
        lines.next(),
        None,
        "--format json must print nothing else on stdout: {stdout}"
    );
    Json::parse(doc).unwrap_or_else(|e| panic!("invalid JSON ({e}): {doc}"))
}

#[test]
fn map_format_json_has_the_pinned_schema() {
    let doc = run_json(&["map", "--spec", "add:16:cin:cout", "--format", "json"]);
    assert_eq!(
        doc.at(&["schema"]).and_then(Json::str_value),
        Some("dtas-map/1")
    );
    assert_eq!(
        doc.at(&["spec"]).and_then(Json::str_value),
        Some("ADDSUB.16+CI+CO(ADD)")
    );
    assert_eq!(
        doc.at(&["library", "name"]).and_then(Json::str_value),
        Some("lsi_lma9k_subset")
    );
    assert_eq!(
        doc.at(&["library", "cells"]).and_then(Json::num),
        Some(30.0)
    );

    let alternatives = doc.get("alternatives").and_then(Json::arr).expect("array");
    assert!(!alternatives.is_empty());
    for alt in alternatives {
        assert!(alt.get("area").and_then(Json::num).expect("area") > 0.0);
        assert!(alt.get("delay").and_then(Json::num).expect("delay") > 0.0);
        assert!(!alt
            .get("label")
            .and_then(Json::str_value)
            .expect("label")
            .is_empty());
        let cells = alt.get("cells").and_then(Json::arr).expect("cells array");
        assert!(!cells.is_empty());
        for cell in cells {
            assert!(cell.get("cell").and_then(Json::str_value).is_some());
            assert!(cell.get("count").and_then(Json::num).expect("count") >= 1.0);
        }
    }

    for key in [
        "unconstrained_size",
        "unconstrained_log10",
        "spec_nodes",
        "impl_choices",
        "truncated_combinations",
    ] {
        assert!(
            doc.at(&["design_space", key]).and_then(Json::num).is_some(),
            "design_space.{key} missing"
        );
    }
    // uniform_size is number-or-null but the key must exist.
    assert!(doc.at(&["design_space", "uniform_size"]).is_some());

    // One cold query: the cache block must say exactly that.
    assert_eq!(doc.at(&["cache", "hits"]).and_then(Json::num), Some(0.0));
    assert_eq!(doc.at(&["cache", "misses"]).and_then(Json::num), Some(1.0));
}

#[test]
fn map_format_json_agrees_with_the_human_table() {
    // The JSON document and the human run must describe the same
    // alternatives: same count as the table's numbered rows.
    let doc = run_json(&["map", "--spec", "add:8:cin", "--format", "json"]);
    let table = dtas()
        .args(["map", "--spec", "add:8:cin"])
        .output()
        .expect("runs");
    assert!(table.status.success());
    let rows = String::from_utf8_lossy(&table.stdout)
        .lines()
        .filter(|l| l.starts_with(|c: char| c.is_ascii_digit()))
        .count();
    let alternatives = doc.get("alternatives").and_then(Json::arr).expect("array");
    assert_eq!(alternatives.len(), rows);
}

#[test]
fn flow_format_json_has_the_pinned_schema() {
    let entity = temp_path("inc_json.ent");
    std::fs::write(&entity, "entity inc(x: in 8, y: out 8) { y = x + 1; }").expect("writes");
    let doc = run_json(&[
        "flow",
        "--hls",
        entity.to_str().expect("utf-8 path"),
        "--format",
        "json",
    ]);
    let _ = std::fs::remove_file(&entity);
    assert_eq!(
        doc.at(&["schema"]).and_then(Json::str_value),
        Some("dtas-flow/1")
    );
    for key in ["states", "state_bits", "cubes", "literals"] {
        let n = doc
            .at(&["controller", key])
            .and_then(Json::num)
            .unwrap_or_else(|| panic!("controller.{key} missing"));
        assert!(n >= 0.0, "controller.{key} = {n}");
    }
    assert!(
        doc.at(&["controller", "states"])
            .and_then(Json::num)
            .expect("states")
            >= 2.0
    );
    let components = doc.get("components").and_then(Json::arr).expect("array");
    assert!(!components.is_empty());
    for component in components {
        assert!(component
            .get("instance")
            .and_then(Json::str_value)
            .is_some());
        assert!(component.get("spec").and_then(Json::str_value).is_some());
        assert!(component.get("alternatives").and_then(Json::arr).is_some());
        assert!(component
            .at(&["design_space", "unconstrained_size"])
            .is_some());
    }
    assert!(doc.get("smallest_area").and_then(Json::num).expect("area") > 0.0);
}

#[test]
fn bad_format_values_are_rejected() {
    let out = dtas()
        .args(["map", "--spec", "add:4", "--format", "yaml"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --format"));
}

// ---------------------------------------------------------------------
// serve / bench-load --connect over a real loopback socket.

#[test]
fn serve_answers_bench_load_connect_and_drains_on_stdin_eof() {
    let mut server = dtas()
        .args(["serve", "--port", "0", "--queue-depth", "128"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut stdout = BufReader::new(server.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("reads the bind line");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line}"))
        .trim()
        .to_string();

    let load = dtas()
        .args([
            "bench-load",
            "--clients",
            "2",
            "--requests",
            "20",
            "--connect",
            &addr,
            "--stats",
        ])
        .output()
        .expect("bench-load runs");
    assert!(load.status.success(), "{load:?}");
    let load_out = String::from_utf8_lossy(&load.stdout);
    assert!(
        load_out.contains("ok=40 overloaded=0 shed=0 failed=0"),
        "{load_out}"
    );
    assert!(
        load_out.contains("throughput: completed_qps="),
        "{load_out}"
    );
    assert!(load_out.contains("rtt: p50_us="), "{load_out}");
    // The server-measured counters, fetched over the wire.
    assert!(load_out.contains("service: admitted="), "{load_out}");
    assert!(
        load_out.contains("lanes: interactive_samples="),
        "{load_out}"
    );
    assert!(load_out.contains("cache: hits="), "{load_out}");

    // Closing stdin is the drain signal; the server prints its final
    // counters and exits 0.
    drop(server.stdin.take());
    let status = server.wait().expect("serve exits");
    assert!(status.success(), "serve exited with {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stdout, &mut rest).expect("reads final stats");
    assert!(rest.contains("service: admitted="), "{rest}");
    assert!(rest.contains("lanes: interactive_samples="), "{rest}");
    assert!(rest.contains("cache: hits="), "{rest}");
}

#[test]
fn connect_rejects_server_side_sizing_flags() {
    let out = dtas()
        .args([
            "bench-load",
            "--connect",
            "127.0.0.1:1",
            "--queue-depth",
            "4",
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("sizes the server"),
        "{out:?}"
    );
}

#[test]
fn lint_format_json_has_the_pinned_schema_when_clean() {
    // No targets given: the shipped databook and rule base self-lint,
    // and both must be clean.
    let doc = run_json(&["lint", "--format", "json"]);
    assert_eq!(
        doc.at(&["schema"]).and_then(Json::str_value),
        Some("dtas-lint/1")
    );
    let targets = doc.at(&["targets"]).and_then(Json::arr).expect("targets");
    assert_eq!(targets.len(), 2);
    assert_eq!(
        targets[0].at(&["kind"]).and_then(Json::str_value),
        Some("databook")
    );
    assert_eq!(
        targets[0].at(&["name"]).and_then(Json::str_value),
        Some("lsi_lma9k_subset")
    );
    assert_eq!(
        targets[1].at(&["kind"]).and_then(Json::str_value),
        Some("rules")
    );
    assert_eq!(
        doc.at(&["findings"]).and_then(Json::arr).map(<[Json]>::len),
        Some(0)
    );
    for counter in ["error", "warn", "info"] {
        assert_eq!(doc.at(&["counts", counter]).and_then(Json::num), Some(0.0));
    }
    assert_eq!(doc.at(&["max_severity"]), Some(&Json::Null));
}

#[test]
fn lint_reports_errors_with_exit_code_two() {
    // The text parser accepts a negative CARRY arc; the lint must not.
    let book = temp_path("bad_carry.book");
    std::fs::write(
        &book,
        "LIBRARY bad_carry\nCELL BADC ADDSUB W 2 OPS ADD CI CO AREA 1 DELAY 1 CARRY -1\n",
    )
    .expect("writes book");
    let out = dtas()
        .args(["lint", "--format", "json", "--book"])
        .arg(&book)
        .output()
        .expect("runs");
    let _ = std::fs::remove_file(&book);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let doc = Json::parse(
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .next()
            .expect("json"),
    )
    .expect("valid JSON");
    assert_eq!(
        doc.at(&["max_severity"]).and_then(Json::str_value),
        Some("error")
    );
    let findings = doc.at(&["findings"]).and_then(Json::arr).expect("findings");
    assert!(
        findings
            .iter()
            .any(|f| f.at(&["code"]).and_then(Json::str_value) == Some("DT301")),
        "{findings:?}"
    );
}

#[test]
fn lint_reports_warnings_with_exit_code_one() {
    // ND2W is dominated by ND2 on every axis: a warning, not an error.
    let book = temp_path("dominated.book");
    std::fs::write(
        &book,
        "LIBRARY dominated\n\
         CELL ND2 GATE_NAND W 1 N 2 AREA 1.0 DELAY 0.7\n\
         CELL ND2W GATE_NAND W 1 N 2 AREA 2.0 DELAY 0.9\n",
    )
    .expect("writes book");
    let out = dtas()
        .args(["lint", "--format", "json", "--book"])
        .arg(&book)
        .output()
        .expect("runs");
    let _ = std::fs::remove_file(&book);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let doc = Json::parse(
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .next()
            .expect("json"),
    )
    .expect("valid JSON");
    assert_eq!(
        doc.at(&["max_severity"]).and_then(Json::str_value),
        Some("warning")
    );
    let findings = doc.at(&["findings"]).and_then(Json::arr).expect("findings");
    assert!(
        findings
            .iter()
            .any(|f| f.at(&["code"]).and_then(Json::str_value) == Some("DT302")),
        "{findings:?}"
    );
}

#[test]
fn lint_accepts_hls_and_legend_targets() {
    let out = dtas()
        .args([
            "lint",
            "--hls",
            "examples/gcd.ent",
            "--legend",
            "examples/counter.legend",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("netlist examples/gcd.ent: clean"),
        "{stdout}"
    );
    assert!(
        stdout.contains("legend examples/counter.legend: clean"),
        "{stdout}"
    );
}

#[test]
fn lint_errors_carry_stable_codes_on_stderr() {
    let out = dtas()
        .args(["lint", "--hls", "/nonexistent/missing.ent"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("dtas: error["), "{stderr}");
}

// ---------------------------------------------------------------------
// cache: inventory + GC over a shared --cache-dir.

/// Seeds `dir` with one warm-start chain (one base segment) and returns
/// the base file's path.
fn seed_cache_dir(dir: &PathBuf) -> PathBuf {
    let _ = std::fs::remove_dir_all(dir);
    let out = dtas()
        .args(["map", "--spec", "add:16:cin:cout", "--cache-dir"])
        .arg(dir)
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    std::fs::read_dir(dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "base"))
        .expect("a base segment was flushed")
}

#[test]
fn cache_lists_keys_and_exits_zero_on_an_empty_dir() {
    let dir = temp_path("cache_list");
    seed_cache_dir(&dir);
    let out = dtas()
        .args(["cache", "--cache-dir"])
        .arg(&dir)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cache: 1 key(s)"), "{stdout}");
    assert!(stdout.contains("lib="), "{stdout}");
    assert!(stdout.contains("gen=1"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);

    // A missing directory is an empty inventory, not an error.
    let out = dtas()
        .args(["cache", "--cache-dir"])
        .arg(&dir)
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("cache: 0 key(s)"),
        "{out:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_format_json_has_the_pinned_schema() {
    let dir = temp_path("cache_json");
    seed_cache_dir(&dir);
    let doc = run_json(&[
        "cache",
        "--cache-dir",
        dir.to_str().expect("utf-8 path"),
        "--format",
        "json",
    ]);
    assert_eq!(
        doc.at(&["schema"]).and_then(Json::str_value),
        Some("dtas-cache/1")
    );
    assert!(doc.get("dir").and_then(Json::str_value).is_some());
    let keys = doc.get("keys").and_then(Json::arr).expect("keys array");
    assert_eq!(keys.len(), 1);
    let key = &keys[0];
    for fp in ["library", "rules", "config"] {
        let hex = key.get(fp).and_then(Json::str_value).expect(fp);
        assert_eq!(hex.len(), 16, "{fp}: {hex}");
    }
    assert_eq!(key.get("current_format"), Some(&Json::Bool(true)));
    assert_eq!(key.get("generation").and_then(Json::num), Some(1.0));
    assert!(key.get("base_bytes").and_then(Json::num).expect("bytes") > 0.0);
    assert_eq!(key.get("delta_count").and_then(Json::num), Some(0.0));
    for k in ["delta_bytes", "total_bytes", "age_secs", "format_version"] {
        assert!(key.get(k).and_then(Json::num).is_some(), "{k} missing");
    }
    // No --gc: the gc block is explicitly null, not absent.
    assert!(matches!(doc.get("gc"), Some(Json::Null)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_gc_is_a_dry_run_unless_applied() {
    let dir = temp_path("cache_gc");
    let base = seed_cache_dir(&dir);
    // A superseded generation — exactly what a crash between publish and
    // prune leaves behind.
    let stale = dir.join(
        base.file_name()
            .and_then(|n| n.to_str())
            .expect("name")
            .replace("-g00000001.base", "-g00000000.base"),
    );
    assert_ne!(stale, base);
    std::fs::copy(&base, &stale).expect("copies");

    let doc = run_json(&[
        "cache",
        "--cache-dir",
        dir.to_str().expect("utf-8 path"),
        "--gc",
        "--format",
        "json",
    ]);
    assert_eq!(doc.at(&["gc", "applied"]), Some(&Json::Bool(false)));
    assert!(matches!(
        doc.at(&["gc", "reclaimed_bytes"]),
        Some(Json::Null)
    ));
    assert!(
        doc.at(&["gc", "reclaimable_bytes"])
            .and_then(Json::num)
            .expect("bytes")
            > 0.0
    );
    let files = doc.at(&["gc", "files"]).and_then(Json::arr).expect("files");
    assert_eq!(files.len(), 1);
    assert_eq!(
        files[0].get("reason").and_then(Json::str_value),
        Some("stale-generation")
    );
    assert!(stale.exists(), "dry run must not delete");

    let doc = run_json(&[
        "cache",
        "--cache-dir",
        dir.to_str().expect("utf-8 path"),
        "--gc",
        "--apply",
        "--format",
        "json",
    ]);
    assert_eq!(doc.at(&["gc", "applied"]), Some(&Json::Bool(true)));
    assert!(
        doc.at(&["gc", "reclaimed_bytes"])
            .and_then(Json::num)
            .expect("bytes")
            > 0.0
    );
    assert!(!stale.exists(), "--apply deletes the planned files");
    assert!(base.exists(), "the live chain survives");

    // The surviving chain still warm-starts a third process.
    let out = dtas()
        .args(["map", "--spec", "add:16:cin:cout", "--cache-dir"])
        .arg(&dir)
        .arg("--stats")
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("snapshot_loads=1"), "{stdout}");
    assert!(stdout.contains("hits=1 misses=0"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_flag_misuse_exits_one() {
    for args in [
        vec!["cache"],                                                  // missing --cache-dir
        vec!["cache", "--cache-dir", "/tmp/x", "--apply"],              // --apply without --gc
        vec!["cache", "--cache-dir", "/tmp/x", "--max-age-secs", "60"], // retention without --gc
        vec!["cache", "--cache-dir", "/tmp/x", "--format", "yaml"],
    ] {
        let out = dtas().args(&args).output().expect("runs");
        assert_eq!(out.status.code(), Some(1), "{args:?}: {out:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("dtas: error["),
            "{args:?}: {out:?}"
        );
    }
}
