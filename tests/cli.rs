//! Integration coverage for the `dtas` CLI binary: `map` prints a
//! trade-off table, `flow` runs the full pipeline and emits VHDL, and
//! errors land on stderr with a nonzero exit code.

use std::path::PathBuf;
use std::process::Command;

fn dtas() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dtas"))
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dtas_cli_{}_{name}", std::process::id()))
}

#[test]
fn map_prints_the_tradeoff_table() {
    let out = dtas()
        .args(["map", "--spec", "add:16:cin:cout"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ADDSUB.16+CI+CO(ADD)"), "{stdout}");
    assert!(stdout.contains("area"), "{stdout}");
    assert!(stdout.contains("add-cla-groups"), "{stdout}");
}

#[test]
fn map_accepts_an_external_book_file() {
    let book = temp_path("lsi.book");
    std::fs::write(&book, cells::lsi::LSI_DATABOOK).expect("writes book");
    let out = dtas()
        .args(["map", "--spec", "mux:4:n=4", "--book"])
        .arg(&book)
        .output()
        .expect("runs");
    let _ = std::fs::remove_file(&book);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MUX.4[4]"), "{stdout}");
}

#[test]
fn map_pareto_and_cap_shrink_the_table() {
    let full = dtas()
        .args(["map", "--spec", "add:16:cin:cout"])
        .output()
        .expect("runs");
    assert!(full.status.success(), "{full:?}");
    let capped = dtas()
        .args(["map", "--spec", "add:16:cin:cout", "--pareto", "--cap", "2"])
        .output()
        .expect("runs");
    assert!(capped.status.success(), "{capped:?}");
    let count = |raw: &[u8]| {
        String::from_utf8_lossy(raw)
            .lines()
            .filter(|l| l.starts_with(|c: char| c.is_ascii_digit()))
            .count()
    };
    assert!(count(&capped.stdout) <= 2);
    assert!(count(&full.stdout) > count(&capped.stdout));
}

#[test]
fn flow_runs_the_pipeline_and_emits_vhdl() {
    let entity = temp_path("inc.ent");
    let vhd = temp_path("inc.vhd");
    std::fs::write(&entity, "entity inc(x: in 8, y: out 8) { y = x + 1; }").expect("writes");
    let out = dtas()
        .args(["flow", "--hls"])
        .arg(&entity)
        .arg("--emit-vhdl")
        .arg(&vhd)
        .output()
        .expect("runs");
    let _ = std::fs::remove_file(&entity);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("controller:"), "{stdout}");
    assert!(stdout.contains("technology mapping:"), "{stdout}");
    assert!(stdout.contains("smallest-design area:"), "{stdout}");
    let vhdl = std::fs::read_to_string(&vhd).expect("vhdl written");
    let _ = std::fs::remove_file(&vhd);
    assert!(vhdl.contains("entity inc is"), "{vhdl}");
}

#[test]
fn errors_exit_nonzero_with_stage_context() {
    let out = dtas()
        .args(["map", "--spec", "frobnicator:8"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown component kind"), "{stderr}");

    let out = dtas()
        .args(["flow", "--hls", "/nonexistent/path.ent"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("io:"));

    let out = dtas().arg("transmogrify").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn help_prints_usage() {
    for args in [vec!["help"], vec![]] {
        let out = dtas().args(&args).output().expect("runs");
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("USAGE"), "{stdout}");
        assert!(stdout.contains("dtas map"), "{stdout}");
    }
}
