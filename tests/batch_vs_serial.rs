//! `Dtas::run_batch` is a pure batching optimization: for any sequence
//! of specifications (duplicates and unmappable specs included) it must
//! agree slot-for-slot with the per-spec `run` loop it replaced — same
//! alternatives bit-for-bit, same errors.

mod common;

use cells::lsi::lsi_logic_subset;
use common::fingerprint;
use dtas::{DesignSet, Dtas, SynthError};
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use proptest::prelude::*;

fn pool() -> Vec<ComponentSpec> {
    let adder = |w: usize| {
        ComponentSpec::new(ComponentKind::AddSub, w)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true)
    };
    vec![
        adder(4),
        adder(8),
        adder(12),
        ComponentSpec::new(ComponentKind::Mux, 4).with_inputs(4),
        ComponentSpec::new(ComponentKind::Mux, 1).with_inputs(2),
        ComponentSpec::new(ComponentKind::Comparator, 4)
            .with_ops([Op::Eq, Op::Lt, Op::Gt].into_iter().collect()),
        ComponentSpec::new(ComponentKind::Register, 4).with_ops(OpSet::only(Op::Load)),
        // Unmappable: no stack rules, no stack cells.
        ComponentSpec::new(ComponentKind::StackFifo, 8)
            .with_width2(4)
            .with_ops([Op::Push, Op::Pop].into_iter().collect())
            .with_style("STACK"),
    ]
}

fn assert_slot_agreement(
    spec: &ComponentSpec,
    batch: &Result<std::sync::Arc<DesignSet>, SynthError>,
    serial: &Result<std::sync::Arc<DesignSet>, SynthError>,
) {
    match (batch, serial) {
        (Ok(b), Ok(s)) => {
            assert_eq!(fingerprint(b), fingerprint(s), "{spec}");
            assert_eq!(b.uniform_size, s.uniform_size, "{spec}");
            assert_eq!(b.stats.spec_nodes, s.stats.spec_nodes, "{spec}");
            assert_eq!(
                b.stats.truncated_combinations, s.stats.truncated_combinations,
                "{spec}"
            );
        }
        (Err(b), Err(s)) => assert_eq!(b, s, "{spec}"),
        other => panic!("{spec}: batch/serial disagree: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random query sequences: one batch call vs the per-spec loop, both
    /// on fresh engines and against a warm engine's memo.
    #[test]
    fn batch_agrees_with_the_per_spec_loop(
        indices in proptest::collection::vec(0usize..8, 1..10),
        warm_flag in 0usize..2,
    ) {
        let warm_first = warm_flag == 1;
        let pool = pool();
        let specs: Vec<ComponentSpec> =
            indices.iter().map(|&i| pool[i].clone()).collect();

        let batch_engine = Dtas::new(lsi_logic_subset());
        if warm_first {
            // Seed the memo with a prefix so the batch mixes hits and
            // cold solves.
            let _ = batch_engine.run(&specs[0]);
        }
        let batch = batch_engine.run_batch(&specs);

        let serial_engine = Dtas::new(lsi_logic_subset());
        for (spec, batch_result) in specs.iter().zip(&batch) {
            let serial = serial_engine.run(spec);
            assert_slot_agreement(spec, batch_result, &serial);
            // And against a completely fresh engine, the strongest oracle.
            let fresh = Dtas::new(lsi_logic_subset()).run(spec);
            assert_slot_agreement(spec, batch_result, &fresh);
        }
    }
}

/// The rewritten `run_netlist` (one batch pass) returns exactly what
/// the old per-census loop returned.
#[test]
fn netlist_mapping_matches_per_spec_loop() {
    use hls::compile::{compile, Constraints};
    use hls::lang::parse_entity;

    let entity = parse_entity("entity acc(x: in 8, t: out 8) { var a: 8; a = a + x; t = a; }")
        .expect("parses");
    let design = compile(&entity, &Constraints::default()).expect("compiles");
    let engine = Dtas::new(lsi_logic_subset());
    let mapped = engine.run_netlist(&design.netlist).expect("maps");
    let reference = Dtas::new(lsi_logic_subset());
    for (key, (component, _)) in design.netlist.spec_census() {
        let serial = reference.run(component.spec()).expect("maps");
        let batch = &mapped[&key];
        assert_eq!(fingerprint(batch), fingerprint(&serial), "{key}");
    }
    assert_eq!(mapped.len(), design.netlist.spec_census().len());
}
