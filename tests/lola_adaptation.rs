//! LOLA (paper §7, future work): derived library-specific rules adapt
//! DTAS to a brand-new cell library, and the adapted designs remain
//! bit-exact.

use cells::databook;
use cells::CellLibrary;
use dtas::lola::{derive_library_rules, with_derived_rules, LibraryProfile};
use dtas::{Dtas, RuleSet};
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use rtlsim::equiv::check_implementation;

/// A synthetic "next generation" databook: 3-bit adders, 2-bit P/G adders
/// with a 3-group lookahead generator, 6-bit registers, 5-input NANDs —
/// widths the hand-written LSI rules know nothing about.
const NEXT_GEN: &str = "\
LIBRARY next_gen
CELL INV   GATE_NOT  W 1 N 1 AREA 0.7 DELAY 0.4
CELL ND2   GATE_NAND W 1 N 2 AREA 1.0 DELAY 0.6
CELL ND5   GATE_NAND W 1 N 5 AREA 2.6 DELAY 1.2
CELL NR2   GATE_NOR  W 1 N 2 AREA 1.0 DELAY 0.7
CELL AN2   GATE_AND  W 1 N 2 AREA 1.2 DELAY 0.8
CELL OR2   GATE_OR   W 1 N 2 AREA 1.2 DELAY 0.9
CELL EO2   GATE_XOR  W 1 N 2 AREA 2.2 DELAY 1.1
CELL EN2   GATE_XNOR W 1 N 2 AREA 2.2 DELAY 1.2
CELL MX2   MUX W 1 N 2 AREA 2.8 DELAY 1.2
CELL ADD3  ADDSUB W 3 OPS ADD CI CO AREA 19.0 DELAY 4.2 CARRY 2.6
CELL APG2  ADDSUB W 2 OPS ADD CI CO PG AREA 15.0 DELAY 3.4 CARRY 1.6 PGD 2.2
CELL CLA3  CLA_GEN N 3 CI AREA 10.0 DELAY 1.7 CARRY 1.0 PGD 1.4
CELL FD1   REGISTER W 1 OPS LOAD AREA 6.0 DELAY 1.9
CELL RG6   REGISTER W 6 OPS LOAD AREA 33.0 DELAY 2.1
CELL FDE1  REGISTER W 1 OPS LOAD EN AREA 8.0 DELAY 2.1
";

fn next_gen() -> CellLibrary {
    databook::parse(NEXT_GEN).expect("synthetic library parses")
}

fn adder(w: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::AddSub, w)
        .with_ops(OpSet::only(Op::Add))
        .with_carry_in(true)
        .with_carry_out(true)
}

#[test]
fn derived_implementations_are_equivalent() {
    let lib = next_gen();
    let engine = Dtas::builder(lib.clone())
        .rules(with_derived_rules(RuleSet::standard(), &lib))
        .build();
    let specs = vec![
        adder(6),
        adder(12),
        ComponentSpec::new(ComponentKind::Register, 13).with_ops(OpSet::only(Op::Load)),
    ];
    for spec in specs {
        let set = engine.run(&spec).expect("synthesizes");
        for alt in &set.alternatives {
            check_implementation(&alt.implementation, 120, 9)
                .unwrap_or_else(|e| panic!("{spec} via {} fails: {e}", alt.implementation.label()));
        }
    }
}

#[test]
fn lola_improves_the_design_space() {
    let lib = next_gen();
    let spec = adder(12);
    let baseline = Dtas::builder(lib.clone())
        .rules(RuleSet::standard())
        .build()
        .run(&spec);
    let adapted = Dtas::builder(lib.clone())
        .rules(with_derived_rules(RuleSet::standard(), &lib))
        .build()
        .run(&spec)
        .expect("adapted engine synthesizes");
    // LOLA must find the lookahead structure the generic rules cannot
    // (6-bit blocks from 2-bit P/G adders + CLA3).
    let labels: Vec<&str> = adapted
        .alternatives
        .iter()
        .map(|a| a.implementation.label())
        .collect();
    assert!(
        labels.iter().any(|l| l.starts_with("lola-")),
        "no LOLA design in {labels:?}"
    );
    if let Ok(base) = baseline {
        let fast_base = base.fastest().expect("nonempty").delay;
        let fast_adapted = adapted.fastest().expect("nonempty").delay;
        assert!(
            fast_adapted < fast_base,
            "LOLA should unlock faster designs: {fast_adapted} vs {fast_base}"
        );
    }
}

#[test]
fn lola_profile_matches_the_papers_lsi_pairing() {
    let profile = LibraryProfile::of(&cells::lsi::lsi_logic_subset());
    // The paper's pairing: 4-bit P/G adders with the 4-group CLA.
    assert!(profile.pg_adder_widths.contains(&4));
    assert!(profile.cla_groups.contains(&4));
    let rules = derive_library_rules(&cells::lsi::lsi_logic_subset());
    assert!(rules.iter().any(|r| r.name() == "lola-cla-block-16"));
}
