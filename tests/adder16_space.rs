//! Asserts the paper's §5 search-control claim on the 16-bit adder: a
//! combinatorially large unconstrained space collapses to a handful of
//! favorable-tradeoff designs.

use cells::lsi::lsi_logic_subset;
use dtas::Dtas;
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;

fn add16() -> ComponentSpec {
    ComponentSpec::new(ComponentKind::AddSub, 16)
        .with_ops(OpSet::only(Op::Add))
        .with_carry_in(true)
        .with_carry_out(true)
}

#[test]
fn unconstrained_space_is_combinatorial() {
    let set = Dtas::new(lsi_logic_subset())
        .run(add16())
        .expect("synthesizes");
    // Paper: "several hundred thousand to several million". Our richer
    // rule base overshoots the product; the uniform-implementation count
    // lands in the paper's band.
    assert!(
        set.unconstrained_size > 1e5 || set.unconstrained_size.is_infinite(),
        "unconstrained size {} too small",
        set.unconstrained_size
    );
    let uniform = set.uniform_size.expect("enumerable for ADD16");
    assert!(
        (1_000..=10_000_000).contains(&uniform),
        "uniform count {uniform} outside the plausible band"
    );
    assert!(
        set.alternatives.len() <= 16,
        "filters should collapse the space, got {}",
        set.alternatives.len()
    );
    assert!(set.alternatives.len() >= 3);
}

#[test]
fn filtered_alternatives_near_papers_ten() {
    let set = Dtas::new(lsi_logic_subset())
        .run(add16())
        .expect("synthesizes");
    // Paper: reduced "to ten alternative designs".
    let n = set.alternatives.len();
    assert!(
        (4..=16).contains(&n),
        "expected roughly ten alternatives, got {n}:\n{set}"
    );
}

#[test]
fn alternatives_span_ripple_to_lookahead() {
    let set = Dtas::new(lsi_logic_subset())
        .run(add16())
        .expect("synthesizes");
    let labels: Vec<&str> = set
        .alternatives
        .iter()
        .map(|a| a.implementation.label())
        .collect();
    assert!(
        labels.iter().any(|l| l.contains("ripple")),
        "no ripple design among {labels:?}"
    );
    assert!(
        labels.iter().any(|l| l.contains("cla")),
        "no lookahead design among {labels:?}"
    );
}

#[test]
fn every_alternative_uses_only_library_cells() {
    let lib = lsi_logic_subset();
    let set = Dtas::new(lib.clone()).run(add16()).expect("synthesizes");
    for alt in &set.alternatives {
        for (cell, _) in alt.implementation.cell_census() {
            assert!(lib.cell(&cell).is_some(), "unknown cell {cell}");
        }
    }
}
