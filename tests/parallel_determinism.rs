//! Determinism under parallelism and caching: the sharded solver, the
//! threaded uniform counter, and the engine-level cross-query cache must
//! all produce bit-identical results to a forced single-thread, cold run
//! — the paper's numbers only mean something if the speedups are free.

mod common;

use cells::lsi::lsi_logic_subset;
use dtas::template::SpecModelCache;
use dtas::{DesignSpace, Dtas, DtasConfig, Policy, RuleSet, SolveConfig, Solver};
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn add16() -> ComponentSpec {
    ComponentSpec::new(ComponentKind::AddSub, 16)
        .with_ops(OpSet::only(Op::Add))
        .with_carry_in(true)
        .with_carry_out(true)
}

fn alu64() -> ComponentSpec {
    ComponentSpec::new(ComponentKind::Alu, 64)
        .with_ops(Op::paper_alu16())
        .with_carry_in(true)
}

/// Area bits, delay bits, and the full policy of every front point.
type FrontFingerprint = Vec<(u64, u64, Vec<(usize, usize)>)>;

fn front_fingerprint(
    space: &mut DesignSpace,
    spec: &ComponentSpec,
    threads: usize,
) -> FrontFingerprint {
    let rules = RuleSet::standard().with_lsi_extensions();
    let lib = lsi_logic_subset();
    let cache = SpecModelCache::new();
    let root = space
        .expand_threaded(spec, &rules, &lib, &cache, threads)
        .unwrap();
    let mut solver = Solver::new(space, SolveConfig::default()).with_threads(threads);
    solver
        .front(root, &cache)
        .iter()
        .map(|p| {
            (
                p.area.to_bits(),
                p.delay().to_bits(),
                p.policy.iter().collect(),
            )
        })
        .collect()
}

#[test]
fn parallel_solver_fronts_match_serial_exactly() {
    for spec in [add16(), alu64()] {
        let mut serial_space = DesignSpace::new();
        let serial = front_fingerprint(&mut serial_space, &spec, 1);
        let mut parallel_space = DesignSpace::new();
        let parallel = front_fingerprint(&mut parallel_space, &spec, 4);
        assert!(!serial.is_empty());
        assert_eq!(serial, parallel, "parallel front diverged for {spec}");
    }
}

#[test]
fn threaded_engine_matches_single_thread_engine() {
    let serial = Dtas::builder(lsi_logic_subset())
        .config(DtasConfig {
            threads: Some(1),
            ..DtasConfig::default()
        })
        .build();
    let threaded = Dtas::builder(lsi_logic_subset())
        .config(DtasConfig {
            threads: Some(4),
            ..DtasConfig::default()
        })
        .build();
    for spec in [add16(), alu64()] {
        let a = serial.run(&spec).unwrap();
        let b = threaded.run(&spec).unwrap();
        assert_eq!(common::fingerprint(&a), common::fingerprint(&b), "{spec}");
        assert_eq!(
            a.unconstrained_size.to_bits(),
            b.unconstrained_size.to_bits()
        );
        assert_eq!(a.uniform_size, b.uniform_size);
        assert_eq!(a.stats.spec_nodes, b.stats.spec_nodes);
    }
}

#[test]
fn cached_repeat_is_identical_and_counted() {
    let engine = Dtas::new(lsi_logic_subset());
    let first = engine.run(add16()).unwrap();
    assert_eq!(engine.cache_stats().misses, 1);
    assert_eq!(engine.cache_stats().hits, 0);
    let again = engine.run(add16()).unwrap();
    assert_eq!(common::fingerprint(&first), common::fingerprint(&again));
    assert_eq!(again.uniform_size, first.uniform_size);
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    assert_eq!(stats.cached_results, 1);
    assert!(stats.cached_fronts > 0);
    // Invalidation drops everything; the next call re-solves identically.
    engine.clear_cache();
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.cached_results), (0, 0, 0));
    let cold = engine.run(add16()).unwrap();
    assert_eq!(common::fingerprint(&first), common::fingerprint(&cold));
}

#[test]
fn shared_subspecs_are_reused_across_roots() {
    let engine = Dtas::new(lsi_logic_subset());
    engine.run(add16()).unwrap();
    let nodes_after_add16 = engine.cache_stats().spec_nodes;
    // An ADD32 decomposes through the same small-adder subspace.
    let add32 = ComponentSpec::new(ComponentKind::AddSub, 32)
        .with_ops(OpSet::only(Op::Add))
        .with_carry_in(true)
        .with_carry_out(true);
    let set = engine.run(&add32).unwrap();
    assert!(!set.alternatives.is_empty());
    let stats = engine.cache_stats();
    // The shared space grew instead of being rebuilt, and ADD16's nodes
    // were not re-expanded (the count strictly contains them).
    assert!(stats.spec_nodes > nodes_after_add16);
    assert_eq!(stats.misses, 2);
    // Both roots answer from the result memo now.
    engine.run(add16()).unwrap();
    engine.run(&add32).unwrap();
    assert_eq!(engine.cache_stats().hits, 2);
}

#[test]
fn shared_engine_results_match_fresh_engines() {
    // Whatever the query order, every answer from one long-lived engine
    // must equal a fresh engine's answer for that spec.
    let shared = Dtas::new(lsi_logic_subset());
    let mux8 = ComponentSpec::new(ComponentKind::Mux, 8).with_inputs(8);
    for spec in [alu64(), add16(), mux8, add16(), alu64()] {
        let from_shared = shared.run(&spec).unwrap();
        let from_fresh = Dtas::new(lsi_logic_subset()).run(&spec).unwrap();
        assert_eq!(
            common::fingerprint(&from_shared),
            common::fingerprint(&from_fresh),
            "shared-engine divergence for {spec}"
        );
        assert_eq!(from_shared.uniform_size, from_fresh.uniform_size);
        assert_eq!(from_shared.stats.spec_nodes, from_fresh.stats.spec_nodes);
        assert_eq!(
            from_shared.stats.impl_choices,
            from_fresh.stats.impl_choices
        );
    }
}

#[test]
fn truncation_stats_survive_cross_query_reuse() {
    // With a tight combination cap the solver truncates; a query answered
    // through a long-lived engine must report the same truncation as a
    // fresh engine, even when it reuses fronts truncated by an earlier
    // query.
    let config = DtasConfig {
        max_combinations: 2,
        ..DtasConfig::default()
    };
    let fresh = Dtas::builder(lsi_logic_subset())
        .config(config.clone())
        .build()
        .run(add16())
        .unwrap();
    assert!(
        fresh.stats.truncated_combinations > 0,
        "cap 2 should truncate ADD16"
    );
    let shared = Dtas::builder(lsi_logic_subset()).config(config).build();
    shared
        .run(
            ComponentSpec::new(ComponentKind::AddSub, 8)
                .with_ops(OpSet::only(Op::Add))
                .with_carry_in(true)
                .with_carry_out(true),
        )
        .unwrap();
    let reused = shared.run(add16()).unwrap();
    assert_eq!(
        reused.stats.truncated_combinations,
        fresh.stats.truncated_combinations
    );
}

#[test]
fn cache_off_still_produces_identical_results() {
    let cached = Dtas::new(lsi_logic_subset());
    let cold = Dtas::builder(lsi_logic_subset())
        .config(DtasConfig {
            cache: false,
            ..DtasConfig::default()
        })
        .build();
    let a = cached.run(add16()).unwrap();
    let b = cold.run(add16()).unwrap();
    assert_eq!(common::fingerprint(&a), common::fingerprint(&b));
    // Nothing is retained with the cache off.
    let stats = cold.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.cached_results), (0, 0, 0));
    assert_eq!(stats.spec_nodes, 0);
}

/// A deliberately *cyclic* ruleset: style-A delays decompose into
/// style-B delays and vice versa. Whichever spec expands first drops the
/// template that closes the cycle, so shared-space memo contents are
/// query-order dependent — the engine must detect this and serve such
/// queries from a cold expansion.
mod cyclic {
    use super::*;
    use cells::{Cell, CellLibrary};
    use dtas::template::NetlistTemplate;
    use dtas::{Rule, Signal, TemplateBuilder};

    pub struct StyleSwap {
        pub from: &'static str,
        pub to: &'static str,
    }

    impl Rule for StyleSwap {
        fn name(&self) -> &str {
            "style-swap"
        }
        fn doc(&self) -> &str {
            "test-only: rewrap a delay in the opposite style"
        }
        fn expand(&self, spec: &ComponentSpec) -> Vec<NetlistTemplate> {
            if spec.kind != ComponentKind::Delay
                || spec.width != 4
                || spec.style.as_deref() != Some(self.from)
            {
                return vec![];
            }
            let mut t = TemplateBuilder::new(self.name());
            t.module(
                "u",
                delay(self.to),
                vec![("I", Signal::parent("I"))],
                vec![("O", "o", 4)],
            );
            t.output("O", Signal::net("o"));
            vec![t.build()]
        }
    }

    pub fn delay(style: &str) -> ComponentSpec {
        ComponentSpec::new(ComponentKind::Delay, 4).with_style(style)
    }

    pub fn engine() -> Dtas {
        let mut lib = CellLibrary::new("delay-only");
        lib.insert(Cell::new(
            "DEL4",
            ComponentSpec::new(ComponentKind::Delay, 4),
            5.0,
            1.0,
        ));
        let mut rules = RuleSet::standard();
        rules.append_library_rules(vec![
            Box::new(StyleSwap { from: "A", to: "B" }),
            Box::new(StyleSwap { from: "B", to: "A" }),
        ]);
        Dtas::builder(lib).rules(rules).build()
    }
}

#[test]
fn cyclic_expansion_is_flagged_as_tainted() {
    // Space-level: expanding style-A drops style-B's swap-back template,
    // so B's subgraph is marked query-order dependent; an acyclic spec
    // (plain ADD16 expanded as its own root in a fresh space) reaches no
    // node whose templates were cut under a *different* root.
    let engine = cyclic::engine();
    let mut space = DesignSpace::new();
    let cache = SpecModelCache::new();
    let root_a = space
        .expand(
            &cyclic::delay("A"),
            engine.rules(),
            engine.library(),
            &cache,
        )
        .unwrap();
    assert!(space.tainted_under(root_a));
    let root_b = space.id_of(&cyclic::delay("B")).unwrap();
    assert!(space.tainted_under(root_b));
}

#[test]
fn cyclic_rules_stay_query_order_independent() {
    let fresh_b = cyclic::engine().run(cyclic::delay("B")).unwrap();
    let shared = cyclic::engine();
    shared.run(cyclic::delay("A")).unwrap();
    // Without the cycle-taint guard this query would answer from a shared
    // space where style-B was expanded under style-A and lost its
    // swap-back template (fewer implementation choices).
    let b_after_a = shared.run(cyclic::delay("B")).unwrap();
    assert_eq!(b_after_a.stats.impl_choices, fresh_b.stats.impl_choices);
    assert_eq!(b_after_a.stats.spec_nodes, fresh_b.stats.spec_nodes);
    assert_eq!(
        common::fingerprint(&b_after_a),
        common::fingerprint(&fresh_b)
    );
    // Tainted queries are never memoized: repeats stay correct too.
    let again = shared.run(cyclic::delay("B")).unwrap();
    assert_eq!(common::fingerprint(&again), common::fingerprint(&fresh_b));
}

/// The old BTreeMap policy-merge semantics, kept as the reference model.
fn reference_merge(
    base: &BTreeMap<usize, usize>,
    extra: &BTreeMap<usize, usize>,
) -> Option<BTreeMap<usize, usize>> {
    let (small, large) = if base.len() < extra.len() {
        (base, extra)
    } else {
        (extra, base)
    };
    let mut merged = large.clone();
    for (k, v) in small {
        match merged.get(k) {
            Some(existing) if existing != v => return None,
            Some(_) => {}
            None => {
                merged.insert(*k, *v);
            }
        }
    }
    Some(merged)
}

fn arb_assignments() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..48, 0usize..8), 0..16)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Flat `Policy` merge agrees with the old BTreeMap merge on both the
    /// conflict decision and the merged contents.
    #[test]
    fn policy_merge_matches_btreemap_semantics(a in arb_assignments(), b in arb_assignments()) {
        // Duplicate keys resolve last-wins in both models.
        let ma: BTreeMap<usize, usize> = a.iter().copied().collect();
        let mb: BTreeMap<usize, usize> = b.iter().copied().collect();
        let pa: Policy = ma.iter().map(|(&k, &v)| (k, v)).collect();
        let pb: Policy = mb.iter().map(|(&k, &v)| (k, v)).collect();
        let reference = reference_merge(&ma, &mb);
        let flat = pa.merged(&pb);
        prop_assert_eq!(reference.is_some(), flat.is_some());
        if let (Some(reference), Some(flat)) = (reference, flat) {
            let flat_entries: Vec<(usize, usize)> = flat.iter().collect();
            let ref_entries: Vec<(usize, usize)> = reference.into_iter().collect();
            prop_assert_eq!(flat_entries, ref_entries);
            // Merge is symmetric on success.
            prop_assert_eq!(Some(flat), pb.merged(&pa));
        }
        // get() agrees with the map on every key.
        for k in 0..48 {
            prop_assert_eq!(pa.get(k), ma.get(&k).copied());
        }
    }
}

// ---------------------------------------------------------------------
// The incremental engine: canonical keys and in-place updates must be
// invisible in the answers — bit-identical to a fresh engine built
// directly in the final configuration.

/// Reference answer: a cache-off engine never canonicalizes (there is no
/// memo to key), so it solves the raw spec exactly as written.
fn raw_reference(spec: &ComponentSpec) -> common::Fingerprint {
    let engine = Dtas::builder(lsi_logic_subset())
        .config(DtasConfig {
            cache: false,
            ..DtasConfig::default()
        })
        .build();
    common::fingerprint(&engine.run(spec).unwrap())
}

fn arb_decoration() -> impl Strategy<Value = (Option<&'static str>, usize)> {
    (
        prop_oneof![Just(None), Just(Some("FASTEST")), Just(Some("LOWPOWER"))],
        0usize..7,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, max_shrink_iters: 0 })]

    /// Canonicalization is solution-preserving: a decorated spec variant
    /// served through the canonical memo entry answers bit-identically
    /// (modulo nothing — the root label is rewritten back) to a raw
    /// cache-off solve of the very same decorated spec.
    #[test]
    fn canonical_answers_match_raw_solves(
        width in 2usize..17,
        decoration in arb_decoration(),
        warm_plain_first in any::<bool>(),
    ) {
        let (style, w2) = decoration;
        let mut spec = ComponentSpec::new(ComponentKind::AddSub, width)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true);
        if let Some(style) = style {
            spec = spec.with_style(style);
        }
        if w2 != 0 {
            spec = spec.with_width2(w2);
        }
        let shared = Dtas::new(lsi_logic_subset());
        if warm_plain_first {
            // Warm the canonical entry through the undecorated variant,
            // so the decorated query is answered from the collapsed key.
            let plain = ComponentSpec::new(ComponentKind::AddSub, width)
                .with_ops(OpSet::only(Op::Add))
                .with_carry_in(true)
                .with_carry_out(true);
            shared.run(&plain).unwrap();
        }
        let set = shared.run(&spec).unwrap();
        prop_assert_eq!(&set.spec, &spec, "root label must be the caller's");
        prop_assert_eq!(common::fingerprint(&set), raw_reference(&spec));
    }
}

/// Every `update_rules` / `update_config` path answers like a fresh
/// engine built with the final (rules, config) — for specs warmed before
/// the update (retained or dropped), and for a cold spec after it.
#[test]
fn updates_answer_like_a_fresh_engine() {
    let warm_specs = [add16(), alu64()];
    let cold_spec = ComponentSpec::new(ComponentKind::Mux, 8).with_inputs(4);
    type Update = fn(&mut Dtas);
    type FreshRules = fn() -> RuleSet;
    let standard_lsi: FreshRules = || RuleSet::standard().with_lsi_extensions();
    let standard_only: FreshRules = || RuleSet::standard();
    let updates: [(&str, Update, FreshRules, DtasConfig); 7] = [
        (
            "same rules",
            |e| {
                e.update_rules(RuleSet::standard().with_lsi_extensions());
            },
            standard_lsi,
            DtasConfig::default(),
        ),
        (
            "rules removed",
            |e| {
                e.update_rules(RuleSet::standard());
            },
            standard_only,
            DtasConfig::default(),
        ),
        (
            "root shaping",
            |e| {
                e.update_config(DtasConfig {
                    root_filter: dtas::FilterPolicy::Pareto,
                    ..DtasConfig::default()
                });
            },
            standard_lsi,
            DtasConfig {
                root_filter: dtas::FilterPolicy::Pareto,
                ..DtasConfig::default()
            },
        ),
        (
            "node shaping",
            |e| {
                e.update_config(DtasConfig {
                    node_cap: 2,
                    ..DtasConfig::default()
                });
            },
            standard_lsi,
            DtasConfig {
                node_cap: 2,
                ..DtasConfig::default()
            },
        ),
        (
            "uniform accounting",
            |e| {
                e.update_config(DtasConfig {
                    uniform_count_limit: 10,
                    ..DtasConfig::default()
                });
            },
            standard_lsi,
            DtasConfig {
                uniform_count_limit: 10,
                ..DtasConfig::default()
            },
        ),
        (
            "cache off",
            |e| {
                e.update_config(DtasConfig {
                    cache: false,
                    ..DtasConfig::default()
                });
            },
            standard_lsi,
            DtasConfig {
                cache: false,
                ..DtasConfig::default()
            },
        ),
        (
            "cache back on",
            |e| {
                e.update_config(DtasConfig {
                    cache: false,
                    ..DtasConfig::default()
                });
                e.update_config(DtasConfig::default());
            },
            standard_lsi,
            DtasConfig::default(),
        ),
    ];
    for (label, update, final_rules, final_config) in updates {
        let mut engine = Dtas::new(lsi_logic_subset());
        for spec in &warm_specs {
            engine.run(spec).unwrap();
        }
        update(&mut engine);
        let fresh = Dtas::builder(lsi_logic_subset())
            .rules(final_rules())
            .config(final_config)
            .build();
        for spec in warm_specs.iter().chain([&cold_spec]) {
            let updated = engine.run(spec).unwrap();
            let reference = fresh.run(spec).unwrap();
            assert_eq!(
                common::fingerprint(&updated),
                common::fingerprint(&reference),
                "{label}: {spec} diverged from a fresh engine"
            );
            assert_eq!(
                updated.uniform_size, reference.uniform_size,
                "{label}: {spec} uniform accounting diverged"
            );
        }
    }
}
