//! The verification backbone: every alternative DTAS produces, for every
//! supported component family (§7's list), simulates bit-exactly against
//! its GENUS behavioral model.

use cells::lsi::lsi_logic_subset;
use dtas::Dtas;
use genus::kind::{ComponentKind, GateOp};
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use rtlsim::equiv::{check_exhaustive, check_implementation};

fn check_all(spec: ComponentSpec, vectors: usize) {
    let set = Dtas::new(lsi_logic_subset())
        .run(&spec)
        .unwrap_or_else(|e| panic!("{spec} failed to synthesize: {e}"));
    assert!(!set.alternatives.is_empty());
    for alt in &set.alternatives {
        check_implementation(&alt.implementation, vectors, 0x5eed).unwrap_or_else(|e| {
            panic!(
                "{spec} via {} not equivalent:\n{e}\n{}",
                alt.implementation.label(),
                alt.implementation
            )
        });
    }
}

#[test]
fn adders_all_widths() {
    for w in [1usize, 2, 3, 5, 8, 12, 16] {
        check_all(
            ComponentSpec::new(ComponentKind::AddSub, w)
                .with_ops(OpSet::only(Op::Add))
                .with_carry_in(true)
                .with_carry_out(true),
            80,
        );
    }
}

#[test]
fn adders_without_carry_pins() {
    for (ci, co) in [(false, true), (true, false), (false, false)] {
        check_all(
            ComponentSpec::new(ComponentKind::AddSub, 8)
                .with_ops(OpSet::only(Op::Add))
                .with_carry_in(ci)
                .with_carry_out(co),
            80,
        );
    }
}

#[test]
fn subtractors_and_addsubs() {
    check_all(
        ComponentSpec::new(ComponentKind::AddSub, 6)
            .with_ops(OpSet::only(Op::Sub))
            .with_carry_in(true)
            .with_carry_out(true),
        80,
    );
    check_all(
        ComponentSpec::new(ComponentKind::AddSub, 6)
            .with_ops([Op::Add, Op::Sub].into_iter().collect())
            .with_carry_in(true)
            .with_carry_out(true),
        120,
    );
}

#[test]
fn adder_with_group_pg() {
    check_all(
        ComponentSpec::new(ComponentKind::AddSub, 6)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true)
            .with_group_pg(true),
        120,
    );
}

#[test]
fn muxes_and_selectors() {
    for (w, n) in [(1usize, 2usize), (8, 2), (4, 3), (2, 5), (8, 8), (1, 16)] {
        check_all(
            ComponentSpec::new(ComponentKind::Mux, w).with_inputs(n),
            100,
        );
    }
    check_all(
        ComponentSpec::new(ComponentKind::Selector, 4).with_inputs(3),
        100,
    );
}

#[test]
fn gates_wide_and_deep() {
    for (g, w, n) in [
        (GateOp::And, 1usize, 5usize),
        (GateOp::Nand, 8, 2),
        (GateOp::Nor, 1, 12),
        (GateOp::Xor, 4, 3),
        (GateOp::Xnor, 1, 2),
        (GateOp::Or, 2, 9),
        (GateOp::Buf, 4, 1),
        (GateOp::Not, 16, 1),
    ] {
        check_all(
            ComponentSpec::new(ComponentKind::Gate(g), w).with_inputs(n),
            60,
        );
    }
}

#[test]
fn logic_units() {
    let all_logic: OpSet = [
        Op::And,
        Op::Or,
        Op::Nand,
        Op::Nor,
        Op::Xor,
        Op::Xnor,
        Op::Lnot,
        Op::Limpl,
    ]
    .into_iter()
    .collect();
    check_all(
        ComponentSpec::new(ComponentKind::LogicUnit, 8).with_ops(all_logic),
        150,
    );
    check_all(
        ComponentSpec::new(ComponentKind::LogicUnit, 4)
            .with_ops([Op::And, Op::Xor].into_iter().collect()),
        80,
    );
}

#[test]
fn decoders_and_encoders() {
    for k in [1usize, 2, 3, 4, 5] {
        check_all(
            ComponentSpec::new(ComponentKind::Decoder, k)
                .with_width2(1 << k)
                .with_style("BINARY"),
            60,
        );
    }
    check_all(
        ComponentSpec::new(ComponentKind::Decoder, 4)
            .with_width2(10)
            .with_style("BCD"),
        60,
    );
    check_all(
        ComponentSpec::new(ComponentKind::Decoder, 3)
            .with_width2(8)
            .with_style("BINARY")
            .with_enable(true),
        60,
    );
    for n in [2usize, 4, 7, 8] {
        check_all(
            ComponentSpec::new(ComponentKind::Encoder, genus::build::select_width(n))
                .with_inputs(n),
            60,
        );
    }
}

#[test]
fn comparators() {
    check_all(
        ComponentSpec::new(ComponentKind::Comparator, 8)
            .with_ops([Op::Eq, Op::Lt, Op::Gt].into_iter().collect()),
        100,
    );
    check_all(
        ComponentSpec::new(ComponentKind::Comparator, 8).with_ops(OpSet::only(Op::Eq)),
        100,
    );
    check_all(
        ComponentSpec::new(ComponentKind::Comparator, 4)
            .with_ops([Op::Eq, Op::Lt].into_iter().collect()),
        100,
    );
    check_all(
        ComponentSpec::new(ComponentKind::Comparator, 5)
            .with_ops([Op::Neq, Op::Ge, Op::Le].into_iter().collect()),
        100,
    );
}

#[test]
fn shifters_and_barrels() {
    for op in [Op::Shl, Op::Shr, Op::Asr, Op::Rotl, Op::Rotr] {
        check_all(
            ComponentSpec::new(ComponentKind::Shifter, 8).with_ops(OpSet::only(op)),
            60,
        );
    }
    check_all(
        ComponentSpec::new(ComponentKind::Shifter, 8)
            .with_ops([Op::Shl, Op::Shr, Op::Asr].into_iter().collect()),
        120,
    );
    for op in [Op::Shl, Op::Shr, Op::Asr, Op::Rotl, Op::Rotr] {
        check_all(
            ComponentSpec::new(ComponentKind::BarrelShifter, 8)
                .with_width2(3)
                .with_ops(OpSet::only(op)),
            120,
        );
    }
    check_all(
        ComponentSpec::new(ComponentKind::BarrelShifter, 4)
            .with_width2(2)
            .with_ops([Op::Shl, Op::Rotr].into_iter().collect()),
        120,
    );
}

#[test]
fn multipliers_and_dividers() {
    for (n, m) in [(2usize, 2usize), (4, 4), (6, 3), (3, 5)] {
        check_all(
            ComponentSpec::new(ComponentKind::Multiplier, n)
                .with_width2(m)
                .with_ops(OpSet::only(Op::Mul)),
            100,
        );
    }
    for w in [2usize, 4, 6] {
        check_all(
            ComponentSpec::new(ComponentKind::Divider, w).with_ops(OpSet::only(Op::Div)),
            150,
        );
    }
}

#[test]
fn alus_by_function_class() {
    let arith: OpSet = [Op::Add, Op::Sub, Op::Inc, Op::Dec].into_iter().collect();
    let cmp: OpSet = [Op::Eq, Op::Lt, Op::Gt, Op::Zerop].into_iter().collect();
    let logic: OpSet = [Op::And, Op::Or, Op::Xor, Op::Lnot].into_iter().collect();
    check_all(
        ComponentSpec::new(ComponentKind::Alu, 6)
            .with_ops(arith)
            .with_carry_in(true),
        150,
    );
    check_all(
        ComponentSpec::new(ComponentKind::Alu, 6)
            .with_ops(cmp)
            .with_carry_in(true),
        150,
    );
    check_all(
        ComponentSpec::new(ComponentKind::Alu, 6)
            .with_ops(logic)
            .with_carry_in(true),
        150,
    );
}

#[test]
fn full_16_function_alu() {
    check_all(
        ComponentSpec::new(ComponentKind::Alu, 4)
            .with_ops(Op::paper_alu16())
            .with_carry_in(true),
        250,
    );
    check_all(
        ComponentSpec::new(ComponentKind::Alu, 8)
            .with_ops(Op::paper_alu16())
            .with_carry_in(false),
        250,
    );
}

#[test]
fn sequential_components() {
    check_all(
        ComponentSpec::new(ComponentKind::Register, 8).with_ops(OpSet::only(Op::Load)),
        100,
    );
    check_all(
        ComponentSpec::new(ComponentKind::Register, 13).with_ops(OpSet::only(Op::Load)),
        100,
    );
    check_all(
        ComponentSpec::new(ComponentKind::Register, 5)
            .with_ops(OpSet::only(Op::Load))
            .with_enable(true),
        150,
    );
    for ops in [
        OpSet::only(Op::CountUp),
        [Op::Load, Op::CountUp].into_iter().collect::<OpSet>(),
        [Op::Load, Op::CountUp, Op::CountDown].into_iter().collect(),
    ] {
        check_all(
            ComponentSpec::new(ComponentKind::Counter, 4)
                .with_ops(ops)
                .with_enable(true)
                .with_style("SYNCHRONOUS"),
            200,
        );
    }
    check_all(
        ComponentSpec::new(ComponentKind::RegisterFile, 4)
            .with_width2(4)
            .with_ops([Op::Read, Op::Write].into_iter().collect()),
        200,
    );
    check_all(
        ComponentSpec::new(ComponentKind::Memory, 4)
            .with_width2(4)
            .with_ops([Op::Read, Op::Write].into_iter().collect()),
        200,
    );
}

#[test]
fn wiring_and_interface_components() {
    check_all(ComponentSpec::new(ComponentKind::BufferComp, 8), 40);
    check_all(ComponentSpec::new(ComponentKind::Tristate, 8), 60);
    check_all(
        ComponentSpec::new(ComponentKind::WiredOr, 4).with_inputs(3),
        60,
    );
    check_all(ComponentSpec::new(ComponentKind::Bus, 4).with_inputs(3), 60);
    check_all(ComponentSpec::new(ComponentKind::Delay, 8), 40);
    check_all(
        ComponentSpec::new(ComponentKind::Concat, 4).with_inputs(3),
        40,
    );
    check_all(
        ComponentSpec::new(ComponentKind::Extract, 8)
            .with_width2(3)
            .with_inputs(2),
        40,
    );
}

#[test]
fn small_adders_exhaustively() {
    for w in [1usize, 2, 3, 4] {
        let spec = ComponentSpec::new(ComponentKind::AddSub, w)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true);
        let set = Dtas::new(lsi_logic_subset()).run(&spec).unwrap();
        for alt in &set.alternatives {
            check_exhaustive(&alt.implementation)
                .unwrap_or_else(|e| panic!("{spec} via {} fails: {e}", alt.implementation.label()));
        }
    }
}
