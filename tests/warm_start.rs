//! The tiered on-disk warm-start store: a second engine (stand-in for a
//! second process) answers from a persisted chain bit-identically to a
//! cold solve — decoding lazily, from a memory-mapped base where the
//! platform supports it — and every kind of damaged or incompatible
//! chain (truncated base or delta, bit flips, future format version,
//! wrong fingerprints, random bytes, crash leftovers) falls back to a
//! clean cold solve without ever panicking.

use cells::lsi::lsi_logic_subset;
use dtas::{CheckpointOutcome, DesignSet, Dtas, DtasConfig, MemSnapshotStore, RuleSet, SaveReport};
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn add_spec(w: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::AddSub, w)
        .with_ops(OpSet::only(Op::Add))
        .with_carry_in(true)
        .with_carry_out(true)
}

fn mux_spec(w: usize, n: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::Mux, w).with_inputs(n)
}

/// Warm-starts from `dir` under the plain standard rule base (no LSI
/// extensions), so the chain key differs from the default engine's.
fn warm_start_standard_rules(dir: &Path) -> Dtas {
    Dtas::builder(lsi_logic_subset())
        .rules(RuleSet::standard())
        .config(DtasConfig {
            persist_path: Some(dir.to_path_buf()),
            ..DtasConfig::default()
        })
        .build()
}

/// A fresh, empty cache directory unique to this test and process.
fn cache_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtas_warm_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Full bit-identity over everything a client can observe, except the
/// per-call wall time.
fn assert_sets_identical(a: &DesignSet, b: &DesignSet) {
    assert_eq!(a.spec, b.spec);
    assert_eq!(a.alternatives.len(), b.alternatives.len(), "{}", a.spec);
    for (x, y) in a.alternatives.iter().zip(&b.alternatives) {
        assert_eq!(x.area.to_bits(), y.area.to_bits());
        assert_eq!(x.delay.to_bits(), y.delay.to_bits());
        assert_eq!(x.timing, y.timing);
        assert_eq!(x.implementation.to_string(), y.implementation.to_string());
        assert_eq!(
            x.implementation.cell_census(),
            y.implementation.cell_census()
        );
    }
    assert_eq!(
        a.unconstrained_size.to_bits(),
        b.unconstrained_size.to_bits()
    );
    assert_eq!(
        a.unconstrained_log10.to_bits(),
        b.unconstrained_log10.to_bits()
    );
    assert_eq!(a.uniform_size, b.uniform_size);
    assert_eq!(a.stats.spec_nodes, b.stats.spec_nodes);
    assert_eq!(a.stats.impl_choices, b.stats.impl_choices);
    assert_eq!(
        a.stats.truncated_combinations,
        b.stats.truncated_combinations
    );
}

/// Cache files in `dir` carrying the given extension, sorted by name.
fn files_with_ext(dir: &PathBuf, ext: &str) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == ext))
        .collect();
    out.sort();
    out
}

fn base_files(dir: &PathBuf) -> Vec<PathBuf> {
    files_with_ext(dir, "base")
}

fn delta_files(dir: &PathBuf) -> Vec<PathBuf> {
    files_with_ext(dir, "delta")
}

fn full_report(outcome: Option<CheckpointOutcome>) -> SaveReport {
    match outcome {
        Some(CheckpointOutcome::Full(report)) => report,
        other => panic!("expected a full save, got {other:?}"),
    }
}

fn delta_report(outcome: Option<CheckpointOutcome>) -> SaveReport {
    match outcome {
        Some(CheckpointOutcome::Delta(report)) => report,
        other => panic!("expected a delta append, got {other:?}"),
    }
}

#[test]
fn warm_start_round_trips_bit_identically() {
    let dir = cache_dir("roundtrip");
    let specs = [add_spec(8), add_spec(16), mux_spec(8, 4)];

    let cold = Dtas::warm_start(lsi_logic_subset(), &dir);
    let cold_sets: Vec<Arc<DesignSet>> = specs
        .iter()
        .map(|s| cold.run(s).expect("cold solves"))
        .collect();
    let report = full_report(cold.checkpoint().expect("checkpoint writes"));
    assert!(report.bytes > 0);
    assert_eq!(report.results, specs.len());
    let stats = cold.cache_stats();
    assert_eq!(stats.persisted_results, specs.len() as u64);
    assert_eq!(stats.snapshot_bytes, report.bytes);

    // A second engine — the restarted-process case. Loading is lazy:
    // nothing is decoded at construction (no live results, no live
    // space), only the chain's index is validated.
    let warm = Dtas::warm_start(lsi_logic_subset(), &dir);
    let warm_stats = warm.cache_stats();
    assert_eq!(warm_stats.snapshot_loads, 1);
    assert_eq!(warm_stats.snapshot_rejects, 0);
    assert_eq!(warm_stats.cached_results, 0, "lazy: nothing decoded yet");
    assert_eq!(warm_stats.cached_fronts, 0, "lazy: space not hydrated yet");
    assert_eq!(warm_stats.lazy_results, specs.len());
    #[cfg(all(unix, target_pointer_width = "64"))]
    assert!(warm.warm_base_mapped(), "base should be memory-mapped");

    // Every first query materializes its persisted result — a hit, with
    // zero misses, bit-identical to the cold answer.
    for (spec, cold_set) in specs.iter().zip(&cold_sets) {
        let warm_set = warm.run(spec).expect("warm solves");
        assert_sets_identical(cold_set, &warm_set);
    }
    let warm_stats = warm.cache_stats();
    assert_eq!(
        (warm_stats.hits, warm_stats.misses),
        (specs.len() as u64, 0)
    );
    assert_eq!(warm_stats.lazy_materialized, specs.len() as u64);
    assert_eq!(warm_stats.lazy_results, 0, "backlog fully drained");
    assert!(warm_stats.cached_fronts > 0, "hydrated by the first query");

    // Engines first, directory second — a later drop-flush would
    // resurrect the directory.
    drop(cold);
    drop(warm);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn prefault_materializes_the_whole_backlog() {
    let dir = cache_dir("prefault");
    let specs = [add_spec(8), mux_spec(4, 3)];
    {
        let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
        for spec in &specs {
            engine.run(spec).expect("solves");
        }
    }
    let warm = Dtas::warm_start(lsi_logic_subset(), &dir);
    assert_eq!(warm.cache_stats().lazy_results, specs.len());
    assert_eq!(warm.prefault(), specs.len());
    let stats = warm.cache_stats();
    assert_eq!(stats.lazy_results, 0);
    assert_eq!(stats.cached_results, specs.len());
    // Prefault already decoded everything; queries are plain memo hits.
    for spec in &specs {
        warm.run(spec).expect("hits");
    }
    assert_eq!(warm.cache_stats().misses, 0);
    drop(warm);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delta_checkpoint_is_o_dirty_not_o_space() {
    let dir = cache_dir("delta");
    let base_specs = [add_spec(8), add_spec(16), mux_spec(8, 4)];
    let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
    let mut reference: Vec<Arc<DesignSet>> = base_specs
        .iter()
        .map(|s| engine.run(s).expect("solves"))
        .collect();
    let base = full_report(engine.checkpoint().expect("writes"));

    // One more (small) solve: the follow-up checkpoint appends a delta
    // carrying just that dirt, an order of magnitude smaller than the
    // base it extends.
    reference.push(engine.run(add_spec(4)).expect("solves"));
    let delta = delta_report(engine.checkpoint().expect("writes"));
    assert!(
        (delta.bytes as f64) < 0.10 * (base.bytes as f64),
        "delta {} bytes vs base {} bytes",
        delta.bytes,
        base.bytes
    );
    assert_eq!(delta.results, 1);
    let stats = engine.cache_stats();
    assert_eq!(stats.delta_checkpoints, 1);
    assert_eq!(stats.snapshot_bytes, delta.bytes);
    assert_eq!(base_files(&dir).len(), 1);
    assert_eq!(delta_files(&dir).len(), 1);
    drop(engine);

    // The chain (base + delta) loads as one unit and replays everything.
    let warm = Dtas::warm_start(lsi_logic_subset(), &dir);
    assert_eq!(warm.cache_stats().snapshot_loads, 1);
    assert_eq!(warm.cache_stats().lazy_results, 4);
    let all_specs = [add_spec(8), add_spec(16), mux_spec(8, 4), add_spec(4)];
    for (spec, cold_set) in all_specs.iter().zip(&reference) {
        let warm_set = warm.run(spec).expect("warm solves");
        assert_sets_identical(cold_set, &warm_set);
    }
    assert_eq!(warm.cache_stats().misses, 0);
    drop(warm);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_checkpoints_are_skipped_without_writing() {
    let dir = cache_dir("skip");
    let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
    engine.run(add_spec(8)).expect("solves");
    full_report(engine.checkpoint().expect("writes"));
    let files_before: Vec<PathBuf> = base_files(&dir)
        .into_iter()
        .chain(delta_files(&dir))
        .collect();

    // Nothing changed: both follow-up checkpoints skip, no new files.
    assert_eq!(
        engine.checkpoint().expect("ok"),
        Some(CheckpointOutcome::Skipped)
    );
    assert_eq!(
        engine.checkpoint().expect("ok"),
        Some(CheckpointOutcome::Skipped)
    );
    let stats = engine.cache_stats();
    assert_eq!(stats.checkpoints_skipped, 2);
    let files_after: Vec<PathBuf> = base_files(&dir)
        .into_iter()
        .chain(delta_files(&dir))
        .collect();
    assert_eq!(files_before, files_after);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_folds_the_chain_back_into_one_base() {
    let dir = cache_dir("compact");
    // Ratio 0: any accumulated delta triggers compaction on the next
    // dirty checkpoint.
    let engine = Dtas::builder(lsi_logic_subset())
        .config(DtasConfig {
            persist_path: Some(dir.clone()),
            compaction_ratio: 0.0,
            ..DtasConfig::default()
        })
        .build();
    let specs = [add_spec(8), add_spec(16), mux_spec(8, 4)];
    let mut reference = Vec::new();

    reference.push(engine.run(&specs[0]).expect("solves"));
    full_report(engine.checkpoint().expect("writes"));
    reference.push(engine.run(&specs[1]).expect("solves"));
    delta_report(engine.checkpoint().expect("writes"));
    reference.push(engine.run(&specs[2]).expect("solves"));
    // Deltas now outgrow ratio * base: this checkpoint compacts.
    full_report(engine.checkpoint().expect("writes"));
    let stats = engine.cache_stats();
    assert_eq!(stats.compactions, 1);
    assert_eq!(base_files(&dir).len(), 1, "old generation pruned");
    assert!(delta_files(&dir).is_empty(), "deltas folded into the base");
    drop(engine);

    let warm = Dtas::warm_start(lsi_logic_subset(), &dir);
    assert_eq!(warm.cache_stats().snapshot_loads, 1);
    for (spec, cold_set) in specs.iter().zip(&reference) {
        let warm_set = warm.run(spec).expect("warm solves");
        assert_sets_identical(cold_set, &warm_set);
    }
    assert_eq!(warm.cache_stats().misses, 0);
    drop(warm);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drop_flushes_and_persisted_errors_replay() {
    let dir = cache_dir("dropflush");
    let stack = ComponentSpec::new(ComponentKind::StackFifo, 8)
        .with_width2(4)
        .with_ops([Op::Push, Op::Pop].into_iter().collect())
        .with_style("STACK");
    {
        let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
        engine.run(add_spec(16)).expect("solves");
        assert!(engine.run(&stack).is_err());
        // No explicit checkpoint: drop flushes.
    }
    let warm = Dtas::warm_start(lsi_logic_subset(), &dir);
    assert_eq!(warm.cache_stats().snapshot_loads, 1);
    warm.run(add_spec(16)).expect("warm hit");
    assert!(warm.run(&stack).is_err(), "memoized error replays");
    let stats = warm.cache_stats();
    assert_eq!((stats.hits, stats.misses), (2, 0));
    drop(warm);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Writes a single-base chain for the default engine setup and returns
/// the base segment's path.
fn persisted_snapshot(dir: &PathBuf) -> PathBuf {
    let engine = Dtas::warm_start(lsi_logic_subset(), dir);
    engine.run(add_spec(16)).expect("solves");
    engine.checkpoint().expect("writes").expect("bound");
    drop(engine);
    let bases = base_files(dir);
    assert_eq!(bases.len(), 1, "exactly one base segment");
    bases.into_iter().next().expect("base present")
}

/// After `corrupt` has damaged the base segment, a fresh engine must
/// reject the damage — at load for header damage, on first decode for
/// body damage (the lazy read path defers section verification) — and
/// re-solve cold to the bit-identical answer.
fn assert_falls_back_cold(dir: &PathBuf, corrupt: impl FnOnce(&PathBuf)) {
    let path = persisted_snapshot(dir);
    corrupt(&path);
    let engine = Dtas::warm_start(lsi_logic_subset(), dir);
    let cold = Dtas::new(lsi_logic_subset())
        .run(add_spec(16))
        .expect("reference solves");
    let recovered = engine.run(add_spec(16)).expect("cold fallback");
    assert_sets_identical(&cold, &recovered);
    let stats = engine.cache_stats();
    assert!(
        stats.snapshot_rejects >= 1,
        "damage must be counted: {stats}"
    );
    assert_eq!(
        stats.misses, 1,
        "the answer must be re-solved, never served from damaged bytes"
    );
    drop(engine);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn truncated_snapshot_falls_back_cold() {
    let dir = cache_dir("truncated");
    assert_falls_back_cold(&dir, |path| {
        let bytes = std::fs::read(path).expect("reads");
        std::fs::write(path, &bytes[..bytes.len() / 2]).expect("truncates");
    });
}

#[test]
fn flipped_bytes_fall_back_cold() {
    // Flip one byte at a spread of offsets — version field, header,
    // packed sections, file tail.
    for frac in [0usize, 1, 2, 3, 4] {
        let dir = cache_dir(&format!("flip{frac}"));
        assert_falls_back_cold(&dir, |path| {
            let mut bytes = std::fs::read(path).expect("reads");
            let idx = match frac {
                0 => 9,                   // format version field
                4 => bytes.len() - 3,     // tail of the last section
                f => f * bytes.len() / 4, // spread through the body
            };
            bytes[idx] ^= 0x5a;
            std::fs::write(path, &bytes).expect("writes");
        });
    }
}

#[test]
fn future_format_version_falls_back_cold() {
    let dir = cache_dir("version");
    assert_falls_back_cold(&dir, |path| {
        let mut bytes = std::fs::read(path).expect("reads");
        // The u32 format version sits right after the 8-byte magic. The
        // version check fires before any checksum, so a bump alone —
        // with everything else intact — must reject.
        let bumped = (dtas::FORMAT_VERSION + 1).to_le_bytes();
        bytes[8..12].copy_from_slice(&bumped);
        std::fs::write(path, &bytes).expect("writes");
    });
}

#[test]
fn random_garbage_falls_back_cold() {
    let dir = cache_dir("garbage");
    assert_falls_back_cold(&dir, |path| {
        // Deterministic pseudo-random bytes, sized like a real snapshot.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let bytes: Vec<u8> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        std::fs::write(path, &bytes).expect("writes");
    });
}

/// Builds a base + one delta chain in `dir` and returns the reference
/// result sets for `[add8, add16]`.
fn base_plus_delta(dir: &PathBuf) -> Vec<Arc<DesignSet>> {
    let engine = Dtas::warm_start(lsi_logic_subset(), dir);
    let mut reference = vec![engine.run(add_spec(8)).expect("solves")];
    full_report(engine.checkpoint().expect("writes"));
    reference.push(engine.run(add_spec(16)).expect("solves"));
    delta_report(engine.checkpoint().expect("writes"));
    drop(engine);
    assert_eq!(delta_files(dir).len(), 1);
    reference
}

#[test]
fn damaged_delta_rejects_the_chain_and_solves_cold() {
    // A delta is eagerly verified at open (unlike the lazily-verified
    // base): truncation or a bit flip anywhere rejects the whole chain
    // at load, before anything could be served from it.
    for mode in ["truncate", "bitflip"] {
        let dir = cache_dir(&format!("baddelta_{mode}"));
        let reference = base_plus_delta(&dir);
        let delta_path = delta_files(&dir).pop().expect("delta present");
        let mut bytes = std::fs::read(&delta_path).expect("reads");
        match mode {
            "truncate" => bytes.truncate(bytes.len() / 2),
            _ => {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x5a;
            }
        }
        std::fs::write(&delta_path, &bytes).expect("writes");

        let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
        let stats = engine.cache_stats();
        assert_eq!(stats.snapshot_loads, 0, "{mode}: chain must not load");
        assert_eq!(stats.snapshot_rejects, 1, "{mode}");
        for (spec, cold_set) in [add_spec(8), add_spec(16)].iter().zip(&reference) {
            let recovered = engine.run(spec).expect("cold fallback");
            assert_sets_identical(cold_set, &recovered);
        }
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn missing_delta_suffix_is_a_valid_prefix() {
    // A crash can lose the newest delta entirely; the surviving prefix
    // (here: just the base) is a smaller-but-valid chain, not damage.
    let dir = cache_dir("gap");
    let reference = base_plus_delta(&dir);
    let delta_path = delta_files(&dir).pop().expect("delta present");
    std::fs::remove_file(&delta_path).expect("removes");

    let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
    let stats = engine.cache_stats();
    assert_eq!((stats.snapshot_loads, stats.snapshot_rejects), (1, 0));
    assert_eq!(stats.lazy_results, 1, "only the base's result survives");
    let warm = engine.run(add_spec(8)).expect("warm");
    assert_sets_identical(&reference[0], &warm);
    let resolved = engine.run(add_spec(16)).expect("re-solves");
    assert_sets_identical(&reference[1], &resolved);
    assert_eq!(engine.cache_stats().misses, 1);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_leftovers_are_swept_and_ignored() {
    let dir = cache_dir("leftovers");
    let base = persisted_snapshot(&dir);

    // A crash mid-save leaves a temporary: stale ones are swept at store
    // construction, fresh ones (a live writer's) are left alone; neither
    // disturbs the load.
    let stale_tmp = dir.join(".dtas-crashed.base.tmp-999-0");
    std::fs::write(&stale_tmp, b"half a segment").expect("writes");
    let epoch = std::fs::File::options()
        .write(true)
        .open(&stale_tmp)
        .expect("opens");
    epoch
        .set_modified(std::time::SystemTime::UNIX_EPOCH)
        .expect("backdates");
    drop(epoch);
    let fresh_tmp = dir.join(".dtas-inflight.base.tmp-999-1");
    std::fs::write(&fresh_tmp, b"half a segment").expect("writes");

    // A crash between publish and prune leaves a superseded generation
    // behind; loads pick the newest base and ignore it.
    let old_gen = dir.join(
        base.file_name()
            .and_then(|n| n.to_str())
            .expect("name")
            .replace("-g00000001.base", "-g00000000.base"),
    );
    assert_ne!(old_gen, base);
    std::fs::copy(&base, &old_gen).expect("copies");

    let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
    let stats = engine.cache_stats();
    assert_eq!((stats.snapshot_loads, stats.snapshot_rejects), (1, 0));
    assert!(!stale_tmp.exists(), "stale tmp swept at construction");
    assert!(fresh_tmp.exists(), "fresh tmp left for its writer");
    engine.run(add_spec(16)).expect("warm");
    assert_eq!(engine.cache_stats().misses, 0);

    // The GC plan picks up exactly the leftovers a load ignores.
    let store = dtas::PersistentStore::new(&dir);
    let plan = store.plan_gc(None).expect("plans");
    let mut reasons: Vec<String> = plan.items.iter().map(|i| i.reason.to_string()).collect();
    reasons.sort();
    assert_eq!(reasons, ["stale-generation"], "{plan:?}");
    store.apply_gc(&plan).expect("applies");
    assert!(!old_gen.exists());

    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_fingerprints_reject_a_renamed_snapshot() {
    let dir = cache_dir("fingerprints");
    let source = persisted_snapshot(&dir);
    let reconfig = || DtasConfig {
        node_cap: 8,
        persist_path: Some(dir.clone()),
        ..DtasConfig::default()
    };

    // A different result-shaping config looks for different file names:
    // the chain is simply missing (cold start, no rejection).
    let reconfigured = Dtas::builder(lsi_logic_subset()).config(reconfig()).build();
    let stats = reconfigured.cache_stats();
    assert_eq!((stats.snapshot_loads, stats.snapshot_rejects), (0, 0));
    reconfigured.run(add_spec(16)).expect("solves");
    reconfigured.checkpoint().expect("writes").expect("bound");
    let target = base_files(&dir)
        .into_iter()
        .find(|p| *p != source)
        .expect("second base");
    drop(reconfigured);

    // Force the mismatch past the file name (as if someone copied
    // snapshots between cache directories): the header fingerprint check
    // must reject the foreign bytes.
    std::fs::copy(&source, &target).expect("copies");
    let reconfigured = Dtas::builder(lsi_logic_subset()).config(reconfig()).build();
    let stats = reconfigured.cache_stats();
    assert_eq!((stats.snapshot_loads, stats.snapshot_rejects), (0, 1));
    drop(reconfigured);
    std::fs::remove_file(&target).expect("removes");

    // Same story for a different rule base.
    let regressed = warm_start_standard_rules(&dir);
    regressed.run(add_spec(16)).expect("solves");
    regressed.checkpoint().expect("writes").expect("bound");
    let target = base_files(&dir)
        .into_iter()
        .find(|p| *p != source)
        .expect("second base");
    drop(regressed);
    std::fs::copy(&source, &target).expect("copies");
    let regressed = warm_start_standard_rules(&dir);
    let stats = regressed.cache_stats();
    assert_eq!((stats.snapshot_loads, stats.snapshot_rejects), (0, 1));
    drop(regressed);
    std::fs::remove_file(&target).expect("removes");

    // And for a different library.
    let poorer = lsi_logic_subset().subset(&["IVA", "ND2", "FA1A", "ADD2", "ADD4"]);
    let shrunk = Dtas::warm_start(poorer.clone(), &dir);
    shrunk.run(add_spec(4)).expect("solves");
    shrunk.checkpoint().expect("writes").expect("bound");
    let target = base_files(&dir)
        .into_iter()
        .find(|p| *p != source)
        .expect("second base");
    drop(shrunk);
    std::fs::copy(&source, &target).expect("copies");
    let shrunk = Dtas::warm_start(poorer, &dir);
    let stats = shrunk.cache_stats();
    assert_eq!((stats.snapshot_loads, stats.snapshot_rejects), (0, 1));
    drop(shrunk);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drop_only_flushes_when_dirty_since_last_checkpoint() {
    let dir = cache_dir("dirty");
    {
        // Checkpointed and untouched since: drop must not rewrite.
        let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
        engine.run(add_spec(8)).expect("solves");
        engine.checkpoint().expect("writes").expect("bound");
        let path = base_files(&dir).pop().expect("base present");
        std::fs::remove_file(&path).expect("removes");
        drop(engine);
        assert!(!path.exists(), "clean engine must not flush on drop");
        assert!(delta_files(&dir).is_empty());
    }
    let _ = std::fs::remove_dir_all(&dir);
    {
        // New solves after the checkpoint: drop must flush them — as a
        // delta appended to the chain it already wrote.
        let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
        engine.run(add_spec(8)).expect("solves");
        engine.checkpoint().expect("writes").expect("bound");
        engine.run(add_spec(16)).expect("solves more");
        drop(engine);
        assert_eq!(delta_files(&dir).len(), 1, "dirty engine flushed a delta");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejection_reason_is_reportable() {
    let dir = cache_dir("reason");
    let path = persisted_snapshot(&dir);
    let bytes = std::fs::read(&path).expect("reads");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncates");
    let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
    let reason = engine
        .last_snapshot_rejection()
        .expect("rejection recorded");
    assert!(
        reason.contains("checksum") || reason.contains("truncated"),
        "{reason}"
    );
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mem_snapshot_store_shares_state_between_engines() {
    let store = Arc::new(MemSnapshotStore::new());
    let first = Dtas::builder(lsi_logic_subset())
        .store(store.clone())
        .build();
    let cold = first.run(add_spec(16)).expect("solves");
    first.checkpoint().expect("saves").expect("bound");
    assert_eq!(store.len(), 1);
    let key = first.store_key();

    let second = Dtas::builder(lsi_logic_subset())
        .store(store.clone())
        .build();
    let stats = second.cache_stats();
    assert_eq!(stats.snapshot_loads, 1);
    let warm = second.run(add_spec(16)).expect("warm hit");
    assert_sets_identical(&cold, &warm);
    let stats = second.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 0));

    // The in-memory backend speaks the same chain protocol: a follow-up
    // checkpoint from the second engine appends a delta.
    second.run(add_spec(8)).expect("solves");
    second.checkpoint().expect("saves").expect("bound");
    assert_eq!(store.delta_count(&key), 1);
}

#[test]
fn warm_engine_keeps_growing_and_recheckpoints() {
    // Load a chain, solve something new, flush again, and reload: the
    // chain carries both generations of results.
    let dir = cache_dir("growing");
    {
        let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
        engine.run(add_spec(8)).expect("solves");
    }
    {
        let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
        assert_eq!(engine.cache_stats().snapshot_loads, 1);
        engine.run(add_spec(16)).expect("solves");
        // Drop flushes the new state as a delta on the loaded chain.
    }
    assert_eq!(delta_files(&dir).len(), 1);
    let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
    let stats = engine.cache_stats();
    assert_eq!(stats.lazy_results, 2);
    engine.run(add_spec(8)).expect("hit");
    engine.run(add_spec(16)).expect("hit");
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses), (2, 0));
    assert_eq!(stats.lazy_materialized, 2);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reader_survives_writer_compaction_under_its_feet() {
    // The shared-cache-dir contract: a reader holding the (mapped) old
    // generation keeps answering consistently while a writer compacts
    // the chain and unlinks the files the reader is standing on.
    let dir = cache_dir("mapped_compaction");
    let reference = {
        let seed = Dtas::warm_start(lsi_logic_subset(), &dir);
        let set = seed.run(add_spec(16)).expect("solves");
        seed.run(add_spec(8)).expect("solves");
        set
    };

    let reader = Dtas::warm_start(lsi_logic_subset(), &dir);
    #[cfg(all(unix, target_pointer_width = "64"))]
    assert!(reader.warm_base_mapped());
    let old_base = base_files(&dir).pop().expect("base present");

    {
        let writer = Dtas::builder(lsi_logic_subset())
            .config(DtasConfig {
                persist_path: Some(dir.clone()),
                compaction_ratio: 0.0,
                ..DtasConfig::default()
            })
            .build();
        writer.run(mux_spec(8, 4)).expect("solves");
        delta_report(writer.checkpoint().expect("writes"));
        writer.run(add_spec(4)).expect("solves");
        full_report(writer.checkpoint().expect("writes"));
    }
    assert!(
        !old_base.exists(),
        "compaction replaced the reader's generation"
    );

    // The reader's chain was unlinked, not truncated: its view is fully
    // intact and still serves bit-identical results.
    let warm = reader.run(add_spec(16)).expect("still answers");
    assert_sets_identical(&reference, &warm);
    let stats = reader.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 0));
    drop(reader);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_checkpoints_and_loads_are_never_torn() {
    // Two engines on one cache directory — a writer churning delta
    // checkpoints and compactions while readers keep (re)loading. A
    // reader may catch the directory mid-change and fall back cold, but
    // it must never panic and never answer anything but the bit-exact
    // result.
    let dir = cache_dir("concurrent");
    {
        let seed = Dtas::warm_start(lsi_logic_subset(), &dir);
        seed.run(add_spec(16)).expect("solves");
    }
    let reference = Dtas::new(lsi_logic_subset())
        .run(add_spec(16))
        .expect("reference solves");

    std::thread::scope(|scope| {
        let dir_w = dir.clone();
        scope.spawn(move || {
            let writer = Dtas::builder(lsi_logic_subset())
                .config(DtasConfig {
                    persist_path: Some(dir_w),
                    compaction_ratio: 0.0,
                    ..DtasConfig::default()
                })
                .build();
            for width in [4usize, 8, 12, 24] {
                writer.run(add_spec(width)).expect("writer solves");
                writer.checkpoint().expect("writer flushes");
            }
        });
        let dir_r = dir.clone();
        let reference = &reference;
        scope.spawn(move || {
            for _ in 0..6 {
                let reader = Dtas::warm_start(lsi_logic_subset(), &dir_r);
                let set = reader.run(add_spec(16)).expect("reader answers");
                assert_sets_identical(reference, &set);
            }
        });
    });
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// For arbitrary small workloads, a warm-started engine's results are
    /// bit-identical to the cold engine's, query by query.
    #[test]
    fn warm_results_pin_cold_results(
        widths in proptest::collection::vec(1usize..10, 1..4),
        muxes in proptest::collection::vec((1usize..6, 2usize..5), 0..3),
        case in 0u32..1_000_000,
    ) {
        let dir = cache_dir(&format!("prop{case}"));
        let mut specs: Vec<ComponentSpec> = widths.iter().map(|&w| add_spec(w)).collect();
        specs.extend(muxes.iter().map(|&(w, n)| mux_spec(w, n)));

        let cold = Dtas::warm_start(lsi_logic_subset(), &dir);
        let cold_sets: Vec<Arc<DesignSet>> = specs
            .iter()
            .map(|s| cold.run(s).expect("cold solves"))
            .collect();
        cold.checkpoint().expect("writes").expect("bound");
        drop(cold);

        let warm = Dtas::warm_start(lsi_logic_subset(), &dir);
        prop_assert_eq!(warm.cache_stats().snapshot_loads, 1);
        for (spec, cold_set) in specs.iter().zip(&cold_sets) {
            let warm_set = warm.run(spec).expect("warm solves");
            assert_sets_identical(cold_set, &warm_set);
        }
        prop_assert_eq!(warm.cache_stats().misses, 0);
        drop(warm);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
