//! The on-disk warm-start store: a second engine (stand-in for a second
//! process) answers from a persisted snapshot bit-identically to a cold
//! solve, and every kind of damaged or incompatible snapshot — truncated,
//! bit-flipped, future format version, wrong fingerprints, random bytes —
//! falls back to a clean cold solve without ever panicking.

use cells::lsi::lsi_logic_subset;
use dtas::{DesignSet, Dtas, DtasConfig, MemSnapshotStore, PersistentStore, RuleSet};
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn add_spec(w: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::AddSub, w)
        .with_ops(OpSet::only(Op::Add))
        .with_carry_in(true)
        .with_carry_out(true)
}

fn mux_spec(w: usize, n: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::Mux, w).with_inputs(n)
}

/// A fresh, empty cache directory unique to this test and process.
fn cache_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtas_warm_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Full bit-identity over everything a client can observe, except the
/// per-call wall time.
fn assert_sets_identical(a: &DesignSet, b: &DesignSet) {
    assert_eq!(a.spec, b.spec);
    assert_eq!(a.alternatives.len(), b.alternatives.len(), "{}", a.spec);
    for (x, y) in a.alternatives.iter().zip(&b.alternatives) {
        assert_eq!(x.area.to_bits(), y.area.to_bits());
        assert_eq!(x.delay.to_bits(), y.delay.to_bits());
        assert_eq!(x.timing, y.timing);
        assert_eq!(x.implementation.to_string(), y.implementation.to_string());
        assert_eq!(
            x.implementation.cell_census(),
            y.implementation.cell_census()
        );
    }
    assert_eq!(
        a.unconstrained_size.to_bits(),
        b.unconstrained_size.to_bits()
    );
    assert_eq!(
        a.unconstrained_log10.to_bits(),
        b.unconstrained_log10.to_bits()
    );
    assert_eq!(a.uniform_size, b.uniform_size);
    assert_eq!(a.stats.spec_nodes, b.stats.spec_nodes);
    assert_eq!(a.stats.impl_choices, b.stats.impl_choices);
    assert_eq!(
        a.stats.truncated_combinations,
        b.stats.truncated_combinations
    );
}

/// The snapshot file a warm-started engine reads/writes.
fn snapshot_file(engine: &Dtas, dir: &PathBuf) -> PathBuf {
    PersistentStore::new(dir).snapshot_path(&engine.store_key())
}

#[test]
fn warm_start_round_trips_bit_identically() {
    let dir = cache_dir("roundtrip");
    let specs = [add_spec(8), add_spec(16), mux_spec(8, 4)];

    let cold = Dtas::warm_start(lsi_logic_subset(), &dir);
    let cold_sets: Vec<DesignSet> = specs
        .iter()
        .map(|s| cold.synthesize(s).expect("cold solves"))
        .collect();
    let report = cold
        .checkpoint()
        .expect("checkpoint writes")
        .expect("store bound");
    assert!(report.bytes > 0);
    assert_eq!(report.results, specs.len());
    let stats = cold.cache_stats();
    assert_eq!(stats.persisted_results, specs.len() as u64);
    assert_eq!(stats.snapshot_bytes, report.bytes);

    // A second engine — the restarted-process case — answers every first
    // query from the memo, with zero misses.
    let warm = Dtas::warm_start(lsi_logic_subset(), &dir);
    let warm_stats = warm.cache_stats();
    assert_eq!(warm_stats.snapshot_loads, 1);
    assert_eq!(warm_stats.snapshot_rejects, 0);
    assert_eq!(warm_stats.cached_results, specs.len());
    assert!(warm_stats.cached_fronts > 0);
    for (spec, cold_set) in specs.iter().zip(&cold_sets) {
        let warm_set = warm.synthesize(spec).expect("warm solves");
        assert_sets_identical(cold_set, &warm_set);
    }
    let warm_stats = warm.cache_stats();
    assert_eq!(
        (warm_stats.hits, warm_stats.misses),
        (specs.len() as u64, 0)
    );

    // Engines first, directory second — a later drop-flush would
    // resurrect the directory.
    drop(cold);
    drop(warm);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drop_flushes_and_persisted_errors_replay() {
    let dir = cache_dir("dropflush");
    let stack = ComponentSpec::new(ComponentKind::StackFifo, 8)
        .with_width2(4)
        .with_ops([Op::Push, Op::Pop].into_iter().collect())
        .with_style("STACK");
    {
        let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
        engine.synthesize(&add_spec(16)).expect("solves");
        assert!(engine.synthesize(&stack).is_err());
        // No explicit checkpoint: drop flushes.
    }
    let warm = Dtas::warm_start(lsi_logic_subset(), &dir);
    assert_eq!(warm.cache_stats().snapshot_loads, 1);
    warm.synthesize(&add_spec(16)).expect("warm hit");
    assert!(warm.synthesize(&stack).is_err(), "memoized error replays");
    let stats = warm.cache_stats();
    assert_eq!((stats.hits, stats.misses), (2, 0));
    drop(warm);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Writes a snapshot for the default engine setup and returns its path.
fn persisted_snapshot(dir: &PathBuf) -> PathBuf {
    let engine = Dtas::warm_start(lsi_logic_subset(), dir);
    engine.synthesize(&add_spec(16)).expect("solves");
    engine.checkpoint().expect("writes").expect("bound");
    snapshot_file(&engine, dir)
}

/// After `corrupt` has damaged the snapshot file, a fresh engine must
/// reject it, fall back cold, and still answer correctly.
fn assert_falls_back_cold(dir: &PathBuf, corrupt: impl FnOnce(&PathBuf)) {
    let path = persisted_snapshot(dir);
    corrupt(&path);
    let engine = Dtas::warm_start(lsi_logic_subset(), dir);
    let stats = engine.cache_stats();
    assert_eq!(stats.snapshot_loads, 0, "damaged snapshot must not load");
    assert_eq!(stats.snapshot_rejects, 1);
    assert_eq!(stats.cached_results, 0);
    // The cold solve still works and matches a storeless engine.
    let cold = Dtas::new(lsi_logic_subset())
        .synthesize(&add_spec(16))
        .expect("reference solves");
    let recovered = engine.synthesize(&add_spec(16)).expect("cold fallback");
    assert_sets_identical(&cold, &recovered);
    drop(engine);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn truncated_snapshot_falls_back_cold() {
    let dir = cache_dir("truncated");
    assert_falls_back_cold(&dir, |path| {
        let bytes = std::fs::read(path).expect("reads");
        std::fs::write(path, &bytes[..bytes.len() / 2]).expect("truncates");
    });
}

#[test]
fn flipped_bytes_fall_back_cold() {
    // Flip one byte at a spread of offsets — header, body, checksum.
    for frac in [0usize, 1, 2, 3, 4] {
        let dir = cache_dir(&format!("flip{frac}"));
        assert_falls_back_cold(&dir, |path| {
            let mut bytes = std::fs::read(path).expect("reads");
            let idx = match frac {
                0 => 9,                   // format version field
                4 => bytes.len() - 3,     // checksum itself
                f => f * bytes.len() / 4, // spread through the body
            };
            bytes[idx] ^= 0x5a;
            std::fs::write(path, &bytes).expect("writes");
        });
    }
}

#[test]
fn future_format_version_falls_back_cold() {
    let dir = cache_dir("version");
    assert_falls_back_cold(&dir, |path| {
        let mut bytes = std::fs::read(path).expect("reads");
        // The u32 format version sits right after the 8-byte magic; a
        // version bump alone must reject, so keep the checksum valid.
        let bumped = (dtas::FORMAT_VERSION + 1).to_le_bytes();
        bytes[8..12].copy_from_slice(&bumped);
        let payload_len = bytes.len() - 8;
        let checksum = rtl_base::hash::fnv1a_64(&bytes[..payload_len]);
        bytes[payload_len..].copy_from_slice(&checksum.to_le_bytes());
        std::fs::write(path, &bytes).expect("writes");
    });
}

#[test]
fn random_garbage_falls_back_cold() {
    let dir = cache_dir("garbage");
    assert_falls_back_cold(&dir, |path| {
        // Deterministic pseudo-random bytes, sized like a real snapshot.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let bytes: Vec<u8> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        std::fs::write(path, &bytes).expect("writes");
    });
}

#[test]
fn mismatched_fingerprints_reject_a_renamed_snapshot() {
    let dir = cache_dir("fingerprints");
    let source = persisted_snapshot(&dir);

    // A different result-shaping config looks for a different file: the
    // snapshot is simply missing (cold start, no rejection).
    let reconfigured = Dtas::new(lsi_logic_subset()).with_config(DtasConfig {
        node_cap: 8,
        persist_path: Some(dir.clone()),
        ..DtasConfig::default()
    });
    let stats = reconfigured.cache_stats();
    assert_eq!((stats.snapshot_loads, stats.snapshot_rejects), (0, 0));

    // Force the mismatch past the file name (as if someone renamed or
    // copied snapshots between cache directories): the header fingerprint
    // check must reject it.
    let target = snapshot_file(&reconfigured, &dir);
    drop(reconfigured);
    std::fs::copy(&source, &target).expect("copies");
    let reconfigured = Dtas::new(lsi_logic_subset()).with_config(DtasConfig {
        node_cap: 8,
        persist_path: Some(dir.clone()),
        ..DtasConfig::default()
    });
    let stats = reconfigured.cache_stats();
    assert_eq!((stats.snapshot_loads, stats.snapshot_rejects), (0, 1));

    // Same story for a different rule base.
    let regressed = Dtas::warm_start(lsi_logic_subset(), &dir).with_rules(RuleSet::standard());
    let target = snapshot_file(&regressed, &dir);
    drop(regressed);
    std::fs::copy(&source, &target).expect("copies");
    let regressed = Dtas::warm_start(lsi_logic_subset(), &dir).with_rules(RuleSet::standard());
    let stats = regressed.cache_stats();
    assert_eq!((stats.snapshot_loads, stats.snapshot_rejects), (0, 1));

    // And for a different library under the copied-file scenario.
    let poorer = lsi_logic_subset().subset(&["IVA", "ND2", "FA1A", "ADD2", "ADD4"]);
    let shrunk = Dtas::warm_start(poorer.clone(), &dir);
    let target = snapshot_file(&shrunk, &dir);
    drop(shrunk);
    std::fs::copy(&source, &target).expect("copies");
    let shrunk = Dtas::warm_start(poorer, &dir);
    let stats = shrunk.cache_stats();
    assert_eq!((stats.snapshot_loads, stats.snapshot_rejects), (0, 1));

    drop(reconfigured);
    drop(regressed);
    drop(shrunk);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drop_only_flushes_when_dirty_since_last_checkpoint() {
    let dir = cache_dir("dirty");
    {
        // Checkpointed and untouched since: drop must not rewrite.
        let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
        engine.synthesize(&add_spec(8)).expect("solves");
        engine.checkpoint().expect("writes").expect("bound");
        let path = snapshot_file(&engine, &dir);
        std::fs::remove_file(&path).expect("removes");
        drop(engine);
        assert!(!path.exists(), "clean engine must not flush on drop");
    }
    {
        // New solves after the checkpoint: drop must flush them.
        let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
        engine.synthesize(&add_spec(8)).expect("solves");
        engine.checkpoint().expect("writes").expect("bound");
        engine.synthesize(&add_spec(16)).expect("solves more");
        let path = snapshot_file(&engine, &dir);
        std::fs::remove_file(&path).expect("removes");
        drop(engine);
        assert!(path.exists(), "dirty engine must flush on drop");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejection_reason_is_reportable() {
    let dir = cache_dir("reason");
    let path = persisted_snapshot(&dir);
    let bytes = std::fs::read(&path).expect("reads");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncates");
    let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
    let reason = engine
        .last_snapshot_rejection()
        .expect("rejection recorded");
    assert!(
        reason.contains("checksum") || reason.contains("truncated"),
        "{reason}"
    );
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mem_snapshot_store_shares_state_between_engines() {
    let store = Arc::new(MemSnapshotStore::new());
    let first = Dtas::new(lsi_logic_subset()).with_store(store.clone());
    let cold = first.synthesize(&add_spec(16)).expect("solves");
    first.checkpoint().expect("saves").expect("bound");
    assert_eq!(store.len(), 1);

    let second = Dtas::new(lsi_logic_subset()).with_store(store.clone());
    let stats = second.cache_stats();
    assert_eq!(stats.snapshot_loads, 1);
    let warm = second.synthesize(&add_spec(16)).expect("warm hit");
    assert_sets_identical(&cold, &warm);
    let stats = second.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 0));
}

#[test]
fn warm_engine_keeps_growing_and_recheckpoints() {
    // Load a snapshot, solve something new, flush again, and reload: the
    // second snapshot carries both generations of results.
    let dir = cache_dir("growing");
    {
        let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
        engine.synthesize(&add_spec(8)).expect("solves");
    }
    {
        let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
        assert_eq!(engine.cache_stats().snapshot_loads, 1);
        engine.synthesize(&add_spec(16)).expect("solves");
        // Drop flushes the merged state.
    }
    let engine = Dtas::warm_start(lsi_logic_subset(), &dir);
    let stats = engine.cache_stats();
    assert_eq!(stats.cached_results, 2);
    engine.synthesize(&add_spec(8)).expect("hit");
    engine.synthesize(&add_spec(16)).expect("hit");
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses), (2, 0));
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// For arbitrary small workloads, a warm-started engine's results are
    /// bit-identical to the cold engine's, query by query.
    #[test]
    fn warm_results_pin_cold_results(
        widths in proptest::collection::vec(1usize..10, 1..4),
        muxes in proptest::collection::vec((1usize..6, 2usize..5), 0..3),
        case in 0u32..1_000_000,
    ) {
        let dir = cache_dir(&format!("prop{case}"));
        let mut specs: Vec<ComponentSpec> = widths.iter().map(|&w| add_spec(w)).collect();
        specs.extend(muxes.iter().map(|&(w, n)| mux_spec(w, n)));

        let cold = Dtas::warm_start(lsi_logic_subset(), &dir);
        let cold_sets: Vec<DesignSet> = specs
            .iter()
            .map(|s| cold.synthesize(s).expect("cold solves"))
            .collect();
        cold.checkpoint().expect("writes").expect("bound");
        drop(cold);

        let warm = Dtas::warm_start(lsi_logic_subset(), &dir);
        prop_assert_eq!(warm.cache_stats().snapshot_loads, 1);
        for (spec, cold_set) in specs.iter().zip(&cold_sets) {
            let warm_set = warm.synthesize(spec).expect("warm solves");
            assert_sets_identical(cold_set, &warm_set);
        }
        prop_assert_eq!(warm.cache_stats().misses, 0);
        drop(warm);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
