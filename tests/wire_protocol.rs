//! Adversarial wire-protocol suite: every way a hostile or broken peer
//! can corrupt the byte stream must come back as a *typed* error frame
//! (or a typed connect refusal) — and the server must keep serving
//! well-behaved clients afterwards. Plus property round-trips proving
//! frame encoding is bit-stable.
//!
//! The matrix, mirroring the hardening claims in `core::net`:
//!
//! | attack                      | expected response                    |
//! |-----------------------------|--------------------------------------|
//! | wrong magic                 | `Protocol` error frame, close        |
//! | bit-flipped payload         | checksum `Protocol` error, close     |
//! | oversized length prefix     | `Protocol` error from the header     |
//! | truncated frame + hangup    | server unaffected                    |
//! | garbage payload (handshake) | `Protocol` error frame, close        |
//! | garbage payload (later)     | `Protocol` error, connection LIVES   |
//! | future wire version         | typed `Version` refusal              |
//! | fingerprint mismatch        | typed `FingerprintMismatch` refusal  |
//! | mid-stream disconnect       | server unaffected                    |
//! | cancel of unknown id        | ignored, connection LIVES            |
//!
//! Plus the resilience round-trips: `Cancel` → typed `Cancelled` frame,
//! queued deadline → typed `DeadlineExceeded` frame, and
//! [`ReconnectingClient`] replaying in-flight work through a killed
//! connection (via the [`common::flaky_proxy`] fixture).

mod common;

use cells::lsi::lsi_logic_subset;
use common::flaky_proxy::FlakyProxy;
use common::{slow_engine, slow_spec};
use dtas::net::{
    ClientMsg, ReconnectingClient, RetryPolicy, ServeConfig, ServerMsg, WireClient, WireError,
    WireServer, MAX_FRAME_LEN, WIRE_MAGIC, WIRE_VERSION,
};
use dtas::{Dtas, Priority, ServiceConfig, SynthRequest};
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use proptest::prelude::*;
use rtl_base::hash::fnv1a_64;
use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn adder(width: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::AddSub, width).with_ops(OpSet::only(Op::Add))
}

fn start_server() -> (Arc<Dtas>, WireServer) {
    let engine = Arc::new(Dtas::new(lsi_logic_subset()));
    let server = WireServer::start(
        Arc::clone(&engine),
        ServeConfig::default(),
        ("127.0.0.1", 0),
    )
    .expect("binds an ephemeral loopback port");
    (engine, server)
}

/// A single-worker server over a [`slow_engine`]: one in-flight request
/// occupies the only worker, so a second submission deterministically
/// waits in queue — where cancels and deadlines can reach it.
fn start_slow_server(delay: Duration) -> WireServer {
    WireServer::start(
        slow_engine(delay),
        ServeConfig {
            service: ServiceConfig {
                workers: Some(1),
                ..ServiceConfig::default()
            },
            ..ServeConfig::default()
        },
        ("127.0.0.1", 0),
    )
    .expect("binds an ephemeral loopback port")
}

/// Builds one syntactically valid frame around an arbitrary payload —
/// the checksum is correct, so only the *payload* is under test.
fn raw_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::new();
    frame.extend_from_slice(&WIRE_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    let checksum = fnv1a_64(&frame);
    frame.extend_from_slice(&checksum.to_le_bytes());
    frame
}

/// Reads exactly one frame's bytes off a raw socket.
fn read_frame_bytes(stream: &mut TcpStream) -> Vec<u8> {
    let mut header = [0u8; 8];
    stream.read_exact(&mut header).expect("frame header");
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
    let mut rest = vec![0u8; len + 8];
    stream.read_exact(&mut rest).expect("frame body");
    let mut frame = header.to_vec();
    frame.extend_from_slice(&rest);
    frame
}

fn read_msg(stream: &mut TcpStream) -> ServerMsg {
    ServerMsg::decode_frame(&read_frame_bytes(stream)).expect("server frames decode")
}

fn hello_frame() -> Vec<u8> {
    ClientMsg::Hello {
        wire_version: WIRE_VERSION,
        lane: Priority::Interactive,
        expect: None,
    }
    .encode_frame()
}

/// Raw-socket handshake, for tests that need byte-level control after it.
fn raw_handshake(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream.write_all(&hello_frame()).expect("sends hello");
    match read_msg(&mut stream) {
        ServerMsg::HelloAck { wire_version, .. } => assert_eq!(wire_version, WIRE_VERSION),
        other => panic!("expected HelloAck, got {other:?}"),
    }
    stream
}

/// The survival probe: after an attack, a well-behaved client must
/// still get a real answer.
fn assert_server_survives(addr: SocketAddr) {
    let mut client =
        WireClient::connect(addr, Priority::Interactive).expect("fresh client connects");
    let set = client
        .request(&SynthRequest::new(adder(4)))
        .expect("fresh client synthesizes");
    assert!(
        !set.alternatives.is_empty(),
        "survival probe produced no alternatives"
    );
}

/// Reading after a connection-fatal error must observe the close.
fn assert_connection_closed(stream: &mut TcpStream) {
    let mut rest = Vec::new();
    let n = stream.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "expected EOF after a fatal error frame, got {rest:?}");
}

#[test]
fn wrong_magic_is_a_typed_error_and_the_server_survives() {
    let (_engine, server) = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connects");
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("writes");
    match read_msg(&mut stream) {
        ServerMsg::Error(WireError::Protocol(m)) => {
            assert!(m.contains("magic"), "unexpected message: {m}")
        }
        other => panic!("expected a Protocol error frame, got {other:?}"),
    }
    assert_connection_closed(&mut stream);
    assert_server_survives(server.local_addr());
    server.shutdown();
}

#[test]
fn bit_flipped_payload_fails_the_checksum() {
    let (_engine, server) = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connects");
    let mut frame = hello_frame();
    frame[9] ^= 0x40; // flip one payload bit; header stays plausible
    stream.write_all(&frame).expect("writes");
    match read_msg(&mut stream) {
        ServerMsg::Error(WireError::Protocol(m)) => {
            assert!(m.contains("checksum"), "unexpected message: {m}")
        }
        other => panic!("expected a checksum error frame, got {other:?}"),
    }
    assert_connection_closed(&mut stream);
    assert_server_survives(server.local_addr());
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_rejected_from_the_header_alone() {
    let (_engine, server) = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connects");
    // A hostile 3.9 GiB announcement — only 8 header bytes ever sent.
    let mut header = WIRE_MAGIC.to_vec();
    header.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    stream.write_all(&header).expect("writes");
    match read_msg(&mut stream) {
        ServerMsg::Error(WireError::Protocol(m)) => {
            assert!(m.contains("cap"), "unexpected message: {m}")
        }
        other => panic!("expected a frame-cap error frame, got {other:?}"),
    }
    assert_connection_closed(&mut stream);
    assert_server_survives(server.local_addr());
    server.shutdown();
}

#[test]
fn truncated_frame_then_hangup_leaves_the_server_serving() {
    let (_engine, server) = start_server();
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connects");
        let frame = hello_frame();
        stream.write_all(&frame[..6]).expect("writes a torn header");
        // Hang up mid-frame without warning.
    }
    assert_server_survives(server.local_addr());
    server.shutdown();
}

#[test]
fn garbage_handshake_payload_is_a_typed_error() {
    let (_engine, server) = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connects");
    // Valid framing, valid checksum, nonsense message bytes.
    stream.write_all(&raw_frame(&[0xFF; 32])).expect("writes");
    match read_msg(&mut stream) {
        ServerMsg::Error(WireError::Protocol(m)) => {
            assert!(m.contains("tag"), "unexpected message: {m}")
        }
        other => panic!("expected a decode error frame, got {other:?}"),
    }
    assert_connection_closed(&mut stream);
    assert_server_survives(server.local_addr());
    server.shutdown();
}

#[test]
fn garbage_payload_after_handshake_keeps_the_connection_alive() {
    let (_engine, server) = start_server();
    let mut stream = raw_handshake(server.local_addr());
    // Undecodable message in a checksummed frame: the stream is still in
    // sync, so the server reports it and keeps listening.
    stream.write_all(&raw_frame(&[0xFF; 16])).expect("writes");
    match read_msg(&mut stream) {
        ServerMsg::Error(WireError::Protocol(m)) => {
            assert!(m.contains("tag"), "unexpected message: {m}")
        }
        other => panic!("expected a decode error frame, got {other:?}"),
    }
    // Same connection, real request: still answered.
    let request_frame = ClientMsg::Request {
        id: 7,
        request: SynthRequest::new(adder(4)),
    }
    .encode_frame();
    stream.write_all(&request_frame).expect("writes");
    match read_msg(&mut stream) {
        ServerMsg::Result {
            id,
            slot,
            of,
            result,
            ..
        } => {
            assert_eq!((id, slot, of), (7, 0, 1));
            assert!(!result.expect("synthesizes").alternatives.is_empty());
        }
        other => panic!("expected a Result frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn future_wire_version_is_refused_with_both_versions() {
    let (_engine, server) = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connects");
    let frame = ClientMsg::Hello {
        wire_version: WIRE_VERSION + 7,
        lane: Priority::Bulk,
        expect: None,
    }
    .encode_frame();
    stream.write_all(&frame).expect("writes");
    match read_msg(&mut stream) {
        ServerMsg::Error(WireError::Version { server, client }) => {
            assert_eq!(server, WIRE_VERSION);
            assert_eq!(client, WIRE_VERSION + 7);
        }
        other => panic!("expected a Version refusal, got {other:?}"),
    }
    assert_connection_closed(&mut stream);
    assert_server_survives(server.local_addr());
    server.shutdown();
}

#[test]
fn fingerprint_mismatch_is_refused_and_matching_pins_connect() {
    let (engine, server) = start_server();
    let key = engine.store_key();
    // Wrong library fingerprint: typed refusal naming the field.
    match WireClient::connect_checked(
        server.local_addr(),
        Priority::Interactive,
        (key.library ^ 1, key.rules, key.config, key.canon),
    ) {
        Err(WireError::FingerprintMismatch { field }) => assert_eq!(field, "library"),
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    // Wrong config fingerprint: same, different field.
    match WireClient::connect_checked(
        server.local_addr(),
        Priority::Interactive,
        (key.library, key.rules, key.config ^ 1, key.canon),
    ) {
        Err(WireError::FingerprintMismatch { field }) => assert_eq!(field, "config"),
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    // Wrong canonicalization-scheme fingerprint: same, different field.
    match WireClient::connect_checked(
        server.local_addr(),
        Priority::Interactive,
        (key.library, key.rules, key.config, key.canon ^ 1),
    ) {
        Err(WireError::FingerprintMismatch { field }) => assert_eq!(field, "canon"),
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    // The true quad connects and serves.
    let mut client = WireClient::connect_checked(
        server.local_addr(),
        Priority::Interactive,
        (key.library, key.rules, key.config, key.canon),
    )
    .expect("matching fingerprints connect");
    assert_eq!(
        client.server_fingerprints(),
        (key.library, key.rules, key.config, key.canon)
    );
    client
        .request(&SynthRequest::new(adder(4)))
        .expect("pinned client synthesizes");
    server.shutdown();
}

#[test]
fn mid_stream_disconnect_after_a_request_leaves_the_server_serving() {
    let (_engine, server) = start_server();
    {
        let mut stream = raw_handshake(server.local_addr());
        let frame = ClientMsg::Request {
            id: 1,
            request: SynthRequest::new(adder(8)),
        }
        .encode_frame();
        stream.write_all(&frame).expect("writes");
        // Vanish without reading the answer: the server's writer thread
        // hits a dead socket and must fail quietly.
    }
    assert_server_survives(server.local_addr());
    let stats = server.shutdown();
    assert_eq!(
        stats.completed, stats.admitted,
        "abandoned tickets still resolve: {stats}"
    );
}

#[test]
fn bye_closes_the_connection_cleanly() {
    let (_engine, server) = start_server();
    let mut stream = raw_handshake(server.local_addr());
    stream
        .write_all(&ClientMsg::Bye.encode_frame())
        .expect("writes");
    assert_connection_closed(&mut stream);
    assert_server_survives(server.local_addr());
    server.shutdown();
}

#[test]
fn cancel_over_the_wire_returns_a_typed_cancelled_frame() {
    let server = start_slow_server(Duration::from_millis(300));
    let mut stream = raw_handshake(server.local_addr());
    // id 1 occupies the single worker; id 2 waits in queue behind it.
    for (id, width) in [(1u64, 8usize), (2, 9)] {
        let frame = ClientMsg::Request {
            id,
            request: SynthRequest::new(slow_spec(width)),
        }
        .encode_frame();
        stream.write_all(&frame).expect("writes");
    }
    // Cancel the queued one while the occupier is still running.
    stream
        .write_all(&ClientMsg::Cancel { id: 2 }.encode_frame())
        .expect("writes");
    // Results come back in submission order: the occupier's real answer,
    // then the typed cancellation.
    match read_msg(&mut stream) {
        ServerMsg::Result {
            id: 1,
            result: Ok(_),
            ..
        } => {}
        other => panic!("expected the occupier's result first, got {other:?}"),
    }
    match read_msg(&mut stream) {
        ServerMsg::Result {
            id: 2,
            result: Err(WireError::Cancelled),
            ..
        } => {}
        other => panic!("expected a Cancelled frame for id 2, got {other:?}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.cancelled, 1, "{stats}");
    assert_eq!(stats.admitted, 2, "{stats}");
}

#[test]
fn queued_deadline_over_the_wire_returns_a_typed_expiry_frame() {
    let server = start_slow_server(Duration::from_millis(300));
    let mut stream = raw_handshake(server.local_addr());
    // The occupier has no deadline; the request queued behind it carries
    // one far shorter than the occupier's service time.
    let occupier = ClientMsg::Request {
        id: 1,
        request: SynthRequest::new(slow_spec(8)),
    };
    let doomed = ClientMsg::Request {
        id: 2,
        request: SynthRequest::new(slow_spec(9)).with_deadline(Duration::from_millis(50)),
    };
    stream.write_all(&occupier.encode_frame()).expect("writes");
    stream.write_all(&doomed.encode_frame()).expect("writes");
    match read_msg(&mut stream) {
        ServerMsg::Result {
            id: 1,
            result: Ok(_),
            ..
        } => {}
        other => panic!("expected the occupier's result first, got {other:?}"),
    }
    match read_msg(&mut stream) {
        ServerMsg::Result {
            id: 2,
            result: Err(WireError::DeadlineExceeded),
            ..
        } => {}
        other => panic!("expected a DeadlineExceeded frame for id 2, got {other:?}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.deadline_expired, 1, "{stats}");
}

#[test]
fn cancel_for_an_unknown_id_is_ignored_and_the_connection_lives() {
    let (_engine, server) = start_server();
    let mut stream = raw_handshake(server.local_addr());
    stream
        .write_all(&ClientMsg::Cancel { id: 424_242 }.encode_frame())
        .expect("writes");
    // The stream is still in sync: a real request on the same connection
    // is still answered.
    let frame = ClientMsg::Request {
        id: 1,
        request: SynthRequest::new(adder(4)),
    }
    .encode_frame();
    stream.write_all(&frame).expect("writes");
    match read_msg(&mut stream) {
        ServerMsg::Result {
            id: 1,
            result: Ok(set),
            ..
        } => assert!(!set.alternatives.is_empty()),
        other => panic!("expected a Result frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn reconnecting_client_replays_in_flight_requests_through_a_connection_kill() {
    let (_engine, server) = start_server();
    let proxy = FlakyProxy::start(server.local_addr());
    let mut client = ReconnectingClient::connect(
        proxy.addr().to_string(),
        Priority::Interactive,
        RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            ..RetryPolicy::default()
        },
    )
    .expect("connects through the proxy");
    // Several submissions in flight, then the "network" dies mid-stream.
    let ids: Vec<u64> = (4..10)
        .map(|w| {
            client
                .submit(&SynthRequest::new(adder(w)))
                .expect("submits")
        })
        .collect();
    assert!(
        proxy.kill_live() >= 1,
        "the proxy should have had live connections to kill"
    );
    // Every submission still resolves: the client reconnects and replays
    // whatever had not been delivered yet.
    let mut delivered = HashSet::new();
    for _ in 0..ids.len() {
        let result = client.recv_result().expect("result after replay");
        assert!(
            result.result.is_ok(),
            "replayed request failed: {:?}",
            result.result.err()
        );
        delivered.insert(result.id);
    }
    assert_eq!(
        delivered,
        ids.iter().copied().collect::<HashSet<_>>(),
        "every caller-side id resolves exactly once"
    );
    assert!(client.reconnects() >= 1, "the kill must force a reconnect");
    assert!(
        proxy.connections_accepted() >= 2,
        "the replay must arrive on a fresh connection"
    );
    server.shutdown();
}

#[test]
fn retries_exhausted_after_repeated_mid_handshake_cuts() {
    let (_engine, server) = start_server();
    let proxy = FlakyProxy::start(server.local_addr());
    // Every new connection dies four bytes in — inside the handshake —
    // so each attempt fails and the bounded retry budget runs dry.
    proxy.cut_new_connections_after(4);
    let attempts = 3;
    match ReconnectingClient::connect(
        proxy.addr().to_string(),
        Priority::Interactive,
        RetryPolicy {
            max_attempts: attempts,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(5),
            ..RetryPolicy::default()
        },
    ) {
        Err(WireError::RetriesExhausted {
            attempts: spent, ..
        }) => {
            assert_eq!(spent, attempts)
        }
        Err(other) => panic!("expected RetriesExhausted, got {other:?}"),
        Ok(_) => panic!("connected through a proxy that cuts every handshake"),
    }
    assert!(proxy.connections_cut() >= u64::from(attempts));
    // Pass-through restored: the same proxy serves a fresh client.
    proxy.cut_new_connections_after(0);
    let mut client = WireClient::connect(proxy.addr(), Priority::Interactive)
        .expect("pass-through connects again");
    client
        .request(&SynthRequest::new(adder(4)))
        .expect("healed proxy serves");
    server.shutdown();
}

// ---------------------------------------------------------------------
// Property round-trips: encode → decode → re-encode is bit-identical.

fn arb_request() -> impl Strategy<Value = SynthRequest> {
    (
        1usize..17,
        0u8..3,
        any::<bool>(),
        1usize..64,
        any::<bool>(),
        0u32..1000,
        0u32..1000,
        any::<bool>(),
        0u64..120_000,
    )
        .prop_map(
            |(width, filter, capped, cap, weighted, wa, wd, dated, deadline_ms)| {
                let mut request = SynthRequest::new(adder(width));
                match filter {
                    1 => request = request.with_root_filter(dtas::FilterPolicy::Pareto),
                    2 => {
                        request = request.with_root_filter(dtas::FilterPolicy::Slack {
                            area: f64::from(wa) / 8.0,
                            delay: f64::from(wd) / 8.0,
                        })
                    }
                    _ => {}
                }
                if capped {
                    request = request.with_front_cap(cap);
                }
                if weighted {
                    request = request.with_weights(f64::from(wa) / 4.0, f64::from(wd) / 4.0);
                }
                if dated {
                    request = request.with_deadline(Duration::from_millis(deadline_ms));
                }
                request
            },
        )
}

fn arb_client_msg() -> impl Strategy<Value = ClientMsg> {
    prop_oneof![
        (
            any::<u32>(),
            any::<bool>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(v, pinned, a, b, c, d)| ClientMsg::Hello {
                wire_version: v,
                lane: if v & 1 == 0 {
                    Priority::Interactive
                } else {
                    Priority::Bulk
                },
                expect: pinned.then_some((a, b, c, d)),
            }),
        (any::<u64>(), arb_request()).prop_map(|(id, request)| ClientMsg::Request { id, request }),
        (any::<u64>(), proptest::collection::vec(arb_request(), 0..4))
            .prop_map(|(id, requests)| ClientMsg::Batch { id, requests }),
        (any::<u64>()).prop_map(|id| ClientMsg::Cancel { id }),
        (0u8..1).prop_map(|_| ClientMsg::Stats),
        (0u8..1).prop_map(|_| ClientMsg::Bye),
    ]
}

fn arb_wire_error() -> impl Strategy<Value = WireError> {
    prop_oneof![
        (any::<u64>()).prop_map(|n| WireError::Io(format!("io {n}"))),
        (any::<u64>()).prop_map(|n| WireError::Protocol(format!("proto {n}"))),
        (any::<u32>(), any::<u32>())
            .prop_map(|(server, client)| WireError::Version { server, client }),
        (0u8..4).prop_map(|f| WireError::FingerprintMismatch {
            field: ["library", "rules", "config", "canon"][f as usize].to_string(),
        }),
        (any::<u64>()).prop_map(|queue_depth| WireError::Overloaded { queue_depth }),
        (0u8..1).prop_map(|_| WireError::Shed),
        (0u8..1).prop_map(|_| WireError::ShuttingDown),
        (0u8..1).prop_map(|_| WireError::Cancelled),
        (0u8..1).prop_map(|_| WireError::DeadlineExceeded),
        (any::<u32>(), any::<u64>()).prop_map(|(attempts, n)| WireError::RetriesExhausted {
            attempts,
            last: format!("io {n}"),
        }),
        (any::<u64>()).prop_map(|n| WireError::Internal(format!("worker {n}"))),
    ]
}

fn arb_server_msg() -> impl Strategy<Value = ServerMsg> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<bool>()
        )
            .prop_map(
                |(v, library, rules, config, canon, bulk)| ServerMsg::HelloAck {
                    wire_version: v,
                    lane: if bulk {
                        Priority::Bulk
                    } else {
                        Priority::Interactive
                    },
                    library,
                    rules,
                    config,
                    canon,
                }
            ),
        (any::<u64>(), any::<u32>(), any::<u32>(), arb_wire_error()).prop_map(
            |(id, slot, of, e)| ServerMsg::Result {
                id,
                slot,
                of,
                result: Err(e),
            }
        ),
        arb_wire_error().prop_map(ServerMsg::Error),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Client frames survive encode → decode → re-encode bit-identically.
    #[test]
    fn client_frames_round_trip_bit_identically(msg in arb_client_msg()) {
        let bytes = msg.encode_frame();
        let decoded = ClientMsg::decode_frame(&bytes).expect("round-trip decodes");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(decoded.encode_frame(), bytes);
    }

    /// Server frames survive encode → decode → re-encode bit-identically.
    #[test]
    fn server_frames_round_trip_bit_identically(msg in arb_server_msg()) {
        let bytes = msg.encode_frame();
        let decoded = ServerMsg::decode_frame(&bytes).expect("round-trip decodes");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(decoded.encode_frame(), bytes);
    }

    /// Any single bit flip anywhere in a frame is detected: decode fails
    /// (checksum, magic or length) — it never yields a different valid
    /// message silently.
    #[test]
    fn any_single_bit_flip_is_detected(msg in arb_client_msg(), flip in any::<u64>()) {
        let mut bytes = msg.encode_frame();
        let bit = (flip % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        match ClientMsg::decode_frame(&bytes) {
            Err(WireError::Protocol(_)) => {}
            Ok(other) => prop_assert!(
                false,
                "bit flip at {} produced a different valid message: {:?}",
                bit,
                other
            ),
            Err(other) => prop_assert!(false, "unexpected error kind: {:?}", other),
        }
    }
}
