//! Asserts the *shape* of the paper's Figure 3 on the 64-bit ALU: a
//! monotone area/delay trade-off whose fastest design pays a modest area
//! premium for a several-fold delay reduction, generated well inside the
//! paper's 15-minute budget.

use cells::lsi::lsi_logic_subset;
use dtas::{Dtas, DtasConfig, FilterPolicy};
use genus::kind::ComponentKind;
use genus::op::Op;
use genus::spec::ComponentSpec;
use std::time::Instant;

fn alu64() -> ComponentSpec {
    ComponentSpec::new(ComponentKind::Alu, 64)
        .with_ops(Op::paper_alu16())
        .with_carry_in(true)
}

#[test]
fn figure3_tradeoff_shape_holds() {
    let engine = Dtas::builder(lsi_logic_subset())
        .config(DtasConfig {
            root_filter: FilterPolicy::Pareto,
            ..DtasConfig::default()
        })
        .build();
    let start = Instant::now();
    let set = engine.run(alu64()).expect("ALU64 synthesizes");
    let elapsed = start.elapsed();

    // The paper's runtime bound (SUN-3: 15 minutes; here: seconds).
    assert!(
        elapsed.as_secs() < 120,
        "synthesis took {elapsed:?}, far slower than expected"
    );

    let front = &set.alternatives;
    assert!(
        front.len() >= 4,
        "expected several favorable-tradeoff designs, got {}",
        front.len()
    );
    // Monotone: area increasing, delay decreasing.
    for pair in front.windows(2) {
        assert!(pair[0].area < pair[1].area);
        assert!(pair[0].delay > pair[1].delay);
    }
    let smallest = set.smallest().expect("nonempty");
    let fastest = set.fastest().expect("nonempty");
    // Paper: fastest is 34% larger, 81% faster. Shape tolerance: the
    // area premium is modest (5%..60%) and the delay reduction dominant
    // (at least 70%).
    let area_premium = (fastest.area - smallest.area) / smallest.area;
    let delay_reduction = (smallest.delay - fastest.delay) / smallest.delay;
    assert!(
        (0.05..=0.60).contains(&area_premium),
        "area premium {area_premium:.2} out of the Figure-3 band"
    );
    assert!(
        delay_reduction >= 0.70,
        "delay reduction {delay_reduction:.2} below the Figure-3 band"
    );
    // Absolute anchors: same order of magnitude as the paper's 4879
    // gates / 134.3 ns smallest design.
    assert!(
        (1500.0..=8000.0).contains(&smallest.area),
        "smallest area {} out of band",
        smallest.area
    );
    assert!(
        (80.0..=200.0).contains(&smallest.delay),
        "smallest delay {} out of band",
        smallest.delay
    );
}

#[test]
fn figure3_intermediate_knee_exists() {
    // The paper highlights two designs that recover most of the speed for
    // ~14% area; require some design with >=60% delay reduction at <=25%
    // area premium.
    let engine = Dtas::builder(lsi_logic_subset())
        .config(DtasConfig {
            root_filter: FilterPolicy::Pareto,
            ..DtasConfig::default()
        })
        .build();
    let set = engine.run(alu64()).expect("synthesizes");
    let smallest = set.smallest().expect("nonempty");
    let knee = set.alternatives.iter().any(|alt| {
        let premium = (alt.area - smallest.area) / smallest.area;
        let reduction = (smallest.delay - alt.delay) / smallest.delay;
        premium <= 0.25 && reduction >= 0.60
    });
    assert!(knee, "no knee point found:\n{}", set.figure3_table());
}

#[test]
fn slowest_design_is_ripple_fastest_is_lookahead() {
    let engine = Dtas::builder(lsi_logic_subset())
        .config(DtasConfig {
            root_filter: FilterPolicy::Pareto,
            ..DtasConfig::default()
        })
        .build();
    let set = engine.run(alu64()).expect("synthesizes");
    let smallest = set.smallest().expect("nonempty");
    let fastest = set.fastest().expect("nonempty");
    let small_cells = smallest.implementation.cell_census();
    let fast_cells = fastest.implementation.cell_census();
    assert!(
        small_cells.contains_key("FA1A"),
        "smallest ALU should ripple through 1-bit full adders: {small_cells:?}"
    );
    assert!(
        fast_cells.contains_key("CLA4"),
        "fastest ALU should use the carry-lookahead generator: {fast_cells:?}"
    );
}
