//! Seeded defect corpus for the `core::analyze` static-analysis passes,
//! exercised through the same public surface `dtas lint` uses: for every
//! shipped diagnostic code there is at least one fixture that triggers it
//! and one near-miss that must stay silent. A property test at the end
//! checks the lint's contract with the engine — a lint-clean random
//! netlist maps without panicking — and the `examples/` artifacts are
//! kept lint-clean and in sync with their in-tree sources.

use cells::lsi::lsi_logic_subset;
use cells::{Cell, CellLibrary};
use dtas::template::{NetlistTemplate, Signal, SpecModelCache, TemplateBuilder};
use dtas::{Dtas, LintRegistry, LintReport, LintTarget, Rule, RuleSet};
use genus::component::Instance;
use genus::kind::{ComponentKind, GateOp};
use genus::netlist::Netlist;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use genus::stdlib::GenusLibrary;
use hls_rtl_bridge::Flow;
use legend::ast::{LegendDescription, LegendExpr, OperationDecl, OpsClause, PortDecl, WidthSpec};
use proptest::prelude::*;
use std::sync::Arc;

fn codes(report: &LintReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

// ---------------------------------------------------------------- netlists

fn netlist_codes(nl: &Netlist) -> Vec<&'static str> {
    codes(&LintRegistry::standard().run(&LintTarget::Netlist(nl)))
}

/// A correctly wired 8-bit adder: the clean baseline every netlist
/// fixture perturbs.
fn clean_adder() -> Netlist {
    let lib = GenusLibrary::standard();
    let adder = Arc::new(lib.adder(8).unwrap());
    let mut nl = Netlist::new("t");
    for (n, w) in [("a", 8), ("b", 8), ("s", 8), ("ci", 1), ("co", 1)] {
        nl.add_net(n, w).unwrap();
    }
    nl.add_instance(
        Instance::new("u0", adder)
            .with_connection("A", "a")
            .with_connection("B", "b")
            .with_connection("CI", "ci")
            .with_connection("O", "s")
            .with_connection("CO", "co"),
    )
    .unwrap();
    nl.expose_input("a", "a").unwrap();
    nl.expose_input("b", "b").unwrap();
    nl.expose_input("ci", "ci").unwrap();
    nl.expose_output("s", "s").unwrap();
    nl.expose_output("co", "co").unwrap();
    nl
}

#[test]
fn dt101_dangling_net_and_clean_near_miss() {
    assert!(netlist_codes(&clean_adder()).is_empty());
    let mut nl = clean_adder();
    nl.add_net("orphan", 4).unwrap();
    assert_eq!(netlist_codes(&nl), vec!["DT101"]);
}

#[test]
fn dt102_undriven_net_and_exposed_input_near_miss() {
    let lib = GenusLibrary::standard();
    let build = |expose_mid: bool| {
        let mut nl = Netlist::new("t");
        nl.add_net("mid", 4).unwrap();
        nl.add_net("out", 4).unwrap();
        nl.add_instance(
            Instance::new("u0", Arc::new(lib.buffer(4).unwrap()))
                .with_connection("I", "mid")
                .with_connection("O", "out"),
        )
        .unwrap();
        if expose_mid {
            nl.expose_input("mid", "mid").unwrap();
        }
        nl.expose_output("out", "out").unwrap();
        nl
    };
    assert_eq!(netlist_codes(&build(false)), vec!["DT102"]);
    assert!(netlist_codes(&build(true)).is_empty());
}

#[test]
fn dt103_multiple_drivers_and_single_driver_near_miss() {
    let lib = GenusLibrary::standard();
    let build = |second_driver: bool| {
        let mut nl = Netlist::new("t");
        nl.add_net("x", 4).unwrap();
        nl.add_net("y", 4).unwrap();
        nl.expose_input("x", "x").unwrap();
        nl.expose_output("y", "y").unwrap();
        nl.add_instance(
            Instance::new("u0", Arc::new(lib.buffer(4).unwrap()))
                .with_connection("I", "x")
                .with_connection("O", "y"),
        )
        .unwrap();
        if second_driver {
            nl.add_instance(
                Instance::new("u1", Arc::new(lib.buffer(4).unwrap()))
                    .with_connection("I", "x")
                    .with_connection("O", "y"),
            )
            .unwrap();
        }
        nl
    };
    assert_eq!(netlist_codes(&build(true)), vec!["DT103"]);
    assert!(netlist_codes(&build(false)).is_empty());
}

#[test]
fn dt104_width_mismatch_and_matching_near_miss() {
    let lib = GenusLibrary::standard();
    let build = |in_width: usize| {
        let mut nl = Netlist::new("t");
        nl.add_net("a", in_width).unwrap();
        nl.add_net("s", 8).unwrap();
        nl.expose_input("a", "a").unwrap();
        nl.expose_output("s", "s").unwrap();
        nl.add_instance(
            Instance::new("u0", Arc::new(lib.buffer(8).unwrap()))
                .with_connection("I", "a")
                .with_connection("O", "s"),
        )
        .unwrap();
        nl
    };
    assert_eq!(netlist_codes(&build(4)), vec!["DT104"]);
    assert!(netlist_codes(&build(8)).is_empty());
}

#[test]
fn dt105_combinational_loop_and_registered_near_miss() {
    let lib = GenusLibrary::standard();
    let buf = Arc::new(lib.buffer(4).unwrap());
    let mut nl = Netlist::new("loop");
    nl.add_net("x", 4).unwrap();
    nl.add_net("y", 4).unwrap();
    nl.add_instance(
        Instance::new("u0", Arc::clone(&buf))
            .with_connection("I", "x")
            .with_connection("O", "y"),
    )
    .unwrap();
    nl.add_instance(
        Instance::new("u1", Arc::clone(&buf))
            .with_connection("I", "y")
            .with_connection("O", "x"),
    )
    .unwrap();
    nl.expose_output("y", "y").unwrap();
    assert!(netlist_codes(&nl).contains(&"DT105"));

    // The same topology with a register in the path is a legitimate
    // sequential feedback structure.
    let mut nl2 = Netlist::new("reg_loop");
    nl2.add_net("x", 4).unwrap();
    nl2.add_net("y", 4).unwrap();
    nl2.add_net("clk", 1).unwrap();
    nl2.expose_input("clk", "clk").unwrap();
    nl2.add_instance(
        Instance::new("u0", buf)
            .with_connection("I", "x")
            .with_connection("O", "y"),
    )
    .unwrap();
    nl2.add_instance(
        Instance::new("r0", Arc::new(lib.register(4).unwrap()))
            .with_connection("D", "y")
            .with_connection("CLK", "clk")
            .with_connection("Q", "x"),
    )
    .unwrap();
    nl2.expose_output("y", "y").unwrap();
    assert!(!netlist_codes(&nl2).contains(&"DT105"));
}

#[test]
fn dt106_unreachable_component_and_connected_near_miss() {
    let lib = GenusLibrary::standard();
    let build = |expose_tail: bool| {
        let mut nl = Netlist::new("t");
        for (n, w) in [("x", 4), ("y", 4), ("z", 4), ("clk", 1)] {
            nl.add_net(n, w).unwrap();
        }
        nl.expose_input("x", "x").unwrap();
        nl.expose_input("clk", "clk").unwrap();
        nl.expose_output("y", "y").unwrap();
        nl.add_instance(
            Instance::new("u0", Arc::new(lib.buffer(4).unwrap()))
                .with_connection("I", "x")
                .with_connection("O", "y"),
        )
        .unwrap();
        // A side branch: x -> r0 -> z; its Q output either feeds the
        // design output (near miss) or a register whose output is left
        // unconnected (unreachable).
        nl.add_instance(
            Instance::new("r0", Arc::new(lib.register(4).unwrap()))
                .with_connection("D", "x")
                .with_connection("CLK", "clk")
                .with_connection("Q", "z"),
        )
        .unwrap();
        let mut sink = Instance::new("r1", Arc::new(lib.register(4).unwrap()))
            .with_connection("D", "z")
            .with_connection("CLK", "clk");
        if expose_tail {
            nl.add_net("q", 4).unwrap();
            sink = sink.with_connection("Q", "q");
        }
        nl.add_instance(sink).unwrap();
        if expose_tail {
            nl.expose_output("q", "q").unwrap();
        }
        nl
    };
    let found = netlist_codes(&build(false));
    assert!(found.contains(&"DT106"), "{found:?}");
    assert!(!found.contains(&"DT101"), "{found:?}");
    assert!(netlist_codes(&build(true)).is_empty());
}

#[test]
fn dt107_unknown_reference_and_known_near_miss() {
    let lib = GenusLibrary::standard();
    let build = |net: &str| {
        let mut nl = Netlist::new("t");
        nl.add_net("x", 4).unwrap();
        nl.add_net("s", 4).unwrap();
        nl.expose_input("x", "x").unwrap();
        nl.expose_output("s", "s").unwrap();
        nl.add_instance(
            Instance::new("u0", Arc::new(lib.buffer(4).unwrap()))
                .with_connection("I", net)
                .with_connection("O", "s"),
        )
        .unwrap();
        nl
    };
    assert!(netlist_codes(&build("ghost")).contains(&"DT107"));
    assert!(netlist_codes(&build("x")).is_empty());
}

// --------------------------------------------------------------- rule base

/// A rule with a fixed name and expansion function, appended to the
/// shipped base as a library rule.
struct TestRule {
    name: &'static str,
    expand: fn(&ComponentSpec) -> Vec<NetlistTemplate>,
}

impl Rule for TestRule {
    fn name(&self) -> &str {
        self.name
    }
    fn doc(&self) -> &str {
        "lint corpus rule"
    }
    fn expand(&self, spec: &ComponentSpec) -> Vec<NetlistTemplate> {
        (self.expand)(spec)
    }
}

fn base_with(extra: Vec<Box<dyn Rule>>) -> RuleSet {
    let mut rules = RuleSet::standard().with_lsi_extensions();
    rules.append_library_rules(extra);
    rules
}

fn rule_codes(rules: &RuleSet) -> Vec<&'static str> {
    let library = lsi_logic_subset();
    codes(&LintRegistry::standard().run(&LintTarget::Rules {
        rules,
        library: &library,
    }))
}

/// DELAY.4 -> a chain of NOT gates: structurally valid, and the chain
/// length makes two such rules structurally distinct.
fn not_chain(len: usize) -> fn(&ComponentSpec) -> Vec<NetlistTemplate> {
    match len {
        2 => |spec| not_chain_template(spec, 2),
        _ => |spec| not_chain_template(spec, 4),
    }
}

fn not_chain_template(spec: &ComponentSpec, len: usize) -> Vec<NetlistTemplate> {
    if spec.kind != ComponentKind::Delay || spec.width != 4 {
        return Vec::new();
    }
    let not4 = ComponentSpec::new(ComponentKind::Gate(GateOp::Not), 4).with_inputs(1);
    let mut t = TemplateBuilder::new("not-chain");
    for i in 0..len {
        let prev = format!("w{}", i.wrapping_sub(1));
        let input = if i == 0 {
            Signal::parent("I")
        } else {
            Signal::net(&prev)
        };
        let name = format!("m{i}");
        let out = format!("w{i}");
        t.module(
            &name,
            not4.clone(),
            vec![("I0", input)],
            vec![("O", out.as_str(), 4)],
        );
    }
    let last = format!("w{}", len - 1);
    t.output("O", Signal::net(&last));
    vec![t.build()]
}

#[test]
fn shipped_rule_base_is_clean() {
    let rules = RuleSet::standard().with_lsi_extensions();
    let library = lsi_logic_subset();
    let report = LintRegistry::standard().run(&LintTarget::Rules {
        rules: &rules,
        library: &library,
    });
    assert!(report.is_clean(), "{report}");
}

#[test]
fn dt201_shadowed_rule_and_distinct_near_miss() {
    // Two appended rules producing identical templates: the later one is
    // shadowed by the earlier.
    let rules = base_with(vec![
        Box::new(TestRule {
            name: "first",
            expand: not_chain(2),
        }),
        Box::new(TestRule {
            name: "second",
            expand: not_chain(2),
        }),
    ]);
    let report = LintRegistry::standard().run(&LintTarget::Rules {
        rules: &rules,
        library: &lsi_logic_subset(),
    });
    assert_eq!(codes(&report), vec!["DT201"]);
    assert!(report.diagnostics[0].site.contains("second"), "{report}");

    // Different internal structure (chain length): no shadowing. The
    // rules carry fresh names because the closure analysis is memoized
    // on the rule-set fingerprint, which hashes names.
    let rules = base_with(vec![
        Box::new(TestRule {
            name: "first-short",
            expand: not_chain(2),
        }),
        Box::new(TestRule {
            name: "second-long",
            expand: not_chain(4),
        }),
    ]);
    assert!(rule_codes(&rules).is_empty());
}

#[test]
fn dt202_inapplicable_rule_and_firing_near_miss() {
    let rules = base_with(vec![Box::new(TestRule {
        name: "never-fires",
        expand: |_| Vec::new(),
    })]);
    assert_eq!(rule_codes(&rules), vec!["DT202"]);

    let rules = base_with(vec![Box::new(TestRule {
        name: "fires",
        expand: not_chain(2),
    })]);
    assert!(rule_codes(&rules).is_empty());
}

#[test]
fn dt203_self_recursive_rule_detected() {
    fn self_wrap(spec: &ComponentSpec) -> Vec<NetlistTemplate> {
        if spec.kind != ComponentKind::Delay || spec.width != 4 {
            return Vec::new();
        }
        let mut t = TemplateBuilder::new("delay-self");
        t.module(
            "m0",
            spec.clone(),
            vec![("I", Signal::parent("I"))],
            vec![("O", "w", spec.width)],
        );
        t.output("O", Signal::net("w"));
        vec![t.build()]
    }
    let rules = base_with(vec![Box::new(TestRule {
        name: "delay-self",
        expand: self_wrap,
    })]);
    let found = rule_codes(&rules);
    assert!(found.contains(&"DT203"), "{found:?}");
    // The not-pair rule rewrites DELAY without reproducing it: no DT203.
    let rules = base_with(vec![Box::new(TestRule {
        name: "delay-progress",
        expand: not_chain(2),
    })]);
    assert!(!rule_codes(&rules).contains(&"DT203"));
}

/// A library rule decomposing DELAY.1 into `victim`, wiring every input
/// of the victim's model to the parent's 1-bit input.
fn dead_end_template(spec: &ComponentSpec, victim: ComponentSpec) -> Vec<NetlistTemplate> {
    if spec.kind != ComponentKind::Delay || spec.width != 1 {
        return Vec::new();
    }
    let cache = SpecModelCache::new();
    let Ok(model) = cache.model(&victim) else {
        return Vec::new();
    };
    let inputs: Vec<(String, Signal)> = model
        .inputs()
        .map(|p| (p.name.clone(), Signal::parent("I")))
        .collect();
    let out_port = model
        .outputs()
        .next()
        .expect("victim has an output")
        .name
        .clone();
    let mut t = TemplateBuilder::new("dead-end");
    t.module("m0", victim, inputs, vec![(out_port.as_str(), "w", 1)]);
    t.output("O", Signal::net("w"));
    vec![t.build()]
}

#[test]
fn dt204_unmatchable_leaf_and_implementable_near_miss() {
    // No databook cell is a counter and no rule fires on an
    // async-set/reset counter: a dead-end leaf.
    fn dead_counter(spec: &ComponentSpec) -> Vec<NetlistTemplate> {
        let victim = ComponentSpec::new(ComponentKind::Counter, 1)
            .with_ops([Op::Load, Op::CountUp, Op::CountDown].into_iter().collect())
            .with_async_set_reset(true);
        dead_end_template(spec, victim)
    }
    let rules = base_with(vec![Box::new(TestRule {
        name: "dead-end",
        expand: dead_counter,
    })]);
    let found = rule_codes(&rules);
    assert!(found.contains(&"DT204"), "{found:?}");

    // A 1-bit LOAD register leaf is matchable (D flip-flop cells).
    fn live_register(spec: &ComponentSpec) -> Vec<NetlistTemplate> {
        let victim = ComponentSpec::new(ComponentKind::Register, 1).with_ops(OpSet::only(Op::Load));
        dead_end_template(spec, victim)
    }
    let rules = base_with(vec![Box::new(TestRule {
        name: "live-end",
        expand: live_register,
    })]);
    assert!(!rule_codes(&rules).contains(&"DT204"));
}

#[test]
fn dt205_invalid_template_and_valid_near_miss() {
    fn bad_parent_port(spec: &ComponentSpec) -> Vec<NetlistTemplate> {
        if spec.kind != ComponentKind::Delay || spec.width != 4 {
            return Vec::new();
        }
        let not4 = ComponentSpec::new(ComponentKind::Gate(GateOp::Not), 4).with_inputs(1);
        let mut t = TemplateBuilder::new("bad-port");
        t.module(
            "m0",
            not4,
            vec![("I0", Signal::parent("NOPE"))],
            vec![("O", "w", 4)],
        );
        t.output("O", Signal::net("w"));
        vec![t.build()]
    }
    let rules = base_with(vec![Box::new(TestRule {
        name: "bad-port",
        expand: bad_parent_port,
    })]);
    let found = rule_codes(&rules);
    assert!(found.contains(&"DT205"), "{found:?}");
    // Same shape wired to the real parent port: valid.
    let rules = base_with(vec![Box::new(TestRule {
        name: "good-port",
        expand: not_chain(2),
    })]);
    assert!(!rule_codes(&rules).contains(&"DT205"));
}

#[test]
fn dt206_duplicate_rule_name_and_distinct_near_miss() {
    let rules = base_with(vec![
        Box::new(TestRule {
            name: "twin",
            expand: |_| Vec::new(),
        }),
        Box::new(TestRule {
            name: "twin",
            expand: |_| Vec::new(),
        }),
    ]);
    assert!(rule_codes(&rules).contains(&"DT206"));
    let rules = base_with(vec![
        Box::new(TestRule {
            name: "one",
            expand: |_| Vec::new(),
        }),
        Box::new(TestRule {
            name: "two",
            expand: |_| Vec::new(),
        }),
    ]);
    assert!(!rule_codes(&rules).contains(&"DT206"));
}

// ---------------------------------------------------------------- databook

fn book_codes(lib: &CellLibrary) -> Vec<&'static str> {
    codes(&LintRegistry::standard().run(&LintTarget::Databook(lib)))
}

fn gate2(name: &str, area: f64, delay: f64) -> Cell {
    let spec = ComponentSpec::new(ComponentKind::Gate(GateOp::Nand), 1)
        .with_inputs(2)
        .with_ops(OpSet::only(Op::Nand));
    Cell::new(name, spec, area, delay)
}

#[test]
fn shipped_book_is_clean() {
    let report = LintRegistry::standard().run(&LintTarget::Databook(&lsi_logic_subset()));
    assert!(report.is_clean(), "{report}");
}

#[test]
fn dt301_bad_cost_and_zero_cost_near_miss() {
    let mut lib = CellLibrary::new("t");
    lib.insert(gate2("BAD", f64::NAN, 1.0));
    assert_eq!(book_codes(&lib), vec!["DT301"]);
    // Zero cost is unusual but legal (the ND2 unit definition).
    let mut lib2 = CellLibrary::new("t2");
    lib2.insert(gate2("FREE", 0.0, 0.0));
    assert!(book_codes(&lib2).is_empty());
}

#[test]
fn dt302_dominated_cell_and_tradeoff_near_miss() {
    let mut lib = CellLibrary::new("t");
    lib.insert(gate2("GOOD", 1.0, 1.0));
    lib.insert(gate2("WORSE", 2.0, 1.5));
    assert_eq!(book_codes(&lib), vec!["DT302"]);
    // A genuine area/delay trade-off pair stays.
    let mut lib2 = CellLibrary::new("t2");
    lib2.insert(gate2("SMALL", 1.0, 2.0));
    lib2.insert(gate2("FAST", 2.0, 1.0));
    assert!(book_codes(&lib2).is_empty());
}

#[test]
fn dt303_missing_carry_arc_and_declared_near_miss() {
    let spec = ComponentSpec::new(ComponentKind::AddSub, 2)
        .with_ops(OpSet::only(Op::Add))
        .with_carry_in(true)
        .with_carry_out(true);
    let mut lib = CellLibrary::new("t");
    lib.insert(Cell::new("ADD2X", spec.clone(), 4.0, 3.0));
    assert_eq!(book_codes(&lib), vec!["DT303"]);
    let mut lib2 = CellLibrary::new("t2");
    lib2.insert(Cell::new("ADD2Y", spec, 4.0, 3.0).with_carry_delay(1.0));
    assert!(book_codes(&lib2).is_empty());
}

#[test]
fn dt304_non_monotone_family_and_monotone_near_miss() {
    let spec =
        |w: usize| ComponentSpec::new(ComponentKind::Register, w).with_ops(OpSet::only(Op::Load));
    let mut lib = CellLibrary::new("t");
    lib.insert(Cell::new("R4", spec(4), 10.0, 1.0));
    lib.insert(Cell::new("R8", spec(8), 5.0, 1.0)); // wider yet smaller
    assert_eq!(book_codes(&lib), vec!["DT304"]);
    let mut lib2 = CellLibrary::new("t2");
    lib2.insert(Cell::new("R4", spec(4), 10.0, 1.0));
    lib2.insert(Cell::new("R8", spec(8), 18.0, 1.2));
    assert!(book_codes(&lib2).is_empty());
}

// ------------------------------------------------------------------ legend

fn legend_codes(descs: &[LegendDescription]) -> Vec<&'static str> {
    codes(&LintRegistry::standard().run(&LintTarget::Legend(descs)))
}

fn port(name: &str, w: usize) -> PortDecl {
    PortDecl {
        name: name.to_string(),
        width: WidthSpec(w),
    }
}

fn register_desc() -> LegendDescription {
    LegendDescription {
        name: "REGISTER".to_string(),
        inputs: vec![port("IN", 8)],
        outputs: vec![port("OUT", 8)],
        clock: Some("CLK".to_string()),
        control: vec!["CLOAD".to_string()],
        operations: vec![OperationDecl {
            name: "LOAD".to_string(),
            inputs: vec!["IN".to_string()],
            outputs: vec!["OUT".to_string()],
            control: Some("CLOAD".to_string()),
            ops: vec![OpsClause {
                op_name: "LOAD".to_string(),
                target: "OUT".to_string(),
                expr: LegendExpr::Port("IN".to_string()),
            }],
        }],
        ..LegendDescription::default()
    }
}

#[test]
fn dt401_duplicate_generator_from_parsed_text_and_single_near_miss() {
    // Two copies of the Figure-2 counter in one document.
    let doubled = format!("{}\n{}", legend::figure2::FIGURE2, legend::figure2::FIGURE2);
    let descs = legend::parse_document(&doubled).unwrap();
    assert!(legend_codes(&descs).contains(&"DT401"));

    let single = legend::parse_document(legend::figure2::FIGURE2).unwrap();
    assert!(legend_codes(&single).is_empty());
}

#[test]
fn dt402_unused_port_and_read_port_near_miss() {
    let mut d = register_desc();
    d.inputs.push(port("SPARE", 8));
    assert_eq!(legend_codes(&[d]), vec!["DT402"]);
    assert!(legend_codes(&[register_desc()]).is_empty());
}

#[test]
fn dt403_dt404_shadowed_assignment_and_unknown_ref() {
    let mut d = register_desc();
    d.operations[0].ops.push(OpsClause {
        op_name: "LOAD".to_string(),
        target: "OUT".to_string(),
        expr: LegendExpr::Port("GHOST".to_string()),
    });
    let found = legend_codes(&[d]);
    assert!(found.contains(&"DT403"), "{found:?}");
    assert!(found.contains(&"DT404"), "{found:?}");
    // A second clause assigning a *different* output referencing a real
    // port is neither shadowed nor unknown.
    let mut d2 = register_desc();
    d2.outputs.push(port("OUT2", 8));
    d2.operations[0].outputs.push("OUT2".to_string());
    d2.operations[0].ops.push(OpsClause {
        op_name: "LOAD".to_string(),
        target: "OUT2".to_string(),
        expr: LegendExpr::Port("IN".to_string()),
    });
    let found2 = legend_codes(&[d2]);
    assert!(!found2.contains(&"DT403"), "{found2:?}");
    assert!(!found2.contains(&"DT404"), "{found2:?}");
}

#[test]
fn dt405_unfireable_operation_and_control_near_miss() {
    let mut d = register_desc();
    // Gate on the clock instead of a declared control pin.
    d.operations[0].control = Some("CLK".to_string());
    assert_eq!(legend_codes(&[d]), vec!["DT405"]);
    assert!(legend_codes(&[register_desc()]).is_empty());
}

// ------------------------------------------------- shipped example artifacts

#[test]
fn example_artifacts_are_lint_clean_and_in_sync() {
    // gcd.ent is the source the gcd_hls_flow example embeds; its linked
    // netlist must lint clean (the CI `dtas lint` step checks the same).
    let gcd = include_str!("../examples/gcd.ent");
    let linked = Flow::from_hls(gcd)
        .unwrap()
        .schedule()
        .unwrap()
        .compile_control()
        .unwrap()
        .link()
        .unwrap();
    let report = linked.lint();
    assert!(report.is_clean(), "{report}");

    // counter.legend is a verbatim copy of the paper's Figure 2.
    let text = include_str!("../examples/counter.legend");
    assert_eq!(
        text,
        legend::figure2::FIGURE2,
        "examples/counter.legend drifted"
    );
    let descs = legend::parse_document(text).unwrap();
    let report = LintRegistry::standard().run(&LintTarget::Legend(&descs));
    assert!(report.is_clean(), "{report}");
}

// ---------------------------------------------- lint-clean netlists map

/// A linear chain of stdlib components: valid and lint-clean by
/// construction.
fn chain_netlist(width: usize, stages: &[u8]) -> Netlist {
    let lib = GenusLibrary::standard();
    let mut nl = Netlist::new("chain");
    if stages.iter().any(|k| k % 4 == 2) {
        nl.add_net("clk", 1).unwrap();
        nl.expose_input("clk", "clk").unwrap();
    }
    if stages.iter().any(|k| k % 4 == 3) {
        nl.add_net("zero", 1).unwrap();
        nl.expose_input("zero", "zero").unwrap();
    }
    nl.add_net("n0", width).unwrap();
    nl.expose_input("n0", "n0").unwrap();
    for (i, kind) in stages.iter().enumerate() {
        let src = format!("n{i}");
        let dst = format!("n{}", i + 1);
        nl.add_net(&dst, width).unwrap();
        let name = format!("u{i}");
        let inst = match kind % 4 {
            0 => Instance::new(&name, Arc::new(lib.buffer(width).unwrap()))
                .with_connection("I", &src)
                .with_connection("O", &dst),
            1 => Instance::new(&name, Arc::new(lib.gate(GateOp::Not, width, 1).unwrap()))
                .with_connection("I0", &src)
                .with_connection("O", &dst),
            2 => Instance::new(&name, Arc::new(lib.register(width).unwrap()))
                .with_connection("D", &src)
                .with_connection("CLK", "clk")
                .with_connection("Q", &dst),
            _ => Instance::new(&name, Arc::new(lib.adder(width).unwrap()))
                .with_connection("A", &src)
                .with_connection("B", &src)
                .with_connection("CI", "zero")
                .with_connection("O", &dst),
        };
        nl.add_instance(inst).unwrap();
    }
    nl.expose_output("out", &format!("n{}", stages.len()))
        .unwrap();
    nl
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 0,
    })]

    #[test]
    fn lint_clean_netlists_map_without_panicking(
        width in 1usize..8,
        stages in proptest::collection::vec(any::<u8>(), 1..6),
    ) {
        let nl = chain_netlist(width, &stages);
        let report = LintRegistry::standard().run(&LintTarget::Netlist(&nl));
        prop_assert!(report.is_clean(), "{report}");
        // The lint's promise: a clean netlist goes through the engine
        // without panicking (and for stdlib chains, successfully).
        let linked = Flow::from_netlist(nl).expect("validates");
        let mapped = linked.map(&Dtas::new(lsi_logic_subset()));
        prop_assert!(mapped.is_ok(), "{:?}", mapped.err().map(|e| e.to_string()));
    }
}
