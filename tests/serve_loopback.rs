//! Loopback determinism for `dtas serve`: a warm, shared, concurrently
//! hammered wire server must answer bit-identically to a fresh
//! in-process engine — and graceful shutdown must drain every admitted
//! ticket. This is the end-to-end proof for the `core::net` tentpole:
//! framing, lanes, batch slot streaming and the service queue all sit
//! between the client and the answer, and none of them may perturb it.

use cells::lsi::lsi_logic_subset;
use dtas::net::{ServeConfig, WireDesignSet, WireServer};
use dtas::{Dtas, Priority, ServiceConfig, SynthRequest, WireClient};
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn adder(width: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::AddSub, width).with_ops(OpSet::only(Op::Add))
}

fn specs() -> Vec<ComponentSpec> {
    vec![
        adder(2),
        adder(4),
        adder(8),
        ComponentSpec::new(ComponentKind::Mux, 8).with_inputs(4),
        ComponentSpec::new(ComponentKind::Comparator, 4)
            .with_ops([Op::Eq, Op::Lt, Op::Gt].into_iter().collect()),
        ComponentSpec::new(ComponentKind::LogicUnit, 4)
            .with_ops([Op::And, Op::Or, Op::Xor].into_iter().collect()),
    ]
}

fn start_server(config: ServeConfig) -> WireServer {
    WireServer::start(
        Arc::new(Dtas::new(lsi_logic_subset())),
        config,
        ("127.0.0.1", 0),
    )
    .expect("binds an ephemeral loopback port")
}

/// 8 concurrent clients — interactive singles, bulk singles, and batch
/// submissions — against one shared warm server: every result must be
/// bit-identical (fingerprint and full alternative list) to a fresh,
/// cold, in-process engine answering the same spec.
#[test]
fn eight_mixed_clients_match_a_fresh_engine_bit_for_bit() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();
    let specs = specs();

    let collected: Vec<Vec<(usize, WireDesignSet)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let specs = &specs;
                scope.spawn(move || match i % 3 {
                    // Batch client: all specs under one id; slots stream
                    // back in order because the server's writer resolves
                    // tickets FIFO per connection.
                    0 => {
                        let mut client = WireClient::connect(addr, Priority::Bulk)
                            .expect("batch client connects");
                        let requests: Vec<SynthRequest> =
                            specs.iter().cloned().map(SynthRequest::new).collect();
                        let id = client.submit_batch(&requests).expect("submits batch");
                        (0..specs.len())
                            .map(|expected_slot| {
                                let r = client.recv_result().expect("slot resolves");
                                assert_eq!(r.id, id);
                                assert_eq!(r.slot as usize, expected_slot, "slots stream in order");
                                assert_eq!(r.of as usize, specs.len());
                                (expected_slot, r.result.expect("slot synthesizes"))
                            })
                            .collect::<Vec<_>>()
                    }
                    // Single-request clients on both lanes.
                    lane => {
                        let lane = if lane == 1 {
                            Priority::Interactive
                        } else {
                            Priority::Bulk
                        };
                        let mut client =
                            WireClient::connect(addr, lane).expect("single client connects");
                        specs
                            .iter()
                            .enumerate()
                            .map(|(idx, spec)| {
                                let set = client
                                    .request(&SynthRequest::new(spec.clone()))
                                    .expect("request synthesizes");
                                (idx, set)
                            })
                            .collect()
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    // The oracle: a fresh engine, cold caches, same library.
    let fresh = Dtas::new(lsi_logic_subset());
    let oracle: Vec<WireDesignSet> = specs
        .iter()
        .map(|spec| WireDesignSet::of(&fresh.run(spec).expect("fresh engine synthesizes")))
        .collect();

    let mut compared = 0usize;
    for results in &collected {
        for (idx, served) in results {
            let expected = &oracle[*idx];
            assert_eq!(
                served.alternatives, expected.alternatives,
                "spec {idx}: served alternatives diverge from a fresh engine"
            );
            assert_eq!(
                served.fingerprint(),
                expected.fingerprint(),
                "spec {idx}: served fingerprint diverges from a fresh engine"
            );
            compared += 1;
        }
    }
    assert_eq!(
        compared,
        8 * specs.len(),
        "every client answered every spec"
    );

    let stats = server.shutdown();
    assert_eq!(stats.completed, stats.admitted, "{stats}");
    assert_eq!(stats.completed, (8 * specs.len()) as u64);
}

/// Graceful drain: every ticket admitted before shutdown resolves with
/// a real answer; the client sees all of them even though the stop flag
/// goes up while they are still queued.
#[test]
fn graceful_shutdown_drains_every_admitted_ticket() {
    let requests = 24;
    let server = start_server(ServeConfig {
        service: ServiceConfig {
            workers: Some(2),
            ..ServiceConfig::default()
        },
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    let mut client = WireClient::connect(addr, Priority::Bulk).expect("connects");
    let request = SynthRequest::new(adder(6));
    for _ in 0..requests {
        client.submit(&request).expect("submits");
    }
    // Wait until the service has admitted everything this client sent,
    // so shutdown races only against *execution*, not admission.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.service_stats().admitted < requests as u64 {
        assert!(Instant::now() < deadline, "admission stalled");
        std::thread::sleep(Duration::from_millis(1));
    }

    let (drained, stats) = std::thread::scope(|scope| {
        let receiver = scope.spawn(move || {
            let mut ok = 0usize;
            for _ in 0..requests {
                let result = client.recv_result().expect("admitted ticket resolves");
                result.result.expect("drained ticket carries a real answer");
                ok += 1;
            }
            ok
        });
        let stats = server.shutdown();
        (receiver.join().expect("receiver thread"), stats)
    });

    assert_eq!(drained, requests, "client received every admitted result");
    assert_eq!(stats.completed, stats.admitted, "{stats}");
    assert!(stats.admitted >= requests as u64);
}

/// Satellite regression: the per-lane wait/service percentiles measured
/// by the server's own workers are surfaced through the stats frame and
/// the `ServiceStats` Display line that `bench-load --connect` prints.
#[test]
fn server_stats_frame_carries_per_lane_latency() {
    let server = start_server(ServeConfig::default());
    let addr = server.local_addr();

    let interactive_n = 5u64;
    let bulk_n = 3u64;
    let mut interactive =
        WireClient::connect(addr, Priority::Interactive).expect("interactive connects");
    let mut bulk = WireClient::connect(addr, Priority::Bulk).expect("bulk connects");
    let request = SynthRequest::new(adder(4));
    for _ in 0..interactive_n {
        interactive.request(&request).expect("synthesizes");
    }
    for _ in 0..bulk_n {
        bulk.request(&request).expect("synthesizes");
    }

    // Counters are bumped by worker threads just after each ticket
    // resolves, so a stats probe issued the instant the last answer
    // lands can catch them mid-update — poll until they settle.
    let total = interactive_n + bulk_n;
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let stats = interactive.server_stats().expect("stats frame");
        if stats.service.completed == total && stats.cache_hits + stats.cache_misses == total {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "counters never converged: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    };
    let service = &stats.service;
    assert_eq!(service.completed, total);
    let lanes = &service.lanes;
    assert_eq!(lanes[0].samples, interactive_n, "interactive lane samples");
    assert_eq!(lanes[1].samples, bulk_n, "bulk lane samples");
    for lane in lanes {
        assert!(lane.wait_p99_us >= lane.wait_p50_us, "{lane:?}");
        assert!(lane.service_p99_us >= lane.service_p50_us, "{lane:?}");
    }
    // The first interactive request was a cold solve; its service time
    // cannot round to zero microseconds.
    assert!(lanes[0].service_p99_us > 0, "{:?}", lanes[0]);
    // Engine-side accounting rode along (cold solve + memo hits).
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, total - 1);

    // The Display line bench-load --connect prints is grep-stable.
    let rendered = format!("{service}");
    assert!(
        rendered.contains("lanes: interactive_samples=5"),
        "{rendered}"
    );
    assert!(rendered.contains("bulk_samples=3"), "{rendered}");

    drop(interactive);
    drop(bulk);
    let final_stats = server.shutdown();
    assert_eq!(final_stats.lanes[0].samples, interactive_n);
    assert_eq!(final_stats.lanes[1].samples, bulk_n);
}
