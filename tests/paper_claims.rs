//! Pins the paper's quantitative side claims: rule counts, the 30-cell
//! library, the Figure-2 LEGEND document, and the §7 coverage list.

use cells::lsi::lsi_logic_subset;
use dtas::{Dtas, RuleSet};
use genus::kind::{ComponentKind, GateOp};
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use legend::{lower, parse_document};

#[test]
fn library_is_the_thirty_cell_subset() {
    // "a subset of 30 cells from LSI Logic Inc.'s macrocell data book"
    let lib = lsi_logic_subset();
    assert_eq!(lib.len(), 30);
}

#[test]
fn nine_library_specific_rules() {
    // "DTAS requires nine library-specific design rules"
    let rules = RuleSet::standard().with_lsi_extensions();
    assert_eq!(rules.library_count(), 9);
}

#[test]
fn generic_rule_count_near_papers_86() {
    // "These components are supported by 86 rules written in the DTAS
    // Design Language." This reproduction splits a few composite rules,
    // so the count may differ slightly — it must stay in the same band.
    let rules = RuleSet::standard();
    let n = rules.generic_count();
    assert!((80..=110).contains(&n), "generic rules: {n}");
}

#[test]
fn figure2_lowers_to_the_3bit_counter() {
    let docs = parse_document(legend::figure2::FIGURE2).expect("parses");
    assert_eq!(docs.len(), 1);
    let lowered = lower(&docs[0]).expect("lowers");
    assert_eq!(lowered.sample.spec().width, 3);
    assert_eq!(
        lowered.sample.spec().ops,
        [Op::Load, Op::CountUp, Op::CountDown]
            .into_iter()
            .collect::<OpSet>()
    );
    assert_eq!(docs[0].max_params, Some(7));
    assert_eq!(docs[0].parameters.len(), 7);
}

#[test]
fn section7_component_list_synthesizes() {
    // "bitwise logic gates and multiplexers, binary and BCD decoders and
    // encoders, n-bit adders and comparators, n-bit arithmetic logic
    // units, shifters, n-by-m multipliers, and up/down counters"
    let engine = Dtas::new(lsi_logic_subset());
    let specs = vec![
        ComponentSpec::new(ComponentKind::Gate(GateOp::Nand), 4).with_inputs(3),
        ComponentSpec::new(ComponentKind::Mux, 8).with_inputs(4),
        ComponentSpec::new(ComponentKind::Decoder, 3)
            .with_width2(8)
            .with_style("BINARY"),
        ComponentSpec::new(ComponentKind::Decoder, 4)
            .with_width2(10)
            .with_style("BCD"),
        ComponentSpec::new(ComponentKind::Encoder, 3).with_inputs(8),
        ComponentSpec::new(ComponentKind::AddSub, 11)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true),
        ComponentSpec::new(ComponentKind::Comparator, 9)
            .with_ops([Op::Eq, Op::Lt, Op::Gt].into_iter().collect()),
        ComponentSpec::new(ComponentKind::Alu, 8)
            .with_ops(Op::paper_alu16())
            .with_carry_in(true),
        ComponentSpec::new(ComponentKind::Shifter, 8)
            .with_ops([Op::Shl, Op::Shr].into_iter().collect()),
        ComponentSpec::new(ComponentKind::Multiplier, 5)
            .with_width2(3)
            .with_ops(OpSet::only(Op::Mul)),
        ComponentSpec::new(ComponentKind::Counter, 6)
            .with_ops([Op::Load, Op::CountUp, Op::CountDown].into_iter().collect())
            .with_enable(true)
            .with_style("SYNCHRONOUS"),
    ];
    for spec in specs {
        let set = engine.run(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert!(!set.alternatives.is_empty(), "{spec}");
    }
}

#[test]
fn functional_match_example_from_section5() {
    // "after DTAS decomposes a 16-bit adder into four 4-bit adders, it
    // examines the cell library for a cell of type ADD with two 4-bit
    // inputs plus carry-in and a 4-bit output plus carry-out"
    let lib = lsi_logic_subset();
    let want = ComponentSpec::new(ComponentKind::AddSub, 4)
        .with_ops(OpSet::only(Op::Add))
        .with_carry_in(true)
        .with_carry_out(true);
    let hits = lib.implementers(&want);
    assert!(!hits.is_empty());
    assert!(hits.iter().any(|c| c.name == "ADD4"));
}

#[test]
fn facade_reexports_every_crate() {
    // The root crate is the integration surface a downstream user sees.
    let _ = hls_rtl_bridge::genus::stdlib::GenusLibrary::standard();
    let _ = hls_rtl_bridge::cells::lsi::lsi_logic_subset();
    let _ = hls_rtl_bridge::dtas::RuleSet::standard();
    assert!(
        hls_rtl_bridge::legend::parse_document(hls_rtl_bridge::legend::figure2::FIGURE2).is_ok()
    );
}
