//! Service-layer coverage for `DtasService`: admission policies (reject /
//! block / shed-oldest / rate), priority lanes, drain-on-shutdown,
//! background checkpointing, worker-panic containment, the
//! cancel/deadline race matrix, late-delivery accounting, and a proptest
//! pinning service-path results bit-identical to direct
//! `Dtas::synthesize`.

mod common;

use cells::lsi::lsi_logic_subset;
use common::{fingerprint, slow_engine, slow_spec};
use dtas::template::NetlistTemplate;
use dtas::{
    Admission, Dtas, DtasConfig, DtasService, Priority, Rule, RuleSet, ServiceConfig, ServiceError,
    SynthError, SynthRequest,
};
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use hls_rtl_bridge::BridgeError;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn adder(width: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::AddSub, width)
        .with_ops(OpSet::only(Op::Add))
        .with_carry_in(true)
        .with_carry_out(true)
}

fn mux(width: usize, ways: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::Mux, width).with_inputs(ways)
}

fn unmappable() -> ComponentSpec {
    ComponentSpec::new(ComponentKind::StackFifo, 8)
        .with_width2(4)
        .with_ops([Op::Push, Op::Pop].into_iter().collect())
        .with_style("STACK")
}

/// Polls `cond` for up to `timeout`; panics with `what` on expiry.
fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Blocks until one request is being executed and the lanes are empty —
/// the state every admission test builds on.
fn wait_for_busy_worker(service: &DtasService) {
    wait_until("worker pickup", Duration::from_secs(10), || {
        let stats = service.stats();
        stats.running_now == 1 && stats.queued_now == 0
    });
}

#[test]
fn reject_policy_refuses_when_full_and_maps_to_bridge_overloaded() {
    let service = DtasService::start(
        slow_engine(Duration::from_millis(300)),
        ServiceConfig {
            workers: Some(1),
            queue_depth: 1,
            admission: Admission::Reject,
            ..ServiceConfig::default()
        },
    );
    let running = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("admits");
    wait_for_busy_worker(&service);
    let queued = service
        .submit(SynthRequest::new(slow_spec(5)))
        .expect("fills the queue");
    // Queue full (depth 1): both submit and try_submit refuse instantly.
    let err = service
        .submit(SynthRequest::new(adder(8)))
        .expect_err("queue is full");
    assert_eq!(err, ServiceError::Overloaded { queue_depth: 1 });
    assert!(matches!(
        service.try_submit(SynthRequest::new(adder(8))),
        Err(ServiceError::Overloaded { queue_depth: 1 })
    ));
    // The satellite contract: a rejected submission surfaces to Flow
    // callers as `BridgeError::Overloaded`.
    assert!(matches!(BridgeError::from(err), BridgeError::Overloaded(_)));

    let stats = service.shutdown();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.admitted, 2);
    // Admitted work drained: both tickets resolved (the styled specs may
    // legitimately solve or report NoImplementation — they must answer).
    assert!(running.try_recv().is_some());
    assert!(queued.try_recv().is_some());
}

#[test]
fn block_admission_honors_its_timeout() {
    // Case 1: capacity never frees within the timeout — Overloaded after
    // (roughly) the configured wait.
    let service = DtasService::start(
        slow_engine(Duration::from_millis(700)),
        ServiceConfig {
            workers: Some(1),
            queue_depth: 1,
            admission: Admission::Block {
                timeout: Duration::from_millis(100),
            },
            ..ServiceConfig::default()
        },
    );
    let _running = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("admits");
    wait_for_busy_worker(&service);
    let _queued = service
        .submit(SynthRequest::new(slow_spec(5)))
        .expect("fills");
    let t0 = Instant::now();
    let err = service
        .submit(SynthRequest::new(adder(8)))
        .expect_err("no room within the timeout");
    let waited = t0.elapsed();
    assert_eq!(err, ServiceError::Overloaded { queue_depth: 1 });
    assert!(
        waited >= Duration::from_millis(90),
        "Block must wait out its timeout before refusing (waited {waited:?})"
    );
    service.shutdown();

    // Case 2: capacity frees in time — the same full-queue submission
    // blocks briefly, then lands.
    let service = DtasService::start(
        slow_engine(Duration::from_millis(150)),
        ServiceConfig {
            workers: Some(1),
            queue_depth: 1,
            admission: Admission::Block {
                timeout: Duration::from_secs(30),
            },
            ..ServiceConfig::default()
        },
    );
    let _running = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("admits");
    wait_for_busy_worker(&service);
    let _queued = service
        .submit(SynthRequest::new(slow_spec(5)))
        .expect("fills");
    let t0 = Instant::now();
    let ticket = service
        .submit(SynthRequest::new(adder(8)))
        .expect("room frees within the timeout");
    assert!(t0.elapsed() < Duration::from_secs(25));
    assert!(ticket.recv().is_ok());
    let stats = service.shutdown();
    assert_eq!((stats.rejected, stats.shed), (0, 0));
}

#[test]
fn shed_oldest_sheds_the_oldest_bulk_ticket_first() {
    let service = DtasService::start(
        slow_engine(Duration::from_millis(300)),
        ServiceConfig {
            workers: Some(1),
            queue_depth: 2,
            admission: Admission::ShedOldest,
            ..ServiceConfig::default()
        },
    );
    let _running = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("admits");
    wait_for_busy_worker(&service);
    // Two bulk requests fill the queue…
    let bulk = service.submit_batch([SynthRequest::new(adder(8)), SynthRequest::new(adder(12))]);
    let mut bulk = bulk.into_iter();
    let oldest = bulk.next().expect("two tickets").expect("admitted");
    let newer = bulk.next().expect("two tickets").expect("admitted");
    // …and an interactive submission over the full queue evicts exactly
    // the oldest bulk one.
    let interactive = service
        .submit(SynthRequest::new(adder(16)))
        .expect("ShedOldest always admits");
    assert_eq!(
        oldest.recv().expect_err("the oldest bulk ticket is shed"),
        ServiceError::Shed
    );
    let stats = service.shutdown();
    assert_eq!(stats.shed, 1);
    // The survivors complete — and the interactive one, though submitted
    // last, is dispatched before the remaining bulk request.
    let newer = newer.recv().expect("bulk survivor completes");
    let interactive = interactive.recv().expect("interactive completes");
    assert_eq!(newer.priority, Priority::Bulk);
    assert_eq!(interactive.priority, Priority::Interactive);
    assert!(
        interactive.dispatch_order < newer.dispatch_order,
        "interactive must overtake bulk: {} vs {}",
        interactive.dispatch_order,
        newer.dispatch_order
    );
}

#[test]
fn shutdown_drains_every_admitted_ticket() {
    let service = DtasService::start(
        Arc::new(Dtas::new(lsi_logic_subset())),
        ServiceConfig {
            workers: Some(2),
            ..ServiceConfig::default()
        },
    );
    let specs: Vec<ComponentSpec> = (0..40)
        .map(|i| match i % 4 {
            0 => adder(4 + (i % 8)),
            1 => mux(4, 2 + (i % 3)),
            2 => adder(16),
            _ => unmappable(),
        })
        .collect();
    let tickets: Vec<_> = specs
        .iter()
        .map(|s| {
            service
                .submit(SynthRequest::new(s.clone()))
                .expect("admits")
        })
        .collect();
    let stats = service.shutdown();
    assert_eq!(stats.admitted, 40);
    assert_eq!(stats.completed, 40, "shutdown must drain, not abandon");
    assert_eq!(stats.shed, 0);
    for (spec, ticket) in specs.iter().zip(&tickets) {
        match ticket.try_recv().expect("resolved by the drain") {
            Ok(outcome) => assert!(!outcome.design.alternatives.is_empty(), "{spec}"),
            Err(ServiceError::Synth(SynthError::NoImplementation(_))) => {
                assert_eq!(spec, &unmappable(), "only the stack spec may fail");
            }
            Err(other) => panic!("{spec}: unexpected {other:?}"),
        }
    }
}

#[test]
fn background_checkpoint_lands_on_disk_mid_run() {
    let dir = std::env::temp_dir().join(format!("dtas_service_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine = Arc::new(Dtas::warm_start(lsi_logic_subset(), &dir));
    let service = DtasService::start(
        Arc::clone(&engine),
        ServiceConfig {
            workers: Some(1),
            checkpoint_interval: Some(Duration::from_millis(25)),
            ..ServiceConfig::default()
        },
    );
    let outcome = service
        .submit(SynthRequest::new(adder(16)))
        .expect("admits")
        .recv()
        .expect("solves");
    assert!(!outcome.design.alternatives.is_empty());
    // The background thread must flush without any shutdown involved.
    // Wait for a checkpoint that *starts after* the solve settled — an
    // earlier tick may legitimately have flushed a pre-solve (empty)
    // snapshot.
    let ticks_before_solve_settled = service.stats().checkpoints;
    wait_until("a background checkpoint", Duration::from_secs(20), || {
        service.stats().checkpoints > ticks_before_solve_settled + 1
    });
    // Two ticks past the settle point: the first flushed the dirty solve,
    // so at least one later tick found nothing new and skipped the write.
    assert!(
        engine.cache_stats().checkpoints_skipped > 0,
        "clean ticks must skip instead of rewriting the snapshot"
    );
    let snapshot_files: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .filter(|e| e.metadata().map(|m| m.len() > 0).unwrap_or(false))
        .collect();
    assert!(
        !snapshot_files.is_empty(),
        "the mid-run checkpoint must land on disk"
    );
    // A second engine warm-starts from the mid-run snapshot while the
    // service is still up — the cross-process scenario.
    let warm = Dtas::warm_start(lsi_logic_subset(), &dir);
    assert_eq!(warm.cache_stats().snapshot_loads, 1);
    let warm_set = warm.run(adder(16)).expect("warm hit");
    assert_eq!(fingerprint(&warm_set), fingerprint(&outcome.design));
    assert_eq!(warm.cache_stats().hits, 1);
    drop(warm);

    let stats = service.shutdown();
    assert!(stats.checkpoints >= 2, "shutdown adds a final checkpoint");
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_panic_resolves_the_ticket_and_the_service_survives() {
    struct PanicRule;
    impl Rule for PanicRule {
        fn name(&self) -> &str {
            "panic-marker"
        }
        fn doc(&self) -> &str {
            "test-only: panic while expanding PANIC-styled specs"
        }
        fn expand(&self, spec: &ComponentSpec) -> Vec<NetlistTemplate> {
            if spec.style.as_deref() == Some("PANIC") {
                panic!("injected service panic");
            }
            vec![]
        }
    }
    let mut rules = RuleSet::standard().with_lsi_extensions();
    rules.append_library_rules(vec![Box::new(PanicRule)]);
    let engine = Arc::new(
        Dtas::builder(lsi_logic_subset())
            .rules(rules)
            .config(DtasConfig {
                threads: Some(1),
                ..DtasConfig::default()
            })
            .build(),
    );
    let service = DtasService::start(
        Arc::clone(&engine),
        ServiceConfig {
            workers: Some(1),
            ..ServiceConfig::default()
        },
    );
    // The front override routes past canonicalization (whose probes
    // would hit the panicking rule outside the state lock), so the
    // panic unwinds through the state write guard and poisons it.
    let poisoned = service
        .submit(SynthRequest::new(adder(4).with_style("PANIC")).with_front_cap(8))
        .expect("admits");
    assert!(
        matches!(poisoned.recv(), Err(ServiceError::Internal(_))),
        "a worker panic must resolve the ticket, not hang it"
    );
    // The worker thread survived and the engine recovered (poison
    // recovery drops the half-mutated state): later requests answer
    // exactly like a fresh engine.
    let after = service
        .submit(SynthRequest::new(adder(16)))
        .expect("still admitting")
        .recv()
        .expect("still solving");
    let fresh = Dtas::new(lsi_logic_subset()).run(adder(16)).unwrap();
    assert_eq!(fingerprint(&after.design), fingerprint(&fresh));
    assert!(engine.cache_stats().poison_recoveries >= 1);
    let stats = service.shutdown();
    assert_eq!(stats.completed, 2);
}

// ---------------------------------------------------------------------
// The cancel/deadline race matrix: every cell of (cancel, deadline) ×
// (still queued, dispatched, resolved, shutting down) must resolve the
// ticket exactly once — no hangs, no double counting.
// ---------------------------------------------------------------------

#[test]
fn cancel_before_dispatch_skips_execution() {
    let service = DtasService::start(
        slow_engine(Duration::from_millis(300)),
        ServiceConfig {
            workers: Some(1),
            ..ServiceConfig::default()
        },
    );
    let _running = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("admits");
    wait_for_busy_worker(&service);
    let queued = service
        .submit(SynthRequest::new(slow_spec(5)))
        .expect("admits behind the busy worker");
    assert!(queued.cancel(), "cancel of a queued ticket wins");
    assert!(!queued.cancel(), "second cancel is an idempotent no-op");
    assert_eq!(
        queued.recv().expect_err("resolved by the cancel"),
        ServiceError::Cancelled
    );
    let stats = service.shutdown();
    assert_eq!(stats.cancelled, 1);
    // The cancelled entry was skipped, not executed: only the running
    // request completed, and nothing was counted late.
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.late_deliveries, 0);
}

#[test]
fn cancel_racing_dispatch_resolves_exactly_once() {
    // The cancel lands while the worker is executing: either side may
    // win, but the ticket resolves exactly once and the loser is
    // accounted, never dropped.
    let service = DtasService::start(
        slow_engine(Duration::from_millis(150)),
        ServiceConfig {
            workers: Some(1),
            ..ServiceConfig::default()
        },
    );
    let ticket = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("admits");
    wait_for_busy_worker(&service);
    let cancel_won = ticket.cancel();
    let resolved = ticket.recv();
    if cancel_won {
        assert_eq!(resolved.expect_err("cancel won"), ServiceError::Cancelled);
    } else {
        assert!(resolved.is_ok(), "worker won: the result stands");
    }
    let stats = service.shutdown();
    if cancel_won {
        assert_eq!(stats.cancelled, 1);
        assert_eq!(
            stats.late_deliveries, 1,
            "the worker's discarded result is a late delivery"
        );
    } else {
        assert_eq!((stats.cancelled, stats.completed), (0, 1));
    }
}

#[test]
fn cancel_after_resolve_is_a_noop() {
    let service = DtasService::start(
        Arc::new(Dtas::new(lsi_logic_subset())),
        ServiceConfig::default(),
    );
    let ticket = service
        .submit(SynthRequest::new(adder(16)))
        .expect("admits");
    let outcome = ticket.recv().expect("solves");
    assert!(!ticket.cancel(), "cancel after resolve reports false");
    // The resolved value is untouched by the late cancel.
    assert!(ticket.try_recv().expect("still resolved").is_ok());
    assert!(!outcome.design.alternatives.is_empty());
    let stats = service.shutdown();
    assert_eq!((stats.cancelled, stats.completed), (0, 1));
}

#[test]
fn queue_deadline_fires_within_tolerance() {
    let service = DtasService::start(
        slow_engine(Duration::from_millis(500)),
        ServiceConfig {
            workers: Some(1),
            ..ServiceConfig::default()
        },
    );
    let running = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("admits");
    wait_for_busy_worker(&service);
    let deadline = Duration::from_millis(50);
    let t0 = Instant::now();
    let doomed = service
        .submit(SynthRequest::new(slow_spec(5)).with_deadline(deadline))
        .expect("admits; expiry comes later");
    assert_eq!(
        doomed.recv().expect_err("expires while queued"),
        ServiceError::DeadlineExceeded
    );
    let waited = t0.elapsed();
    assert!(
        waited >= Duration::from_millis(45),
        "fired early: {waited:?}"
    );
    assert!(
        waited < Duration::from_millis(450),
        "the sweeper must fire the deadline well before the worker would \
         have reached the entry (waited {waited:?})"
    );
    // A deadline on an already-dispatched request does not clip it: the
    // running ticket still resolves normally.
    assert!(running.recv().is_ok());
    let stats = service.shutdown();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn zero_deadline_expires_instead_of_executing() {
    let service = DtasService::start(
        slow_engine(Duration::from_millis(200)),
        ServiceConfig {
            workers: Some(1),
            ..ServiceConfig::default()
        },
    );
    let _running = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("admits");
    wait_for_busy_worker(&service);
    let instant = service
        .submit(SynthRequest::new(adder(8)).with_deadline(Duration::ZERO))
        .expect("admitted, already expired");
    assert_eq!(
        instant
            .recv()
            .expect_err("a zero deadline can never be met"),
        ServiceError::DeadlineExceeded
    );
    let stats = service.shutdown();
    assert_eq!(stats.deadline_expired, 1);
}

#[test]
fn default_deadline_stamps_unmarked_requests() {
    let service = DtasService::start(
        slow_engine(Duration::from_millis(400)),
        ServiceConfig {
            workers: Some(1),
            default_deadline: Some(Duration::from_millis(40)),
            ..ServiceConfig::default()
        },
    );
    let _running = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("admits");
    wait_for_busy_worker(&service);
    // No per-request deadline: the config default applies.
    let defaulted = service.submit(SynthRequest::new(adder(8))).expect("admits");
    // An explicit per-request deadline overrides the (shorter or longer)
    // default.
    let generous = service
        .submit(SynthRequest::new(adder(12)).with_deadline(Duration::from_secs(30)))
        .expect("admits");
    assert_eq!(
        defaulted.recv().expect_err("default deadline applies"),
        ServiceError::DeadlineExceeded
    );
    assert!(
        generous.recv().is_ok(),
        "a per-request deadline must override the config default"
    );
    let stats = service.shutdown();
    assert_eq!(stats.deadline_expired, 1);
}

#[test]
fn deadlines_resolve_cleanly_through_shutdown_drain() {
    let service = DtasService::start(
        slow_engine(Duration::from_millis(250)),
        ServiceConfig {
            workers: Some(1),
            ..ServiceConfig::default()
        },
    );
    let _running = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("admits");
    wait_for_busy_worker(&service);
    let doomed: Vec<_> = (0..3)
        .map(|i| {
            service
                .submit(SynthRequest::new(adder(8 + i)).with_deadline(Duration::from_millis(20)))
                .expect("admits")
        })
        .collect();
    // Shutdown while the deadlines are pending: the drain must resolve
    // every admitted ticket — expired entries expire, nothing hangs.
    let stats = service.shutdown();
    for ticket in &doomed {
        assert!(matches!(
            ticket.try_recv().expect("drained, not abandoned"),
            Err(ServiceError::DeadlineExceeded)
        ));
    }
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.deadline_expired, 3);
    assert_eq!(stats.completed, 1);
}

#[test]
fn recv_timeout_then_drop_counts_a_late_delivery() {
    let service = DtasService::start(
        slow_engine(Duration::from_millis(200)),
        ServiceConfig {
            workers: Some(1),
            ..ServiceConfig::default()
        },
    );
    let ticket = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("admits");
    wait_for_busy_worker(&service);
    // The caller gives up waiting and walks away while the worker is
    // still executing…
    assert!(ticket.recv_timeout(Duration::from_millis(10)).is_none());
    drop(ticket);
    // …so when the worker finishes there is no receiver left: the result
    // is delivered late into the void, and counted.
    wait_until("late delivery accounting", Duration::from_secs(10), || {
        service.stats().late_deliveries == 1
    });
    let stats = service.shutdown();
    assert_eq!(stats.late_deliveries, 1);
    assert_eq!(stats.completed, 1, "the work itself still completed");
}

#[test]
fn rate_admission_composes_with_shed_oldest() {
    let service = DtasService::start(
        slow_engine(Duration::from_millis(400)),
        ServiceConfig {
            workers: Some(1),
            queue_depth: 1,
            admission: Admission::Rate {
                per_sec: 1,
                burst: 3,
            },
            ..ServiceConfig::default()
        },
    );
    // Token 1: dispatched. Token 2: queued. Token 3: queue full → the
    // oldest waiter is shed and the newcomer takes its place.
    let _running = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("token 1");
    wait_for_busy_worker(&service);
    let oldest = service
        .submit(SynthRequest::new(adder(8)))
        .expect("token 2");
    let newest = service
        .submit(SynthRequest::new(adder(12)))
        .expect("token 3 sheds the oldest waiter");
    assert_eq!(
        oldest.recv().expect_err("evicted"),
        ServiceError::Shed,
        "over depth, rate admission degrades to shed-oldest"
    );
    // Bucket empty (refill is 1/sec; this test runs in well under a
    // second): the next submission is rate-refused outright.
    assert!(matches!(
        service.submit(SynthRequest::new(adder(16))),
        Err(ServiceError::Overloaded { .. })
    ));
    assert!(newest.recv().is_ok());
    let stats = service.shutdown();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.admitted, 3);
}

/// Soak-oriented stress: 8 clients of mixed interactive/bulk traffic
/// against one service with aggressive background checkpointing; every
/// successful outcome must be bit-identical to a fresh engine's answer,
/// and the final accounting must balance. The CI soak job runs this in
/// release mode with 8 test threads.
#[test]
fn service_stress_mixed_priorities_with_checkpointing() {
    let dir = std::env::temp_dir().join(format!("dtas_service_stress_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let specs: Vec<ComponentSpec> = vec![
        adder(8),
        adder(16),
        adder(32),
        mux(4, 4),
        mux(8, 2),
        unmappable(),
    ];
    let reference: Vec<Result<common::Fingerprint, SynthError>> = specs
        .iter()
        .map(|s| {
            Dtas::new(lsi_logic_subset())
                .run(s)
                .map(|set| fingerprint(&set))
        })
        .collect();
    let engine = Arc::new(Dtas::warm_start(lsi_logic_subset(), &dir));
    let service = DtasService::start(
        Arc::clone(&engine),
        ServiceConfig {
            queue_depth: 256,
            admission: Admission::Block {
                timeout: Duration::from_secs(60),
            },
            checkpoint_interval: Some(Duration::from_millis(10)),
            ..ServiceConfig::default()
        },
    );
    let clients = 8;
    let rounds = 60;
    std::thread::scope(|scope| {
        for w in 0..clients {
            let service = &service;
            let specs = &specs;
            let reference = &reference;
            scope.spawn(move || {
                for r in 0..rounds {
                    let spec = &specs[(w + r) % specs.len()];
                    let expect = &reference[(w + r) % specs.len()];
                    let request = SynthRequest::new(spec.clone());
                    let ticket = if r % 3 == 0 {
                        let mut batch = service.submit_batch([request]);
                        batch.pop().expect("one ticket").expect("admitted")
                    } else {
                        service.submit(request).expect("admitted")
                    };
                    match (ticket.recv(), expect) {
                        (Ok(outcome), Ok(expect)) => {
                            assert_eq!(&fingerprint(&outcome.design), expect, "{spec}");
                        }
                        (Err(ServiceError::Synth(got)), Err(expect)) => {
                            assert_eq!(&got, expect, "{spec}")
                        }
                        (got, _) => panic!("client {w} round {r} {spec}: {got:?}"),
                    }
                }
            });
        }
    });
    let stats = service.shutdown();
    assert_eq!(stats.admitted, (clients * rounds) as u64);
    assert_eq!(stats.completed, stats.admitted);
    assert_eq!((stats.rejected, stats.shed), (0, 0));
    assert_eq!(engine.cache_stats().poison_recoveries, 0);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// For arbitrary small workloads (duplicates and unmappable specs
    /// included), the service path returns bit-identical results — and
    /// identical errors — to calling `Dtas::synthesize` directly.
    #[test]
    fn service_results_are_bit_identical_to_direct_synthesize(
        picks in proptest::collection::vec(0usize..7, 1..12),
    ) {
        let pool: Vec<ComponentSpec> = vec![
            adder(4),
            adder(8),
            adder(12),
            mux(4, 4),
            mux(1, 2),
            ComponentSpec::new(ComponentKind::Comparator, 4)
                .with_ops([Op::Eq, Op::Lt, Op::Gt].into_iter().collect()),
            unmappable(),
        ];
        let direct = Dtas::new(lsi_logic_subset());
        let service = DtasService::start(
            Arc::new(Dtas::new(lsi_logic_subset())),
            ServiceConfig::default(),
        );
        let specs: Vec<&ComponentSpec> = picks.iter().map(|&i| &pool[i]).collect();
        let tickets = service.submit_batch(
            specs.iter().map(|s| SynthRequest::new((*s).clone())),
        );
        for (spec, ticket) in specs.iter().zip(tickets) {
            let via_service = ticket.expect("admitted").recv();
            let via_direct = direct.run(*spec);
            match (via_service, via_direct) {
                (Ok(outcome), Ok(set)) => {
                    prop_assert_eq!(fingerprint(&outcome.design), fingerprint(&set), "{}", spec);
                }
                (Err(ServiceError::Synth(a)), Err(b)) => prop_assert_eq!(a, b, "{}", spec),
                (a, b) => prop_assert!(false, "{}: service {:?} vs direct {:?}", spec, a, b),
            }
        }
        service.shutdown();
    }
}
