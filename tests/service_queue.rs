//! Service-layer coverage for `DtasService`: admission policies (reject /
//! block / shed-oldest), priority lanes, drain-on-shutdown, background
//! checkpointing, worker-panic containment, and a proptest pinning
//! service-path results bit-identical to direct `Dtas::synthesize`.

mod common;

use cells::lsi::lsi_logic_subset;
use common::fingerprint;
use dtas::template::NetlistTemplate;
use dtas::{
    Admission, Dtas, DtasConfig, DtasService, Priority, Rule, RuleSet, ServiceConfig, ServiceError,
    SynthError, SynthRequest,
};
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use hls_rtl_bridge::BridgeError;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn adder(width: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::AddSub, width)
        .with_ops(OpSet::only(Op::Add))
        .with_carry_in(true)
        .with_carry_out(true)
}

fn mux(width: usize, ways: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::Mux, width).with_inputs(ways)
}

fn unmappable() -> ComponentSpec {
    ComponentSpec::new(ComponentKind::StackFifo, 8)
        .with_width2(4)
        .with_ops([Op::Push, Op::Pop].into_iter().collect())
        .with_style("STACK")
}

/// A spec the [`SlowRule`] stalls on — each distinct width is a distinct
/// cold solve, so every submission occupies the worker afresh.
fn slow_spec(width: usize) -> ComponentSpec {
    adder(width).with_style("SLOW")
}

/// Test-only rule: sleeps when expanding a `SLOW`-styled spec, turning a
/// request into a deterministic worker-occupier.
struct SlowRule(Duration);

impl Rule for SlowRule {
    fn name(&self) -> &str {
        "slow-marker"
    }
    fn doc(&self) -> &str {
        "test-only: stall expansion of SLOW-styled specs"
    }
    fn expand(&self, spec: &ComponentSpec) -> Vec<NetlistTemplate> {
        if spec.style.as_deref() == Some("SLOW") {
            std::thread::sleep(self.0);
        }
        vec![]
    }
}

/// An engine whose `SLOW`-styled specs take `delay` to expand. Serial
/// solve threads keep the stall on the worker thread itself.
fn slow_engine(delay: Duration) -> Arc<Dtas> {
    let mut rules = RuleSet::standard().with_lsi_extensions();
    rules.append_library_rules(vec![Box::new(SlowRule(delay))]);
    Arc::new(
        Dtas::new(lsi_logic_subset())
            .with_rules(rules)
            .with_config(DtasConfig {
                threads: Some(1),
                ..DtasConfig::default()
            }),
    )
}

/// Polls `cond` for up to `timeout`; panics with `what` on expiry.
fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Blocks until one request is being executed and the lanes are empty —
/// the state every admission test builds on.
fn wait_for_busy_worker(service: &DtasService) {
    wait_until("worker pickup", Duration::from_secs(10), || {
        let stats = service.stats();
        stats.running_now == 1 && stats.queued_now == 0
    });
}

#[test]
fn reject_policy_refuses_when_full_and_maps_to_bridge_overloaded() {
    let service = DtasService::start(
        slow_engine(Duration::from_millis(300)),
        ServiceConfig {
            workers: Some(1),
            queue_depth: 1,
            admission: Admission::Reject,
            ..ServiceConfig::default()
        },
    );
    let running = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("admits");
    wait_for_busy_worker(&service);
    let queued = service
        .submit(SynthRequest::new(slow_spec(5)))
        .expect("fills the queue");
    // Queue full (depth 1): both submit and try_submit refuse instantly.
    let err = service
        .submit(SynthRequest::new(adder(8)))
        .expect_err("queue is full");
    assert_eq!(err, ServiceError::Overloaded { queue_depth: 1 });
    assert!(matches!(
        service.try_submit(SynthRequest::new(adder(8))),
        Err(ServiceError::Overloaded { queue_depth: 1 })
    ));
    // The satellite contract: a rejected submission surfaces to Flow
    // callers as `BridgeError::Overloaded`.
    assert!(matches!(BridgeError::from(err), BridgeError::Overloaded(_)));

    let stats = service.shutdown();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.admitted, 2);
    // Admitted work drained: both tickets resolved (the styled specs may
    // legitimately solve or report NoImplementation — they must answer).
    assert!(running.try_recv().is_some());
    assert!(queued.try_recv().is_some());
}

#[test]
fn block_admission_honors_its_timeout() {
    // Case 1: capacity never frees within the timeout — Overloaded after
    // (roughly) the configured wait.
    let service = DtasService::start(
        slow_engine(Duration::from_millis(700)),
        ServiceConfig {
            workers: Some(1),
            queue_depth: 1,
            admission: Admission::Block {
                timeout: Duration::from_millis(100),
            },
            ..ServiceConfig::default()
        },
    );
    let _running = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("admits");
    wait_for_busy_worker(&service);
    let _queued = service
        .submit(SynthRequest::new(slow_spec(5)))
        .expect("fills");
    let t0 = Instant::now();
    let err = service
        .submit(SynthRequest::new(adder(8)))
        .expect_err("no room within the timeout");
    let waited = t0.elapsed();
    assert_eq!(err, ServiceError::Overloaded { queue_depth: 1 });
    assert!(
        waited >= Duration::from_millis(90),
        "Block must wait out its timeout before refusing (waited {waited:?})"
    );
    service.shutdown();

    // Case 2: capacity frees in time — the same full-queue submission
    // blocks briefly, then lands.
    let service = DtasService::start(
        slow_engine(Duration::from_millis(150)),
        ServiceConfig {
            workers: Some(1),
            queue_depth: 1,
            admission: Admission::Block {
                timeout: Duration::from_secs(30),
            },
            ..ServiceConfig::default()
        },
    );
    let _running = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("admits");
    wait_for_busy_worker(&service);
    let _queued = service
        .submit(SynthRequest::new(slow_spec(5)))
        .expect("fills");
    let t0 = Instant::now();
    let ticket = service
        .submit(SynthRequest::new(adder(8)))
        .expect("room frees within the timeout");
    assert!(t0.elapsed() < Duration::from_secs(25));
    assert!(ticket.recv().is_ok());
    let stats = service.shutdown();
    assert_eq!((stats.rejected, stats.shed), (0, 0));
}

#[test]
fn shed_oldest_sheds_the_oldest_bulk_ticket_first() {
    let service = DtasService::start(
        slow_engine(Duration::from_millis(300)),
        ServiceConfig {
            workers: Some(1),
            queue_depth: 2,
            admission: Admission::ShedOldest,
            ..ServiceConfig::default()
        },
    );
    let _running = service
        .submit(SynthRequest::new(slow_spec(4)))
        .expect("admits");
    wait_for_busy_worker(&service);
    // Two bulk requests fill the queue…
    let bulk = service.submit_batch([SynthRequest::new(adder(8)), SynthRequest::new(adder(12))]);
    let mut bulk = bulk.into_iter();
    let oldest = bulk.next().expect("two tickets").expect("admitted");
    let newer = bulk.next().expect("two tickets").expect("admitted");
    // …and an interactive submission over the full queue evicts exactly
    // the oldest bulk one.
    let interactive = service
        .submit(SynthRequest::new(adder(16)))
        .expect("ShedOldest always admits");
    assert_eq!(
        oldest.recv().expect_err("the oldest bulk ticket is shed"),
        ServiceError::Shed
    );
    let stats = service.shutdown();
    assert_eq!(stats.shed, 1);
    // The survivors complete — and the interactive one, though submitted
    // last, is dispatched before the remaining bulk request.
    let newer = newer.recv().expect("bulk survivor completes");
    let interactive = interactive.recv().expect("interactive completes");
    assert_eq!(newer.priority, Priority::Bulk);
    assert_eq!(interactive.priority, Priority::Interactive);
    assert!(
        interactive.dispatch_order < newer.dispatch_order,
        "interactive must overtake bulk: {} vs {}",
        interactive.dispatch_order,
        newer.dispatch_order
    );
}

#[test]
fn shutdown_drains_every_admitted_ticket() {
    let service = DtasService::start(
        Arc::new(Dtas::new(lsi_logic_subset())),
        ServiceConfig {
            workers: Some(2),
            ..ServiceConfig::default()
        },
    );
    let specs: Vec<ComponentSpec> = (0..40)
        .map(|i| match i % 4 {
            0 => adder(4 + (i % 8)),
            1 => mux(4, 2 + (i % 3)),
            2 => adder(16),
            _ => unmappable(),
        })
        .collect();
    let tickets: Vec<_> = specs
        .iter()
        .map(|s| {
            service
                .submit(SynthRequest::new(s.clone()))
                .expect("admits")
        })
        .collect();
    let stats = service.shutdown();
    assert_eq!(stats.admitted, 40);
    assert_eq!(stats.completed, 40, "shutdown must drain, not abandon");
    assert_eq!(stats.shed, 0);
    for (spec, ticket) in specs.iter().zip(&tickets) {
        match ticket.try_recv().expect("resolved by the drain") {
            Ok(outcome) => assert!(!outcome.design.alternatives.is_empty(), "{spec}"),
            Err(ServiceError::Synth(SynthError::NoImplementation(_))) => {
                assert_eq!(spec, &unmappable(), "only the stack spec may fail");
            }
            Err(other) => panic!("{spec}: unexpected {other:?}"),
        }
    }
}

#[test]
fn background_checkpoint_lands_on_disk_mid_run() {
    let dir = std::env::temp_dir().join(format!("dtas_service_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine = Arc::new(Dtas::warm_start(lsi_logic_subset(), &dir));
    let service = DtasService::start(
        Arc::clone(&engine),
        ServiceConfig {
            workers: Some(1),
            checkpoint_interval: Some(Duration::from_millis(25)),
            ..ServiceConfig::default()
        },
    );
    let outcome = service
        .submit(SynthRequest::new(adder(16)))
        .expect("admits")
        .recv()
        .expect("solves");
    assert!(!outcome.design.alternatives.is_empty());
    // The background thread must flush without any shutdown involved.
    // Wait for a checkpoint that *starts after* the solve settled — an
    // earlier tick may legitimately have flushed a pre-solve (empty)
    // snapshot.
    let ticks_before_solve_settled = service.stats().checkpoints;
    wait_until("a background checkpoint", Duration::from_secs(20), || {
        service.stats().checkpoints > ticks_before_solve_settled + 1
    });
    let snapshot_files: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .filter(|e| e.metadata().map(|m| m.len() > 0).unwrap_or(false))
        .collect();
    assert!(
        !snapshot_files.is_empty(),
        "the mid-run checkpoint must land on disk"
    );
    // A second engine warm-starts from the mid-run snapshot while the
    // service is still up — the cross-process scenario.
    let warm = Dtas::warm_start(lsi_logic_subset(), &dir);
    assert_eq!(warm.cache_stats().snapshot_loads, 1);
    let warm_set = warm.synthesize(&adder(16)).expect("warm hit");
    assert_eq!(fingerprint(&warm_set), fingerprint(&outcome.design));
    assert_eq!(warm.cache_stats().hits, 1);
    drop(warm);

    let stats = service.shutdown();
    assert!(stats.checkpoints >= 2, "shutdown adds a final checkpoint");
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_panic_resolves_the_ticket_and_the_service_survives() {
    struct PanicRule;
    impl Rule for PanicRule {
        fn name(&self) -> &str {
            "panic-marker"
        }
        fn doc(&self) -> &str {
            "test-only: panic while expanding PANIC-styled specs"
        }
        fn expand(&self, spec: &ComponentSpec) -> Vec<NetlistTemplate> {
            if spec.style.as_deref() == Some("PANIC") {
                panic!("injected service panic");
            }
            vec![]
        }
    }
    let mut rules = RuleSet::standard().with_lsi_extensions();
    rules.append_library_rules(vec![Box::new(PanicRule)]);
    let engine = Arc::new(Dtas::new(lsi_logic_subset()).with_rules(rules).with_config(
        DtasConfig {
            threads: Some(1),
            ..DtasConfig::default()
        },
    ));
    let service = DtasService::start(
        Arc::clone(&engine),
        ServiceConfig {
            workers: Some(1),
            ..ServiceConfig::default()
        },
    );
    let poisoned = service
        .submit(SynthRequest::new(adder(4).with_style("PANIC")))
        .expect("admits");
    assert!(
        matches!(poisoned.recv(), Err(ServiceError::Internal(_))),
        "a worker panic must resolve the ticket, not hang it"
    );
    // The worker thread survived and the engine recovered (poison
    // recovery drops the half-mutated state): later requests answer
    // exactly like a fresh engine.
    let after = service
        .submit(SynthRequest::new(adder(16)))
        .expect("still admitting")
        .recv()
        .expect("still solving");
    let fresh = Dtas::new(lsi_logic_subset())
        .synthesize(&adder(16))
        .unwrap();
    assert_eq!(fingerprint(&after.design), fingerprint(&fresh));
    assert!(engine.cache_stats().poison_recoveries >= 1);
    let stats = service.shutdown();
    assert_eq!(stats.completed, 2);
}

/// Soak-oriented stress: 8 clients of mixed interactive/bulk traffic
/// against one service with aggressive background checkpointing; every
/// successful outcome must be bit-identical to a fresh engine's answer,
/// and the final accounting must balance. The CI soak job runs this in
/// release mode with 8 test threads.
#[test]
fn service_stress_mixed_priorities_with_checkpointing() {
    let dir = std::env::temp_dir().join(format!("dtas_service_stress_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let specs: Vec<ComponentSpec> = vec![
        adder(8),
        adder(16),
        adder(32),
        mux(4, 4),
        mux(8, 2),
        unmappable(),
    ];
    let reference: Vec<Result<common::Fingerprint, SynthError>> = specs
        .iter()
        .map(|s| {
            Dtas::new(lsi_logic_subset())
                .synthesize(s)
                .map(|set| fingerprint(&set))
        })
        .collect();
    let engine = Arc::new(Dtas::warm_start(lsi_logic_subset(), &dir));
    let service = DtasService::start(
        Arc::clone(&engine),
        ServiceConfig {
            queue_depth: 256,
            admission: Admission::Block {
                timeout: Duration::from_secs(60),
            },
            checkpoint_interval: Some(Duration::from_millis(10)),
            ..ServiceConfig::default()
        },
    );
    let clients = 8;
    let rounds = 60;
    std::thread::scope(|scope| {
        for w in 0..clients {
            let service = &service;
            let specs = &specs;
            let reference = &reference;
            scope.spawn(move || {
                for r in 0..rounds {
                    let spec = &specs[(w + r) % specs.len()];
                    let expect = &reference[(w + r) % specs.len()];
                    let request = SynthRequest::new(spec.clone());
                    let ticket = if r % 3 == 0 {
                        let mut batch = service.submit_batch([request]);
                        batch.pop().expect("one ticket").expect("admitted")
                    } else {
                        service.submit(request).expect("admitted")
                    };
                    match (ticket.recv(), expect) {
                        (Ok(outcome), Ok(expect)) => {
                            assert_eq!(&fingerprint(&outcome.design), expect, "{spec}");
                        }
                        (Err(ServiceError::Synth(got)), Err(expect)) => {
                            assert_eq!(&got, expect, "{spec}")
                        }
                        (got, _) => panic!("client {w} round {r} {spec}: {got:?}"),
                    }
                }
            });
        }
    });
    let stats = service.shutdown();
    assert_eq!(stats.admitted, (clients * rounds) as u64);
    assert_eq!(stats.completed, stats.admitted);
    assert_eq!((stats.rejected, stats.shed), (0, 0));
    assert_eq!(engine.cache_stats().poison_recoveries, 0);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// For arbitrary small workloads (duplicates and unmappable specs
    /// included), the service path returns bit-identical results — and
    /// identical errors — to calling `Dtas::synthesize` directly.
    #[test]
    fn service_results_are_bit_identical_to_direct_synthesize(
        picks in proptest::collection::vec(0usize..7, 1..12),
    ) {
        let pool: Vec<ComponentSpec> = vec![
            adder(4),
            adder(8),
            adder(12),
            mux(4, 4),
            mux(1, 2),
            ComponentSpec::new(ComponentKind::Comparator, 4)
                .with_ops([Op::Eq, Op::Lt, Op::Gt].into_iter().collect()),
            unmappable(),
        ];
        let direct = Dtas::new(lsi_logic_subset());
        let service = DtasService::start(
            Arc::new(Dtas::new(lsi_logic_subset())),
            ServiceConfig::default(),
        );
        let specs: Vec<&ComponentSpec> = picks.iter().map(|&i| &pool[i]).collect();
        let tickets = service.submit_batch(
            specs.iter().map(|s| SynthRequest::new((*s).clone())),
        );
        for (spec, ticket) in specs.iter().zip(tickets) {
            let via_service = ticket.expect("admitted").recv();
            let via_direct = direct.synthesize(spec);
            match (via_service, via_direct) {
                (Ok(outcome), Ok(set)) => {
                    prop_assert_eq!(fingerprint(&outcome.design), fingerprint(&set), "{}", spec);
                }
                (Err(ServiceError::Synth(a)), Err(b)) => prop_assert_eq!(a, b, "{}", spec),
                (a, b) => prop_assert!(false, "{}: service {:?} vs direct {:?}", spec, a, b),
            }
        }
        service.shutdown();
    }
}
