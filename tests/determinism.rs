//! Reproducibility: synthesis is fully deterministic — same spec, same
//! library, same rules ⇒ identical design sets (costs, labels, cell
//! censuses). The paper's numbers are only meaningful if reruns agree.

mod common;

use cells::lsi::lsi_logic_subset;
use common::fingerprint;
use dtas::Dtas;
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;

#[test]
fn synthesis_is_deterministic() {
    let specs = vec![
        ComponentSpec::new(ComponentKind::AddSub, 16)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true),
        ComponentSpec::new(ComponentKind::Alu, 8)
            .with_ops(Op::paper_alu16())
            .with_carry_in(true),
        ComponentSpec::new(ComponentKind::Mux, 8).with_inputs(8),
    ];
    for spec in specs {
        let a = Dtas::new(lsi_logic_subset()).run(&spec).unwrap();
        let b = Dtas::new(lsi_logic_subset()).run(&spec).unwrap();
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "nondeterminism for {spec}"
        );
        assert_eq!(
            a.unconstrained_size.to_bits(),
            b.unconstrained_size.to_bits()
        );
        assert_eq!(a.uniform_size, b.uniform_size);
    }
}

#[test]
fn state_tables_are_deterministic() {
    let entity = hls::lang::parse_entity(
        "entity t(x: in 8, y: out 8) {
            var a: 8;
            a = x;
            while (a > 1) { a = a - 1; }
            y = a;
        }",
    )
    .unwrap();
    let d1 = hls::compile::compile(&entity, &hls::compile::Constraints::default()).unwrap();
    let d2 = hls::compile::compile(&entity, &hls::compile::Constraints::default()).unwrap();
    assert_eq!(d1.state_table, d2.state_table);
    assert_eq!(
        vhdl::emit_netlist(&d1.netlist),
        vhdl::emit_netlist(&d2.netlist)
    );
}
