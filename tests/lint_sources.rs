//! A source-level lint mirroring the artifact lint's philosophy: panics
//! on lock/channel results in non-test code are latent availability
//! bugs (a poisoned mutex or a closed channel takes the whole service
//! down with an opaque message). The walk covers `src/` and every
//! `crates/*/src/`, skipping vendored crates, build output, and test
//! code (anything after the first `#[cfg(test)]` in a file).
//!
//! Policy:
//! - `.lock().unwrap()` is flagged: use `expect` with a message naming
//!   the poisoned resource, or recover with `unwrap_or_else`.
//! - `.lock().expect("...")` is allowed only when the message mentions
//!   poisoning, so the panic text says what actually happened.
//! - `.recv().unwrap()` and `.send(..).unwrap()` are flagged: a
//!   disconnected channel deserves a message (`.recv().expect(..)`) or
//!   handling. `.recv_timeout(..).unwrap()` additionally panics on a
//!   plain timeout.
//! - `thread::join()` unwraps are out of scope: join only errors when
//!   the child already panicked, and propagating that is the point.

use std::path::{Path, PathBuf};

/// Why a line was flagged, for the failure listing.
fn violation(line: &str) -> Option<&'static str> {
    let code = line.trim_start();
    if code.starts_with("//") {
        return None;
    }
    if code.contains("lock().unwrap()") {
        return Some("lock().unwrap(): name the poisoned resource or recover");
    }
    if code.contains("lock().expect(") && !code.contains("poison") {
        return Some("lock().expect() without a poison message");
    }
    if code.contains("recv().unwrap()") {
        return Some("recv().unwrap(): a closed channel deserves a message");
    }
    if code.contains(".recv_timeout(") && code.contains(".unwrap()") {
        return Some("recv_timeout().unwrap() panics on a plain timeout");
    }
    if code.contains(".send(") && code.contains(".unwrap()") {
        return Some("send().unwrap(): a closed channel deserves a message");
    }
    None
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "vendor" || name == "target" || name == "tests" {
                continue;
            }
            rust_sources(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn non_test_sources_handle_lock_and_channel_failures() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    rust_sources(&root.join("src"), &mut files);
    rust_sources(&root.join("crates"), &mut files);
    files.sort();
    assert!(
        files.len() > 20,
        "source walk looks broken: only {} files",
        files.len()
    );

    let mut findings = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).expect("source file reads");
        // Everything after the first `#[cfg(test)]` is test code: panics
        // there are assertions, not availability bugs.
        let non_test = match text.find("#[cfg(test)]") {
            Some(at) => &text[..at],
            None => &text,
        };
        for (i, line) in non_test.lines().enumerate() {
            if let Some(why) = violation(line) {
                let rel = file.strip_prefix(root).unwrap_or(file);
                findings.push(format!("{}:{}: {why}", rel.display(), i + 1));
            }
        }
    }
    assert!(
        findings.is_empty(),
        "lock/channel panics in non-test code:\n{}",
        findings.join("\n")
    );
}

#[test]
fn violation_rules_match_the_documented_policy() {
    // Flagged.
    assert!(violation("let g = self.state.lock().unwrap();").is_some());
    assert!(violation(r#"let g = m.lock().expect("locked");"#).is_some());
    assert!(violation("let v = rx.recv().unwrap();").is_some());
    assert!(violation("tx.send(job).unwrap();").is_some());
    assert!(violation("let v = rx.recv_timeout(d).unwrap();").is_some());
    // Allowed near-misses.
    assert!(violation(r#"let g = m.lock().expect("slot poisoned");"#).is_none());
    assert!(violation(r#"let v = rx.recv().expect("worker alive");"#).is_none());
    assert!(violation("let g = m.lock().unwrap_or_else(|p| p.into_inner());").is_none());
    assert!(violation("handle.join().unwrap();").is_none());
    assert!(violation("// don't write m.lock().unwrap() in prod code").is_none());
    assert!(violation("let v = rx.recv_timeout(d).ok();").is_none());
}
