//! Property test over the synthesis pipeline: random specifications from
//! the §7 families synthesize, produce monotone fronts, and every
//! alternative simulates bit-exactly against its behavioral model.

use cells::lsi::lsi_logic_subset;
use dtas::Dtas;
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use proptest::prelude::*;
use rtlsim::equiv::check_implementation;

fn arb_spec() -> impl Strategy<Value = ComponentSpec> {
    prop_oneof![
        // Adders of arbitrary width with arbitrary carry pins.
        (1usize..12, any::<bool>(), any::<bool>()).prop_map(|(w, ci, co)| {
            ComponentSpec::new(ComponentKind::AddSub, w)
                .with_ops(OpSet::only(Op::Add))
                .with_carry_in(ci)
                .with_carry_out(co)
        }),
        // Muxes of arbitrary shape.
        (1usize..9, 2usize..9)
            .prop_map(|(w, n)| { ComponentSpec::new(ComponentKind::Mux, w).with_inputs(n) }),
        // Logic units over random non-empty logic op subsets.
        (1usize..9, 1u32..255).prop_map(|(w, bits)| {
            let all = [
                Op::And,
                Op::Or,
                Op::Nand,
                Op::Nor,
                Op::Xor,
                Op::Xnor,
                Op::Lnot,
                Op::Limpl,
            ];
            let ops: OpSet = all
                .iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, op)| *op)
                .collect();
            let ops = if ops.is_empty() {
                OpSet::only(Op::And)
            } else {
                ops
            };
            ComponentSpec::new(ComponentKind::LogicUnit, w).with_ops(ops)
        }),
        // ALUs over random slices of the 16-function list.
        (1usize..7, 0usize..13, 1usize..5, any::<bool>()).prop_map(|(w, start, len, ci)| {
            let all: Vec<Op> = Op::paper_alu16().iter().collect();
            let end = (start + len).min(all.len());
            let ops: OpSet = all[start..end].iter().copied().collect();
            ComponentSpec::new(ComponentKind::Alu, w)
                .with_ops(ops)
                .with_carry_in(ci)
        }),
        // Comparators over random comparison subsets.
        (1usize..9, 0u32..63).prop_map(|(w, bits)| {
            let all = [Op::Eq, Op::Lt, Op::Gt, Op::Neq, Op::Ge, Op::Le];
            let ops: OpSet = all
                .iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, op)| *op)
                .collect();
            let ops = if ops.is_empty() {
                OpSet::only(Op::Eq)
            } else {
                ops
            };
            ComponentSpec::new(ComponentKind::Comparator, w).with_ops(ops)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 0,
    })]

    #[test]
    fn random_specs_synthesize_and_verify(spec in arb_spec(), seed in any::<u64>()) {
        let engine = Dtas::new(lsi_logic_subset());
        let set = engine
            .run(&spec)
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        prop_assert!(!set.alternatives.is_empty());
        // The front is monotone in area.
        for pair in set.alternatives.windows(2) {
            prop_assert!(pair[0].area <= pair[1].area);
        }
        // Verify the extremes (full sweeps live in equivalence_sweep.rs).
        for alt in [set.smallest().expect("nonempty"), set.fastest().expect("nonempty")] {
            check_implementation(&alt.implementation, 60, seed).unwrap_or_else(|e| {
                panic!("{spec} via {}: {e}", alt.implementation.label())
            });
        }
    }
}
