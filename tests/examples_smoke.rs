//! Smoke-runs every binary under `examples/` so the doc-adjacent example
//! code can never rot: if an example stops compiling or panics, this
//! test fails with its output.
//!
//! The examples are driven through `cargo run --example` (using the same
//! cargo that is running this test), so they execute exactly as the
//! README tells a user to run them.

use std::path::Path;
use std::process::Command;

fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .current_dir(manifest_dir)
        .args(["run", "--release", "--example", name])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "example {name} printed nothing on stdout"
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn alu64_tradeoffs_runs() {
    run_example("alu64_tradeoffs");
}

#[test]
fn counter_from_legend_runs() {
    run_example("counter_from_legend");
}

#[test]
fn gcd_hls_flow_runs() {
    run_example("gcd_hls_flow");
}

#[test]
fn every_example_file_is_smoke_tested() {
    // If a future PR adds an example, force it into this smoke list.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let known = [
        "quickstart",
        "alu64_tradeoffs",
        "counter_from_legend",
        "gcd_hls_flow",
    ];
    for entry in std::fs::read_dir(dir).expect("examples/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let stem = path.file_stem().unwrap().to_string_lossy().to_string();
            assert!(
                known.contains(&stem.as_str()),
                "examples/{stem}.rs is not covered by examples_smoke.rs; add it"
            );
        }
    }
}
