//! The fault-injection suite: the service and wire layers under
//! deliberately hostile conditions — stalled workers, panicking workers,
//! failing checkpoint writes, and connections killed mid-stream (via the
//! [`common::flaky_proxy`] fixture).
//!
//! The invariants, from strongest to weakest:
//!
//! 1. **No ticket is ever lost.** Every admitted submission resolves —
//!    to an outcome or a typed error — through stalls, panics, cancels
//!    and shutdown drain alike.
//! 2. **Deadlines keep firing** while chaos holds the workers hostage.
//! 3. **Results computed after (or around) chaos are bit-identical** to
//!    a fresh engine's: fault recovery never leaves the engine in a
//!    state that changes answers.
//! 4. **Checkpoint failures are counted and survivable**: the service
//!    keeps serving, a later tick flushes, and the snapshot warm-starts
//!    a new engine bit-identically.
//!
//! Chaos regimes are process-global (`chaos::install` serializes them),
//! which is why this suite is its own test binary: its injection never
//! bleeds into the other integration suites.

mod common;

use cells::lsi::lsi_logic_subset;
use common::fingerprint;
use common::flaky_proxy::FlakyProxy;
use dtas::net::{ReconnectingClient, RetryPolicy, ServeConfig, WireDesignSet, WireServer};
use dtas::service::chaos::{self, ChaosConfig};
use dtas::{Dtas, DtasService, Priority, ServiceConfig, ServiceError, SynthRequest, Ticket};
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn adder(width: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::AddSub, width).with_ops(OpSet::only(Op::Add))
}

fn plain_engine() -> Arc<Dtas> {
    Arc::new(Dtas::new(lsi_logic_subset()))
}

/// A fresh, empty cache directory unique to this test and process.
fn cache_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtas_chaos_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn stalled_workers_never_lose_tickets() {
    let guard = chaos::install(ChaosConfig {
        stall_every: Some((2, Duration::from_millis(25))),
        ..ChaosConfig::default()
    });
    let service = DtasService::start(
        plain_engine(),
        ServiceConfig {
            workers: Some(2),
            ..ServiceConfig::default()
        },
    );
    let tickets: Vec<Ticket> = (4..12)
        .map(|w| service.submit(SynthRequest::new(adder(w))).expect("admits"))
        .collect();
    for ticket in &tickets {
        let outcome = ticket.recv().expect("stalled dispatches still complete");
        assert!(!outcome.design.alternatives.is_empty());
    }
    let stats = service.shutdown();
    assert_eq!(stats.admitted, 8, "{stats}");
    assert_eq!(stats.completed, 8, "{stats}");
    assert!(
        guard.injected().stalls >= 1,
        "the regime must actually have stalled something"
    );
}

#[test]
fn worker_panics_resolve_tickets_and_post_chaos_results_are_bit_identical() {
    let widths: Vec<usize> = (4..12).collect();
    let engine = plain_engine();
    let service = DtasService::start(
        Arc::clone(&engine),
        ServiceConfig {
            workers: Some(1), // sequential dispatch: panics hit a known slot
            ..ServiceConfig::default()
        },
    );
    let guard = chaos::install(ChaosConfig {
        panic_every: Some(3),
        ..ChaosConfig::default()
    });
    let tickets: Vec<Ticket> = widths
        .iter()
        .map(|w| {
            service
                .submit(SynthRequest::new(adder(*w)))
                .expect("admits")
        })
        .collect();
    let mut panicked = 0u64;
    for ticket in &tickets {
        match ticket.recv() {
            Ok(outcome) => assert!(!outcome.design.alternatives.is_empty()),
            Err(ServiceError::Internal(_)) => panicked += 1,
            Err(other) => panic!("unexpected resolution under panic chaos: {other}"),
        }
    }
    assert_eq!(
        panicked,
        guard.injected().panics,
        "every injected panic surfaces as exactly one Internal resolution"
    );
    assert!(
        panicked >= 2,
        "8 sequential dispatches at every-3rd ≥ 2 panics"
    );
    drop(guard);
    // Chaos off: the same service re-answers every width — including the
    // ones whose dispatch panicked — bit-identically to a fresh engine.
    for w in &widths {
        let after = service
            .submit(SynthRequest::new(adder(*w)))
            .expect("still admitting")
            .recv()
            .expect("post-chaos dispatches complete");
        let fresh = Dtas::new(lsi_logic_subset()).run(adder(*w)).unwrap();
        assert_eq!(
            fingerprint(&after.design),
            fingerprint(&fresh),
            "width {w} diverged after panic chaos"
        );
    }
    let stats = service.shutdown();
    assert_eq!(stats.admitted, 16, "{stats}");
    assert_eq!(stats.completed, 16, "{stats}");
}

#[test]
fn checkpoint_write_failures_are_counted_and_survivable() {
    let dir = cache_dir("ckpt_fail");
    let spec = adder(10);
    {
        let engine = Arc::new(Dtas::warm_start(lsi_logic_subset(), &dir));
        let guard = chaos::install(ChaosConfig {
            checkpoint_fail_every: Some(2),
            ..ChaosConfig::default()
        });
        let service = DtasService::start(
            Arc::clone(&engine),
            ServiceConfig {
                workers: Some(1),
                checkpoint_interval: Some(Duration::from_millis(5)),
                ..ServiceConfig::default()
            },
        );
        service
            .submit(SynthRequest::new(spec.clone()))
            .expect("admits")
            .recv()
            .expect("solves");
        // Let several ticks elapse so both outcomes occur: some fail
        // (injected), some flush.
        let waited = Instant::now();
        while guard.injected().checkpoint_failures < 2 && waited.elapsed() < Duration::from_secs(5)
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = service.shutdown();
        assert!(
            stats.checkpoint_failures >= 2,
            "injected write failures must be counted: {stats}"
        );
        assert!(
            stats.checkpoints >= 1,
            "surviving ticks must still flush: {stats}"
        );
        assert_eq!(stats.completed, 1, "{stats}");
        assert_eq!(
            stats.checkpoint_failures,
            guard.injected().checkpoint_failures,
            "service counters and the injection ledger agree"
        );
    }
    // The snapshot that did land warm-starts a new engine bit-identically
    // to a cold solve.
    let warm = Dtas::warm_start(lsi_logic_subset(), &dir);
    assert_eq!(
        warm.cache_stats().snapshot_loads,
        1,
        "the surviving checkpoint must actually warm the new engine"
    );
    let warmed = warm.run(&spec).unwrap();
    let cold = Dtas::new(lsi_logic_subset()).run(&spec).unwrap();
    assert_eq!(fingerprint(&warmed), fingerprint(&cold));
    assert!(
        warm.cache_stats().hits >= 1,
        "warm answer came from the memo"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadlines_fire_within_tolerance_while_chaos_stalls_the_worker() {
    let guard = chaos::install(ChaosConfig {
        stall_every: Some((1, Duration::from_millis(250))), // every dispatch
        ..ChaosConfig::default()
    });
    let service = DtasService::start(
        plain_engine(),
        ServiceConfig {
            workers: Some(1),
            ..ServiceConfig::default()
        },
    );
    // The occupier dispatches immediately and stalls 250 ms; the doomed
    // request waits behind it with a 40 ms deadline.
    let occupier = service.submit(SynthRequest::new(adder(8))).expect("admits");
    let doomed = service
        .submit(SynthRequest::new(adder(9)).with_deadline(Duration::from_millis(40)))
        .expect("admits");
    let queued_at = Instant::now();
    assert!(
        matches!(doomed.recv(), Err(ServiceError::DeadlineExceeded)),
        "a queued deadline must fire even while chaos stalls the worker"
    );
    let waited = queued_at.elapsed();
    assert!(
        waited >= Duration::from_millis(35),
        "fired {waited:?} early"
    );
    assert!(
        waited < Duration::from_millis(200),
        "fired {waited:?} after the deadline — not within tolerance"
    );
    occupier
        .recv()
        .expect("the stalled occupier still completes");
    drop(guard);
    let stats = service.shutdown();
    assert_eq!(stats.deadline_expired, 1, "{stats}");
    assert_eq!(stats.completed, 1, "{stats}");
}

#[test]
fn cancellation_storm_under_chaos_never_wedges_a_lane() {
    let guard = chaos::install(ChaosConfig {
        stall_every: Some((3, Duration::from_millis(15))),
        panic_every: Some(7),
        ..ChaosConfig::default()
    });
    let service = DtasService::start(
        plain_engine(),
        ServiceConfig {
            workers: Some(2),
            ..ServiceConfig::default()
        },
    );
    let tickets: Vec<Ticket> = (0..24)
        .map(|i| {
            let lane = if i % 2 == 0 {
                Priority::Interactive
            } else {
                Priority::Bulk
            };
            service
                .submit_with_priority(SynthRequest::new(adder(4 + i % 8)), lane)
                .expect("admits")
        })
        .collect();
    // Cancel every third ticket while workers stall and panic around them.
    for ticket in tickets.iter().step_by(3) {
        ticket.cancel();
    }
    // Drain-on-shutdown must resolve everything — this would hang (and
    // the harness time the test out) if a lane wedged.
    let stats = service.shutdown();
    for (i, ticket) in tickets.iter().enumerate() {
        assert!(
            ticket.try_recv().is_some(),
            "ticket {i} left unresolved after drain"
        );
    }
    assert_eq!(stats.admitted, 24, "{stats}");
    assert!(
        stats.completed + stats.cancelled >= 24,
        "every ticket resolved by a worker or a cancel: {stats}"
    );
    assert!(stats.cancelled >= 1, "{stats}");
    assert!(
        guard.injected().panics >= 1,
        "the storm must include panics"
    );
}

#[test]
fn wire_submissions_survive_connection_kills_under_worker_chaos() {
    let widths: Vec<usize> = (4..14).collect();
    let guard = chaos::install(ChaosConfig {
        stall_every: Some((2, Duration::from_millis(25))),
        ..ChaosConfig::default()
    });
    let server = WireServer::start(plain_engine(), ServeConfig::default(), ("127.0.0.1", 0))
        .expect("binds an ephemeral loopback port");
    let proxy = FlakyProxy::start(server.local_addr());
    let mut client = ReconnectingClient::connect(
        proxy.addr().to_string(),
        Priority::Interactive,
        RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            ..RetryPolicy::default()
        },
    )
    .expect("connects through the proxy");
    let ids: Vec<u64> = widths
        .iter()
        .map(|w| {
            client
                .submit(&SynthRequest::new(adder(*w)))
                .expect("submits")
        })
        .collect();
    // Kill the connection while the stalled workers are still grinding:
    // undelivered results must be replayed over a fresh connection.
    assert!(proxy.kill_live() >= 1);
    let mut delivered: HashMap<u64, WireDesignSet> = HashMap::new();
    for _ in 0..ids.len() {
        let result = client.recv_result().expect("results after replay");
        let set = result.result.expect("chaos never corrupts a result");
        assert!(delivered.insert(result.id, set).is_none(), "duplicate id");
    }
    assert!(client.reconnects() >= 1, "the kill must force a reconnect");
    drop(guard);
    // Bit-identity: every wire answer — computed around stalls and a
    // connection kill — matches a fresh engine's cold solve.
    let fresh = Dtas::new(lsi_logic_subset());
    for (id, w) in ids.iter().zip(&widths) {
        let expected = WireDesignSet::of(&fresh.run(adder(*w)).unwrap());
        assert_eq!(
            delivered.get(id),
            Some(&expected),
            "width {w} diverged through wire chaos"
        );
    }
    let stats = server.shutdown();
    assert_eq!(
        stats.completed, stats.admitted,
        "every admitted request resolved: {stats}"
    );
}

// ---------------------------------------------------------------------
// Property sweep (sized up by PROPTEST_CASES=256 in the CI soak): under
// an arbitrary chaos regime and an arbitrary cancel pattern, every
// admitted ticket resolves and the books balance.

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn every_admitted_ticket_resolves_under_any_chaos_regime(
        stall_every in 0u32..4,
        panic_every in 0u32..5,
        widths in proptest::collection::vec(1usize..10, 1..7),
        cancel_mask in any::<u8>(),
    ) {
        let guard = chaos::install(ChaosConfig {
            stall_every: (stall_every > 0)
                .then_some((stall_every, Duration::from_millis(5))),
            panic_every: (panic_every > 0).then_some(panic_every),
            checkpoint_fail_every: None,
        });
        let service = DtasService::start(
            plain_engine(),
            ServiceConfig {
                workers: Some(2),
                ..ServiceConfig::default()
            },
        );
        let tickets: Vec<Ticket> = widths
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let lane = if i % 2 == 0 { Priority::Interactive } else { Priority::Bulk };
                service
                    .submit_with_priority(SynthRequest::new(adder(*w)), lane)
                    .expect("admits")
            })
            .collect();
        for (i, ticket) in tickets.iter().enumerate() {
            if cancel_mask & (1 << (i % 8)) != 0 {
                ticket.cancel();
            }
        }
        let stats = service.shutdown();
        for (i, ticket) in tickets.iter().enumerate() {
            prop_assert!(
                ticket.try_recv().is_some(),
                "ticket {} left unresolved", i
            );
        }
        prop_assert_eq!(stats.admitted as usize, widths.len());
        prop_assert!(stats.completed + stats.cancelled >= stats.admitted);
        drop(guard);
    }
}
