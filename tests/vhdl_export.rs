//! VHDL export coverage: behavioral models for every standard generator
//! family and hierarchical structural output for synthesized designs.

use cells::lsi::lsi_logic_subset;
use dtas::Dtas;
use genus::op::{Op, OpSet};
use genus::stdlib::GenusLibrary;
use vhdl::{emit_behavioral, emit_implementation, emit_netlist, parse_structural};

#[test]
fn behavioral_models_for_every_family() {
    let lib = GenusLibrary::standard();
    let components = vec![
        lib.adder(8).unwrap(),
        lib.addsub(4).unwrap(),
        lib.alu(8, Op::paper_alu16()).unwrap(),
        lib.mux(8, 4).unwrap(),
        lib.comparator(8).unwrap(),
        lib.decoder(3).unwrap(),
        lib.bcd_decoder().unwrap(),
        lib.encoder(8).unwrap(),
        lib.multiplier(4, 4).unwrap(),
        lib.divider(4).unwrap(),
        lib.cla_generator(4).unwrap(),
        lib.register(8).unwrap(),
        lib.register_en(8).unwrap(),
        lib.counter(4).unwrap(),
        lib.register_file(4, 4).unwrap(),
        lib.memory(4, 8).unwrap(),
        lib.stack(4, 4).unwrap(),
        lib.buffer(8).unwrap(),
        lib.tristate(8).unwrap(),
        lib.logic_unit(8, [Op::And, Op::Or, Op::Xor].into_iter().collect())
            .unwrap(),
        lib.shifter(8, OpSet::only(Op::Shl)).unwrap(),
        lib.barrel_shifter(8, OpSet::only(Op::Shr)).unwrap(),
    ];
    for c in components {
        let text =
            emit_behavioral(&c).unwrap_or_else(|e| panic!("{} failed to emit: {e}", c.name()));
        assert!(
            text.contains(&format!("entity {} is", c.name())),
            "{}",
            c.name()
        );
        assert!(text.contains("architecture behavior"));
        if c.is_sequential() {
            assert!(text.contains("rising_edge"), "{}", c.name());
        }
    }
}

#[test]
fn figure3_extremes_export_hierarchically() {
    let spec = genus::spec::ComponentSpec::new(genus::kind::ComponentKind::Alu, 16)
        .with_ops(Op::paper_alu16())
        .with_carry_in(true);
    let set = Dtas::new(lsi_logic_subset()).run(&spec).unwrap();
    for alt in [set.smallest().unwrap(), set.fastest().unwrap()] {
        let text = emit_implementation(&alt.implementation).unwrap();
        // One entity per distinct spec; the root entity must be present.
        assert!(
            text.contains(&format!("entity {} is", spec.identifier())),
            "missing root entity"
        );
        // Every leaf cell is named in a comment.
        for cell in alt.implementation.cell_census().keys() {
            assert!(
                text.contains(&format!("maps to data book cell {cell}")),
                "missing {cell}"
            );
        }
    }
}

#[test]
fn hls_netlist_roundtrips_through_vhdl() {
    let entity =
        hls::lang::parse_entity("entity acc(x: in 8, y: out 8) { var t: 8; t = t + x; y = t; }")
            .unwrap();
    let design = hls::compile::compile(&entity, &hls::compile::Constraints::default()).unwrap();
    let text = emit_netlist(&design.netlist);
    let parsed = parse_structural(&text).unwrap();
    assert_eq!(parsed.name, "acc");
    assert_eq!(parsed.instances.len(), design.netlist.instances().len());
    // Width fidelity on a known port.
    let x = parsed.ports.iter().find(|p| p.name == "x").unwrap();
    assert_eq!(x.width, 8);
}
