//! Helpers shared by the integration suites (included per-crate via
//! `mod common;` — the `common/` directory is not itself a test target).
#![allow(dead_code)] // each suite uses the subset it needs

/// Everything observable about one design set, bit-exact: per
/// alternative `(area bits, delay bits, implementation label, cell
/// census)`. The oracle every determinism/batch/concurrency suite
/// compares against — extend it here, not in per-suite copies.
pub type Fingerprint = Vec<(u64, u64, String, Vec<(String, usize)>)>;

/// Fingerprints a [`dtas::DesignSet`].
pub fn fingerprint(set: &dtas::DesignSet) -> Fingerprint {
    set.alternatives
        .iter()
        .map(|a| {
            (
                a.area.to_bits(),
                a.delay.to_bits(),
                a.implementation.label().to_string(),
                a.implementation.cell_census().into_iter().collect(),
            )
        })
        .collect()
}
