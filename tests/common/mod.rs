//! Helpers shared by the integration suites (included per-crate via
//! `mod common;` — the `common/` directory is not itself a test target).
#![allow(dead_code)] // each suite uses the subset it needs

pub mod flaky_proxy;

use cells::lsi::lsi_logic_subset;
use dtas::template::NetlistTemplate;
use dtas::{Dtas, DtasConfig, Rule, RuleSet};
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use std::sync::Arc;
use std::time::Duration;

/// Everything observable about one design set, bit-exact: per
/// alternative `(area bits, delay bits, implementation label, cell
/// census)`. The oracle every determinism/batch/concurrency suite
/// compares against — extend it here, not in per-suite copies.
pub type Fingerprint = Vec<(u64, u64, String, Vec<(String, usize)>)>;

/// Fingerprints a [`dtas::DesignSet`].
pub fn fingerprint(set: &dtas::DesignSet) -> Fingerprint {
    set.alternatives
        .iter()
        .map(|a| {
            (
                a.area.to_bits(),
                a.delay.to_bits(),
                a.implementation.label().to_string(),
                a.implementation.cell_census().into_iter().collect(),
            )
        })
        .collect()
}

/// A spec the [`SlowRule`] stalls on — each distinct width is a distinct
/// cold solve, so every submission occupies a worker afresh.
pub fn slow_spec(width: usize) -> ComponentSpec {
    ComponentSpec::new(ComponentKind::AddSub, width)
        .with_ops(OpSet::only(Op::Add))
        .with_carry_in(true)
        .with_carry_out(true)
        .with_style("SLOW")
}

/// Test-only rule: sleeps when expanding a `SLOW`-styled spec, turning a
/// request into a deterministic worker-occupier.
pub struct SlowRule(pub Duration);

impl Rule for SlowRule {
    fn name(&self) -> &str {
        "slow-marker"
    }
    fn doc(&self) -> &str {
        "test-only: stall expansion of SLOW-styled specs"
    }
    fn expand(&self, spec: &ComponentSpec) -> Vec<NetlistTemplate> {
        if spec.style.as_deref() == Some("SLOW") {
            std::thread::sleep(self.0);
        }
        vec![]
    }
}

/// An engine whose `SLOW`-styled specs take `delay` to expand. Serial
/// solve threads keep the stall on the worker thread itself.
pub fn slow_engine(delay: Duration) -> Arc<Dtas> {
    let mut rules = RuleSet::standard().with_lsi_extensions();
    rules.append_library_rules(vec![Box::new(SlowRule(delay))]);
    Arc::new(
        Dtas::builder(lsi_logic_subset())
            .rules(rules)
            .config(DtasConfig {
                threads: Some(1),
                ..DtasConfig::default()
            })
            .build(),
    )
}
