//! A fault-injecting TCP proxy for wire-layer chaos tests.
//!
//! Sits between a wire client and a `WireServer`, forwarding bytes
//! verbatim until told to misbehave:
//!
//! * [`kill_live`](FlakyProxy::kill_live) hard-closes every proxied
//!   connection mid-stream — the client sees an abrupt I/O error, the
//!   server an EOF, exactly like a network partition or proxy restart;
//! * [`cut_new_connections_after`](FlakyProxy::cut_new_connections_after)
//!   tears each *new* connection down after forwarding a byte budget —
//!   small budgets die inside the handshake, larger ones mid-frame.
//!
//! The proxy's own listener stays up throughout, so a reconnecting
//! client that redials the same address lands on a fresh backend
//! connection — the fixture reconnect/replay tests are built on.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

struct Shared {
    backend: SocketAddr,
    stop: AtomicBool,
    /// Byte budget applied to connections accepted from now on
    /// (client→backend direction); 0 = pass-through.
    cut_after_bytes: AtomicUsize,
    /// Both halves of every live proxied connection, for [`kill_live`].
    live: Mutex<Vec<TcpStream>>,
    accepted: AtomicU64,
    cut: AtomicU64,
}

/// See the module docs.
pub struct FlakyProxy {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl FlakyProxy {
    /// Starts forwarding `127.0.0.1:<ephemeral>` → `backend`.
    pub fn start(backend: SocketAddr) -> FlakyProxy {
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("proxy binds loopback");
        let addr = listener.local_addr().expect("proxy addr");
        let shared = Arc::new(Shared {
            backend,
            stop: AtomicBool::new(false),
            cut_after_bytes: AtomicUsize::new(0),
            live: Mutex::new(Vec::new()),
            accepted: AtomicU64::new(0),
            cut: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        FlakyProxy {
            addr,
            shared,
            accept: Some(accept),
        }
    }

    /// The address clients should dial instead of the backend's.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far — a reconnect shows up as +1.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Connections torn down by a byte budget so far.
    pub fn connections_cut(&self) -> u64 {
        self.shared.cut.load(Ordering::Relaxed)
    }

    /// Every connection accepted from now on is hard-closed after
    /// forwarding `bytes` client→backend bytes. `0` restores
    /// pass-through. Existing connections are unaffected.
    pub fn cut_new_connections_after(&self, bytes: usize) {
        self.shared.cut_after_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Hard-closes every currently proxied connection (both directions)
    /// and returns how many connections were killed. The listener stays
    /// up: redials succeed and get fresh backend connections.
    pub fn kill_live(&self) -> usize {
        let mut live = self.shared.live.lock().unwrap_or_else(|p| p.into_inner());
        // Two registered halves (client side + backend side) per
        // proxied connection.
        let connections = live.len() / 2;
        for stream in live.drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        connections
    }
}

impl Drop for FlakyProxy {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Poke our own listener so the blocking accept wakes and sees
        // the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.kill_live();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let Ok(client) = conn else { continue };
        let Ok(backend) = TcpStream::connect(shared.backend) else {
            let _ = client.shutdown(Shutdown::Both);
            continue;
        };
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        let budget = match shared.cut_after_bytes.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n),
        };
        let (Ok(c2), Ok(b2)) = (client.try_clone(), backend.try_clone()) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = backend.shutdown(Shutdown::Both);
            continue;
        };
        {
            let mut live = shared.live.lock().unwrap_or_else(|p| p.into_inner());
            live.retain(|s| {
                // Opportunistic pruning: closed sockets error on peer_addr.
                s.peer_addr().is_ok()
            });
            if let (Ok(c3), Ok(b3)) = (client.try_clone(), backend.try_clone()) {
                live.push(c3);
                live.push(b3);
            }
        }
        // Two pump threads per connection; they exit when either side
        // closes. Detached — killed sockets unblock their reads.
        {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || pump(client, backend, budget, Some(&shared)));
        }
        std::thread::spawn(move || pump(b2, c2, None, None));
    }
}

/// Copies `from` → `to` until EOF, error, or the byte budget runs out
/// (then both directions are shut down and the cut is counted).
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    mut budget: Option<usize>,
    shared: Option<&Shared>,
) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let forwarded = match budget.as_mut() {
            None => n,
            Some(left) => {
                let take = n.min(*left);
                *left -= take;
                take
            }
        };
        if forwarded > 0 && to.write_all(&buf[..forwarded]).is_err() {
            break;
        }
        if budget == Some(0) {
            if let Some(shared) = shared {
                shared.cut.fetch_add(1, Ordering::Relaxed);
            }
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}
