//! Component specifications: the representation language shared between
//! GENUS components, DTAS decomposition and RTL library cells.
//!
//! The paper (§5) stresses that technology mapping is performed "using the
//! functional specification of library cells, as opposed to a DAG
//! description of their Boolean behavior", and that cell functionality
//! "is described with the same representation language used in recognizing
//! and decomposing GENUS components". [`ComponentSpec`] is that language: a
//! kind plus widths, fan-in, carry/enable flags and an operation set.

use crate::kind::ComponentKind;
use crate::op::OpSet;
use std::fmt;

/// The functional specification of a component or library cell.
///
/// Two specs that compare equal describe the same functionality; a cell
/// whose spec [`can_implement`](ComponentSpec::can_implement) a required
/// spec may be mapped in as an implementation (a *functional match*,
/// avoiding subgraph isomorphism entirely).
///
/// # Examples
///
/// ```
/// use genus::spec::ComponentSpec;
/// use genus::kind::ComponentKind;
/// use genus::op::{Op, OpSet};
///
/// // The 4-bit adder cell lookup from the paper's §5: "a cell of type ADD
/// // with two 4-bit inputs plus carry-in and a 4-bit output plus carry-out".
/// let want = ComponentSpec::new(ComponentKind::AddSub, 4)
///     .with_ops(OpSet::only(Op::Add))
///     .with_carry_in(true)
///     .with_carry_out(true);
/// assert_eq!(want.to_string(), "ADDSUB.4+CI+CO(ADD)");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentSpec {
    /// Component family.
    pub kind: ComponentKind,
    /// Principal data width in bits.
    pub width: usize,
    /// Secondary width: multiplier second-operand width, memory/register
    /// file depth in words, barrel-shifter shift-amount width. Zero when
    /// not applicable.
    pub width2: usize,
    /// Fan-in: N for an N-to-1 mux or selector, gate fan-in, encoder input
    /// lines, carry-lookahead group count. Zero when not applicable.
    pub inputs: usize,
    /// Operations the component performs.
    pub ops: OpSet,
    /// Has a carry input pin.
    pub carry_in: bool,
    /// Has a carry output pin.
    pub carry_out: bool,
    /// Has a synchronous enable pin.
    pub enable: bool,
    /// Has asynchronous set/reset pins.
    pub async_set_reset: bool,
    /// Has group propagate/generate outputs (adders that feed a
    /// carry-lookahead generator).
    pub group_pg: bool,
    /// Optional style attribute (e.g. `SYNCHRONOUS` vs `RIPPLE` counters).
    /// Styles *describe* generated structure; they are ignored by
    /// functional matching.
    pub style: Option<String>,
}

impl ComponentSpec {
    /// Creates a minimal spec of the given kind and width.
    pub fn new(kind: ComponentKind, width: usize) -> Self {
        ComponentSpec {
            kind,
            width,
            width2: 0,
            inputs: 0,
            ops: OpSet::new(),
            carry_in: false,
            carry_out: false,
            enable: false,
            async_set_reset: false,
            group_pg: false,
            style: None,
        }
    }

    /// Sets the secondary width.
    pub fn with_width2(mut self, w: usize) -> Self {
        self.width2 = w;
        self
    }

    /// Sets the fan-in.
    pub fn with_inputs(mut self, n: usize) -> Self {
        self.inputs = n;
        self
    }

    /// Sets the operation list.
    pub fn with_ops(mut self, ops: OpSet) -> Self {
        self.ops = ops;
        self
    }

    /// Sets the carry-input flag.
    pub fn with_carry_in(mut self, v: bool) -> Self {
        self.carry_in = v;
        self
    }

    /// Sets the carry-output flag.
    pub fn with_carry_out(mut self, v: bool) -> Self {
        self.carry_out = v;
        self
    }

    /// Sets the enable flag.
    pub fn with_enable(mut self, v: bool) -> Self {
        self.enable = v;
        self
    }

    /// Sets the asynchronous set/reset flag.
    pub fn with_async_set_reset(mut self, v: bool) -> Self {
        self.async_set_reset = v;
        self
    }

    /// Sets the group propagate/generate flag.
    pub fn with_group_pg(mut self, v: bool) -> Self {
        self.group_pg = v;
        self
    }

    /// Sets the style attribute.
    pub fn with_style(mut self, style: &str) -> Self {
        self.style = Some(style.to_string());
        self
    }

    /// Functional match: can a component with spec `self` (typically a
    /// library cell) implement a requirement `spec`?
    ///
    /// The match is *functional*, field by field:
    ///
    /// * kind, widths and fan-in must agree exactly;
    /// * the provider's operation set must be a superset (unused functions
    ///   are simply never selected);
    /// * a required carry/enable/async pin must be present; surplus pins on
    ///   the provider are acceptable (they can be tied off);
    /// * style is ignored (it is a structural hint, not functionality).
    pub fn can_implement(&self, required: &ComponentSpec) -> bool {
        self.kind == required.kind
            && self.width == required.width
            && self.width2 == required.width2
            && self.inputs == required.inputs
            && self.ops.is_superset(required.ops)
            && (!required.carry_in || self.carry_in)
            && (!required.carry_out || self.carry_out)
            && (!required.enable || self.enable)
            && (!required.async_set_reset || self.async_set_reset)
            && (!required.group_pg || self.group_pg)
    }

    /// A stable identifier suitable for VHDL entity names, e.g.
    /// `addsub_4_ci_co_add`.
    pub fn identifier(&self) -> String {
        let mut s = self
            .kind
            .name()
            .to_lowercase()
            .replace(|c: char| !c.is_alphanumeric(), "_");
        s.push('_');
        s.push_str(&self.width.to_string());
        if self.width2 > 0 {
            s.push_str(&format!("x{}", self.width2));
        }
        if self.inputs > 0 {
            s.push_str(&format!("_n{}", self.inputs));
        }
        if self.carry_in {
            s.push_str("_ci");
        }
        if self.carry_out {
            s.push_str("_co");
        }
        if self.enable {
            s.push_str("_en");
        }
        if self.async_set_reset {
            s.push_str("_sr");
        }
        if self.group_pg {
            s.push_str("_pg");
        }
        for op in self.ops.iter() {
            s.push('_');
            s.push_str(&op.name().to_lowercase().replace('_', ""));
        }
        s
    }
}

impl fmt::Display for ComponentSpec {
    /// Formats like the paper's component specifications, e.g.
    /// `ALU.64(ADD SUB ... LIMPL)` or `ADDSUB.4+CI+CO(ADD)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.kind, self.width)?;
        if self.width2 > 0 {
            write!(f, "x{}", self.width2)?;
        }
        if self.inputs > 0 {
            write!(f, "[{}]", self.inputs)?;
        }
        if self.carry_in {
            write!(f, "+CI")?;
        }
        if self.carry_out {
            write!(f, "+CO")?;
        }
        if self.enable {
            write!(f, "+EN")?;
        }
        if self.async_set_reset {
            write!(f, "+SR")?;
        }
        if self.group_pg {
            write!(f, "+PG")?;
        }
        if !self.ops.is_empty() {
            write!(f, "({})", self.ops)?;
        }
        if let Some(style) = &self.style {
            write!(f, "<{style}>")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::GateOp;
    use crate::op::{Op, OpSet};

    fn add4() -> ComponentSpec {
        ComponentSpec::new(ComponentKind::AddSub, 4)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true)
    }

    #[test]
    fn display_formats() {
        assert_eq!(add4().to_string(), "ADDSUB.4+CI+CO(ADD)");
        let mux = ComponentSpec::new(ComponentKind::Mux, 8).with_inputs(4);
        assert_eq!(mux.to_string(), "MUX.8[4]");
        let alu = ComponentSpec::new(ComponentKind::Alu, 64).with_ops(Op::paper_alu16());
        assert_eq!(
            alu.to_string(),
            "ALU.64(ADD SUB INC DEC EQ LT GT ZEROP AND OR NAND NOR XOR XNOR LNOT LIMPL)"
        );
    }

    #[test]
    fn exact_self_match() {
        assert!(add4().can_implement(&add4()));
    }

    #[test]
    fn superset_ops_match() {
        let addsub = ComponentSpec::new(ComponentKind::AddSub, 4)
            .with_ops([Op::Add, Op::Sub].into_iter().collect())
            .with_carry_in(true)
            .with_carry_out(true);
        assert!(addsub.can_implement(&add4()));
        assert!(!add4().can_implement(&addsub));
    }

    #[test]
    fn surplus_pins_acceptable_missing_pins_not() {
        let no_ci = ComponentSpec::new(ComponentKind::AddSub, 4)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_out(true);
        assert!(!no_ci.can_implement(&add4()));
        assert!(add4().can_implement(&no_ci));
    }

    #[test]
    fn width_and_kind_must_agree() {
        let add8 = ComponentSpec::new(ComponentKind::AddSub, 8)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true);
        assert!(!add8.can_implement(&add4()));
        let gate = ComponentSpec::new(ComponentKind::Gate(GateOp::And), 4).with_inputs(2);
        assert!(!gate.can_implement(&add4()));
    }

    #[test]
    fn style_is_ignored_by_matching_but_shown() {
        let styled = add4().with_style("RIPPLE");
        assert!(styled.can_implement(&add4()));
        assert!(add4().can_implement(&styled));
        assert!(styled.to_string().ends_with("<RIPPLE>"));
    }

    #[test]
    fn identifier_is_filesystem_safe() {
        let id = add4().identifier();
        assert_eq!(id, "addsub_4_ci_co_add");
        assert!(id.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    }
}
