//! GENUS: a parameterizable library of *generic* RTL components.
//!
//! This crate reproduces the GENUS component library of Dutt & Kipps,
//! *"Bridging High-Level Synthesis to RTL Technology Libraries"* (DAC 1991)
//! and of Dutt's TR 88-22. GENUS gives high-level synthesis a
//! technology-independent vocabulary: ALUs, adders, multiplexers, counters,
//! registers, ... described by *parameters* (bit-width, function list,
//! style) rather than by gate-level structure.
//!
//! The library is organised exactly as the paper describes (§4):
//!
//! * **types** — abstract functionality classes ([`kind::TypeClass`]:
//!   combinational, sequential, interface, miscellaneous);
//! * **generators** — parameterizable component families
//!   ([`component::Generator`]), normally described in the LEGEND language
//!   (see the `legend` crate);
//! * **components** — a generator applied to a full parameter list
//!   ([`component::Component`]), carrying ports, operations and a
//!   simulatable behavioral model;
//! * **instances** — named carbon-copies of a component wired into a
//!   netlist ([`netlist::Netlist`]).
//!
//! The *specification* of a component — its kind, widths and operation set
//! ([`spec::ComponentSpec`]) — is the "representation language" shared with
//! DTAS: the same data structure describes generic components to be
//! implemented and the functional capability of RTL library cells.
//!
//! # Examples
//!
//! Build the paper's Figure-3 component, a 64-bit 16-function ALU:
//!
//! ```
//! use genus::stdlib::GenusLibrary;
//! use genus::op::Op;
//!
//! let lib = GenusLibrary::standard();
//! let alu = lib.alu(64, Op::paper_alu16()).expect("valid params");
//! assert_eq!(alu.spec().width, 64);
//! assert_eq!(alu.spec().ops.len(), 16);
//! ```

pub mod behavior;
pub mod build;
pub mod compiled;
pub mod component;
pub mod kind;
pub mod netlist;
pub mod op;
pub mod params;
pub mod spec;
pub mod stdlib;

pub use component::{Component, Generator, Instance, Port, PortClass};
pub use kind::{ComponentKind, TypeClass};
pub use netlist::Netlist;
pub use op::{Op, OpClass, OpSet};
pub use spec::ComponentSpec;
