//! The GENUS parameter system.
//!
//! Generators are instantiated "by specifying parameters that define their
//! structural, operational, and performance attributes" (paper §1). A
//! [`Params`] value is the argument list handed to a generator; a
//! [`ParamSpec`] list is the generator's schema (LEGEND's `PARAMETERS:`
//! section). Some parameters are obligatory, others carry defaults
//! (paper §4).

use crate::op::OpSet;
use std::collections::BTreeMap;
use std::fmt;

/// A parameter value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamValue {
    /// A bit-width or element count.
    Width(usize),
    /// A general integer (e.g. a reset value).
    Int(i64),
    /// A set of operations (LEGEND `GC_FUNCTION_LIST`).
    Ops(OpSet),
    /// A named style (LEGEND `GC_STYLE`, e.g. `SYNCHRONOUS`).
    Style(String),
    /// A boolean flag (LEGEND `GC_ENABLE_FLAG`).
    Flag(bool),
    /// Free-form text (e.g. `GC_COMPILER_NAME`).
    Text(String),
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Width(w) => write!(f, "{w}"),
            ParamValue::Int(i) => write!(f, "{i}"),
            ParamValue::Ops(ops) => write!(f, "({ops})"),
            ParamValue::Style(s) => write!(f, "{s}"),
            ParamValue::Flag(b) => write!(f, "{}", if *b { "T" } else { "F" }),
            ParamValue::Text(s) => write!(f, "{s:?}"),
        }
    }
}

/// One entry of a generator's parameter schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamSpec {
    /// Canonical parameter name, upper-case with the `GC_` prefix by GENUS
    /// convention (e.g. `GC_INPUT_WIDTH`).
    pub name: String,
    /// Obligatory parameters have no default; optional ones do (paper §4:
    /// "some parameters are obligatory, others may be assigned a default
    /// value").
    pub default: Option<ParamValue>,
    /// One-line description, carried into LEGEND output.
    pub doc: String,
}

impl ParamSpec {
    /// An obligatory parameter.
    pub fn required(name: &str, doc: &str) -> Self {
        ParamSpec {
            name: name.to_string(),
            default: None,
            doc: doc.to_string(),
        }
    }

    /// An optional parameter with a default.
    pub fn optional(name: &str, default: ParamValue, doc: &str) -> Self {
        ParamSpec {
            name: name.to_string(),
            default: Some(default),
            doc: doc.to_string(),
        }
    }
}

/// Error produced when a parameter list does not satisfy a schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// An obligatory parameter was not supplied.
    Missing(String),
    /// A supplied parameter is not in the schema.
    Unknown(String),
    /// A supplied parameter has the wrong type or an invalid value.
    Invalid(String, String),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::Missing(n) => write!(f, "missing obligatory parameter {n}"),
            ParamError::Unknown(n) => write!(f, "unknown parameter {n}"),
            ParamError::Invalid(n, why) => write!(f, "invalid parameter {n}: {why}"),
        }
    }
}

impl std::error::Error for ParamError {}

/// An ordered name → value map of generator arguments.
///
/// # Examples
///
/// ```
/// use genus::params::{ParamValue, Params};
///
/// let mut p = Params::new();
/// p.set("GC_INPUT_WIDTH", ParamValue::Width(16));
/// assert_eq!(p.width("GC_INPUT_WIDTH"), Some(16));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Params {
    values: BTreeMap<String, ParamValue>,
}

impl Params {
    /// Creates an empty parameter list.
    pub fn new() -> Self {
        Params::default()
    }

    /// Sets a parameter, replacing any previous value.
    pub fn set(&mut self, name: &str, value: ParamValue) -> &mut Self {
        self.values.insert(name.to_string(), value);
        self
    }

    /// Builder-style [`set`](Self::set).
    pub fn with(mut self, name: &str, value: ParamValue) -> Self {
        self.set(name, value);
        self
    }

    /// Looks up a raw value.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.values.get(name)
    }

    /// Looks up a width-typed value.
    pub fn width(&self, name: &str) -> Option<usize> {
        match self.values.get(name) {
            Some(ParamValue::Width(w)) => Some(*w),
            Some(ParamValue::Int(i)) if *i >= 0 => Some(*i as usize),
            _ => None,
        }
    }

    /// Looks up an operation-set value.
    pub fn ops(&self, name: &str) -> Option<OpSet> {
        match self.values.get(name) {
            Some(ParamValue::Ops(ops)) => Some(*ops),
            _ => None,
        }
    }

    /// Looks up a flag value.
    pub fn flag(&self, name: &str) -> Option<bool> {
        match self.values.get(name) {
            Some(ParamValue::Flag(b)) => Some(*b),
            _ => None,
        }
    }

    /// Looks up a style value.
    pub fn style(&self, name: &str) -> Option<&str> {
        match self.values.get(name) {
            Some(ParamValue::Style(s)) => Some(s),
            _ => None,
        }
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of parameters supplied.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameter is supplied.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Validates against a schema and fills in defaults, producing the
    /// complete parameter list the generator will consume.
    ///
    /// # Errors
    ///
    /// [`ParamError::Missing`] for absent obligatory parameters and
    /// [`ParamError::Unknown`] for parameters not in the schema.
    pub fn resolve(&self, schema: &[ParamSpec]) -> Result<Params, ParamError> {
        for name in self.values.keys() {
            if !schema.iter().any(|s| &s.name == name) {
                return Err(ParamError::Unknown(name.clone()));
            }
        }
        let mut out = Params::new();
        for spec in schema {
            match (self.values.get(&spec.name), &spec.default) {
                (Some(v), _) => {
                    out.set(&spec.name, v.clone());
                }
                (None, Some(d)) => {
                    out.set(&spec.name, d.clone());
                }
                (None, None) => return Err(ParamError::Missing(spec.name.clone())),
            }
        }
        Ok(out)
    }
}

impl FromIterator<(String, ParamValue)> for Params {
    fn from_iter<I: IntoIterator<Item = (String, ParamValue)>>(iter: I) -> Self {
        Params {
            values: iter.into_iter().collect(),
        }
    }
}

/// Canonical GENUS parameter names used by the standard library generators.
pub mod names {
    /// Principal data width.
    pub const INPUT_WIDTH: &str = "GC_INPUT_WIDTH";
    /// Secondary width (multiplier second operand, memory depth).
    pub const INPUT_WIDTH2: &str = "GC_INPUT_WIDTH2";
    /// Fan-in / way count (mux N-to-1, gate inputs).
    pub const NUM_INPUTS: &str = "GC_NUM_INPUTS";
    /// Operation list.
    pub const FUNCTION_LIST: &str = "GC_FUNCTION_LIST";
    /// Implementation style hint.
    pub const STYLE: &str = "GC_STYLE";
    /// Whether the component has an enable pin.
    pub const ENABLE_FLAG: &str = "GC_ENABLE_FLAG";
    /// Whether the component has a carry input.
    pub const CARRY_IN: &str = "GC_CARRY_IN";
    /// Whether the component has a carry output.
    pub const CARRY_OUT: &str = "GC_CARRY_OUT";
    /// Whether the component has asynchronous set/reset pins.
    pub const ASYNC_SET_RESET: &str = "GC_ASYNC_SET_RESET";
    /// Reset/preset value (LEGEND `GC_SET_VALUE`).
    pub const SET_VALUE: &str = "GC_SET_VALUE";
    /// Module-generator backend name (LEGEND `GC_COMPILER_NAME`).
    pub const COMPILER_NAME: &str = "GC_COMPILER_NAME";
    /// Whether an adder exposes group propagate/generate outputs.
    pub const GROUP_PG: &str = "GC_GROUP_PG";
    /// Bit offset for `EXTRACT` switchboxes.
    pub const OFFSET: &str = "GC_OFFSET";
    /// Clock period hint for `CLOCK_GENERATOR`.
    pub const PERIOD: &str = "GC_PERIOD";
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    fn schema() -> Vec<ParamSpec> {
        vec![
            ParamSpec::required(names::INPUT_WIDTH, "data width"),
            ParamSpec::optional(names::ENABLE_FLAG, ParamValue::Flag(false), "enable pin"),
        ]
    }

    #[test]
    fn resolve_fills_defaults() {
        let p = Params::new().with(names::INPUT_WIDTH, ParamValue::Width(8));
        let r = p.resolve(&schema()).unwrap();
        assert_eq!(r.width(names::INPUT_WIDTH), Some(8));
        assert_eq!(r.flag(names::ENABLE_FLAG), Some(false));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn resolve_rejects_missing_required() {
        let p = Params::new();
        assert_eq!(
            p.resolve(&schema()),
            Err(ParamError::Missing(names::INPUT_WIDTH.to_string()))
        );
    }

    #[test]
    fn resolve_rejects_unknown() {
        let p = Params::new()
            .with(names::INPUT_WIDTH, ParamValue::Width(8))
            .with("GC_BOGUS", ParamValue::Width(1));
        assert_eq!(
            p.resolve(&schema()),
            Err(ParamError::Unknown("GC_BOGUS".to_string()))
        );
    }

    #[test]
    fn typed_accessors() {
        let p = Params::new()
            .with("W", ParamValue::Width(4))
            .with("OPS", ParamValue::Ops(Op::paper_alu16()))
            .with("S", ParamValue::Style("RIPPLE".into()))
            .with("F", ParamValue::Flag(true));
        assert_eq!(p.width("W"), Some(4));
        assert_eq!(p.ops("OPS").unwrap().len(), 16);
        assert_eq!(p.style("S"), Some("RIPPLE"));
        assert_eq!(p.flag("F"), Some(true));
        assert_eq!(p.width("OPS"), None);
        assert_eq!(p.ops("W"), None);
    }

    #[test]
    fn int_accepted_as_width() {
        let p = Params::new().with("W", ParamValue::Int(12));
        assert_eq!(p.width("W"), Some(12));
        let n = Params::new().with("W", ParamValue::Int(-3));
        assert_eq!(n.width("W"), None);
    }
}
