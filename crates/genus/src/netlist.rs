//! Structural netlists of GENUS component instances.
//!
//! The output of high-level synthesis — and the input to DTAS — is "a
//! netlist of generic RTL components" (paper §1). A [`Netlist`] holds named
//! nets, component [`Instance`]s wired to those nets, and the external port
//! bindings of the design.

use crate::component::{Instance, PortDir};
use rtl_base::bits::Bits;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A named wire bundle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Net {
    /// Unique net name.
    pub name: String,
    /// Width in bits.
    pub width: usize,
    /// Tied-off constant value, when the net has no instance driver.
    pub constant: Option<Bits>,
}

/// An external (top-level) port of the netlist, bound to an internal net.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExternalPort {
    /// Port name.
    pub name: String,
    /// Direction seen from inside the design.
    pub dir: PortDir,
    /// The net the port drives (inputs) or samples (outputs).
    pub net: String,
}

/// Errors detected while building or validating a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// Two nets share a name.
    DuplicateNet(String),
    /// Two instances share a name.
    DuplicateInstance(String),
    /// An instance port references a net that does not exist.
    UnknownNet {
        /// Instance name.
        instance: String,
        /// Port name.
        port: String,
        /// The missing net.
        net: String,
    },
    /// A connection's port and net widths differ.
    WidthMismatch {
        /// Instance name.
        instance: String,
        /// Port name.
        port: String,
        /// Port width.
        port_width: usize,
        /// Net width.
        net_width: usize,
    },
    /// An instance port does not appear on the component.
    UnknownPort {
        /// Instance name.
        instance: String,
        /// The missing port.
        port: String,
    },
    /// An instance input or external output is not connected.
    Unconnected {
        /// Instance name (or `<top>` for external ports).
        instance: String,
        /// Port name.
        port: String,
    },
    /// A net is driven by more than one source.
    MultipleDrivers(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateNet(n) => write!(f, "duplicate net {n}"),
            NetlistError::DuplicateInstance(n) => write!(f, "duplicate instance {n}"),
            NetlistError::UnknownNet {
                instance,
                port,
                net,
            } => write!(f, "{instance}.{port} references unknown net {net}"),
            NetlistError::WidthMismatch {
                instance,
                port,
                port_width,
                net_width,
            } => write!(
                f,
                "{instance}.{port} is {port_width} bits but its net is {net_width}"
            ),
            NetlistError::UnknownPort { instance, port } => {
                write!(f, "{instance} has no port {port}")
            }
            NetlistError::Unconnected { instance, port } => {
                write!(f, "{instance}.{port} is unconnected")
            }
            NetlistError::MultipleDrivers(n) => write!(f, "net {n} has multiple drivers"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// A flat structural netlist of component instances.
///
/// # Examples
///
/// ```
/// use genus::netlist::Netlist;
/// use genus::component::Instance;
/// use genus::stdlib::GenusLibrary;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = GenusLibrary::standard();
/// let adder = Arc::new(lib.adder(8)?);
/// let mut nl = Netlist::new("datapath");
/// nl.add_net("a", 8)?;
/// nl.add_net("b", 8)?;
/// nl.add_net("sum", 8)?;
/// nl.add_net("ci", 1)?;
/// nl.add_net("co", 1)?;
/// nl.add_instance(
///     Instance::new("u_add", adder)
///         .with_connection("A", "a")
///         .with_connection("B", "b")
///         .with_connection("CI", "ci")
///         .with_connection("O", "sum")
///         .with_connection("CO", "co"),
/// )?;
/// nl.expose_input("a_in", "a")?;
/// nl.expose_input("b_in", "b")?;
/// nl.expose_input("ci_in", "ci")?;
/// nl.expose_output("sum_out", "sum")?;
/// nl.expose_output("co_out", "co")?;
/// nl.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    net_index: BTreeMap<String, usize>,
    instances: Vec<Instance>,
    ports: Vec<ExternalPort>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: &str) -> Self {
        Netlist {
            name: name.to_string(),
            ..Netlist::default()
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a net.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DuplicateNet`] when the name is taken.
    pub fn add_net(&mut self, name: &str, width: usize) -> Result<(), NetlistError> {
        if self.net_index.contains_key(name) {
            return Err(NetlistError::DuplicateNet(name.to_string()));
        }
        self.net_index.insert(name.to_string(), self.nets.len());
        self.nets.push(Net {
            name: name.to_string(),
            width,
            constant: None,
        });
        Ok(())
    }

    /// Adds a net tied to a constant value (a power/ground strap bundle).
    ///
    /// # Errors
    ///
    /// [`NetlistError::DuplicateNet`] when the name is taken.
    pub fn add_const_net(&mut self, name: &str, value: Bits) -> Result<(), NetlistError> {
        if self.net_index.contains_key(name) {
            return Err(NetlistError::DuplicateNet(name.to_string()));
        }
        self.net_index.insert(name.to_string(), self.nets.len());
        self.nets.push(Net {
            name: name.to_string(),
            width: value.width(),
            constant: Some(value),
        });
        Ok(())
    }

    /// Adds an instance.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DuplicateInstance`] when the name is taken.
    pub fn add_instance(&mut self, instance: Instance) -> Result<(), NetlistError> {
        if self.instances.iter().any(|i| i.name == instance.name) {
            return Err(NetlistError::DuplicateInstance(instance.name));
        }
        self.instances.push(instance);
        Ok(())
    }

    /// Declares an external input driving `net`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] when the net does not exist.
    pub fn expose_input(&mut self, name: &str, net: &str) -> Result<(), NetlistError> {
        self.expose(name, PortDir::In, net)
    }

    /// Declares an external output sampling `net`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNet`] when the net does not exist.
    pub fn expose_output(&mut self, name: &str, net: &str) -> Result<(), NetlistError> {
        self.expose(name, PortDir::Out, net)
    }

    fn expose(&mut self, name: &str, dir: PortDir, net: &str) -> Result<(), NetlistError> {
        if !self.net_index.contains_key(net) {
            return Err(NetlistError::UnknownNet {
                instance: "<top>".to_string(),
                port: name.to_string(),
                net: net.to_string(),
            });
        }
        self.ports.push(ExternalPort {
            name: name.to_string(),
            dir,
            net: net.to_string(),
        });
        Ok(())
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Looks up a net by name.
    pub fn net(&self, name: &str) -> Option<&Net> {
        self.net_index.get(name).map(|&i| &self.nets[i])
    }

    /// All instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Looks up an instance by name.
    pub fn instance(&self, name: &str) -> Option<&Instance> {
        self.instances.iter().find(|i| i.name == name)
    }

    /// External ports.
    pub fn ports(&self) -> &[ExternalPort] {
        &self.ports
    }

    /// Removes an external port binding (the net stays); returns whether
    /// a port was removed. Used when linking a controller in place of
    /// externally driven control pins.
    pub fn remove_port(&mut self, name: &str) -> bool {
        let before = self.ports.len();
        self.ports.retain(|p| p.name != name);
        self.ports.len() != before
    }

    /// Checks structural sanity: connections reference real ports and nets,
    /// widths agree, every input is driven, and no net has two drivers.
    ///
    /// # Errors
    ///
    /// The first [`NetlistError`] found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut drivers: BTreeMap<&str, usize> = BTreeMap::new();
        for p in &self.ports {
            if p.dir == PortDir::In {
                *drivers.entry(p.net.as_str()).or_insert(0) += 1;
            }
        }
        for n in &self.nets {
            if n.constant.is_some() {
                *drivers.entry(n.name.as_str()).or_insert(0) += 1;
            }
        }
        for inst in &self.instances {
            for (port_name, net_name) in &inst.connections {
                let port =
                    inst.component
                        .port(port_name)
                        .ok_or_else(|| NetlistError::UnknownPort {
                            instance: inst.name.clone(),
                            port: port_name.clone(),
                        })?;
                let net = self.net(net_name).ok_or_else(|| NetlistError::UnknownNet {
                    instance: inst.name.clone(),
                    port: port_name.clone(),
                    net: net_name.clone(),
                })?;
                if net.width != port.width {
                    return Err(NetlistError::WidthMismatch {
                        instance: inst.name.clone(),
                        port: port_name.clone(),
                        port_width: port.width,
                        net_width: net.width,
                    });
                }
                if port.dir == PortDir::Out {
                    *drivers.entry(net.name.as_str()).or_insert(0) += 1;
                }
            }
            // Every declared input port of the component must be wired.
            for port in inst.component.inputs() {
                if !inst.connections.contains_key(&port.name) {
                    return Err(NetlistError::Unconnected {
                        instance: inst.name.clone(),
                        port: port.name.clone(),
                    });
                }
            }
        }
        for (net, count) in drivers {
            if count > 1 {
                return Err(NetlistError::MultipleDrivers(net.to_string()));
            }
        }
        Ok(())
    }

    /// The distinct component specifications used, with use counts
    /// (DTAS expands each distinct spec once).
    pub fn spec_census(&self) -> BTreeMap<String, (Arc<crate::component::Component>, usize)> {
        let mut census: BTreeMap<String, (Arc<crate::component::Component>, usize)> =
            BTreeMap::new();
        for inst in &self.instances {
            let key = inst.component.spec().to_string();
            census
                .entry(key)
                .and_modify(|(_, n)| *n += 1)
                .or_insert_with(|| (Arc::clone(&inst.component), 1));
        }
        census
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Instance;
    use crate::stdlib::GenusLibrary;

    fn adder_netlist() -> Netlist {
        let lib = GenusLibrary::standard();
        let adder = Arc::new(lib.adder(8).unwrap());
        let mut nl = Netlist::new("t");
        for (n, w) in [("a", 8), ("b", 8), ("s", 8), ("ci", 1), ("co", 1)] {
            nl.add_net(n, w).unwrap();
        }
        nl.add_instance(
            Instance::new("u0", adder)
                .with_connection("A", "a")
                .with_connection("B", "b")
                .with_connection("CI", "ci")
                .with_connection("O", "s")
                .with_connection("CO", "co"),
        )
        .unwrap();
        nl
    }

    #[test]
    fn valid_netlist_passes() {
        let nl = adder_netlist();
        assert!(nl.validate().is_ok());
        assert_eq!(nl.instances().len(), 1);
        assert_eq!(nl.nets().len(), 5);
    }

    #[test]
    fn duplicate_net_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_net("x", 1).unwrap();
        assert_eq!(
            nl.add_net("x", 2),
            Err(NetlistError::DuplicateNet("x".to_string()))
        );
    }

    #[test]
    fn width_mismatch_detected() {
        let lib = GenusLibrary::standard();
        let adder = Arc::new(lib.adder(8).unwrap());
        let mut nl = Netlist::new("t");
        nl.add_net("narrow", 4).unwrap();
        nl.add_instance(Instance::new("u0", adder).with_connection("A", "narrow"))
            .unwrap();
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn unconnected_input_detected() {
        let lib = GenusLibrary::standard();
        let adder = Arc::new(lib.adder(8).unwrap());
        let mut nl = Netlist::new("t");
        nl.add_net("a", 8).unwrap();
        nl.add_instance(Instance::new("u0", adder).with_connection("A", "a"))
            .unwrap();
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::Unconnected { .. })
        ));
    }

    #[test]
    fn multiple_drivers_detected() {
        let lib = GenusLibrary::standard();
        let buf = Arc::new(lib.buffer(4).unwrap());
        let mut nl = Netlist::new("t");
        nl.add_net("i", 4).unwrap();
        nl.add_net("o", 4).unwrap();
        for name in ["u0", "u1"] {
            nl.add_instance(
                Instance::new(name, Arc::clone(&buf))
                    .with_connection("I", "i")
                    .with_connection("O", "o"),
            )
            .unwrap();
        }
        assert_eq!(
            nl.validate(),
            Err(NetlistError::MultipleDrivers("o".to_string()))
        );
    }

    #[test]
    fn unknown_port_detected() {
        let lib = GenusLibrary::standard();
        let buf = Arc::new(lib.buffer(4).unwrap());
        let mut nl = Netlist::new("t");
        nl.add_net("i", 4).unwrap();
        nl.add_instance(Instance::new("u0", buf).with_connection("NOPE", "i"))
            .unwrap();
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::UnknownPort { .. })
        ));
    }

    #[test]
    fn census_counts_shared_specs() {
        let lib = GenusLibrary::standard();
        let adder = Arc::new(lib.adder(8).unwrap());
        let mut nl = Netlist::new("t");
        for (n, w) in [
            ("a", 8),
            ("b", 8),
            ("s1", 8),
            ("s2", 8),
            ("ci", 1),
            ("c1", 1),
            ("c2", 1),
        ] {
            nl.add_net(n, w).unwrap();
        }
        for (name, o, co) in [("u0", "s1", "c1"), ("u1", "s2", "c2")] {
            nl.add_instance(
                Instance::new(name, Arc::clone(&adder))
                    .with_connection("A", "a")
                    .with_connection("B", "b")
                    .with_connection("CI", "ci")
                    .with_connection("O", o)
                    .with_connection("CO", co),
            )
            .unwrap();
        }
        let census = nl.spec_census();
        assert_eq!(census.len(), 1);
        assert_eq!(census.values().next().unwrap().1, 2);
    }
}
