//! Generators, components and instances — the GENUS hierarchy.
//!
//! "A GENUS library is composed as a hierarchy of types, generators,
//! components and instances" (paper §4). A [`Generator`] is a component
//! family with a parameter schema; applying parameters yields a
//! [`Component`] with concrete ports, operations and a behavioral model;
//! an [`Instance`] is a named "carbon-copy" of a component placed in a
//! netlist, storing only connectivity.

use crate::behavior::{Effect, Env, EvalError};
use crate::build;
use crate::kind::ComponentKind;
use crate::op::Op;
use crate::params::{ParamError, ParamSpec, Params};
use crate::spec::ComponentSpec;
use rtl_base::bits::Bits;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Port direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Driven by the environment.
    In,
    /// Driven by the component.
    Out,
}

/// Functional class of a port (LEGEND distinguishes inputs, outputs, clock,
/// enable, control and async pins — Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PortClass {
    /// Data input or output.
    Data,
    /// Operation-select input (e.g. the ALU `S` port).
    Select,
    /// Per-operation control line (e.g. the counter `CLOAD`).
    Control,
    /// Clock input.
    Clock,
    /// Synchronous enable.
    Enable,
    /// Asynchronous set/reset.
    AsyncSetReset,
    /// Carry input.
    CarryIn,
    /// Carry output.
    CarryOut,
    /// Status output (comparator flags and the like).
    Status,
}

/// A component port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Port {
    /// Port name, unique within the component.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Width in bits.
    pub width: usize,
    /// Functional class.
    pub class: PortClass,
}

impl Port {
    /// Creates an input port.
    pub fn input(name: &str, width: usize, class: PortClass) -> Self {
        Port {
            name: name.to_string(),
            dir: PortDir::In,
            width,
            class,
        }
    }

    /// Creates an output port.
    pub fn output(name: &str, width: usize, class: PortClass) -> Self {
        Port {
            name: name.to_string(),
            dir: PortDir::Out,
            width,
            class,
        }
    }
}

/// One operation of a component: the LEGEND `OPERATIONS:` entry.
#[derive(Clone, Debug, PartialEq)]
pub struct Operation {
    /// The operation performed.
    pub op: Op,
    /// Control port asserted to fire this operation (sequential
    /// components); `None` when the operation is chosen by the select port
    /// or is the only one.
    pub control: Option<String>,
    /// Effects executed when the operation fires.
    pub effects: Vec<Effect>,
}

/// How a multi-function combinational component chooses its operation.
#[derive(Clone, Debug, PartialEq)]
pub struct OpSelect {
    /// Name of the select input port.
    pub port: String,
    /// `encoding[i]` is the operation selected by value `i`; operations are
    /// in canonical [`OpSet`](crate::op::OpSet) iteration order, so select
    /// values are stable across decompositions.
    pub encoding: Vec<Op>,
}

/// A fully parameterized component.
///
/// Obtain components from a [`Generator`] (or from
/// [`GenusLibrary`](crate::stdlib::GenusLibrary) convenience methods);
/// they are immutable and cheaply shareable via [`Arc`].
#[derive(Clone, Debug, PartialEq)]
pub struct Component {
    pub(crate) name: String,
    pub(crate) generator: String,
    pub(crate) spec: ComponentSpec,
    pub(crate) ports: Vec<Port>,
    pub(crate) operations: Vec<Operation>,
    pub(crate) op_select: Option<OpSelect>,
    pub(crate) clock: Option<String>,
    pub(crate) params: Params,
    /// Output ports that hold state across clock edges (a register's `Q`,
    /// a memory's `MEM`). Other outputs of sequential components are
    /// combinational reads (a register file's `RD`).
    pub(crate) registered: std::collections::BTreeSet<String>,
}

impl Component {
    /// The component name (e.g. `ALU_64`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Name of the parent generator.
    pub fn generator(&self) -> &str {
        &self.generator
    }

    /// The functional specification.
    pub fn spec(&self) -> &ComponentSpec {
        &self.spec
    }

    /// The component kind.
    pub fn kind(&self) -> ComponentKind {
        self.spec.kind
    }

    /// All ports.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Input ports.
    pub fn inputs(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::In)
    }

    /// Output ports.
    pub fn outputs(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::Out)
    }

    /// The operations the component performs.
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// Select-port configuration, when the component is multi-function.
    pub fn op_select(&self) -> Option<&OpSelect> {
        self.op_select.as_ref()
    }

    /// Clock port name for sequential components.
    pub fn clock(&self) -> Option<&str> {
        self.clock.as_deref()
    }

    /// True for components holding state.
    pub fn is_sequential(&self) -> bool {
        self.clock.is_some()
    }

    /// True when the named output publishes held state at the clock edge
    /// (as opposed to a combinational read port of a sequential
    /// component). Always false for combinational components.
    pub fn is_registered_output(&self, port: &str) -> bool {
        self.registered.contains(port)
    }

    /// The registered (state-holding) output ports.
    pub fn registered_outputs(&self) -> impl Iterator<Item = &str> {
        self.registered.iter().map(String::as_str)
    }

    /// The resolved parameter list the component was generated with.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// True when two components expose the same interface and behavior —
    /// ports, operations, select/clock wiring and registered outputs —
    /// regardless of their name, generator, parameters or originating
    /// spec. Everything downstream of model construction (validation,
    /// timing arcs, simulation) reads only these fields, so functionally
    /// equal models are interchangeable.
    pub fn functionally_equal(&self, other: &Component) -> bool {
        self.ports == other.ports
            && self.operations == other.operations
            && self.op_select == other.op_select
            && self.clock == other.clock
            && self.registered == other.registered
    }

    /// True input dependencies of each output: output port name → the set
    /// of input ports whose value can influence it (through any
    /// operation's effect, the select port, control pins and the enable).
    ///
    /// Timing analysis uses this to create arcs only where combinational
    /// paths actually exist — a P/G adder's group outputs, for instance,
    /// do not depend on its carry input.
    pub fn output_dependencies(&self) -> BTreeMap<String, std::collections::BTreeSet<String>> {
        use std::collections::BTreeSet;
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let input_names: BTreeSet<String> = self.inputs().map(|p| p.name.clone()).collect();
        let mut global: BTreeSet<String> = BTreeSet::new();
        if let Some(sel) = &self.op_select {
            global.insert(sel.port.clone());
        }
        if let Some(en) = self
            .ports
            .iter()
            .find(|p| p.class == PortClass::Enable && p.dir == PortDir::In)
        {
            global.insert(en.name.clone());
        }
        for operation in &self.operations {
            let mut op_deps = global.clone();
            if let Some(ctrl) = &operation.control {
                op_deps.insert(ctrl.clone());
            }
            for effect in &operation.effects {
                let mut referenced = BTreeSet::new();
                effect.expr.collect_ports(&mut referenced);
                let entry = deps.entry(effect.target.clone()).or_default();
                entry.extend(op_deps.iter().cloned());
                entry.extend(referenced.into_iter().filter(|p| input_names.contains(p)));
            }
        }
        deps
    }

    /// Evaluates the combinational function: given input port values,
    /// computes all output port values.
    ///
    /// Multi-function components read their select port from `inputs`;
    /// single-operation components apply their one operation. For
    /// sequential components this computes the *next state / output*
    /// given current state bound in `inputs` under output-port names
    /// (the simulator drives this).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] when `inputs` is missing a port or widths are
    /// inconsistent.
    pub fn eval(&self, inputs: &Env) -> Result<Env, EvalError> {
        self.eval_filtered(inputs, None)
    }

    /// Like [`eval`](Self::eval), but computes only the outputs named in
    /// `targets` — the environment then only needs the ports those
    /// outputs actually depend on (see
    /// [`output_dependencies`](Self::output_dependencies)). Levelized
    /// simulators use this to evaluate outputs individually when a
    /// component sits on a port-level feedback path (e.g. a P/G adder
    /// whose group outputs feed the lookahead that produces its carry).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] when a needed port is missing or widths are
    /// inconsistent.
    pub fn eval_filtered(
        &self,
        inputs: &Env,
        targets: Option<&std::collections::BTreeSet<String>>,
    ) -> Result<Env, EvalError> {
        let wanted = |name: &str| targets.is_none_or(|t| t.contains(name));
        let mut out = Env::new();
        // Default every output to its current value if bound (sequential
        // hold) or zero.
        for p in self.outputs() {
            if !wanted(&p.name) {
                continue;
            }
            let held = inputs
                .get(&p.name)
                .cloned()
                .unwrap_or_else(|| Bits::zero(p.width));
            out.insert(p.name.clone(), held);
        }
        let fire = |out: &mut Env, operation: &Operation| -> Result<(), EvalError> {
            for effect in &operation.effects {
                if !wanted(&effect.target) {
                    continue;
                }
                let v = crate::behavior::eval(&effect.expr, inputs)?;
                out.insert(effect.target.clone(), v);
            }
            Ok(())
        };
        // A deasserted enable pin freezes every operation except
        // asynchronous set/reset.
        let enabled = match self
            .ports
            .iter()
            .find(|p| p.class == PortClass::Enable && p.dir == PortDir::In)
        {
            Some(en) => inputs.get(&en.name).is_none_or(|v| !v.is_zero()),
            None => true,
        };
        let is_async = |ctrl: &str| {
            self.port(ctrl)
                .map(|p| p.class == PortClass::AsyncSetReset)
                .unwrap_or(false)
        };
        if let Some(sel) = &self.op_select {
            if enabled {
                let sv = inputs
                    .get(&sel.port)
                    .ok_or_else(|| EvalError::UnboundPort(sel.port.clone()))?;
                let idx = sv.to_u128().unwrap_or(u128::MAX);
                if idx < sel.encoding.len() as u128 {
                    let op = sel.encoding[idx as usize];
                    if let Some(operation) = self.operations.iter().find(|o| o.op == op) {
                        fire(&mut out, operation)?;
                    }
                }
                // Out-of-range select: outputs hold their defaults.
            }
        } else {
            for operation in &self.operations {
                match &operation.control {
                    None => {
                        if enabled {
                            fire(&mut out, operation)?;
                        }
                    }
                    Some(ctrl) => {
                        let cv = inputs
                            .get(ctrl)
                            .ok_or_else(|| EvalError::UnboundPort(ctrl.clone()))?;
                        let asynchronous = is_async(ctrl);
                        if !cv.is_zero() && (enabled || asynchronous) {
                            fire(&mut out, operation)?;
                            break; // control lines have listed priority
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.spec)
    }
}

/// Error produced by [`Generator::instantiate`].
#[derive(Clone, Debug, PartialEq)]
pub enum GenerateError {
    /// Parameter validation failed.
    Param(ParamError),
    /// Parameters are valid individually but the combination is not
    /// buildable (e.g. a zero-width ALU).
    Unbuildable(String),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::Param(e) => write!(f, "{e}"),
            GenerateError::Unbuildable(why) => write!(f, "unbuildable component: {why}"),
        }
    }
}

impl std::error::Error for GenerateError {}

impl From<ParamError> for GenerateError {
    fn from(e: ParamError) -> Self {
        GenerateError::Param(e)
    }
}

/// A component generator: one parameterizable family (the LEGEND
/// granularity; Figure 2 of the paper is the `COUNTER` generator).
#[derive(Clone, Debug)]
pub struct Generator {
    pub(crate) name: String,
    pub(crate) kind: ComponentKind,
    pub(crate) schema: Vec<ParamSpec>,
    pub(crate) styles: Vec<String>,
    pub(crate) doc: String,
}

impl Generator {
    /// Creates a generator.
    pub fn new(
        name: &str,
        kind: ComponentKind,
        schema: Vec<ParamSpec>,
        styles: Vec<String>,
        doc: &str,
    ) -> Self {
        Generator {
            name: name.to_string(),
            kind,
            schema,
            styles,
            doc: doc.to_string(),
        }
    }

    /// The generator name (LEGEND `NAME:`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component kind this generator produces.
    pub fn kind(&self) -> ComponentKind {
        self.kind
    }

    /// The parameter schema (LEGEND `PARAMETERS:`).
    pub fn schema(&self) -> &[ParamSpec] {
        &self.schema
    }

    /// Available styles (LEGEND `STYLES:`).
    pub fn styles(&self) -> &[String] {
        &self.styles
    }

    /// Documentation line.
    pub fn doc(&self) -> &str {
        &self.doc
    }

    /// Generates a component from a parameter list.
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError::Param`] when the parameters do not satisfy
    /// the schema and [`GenerateError::Unbuildable`] when the resolved
    /// combination cannot be built.
    pub fn instantiate(&self, params: &Params) -> Result<Component, GenerateError> {
        let resolved = params.resolve(&self.schema)?;
        build::build_component(self.kind, &self.name, &resolved)
    }
}

/// A named instance of a component in a netlist. Instances "inherit all
/// attributes from the parent component; only the connectivity of the
/// instance is stored" (paper §4).
#[derive(Clone, Debug)]
pub struct Instance {
    /// Unique instance name within the netlist.
    pub name: String,
    /// The shared parent component.
    pub component: Arc<Component>,
    /// Port name → net name.
    pub connections: BTreeMap<String, String>,
}

impl Instance {
    /// Creates an instance with no connections.
    pub fn new(name: &str, component: Arc<Component>) -> Self {
        Instance {
            name: name.to_string(),
            component,
            connections: BTreeMap::new(),
        }
    }

    /// Connects a port to a net, replacing any previous binding.
    pub fn connect(&mut self, port: &str, net: &str) -> &mut Self {
        self.connections.insert(port.to_string(), net.to_string());
        self
    }

    /// Builder-style [`connect`](Self::connect).
    pub fn with_connection(mut self, port: &str, net: &str) -> Self {
        self.connect(port, net);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpSet;
    use crate::params::{names, ParamValue};

    fn adder_gen() -> Generator {
        Generator::new(
            "ADDSUB",
            ComponentKind::AddSub,
            vec![
                ParamSpec::required(names::INPUT_WIDTH, "width"),
                ParamSpec::optional(
                    names::FUNCTION_LIST,
                    ParamValue::Ops(OpSet::only(Op::Add)),
                    "ops",
                ),
                ParamSpec::optional(names::CARRY_IN, ParamValue::Flag(true), "ci"),
                ParamSpec::optional(names::CARRY_OUT, ParamValue::Flag(true), "co"),
            ],
            vec![],
            "adder/subtractor",
        )
    }

    #[test]
    fn instantiate_builds_adder() {
        let g = adder_gen();
        let c = g
            .instantiate(&Params::new().with(names::INPUT_WIDTH, ParamValue::Width(8)))
            .unwrap();
        assert_eq!(c.kind(), ComponentKind::AddSub);
        assert_eq!(c.spec().width, 8);
        assert!(c.port("A").is_some());
        assert!(c.port("CO").is_some());
        assert!(!c.is_sequential());
    }

    #[test]
    fn instantiate_rejects_missing_width() {
        let g = adder_gen();
        assert!(matches!(
            g.instantiate(&Params::new()),
            Err(GenerateError::Param(ParamError::Missing(_)))
        ));
    }

    #[test]
    fn adder_eval_adds() {
        let g = adder_gen();
        let c = g
            .instantiate(&Params::new().with(names::INPUT_WIDTH, ParamValue::Width(8)))
            .unwrap();
        let mut env = Env::new();
        env.insert("A".into(), Bits::from_u64(8, 250));
        env.insert("B".into(), Bits::from_u64(8, 10));
        env.insert("CI".into(), Bits::from_u64(1, 0));
        let out = c.eval(&env).unwrap();
        assert_eq!(out["O"].to_u64(), Some(4));
        assert_eq!(out["CO"].to_u64(), Some(1));
    }

    #[test]
    fn instance_stores_connectivity_only() {
        let g = adder_gen();
        let c = Arc::new(
            g.instantiate(&Params::new().with(names::INPUT_WIDTH, ParamValue::Width(4)))
                .unwrap(),
        );
        let inst = Instance::new("u0", c).with_connection("A", "n1");
        assert_eq!(inst.connections.get("A").map(String::as_str), Some("n1"));
        assert_eq!(inst.connections.len(), 1);
    }
}
