//! Simulatable behavioral models of generic components.
//!
//! Each GENUS generator "can produce simulatable ... behavioral models for
//! the generated components" which "can be used to verify the behavior of a
//! synthesized design" (paper §4). Here the model is a small expression AST
//! ([`Expr`]) evaluated over [`Bits`]; the LEGEND `OPS:` clauses
//! (`OO = IO + 1` in Figure 2) lower to these expressions.

use rtl_base::bits::Bits;
use std::collections::BTreeMap;
use std::fmt;

/// Evaluation environment: port name → current value.
pub type Env = BTreeMap<String, Bits>;

/// Unary expression operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// Increment by one (wrapping).
    Inc,
    /// Decrement by one (wrapping).
    Dec,
    /// 1-bit reduction AND.
    ReduceAnd,
    /// 1-bit reduction OR.
    ReduceOr,
    /// 1-bit reduction XOR (parity).
    ReduceXor,
    /// 1-bit zero test.
    IsZero,
}

/// Binary expression operators. Both operands must have equal width unless
/// noted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NAND.
    Nand,
    /// Bitwise NOR.
    Nor,
    /// Bitwise XNOR.
    Xnor,
    /// Bitwise implication `!a | b`.
    Limpl,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Full-width multiplication: result width is the sum of operand widths.
    MulFull,
    /// Unsigned division; division by zero yields all-ones (hardware total
    /// function convention).
    DivOr1s,
    /// Unsigned remainder; remainder by zero yields the dividend.
    RemOrA,
    /// Logical shift left by the unsigned value of the right operand (any
    /// width).
    ShlV,
    /// Logical shift right by the unsigned value of the right operand.
    ShrV,
    /// Arithmetic shift right by the unsigned value of the right operand.
    AsrV,
    /// Rotate left by the unsigned value of the right operand.
    RotlV,
    /// Rotate right by the unsigned value of the right operand.
    RotrV,
}

/// Comparison operators producing a 1-bit result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-than.
    Gtu,
    /// Unsigned less-or-equal.
    Leu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// A behavioral expression over port values.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// The value on a port (or the current state of a registered output).
    Port(String),
    /// A constant.
    Const(Bits),
    /// Unary operator application.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Comparison (1-bit result).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Wide addition `a + b + cin` with result width `a.width + 1`:
    /// bit `a.width` is the carry-out. `cin` must be 1 bit wide.
    AddWide {
        /// Left operand.
        a: Box<Expr>,
        /// Right operand (same width as `a`).
        b: Box<Expr>,
        /// 1-bit carry-in.
        cin: Box<Expr>,
    },
    /// Bit-field extraction.
    Slice {
        /// Source expression.
        expr: Box<Expr>,
        /// Low bit index.
        lo: usize,
        /// Field width.
        len: usize,
    },
    /// Concatenation; element 0 is the least significant part.
    Concat(Vec<Expr>),
    /// Zero-extension (or truncation) to a fixed width.
    ZextTo(usize, Box<Expr>),
    /// Sign-extension (or truncation) to a fixed width.
    SextTo(usize, Box<Expr>),
    /// Dense selection: yields `cases[sel]`, or `default` when `sel` is out
    /// of range. All cases and the default must share one width.
    Select {
        /// Selector expression.
        sel: Box<Expr>,
        /// Case expressions indexed by selector value.
        cases: Vec<Expr>,
        /// Fallback expression.
        default: Box<Expr>,
    },
    /// Index of the most significant set bit, or zero when none is set
    /// (priority-encoder semantics). The result width is explicit.
    PriorityIndex {
        /// Scanned expression.
        expr: Box<Expr>,
        /// Result width in bits.
        out_width: usize,
    },
}

impl Expr {
    /// Reads a port.
    pub fn port(name: &str) -> Expr {
        Expr::Port(name.to_string())
    }

    /// An unsigned constant of the given width.
    pub fn cuint(width: usize, v: u64) -> Expr {
        Expr::Const(Bits::from_u64(width, v))
    }

    /// Boxes a unary application.
    pub fn unary(op: UnaryOp, e: Expr) -> Expr {
        Expr::Unary(op, Box::new(e))
    }

    /// Boxes a binary application.
    pub fn binary(op: BinaryOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }

    /// Boxes a comparison.
    pub fn cmp(op: CmpOp, l: Expr, r: Expr) -> Expr {
        Expr::Cmp(op, Box::new(l), Box::new(r))
    }

    /// Boxes a wide add.
    pub fn add_wide(a: Expr, b: Expr, cin: Expr) -> Expr {
        Expr::AddWide {
            a: Box::new(a),
            b: Box::new(b),
            cin: Box::new(cin),
        }
    }

    /// Boxes a slice.
    pub fn slice(e: Expr, lo: usize, len: usize) -> Expr {
        Expr::Slice {
            expr: Box::new(e),
            lo,
            len,
        }
    }

    /// Boxes a zero-extension.
    pub fn zext(width: usize, e: Expr) -> Expr {
        Expr::ZextTo(width, Box::new(e))
    }

    /// Collects every port the expression reads into `out`.
    pub fn collect_ports(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            Expr::Port(p) => {
                out.insert(p.clone());
            }
            Expr::Const(_) => {}
            Expr::Unary(_, e)
            | Expr::Slice { expr: e, .. }
            | Expr::ZextTo(_, e)
            | Expr::SextTo(_, e)
            | Expr::PriorityIndex { expr: e, .. } => e.collect_ports(out),
            Expr::Binary(_, l, r) | Expr::Cmp(_, l, r) => {
                l.collect_ports(out);
                r.collect_ports(out);
            }
            Expr::AddWide { a, b, cin } => {
                a.collect_ports(out);
                b.collect_ports(out);
                cin.collect_ports(out);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    p.collect_ports(out);
                }
            }
            Expr::Select {
                sel,
                cases,
                default,
            } => {
                sel.collect_ports(out);
                default.collect_ports(out);
                for c in cases {
                    c.collect_ports(out);
                }
            }
        }
    }
}

/// Error raised during behavioral evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A referenced port has no value in the environment.
    UnboundPort(String),
    /// Operand widths are inconsistent.
    WidthMismatch {
        /// Description of the operation.
        context: String,
        /// Left/expected width.
        left: usize,
        /// Right/actual width.
        right: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundPort(p) => write!(f, "unbound port {p}"),
            EvalError::WidthMismatch {
                context,
                left,
                right,
            } => write!(f, "width mismatch in {context}: {left} vs {right}"),
        }
    }
}

impl std::error::Error for EvalError {}

fn require_same(context: &str, l: &Bits, r: &Bits) -> Result<(), EvalError> {
    if l.width() != r.width() {
        return Err(EvalError::WidthMismatch {
            context: context.to_string(),
            left: l.width(),
            right: r.width(),
        });
    }
    Ok(())
}

/// Evaluates an expression in an environment.
///
/// # Errors
///
/// Returns [`EvalError`] for unbound ports or width-inconsistent operands.
pub fn eval(expr: &Expr, env: &Env) -> Result<Bits, EvalError> {
    match expr {
        Expr::Port(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::UnboundPort(name.clone())),
        Expr::Const(b) => Ok(b.clone()),
        Expr::Unary(op, e) => {
            let v = eval(e, env)?;
            Ok(match op {
                UnaryOp::Not => !&v,
                UnaryOp::Neg => v.wrapping_neg(),
                UnaryOp::Inc => v.inc(),
                UnaryOp::Dec => v.dec(),
                UnaryOp::ReduceAnd => Bits::from_bool(v.reduce_and()),
                UnaryOp::ReduceOr => Bits::from_bool(v.reduce_or()),
                UnaryOp::ReduceXor => Bits::from_bool(v.reduce_xor()),
                UnaryOp::IsZero => Bits::from_bool(v.is_zero()),
            })
        }
        Expr::Binary(op, l, r) => {
            let lv = eval(l, env)?;
            let rv = eval(r, env)?;
            use BinaryOp::*;
            match op {
                ShlV | ShrV | AsrV | RotlV | RotrV => {
                    // Shift amount may have any width; saturate large counts.
                    let amt = rv.to_u128().unwrap_or(u128::MAX);
                    let amt = amt.min(2 * lv.width() as u128 + 1) as usize;
                    Ok(match op {
                        ShlV => lv.shl(amt),
                        ShrV => lv.shr(amt),
                        AsrV => lv.asr(amt),
                        RotlV => lv.rotl(amt),
                        RotrV => lv.rotr(amt),
                        _ => unreachable!(),
                    })
                }
                MulFull => Ok(lv.mul_full(&rv)),
                _ => {
                    require_same(&format!("{op:?}"), &lv, &rv)?;
                    Ok(match op {
                        And => &lv & &rv,
                        Or => &lv | &rv,
                        Xor => &lv ^ &rv,
                        Nand => !&(&lv & &rv),
                        Nor => !&(&lv | &rv),
                        Xnor => !&(&lv ^ &rv),
                        Limpl => &(!&lv) | &rv,
                        Add => lv.wrapping_add(&rv),
                        Sub => lv.wrapping_sub(&rv),
                        DivOr1s => {
                            if rv.is_zero() {
                                Bits::ones(lv.width())
                            } else {
                                lv.div_rem(&rv).0
                            }
                        }
                        RemOrA => {
                            if rv.is_zero() {
                                lv.clone()
                            } else {
                                lv.div_rem(&rv).1
                            }
                        }
                        _ => unreachable!(),
                    })
                }
            }
        }
        Expr::Cmp(op, l, r) => {
            let lv = eval(l, env)?;
            let rv = eval(r, env)?;
            require_same(&format!("{op:?}"), &lv, &rv)?;
            use std::cmp::Ordering::*;
            let ord = lv.cmp_unsigned(&rv);
            let b = match op {
                CmpOp::Eq => ord == Equal,
                CmpOp::Ne => ord != Equal,
                CmpOp::Ltu => ord == Less,
                CmpOp::Gtu => ord == Greater,
                CmpOp::Leu => ord != Greater,
                CmpOp::Geu => ord != Less,
            };
            Ok(Bits::from_bool(b))
        }
        Expr::AddWide { a, b, cin } => {
            let av = eval(a, env)?;
            let bv = eval(b, env)?;
            let cv = eval(cin, env)?;
            require_same("AddWide", &av, &bv)?;
            if cv.width() != 1 {
                return Err(EvalError::WidthMismatch {
                    context: "AddWide carry".to_string(),
                    left: 1,
                    right: cv.width(),
                });
            }
            let (sum, carry) = av.add_with_carry(&bv, cv.bit(0));
            Ok(sum.concat(&Bits::from_bool(carry)))
        }
        Expr::Slice { expr, lo, len } => {
            let v = eval(expr, env)?;
            if lo + len > v.width() {
                return Err(EvalError::WidthMismatch {
                    context: format!("slice [{lo},{lo}+{len})"),
                    left: lo + len,
                    right: v.width(),
                });
            }
            Ok(v.slice(*lo, *len))
        }
        Expr::Concat(parts) => {
            let mut acc = Bits::zero(0);
            for p in parts {
                let v = eval(p, env)?;
                acc = acc.concat(&v);
            }
            Ok(acc)
        }
        Expr::ZextTo(w, e) => Ok(eval(e, env)?.zext(*w)),
        Expr::SextTo(w, e) => Ok(eval(e, env)?.sext(*w)),
        Expr::Select {
            sel,
            cases,
            default,
        } => {
            let sv = eval(sel, env)?;
            let idx = sv.to_u128().unwrap_or(u128::MAX);
            let chosen = if idx < cases.len() as u128 {
                &cases[idx as usize]
            } else {
                default
            };
            let out = eval(chosen, env)?;
            // Enforce consistent case widths against the default.
            let dw = eval(default, env)?;
            require_same("Select", &out, &dw)?;
            Ok(out)
        }
        Expr::PriorityIndex { expr, out_width } => {
            let v = eval(expr, env)?;
            let idx = (0..v.width()).rev().find(|&i| v.bit(i)).unwrap_or(0);
            Ok(Bits::from_u64(*out_width, idx as u64))
        }
    }
}

/// An assignment `target = expr` executed when an operation fires
/// (LEGEND `OPS:` clause, e.g. `(COUNT_UP: OO = OO + 1)`).
#[derive(Clone, Debug, PartialEq)]
pub struct Effect {
    /// Output (or state) port receiving the value.
    pub target: String,
    /// The computed value.
    pub expr: Expr,
}

impl Effect {
    /// Creates an effect.
    pub fn new(target: &str, expr: Expr) -> Self {
        Effect {
            target: target.to_string(),
            expr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, Bits)]) -> Env {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn port_and_const() {
        let e = env(&[("A", Bits::from_u64(8, 42))]);
        assert_eq!(eval(&Expr::port("A"), &e).unwrap().to_u64(), Some(42));
        assert_eq!(eval(&Expr::cuint(8, 7), &e).unwrap().to_u64(), Some(7));
        assert!(matches!(
            eval(&Expr::port("B"), &e),
            Err(EvalError::UnboundPort(_))
        ));
    }

    #[test]
    fn add_wide_carries() {
        let e = env(&[("A", Bits::from_u64(4, 0xf)), ("B", Bits::from_u64(4, 0x1))]);
        let expr = Expr::add_wide(Expr::port("A"), Expr::port("B"), Expr::cuint(1, 0));
        let v = eval(&expr, &e).unwrap();
        assert_eq!(v.width(), 5);
        assert_eq!(v.to_u64(), Some(0x10));
        assert!(v.bit(4)); // carry out
    }

    #[test]
    fn limpl_is_not_a_or_b() {
        let e = env(&[
            ("A", Bits::from_u64(4, 0b1100)),
            ("B", Bits::from_u64(4, 0b1010)),
        ]);
        let expr = Expr::binary(BinaryOp::Limpl, Expr::port("A"), Expr::port("B"));
        assert_eq!(eval(&expr, &e).unwrap().to_u64(), Some(0b1011));
    }

    #[test]
    fn select_dense_with_default() {
        let e = env(&[("S", Bits::from_u64(2, 2))]);
        let expr = Expr::Select {
            sel: Box::new(Expr::port("S")),
            cases: vec![Expr::cuint(8, 10), Expr::cuint(8, 20), Expr::cuint(8, 30)],
            default: Box::new(Expr::cuint(8, 99)),
        };
        assert_eq!(eval(&expr, &e).unwrap().to_u64(), Some(30));
        let e2 = env(&[("S", Bits::from_u64(2, 3))]);
        assert_eq!(eval(&expr, &e2).unwrap().to_u64(), Some(99));
    }

    #[test]
    fn division_is_total() {
        let e = env(&[("A", Bits::from_u64(8, 9)), ("Z", Bits::zero(8))]);
        let q = Expr::binary(BinaryOp::DivOr1s, Expr::port("A"), Expr::port("Z"));
        assert_eq!(eval(&q, &e).unwrap().to_u64(), Some(0xff));
        let r = Expr::binary(BinaryOp::RemOrA, Expr::port("A"), Expr::port("Z"));
        assert_eq!(eval(&r, &e).unwrap().to_u64(), Some(9));
    }

    #[test]
    fn variable_shifts_saturate() {
        let e = env(&[
            ("A", Bits::from_u64(8, 0b1000_0001)),
            ("N", Bits::from_u64(4, 3)),
            ("BIG", Bits::from_u64(8, 200)),
        ]);
        let shl = Expr::binary(BinaryOp::ShlV, Expr::port("A"), Expr::port("N"));
        assert_eq!(eval(&shl, &e).unwrap().to_u64(), Some(0b0000_1000));
        let far = Expr::binary(BinaryOp::ShrV, Expr::port("A"), Expr::port("BIG"));
        assert_eq!(eval(&far, &e).unwrap().to_u64(), Some(0));
        let rot = Expr::binary(BinaryOp::RotlV, Expr::port("A"), Expr::port("N"));
        assert_eq!(eval(&rot, &e).unwrap().to_u64(), Some(0b0000_1100));
    }

    #[test]
    fn width_mismatch_reported() {
        let e = env(&[("A", Bits::from_u64(8, 1)), ("B", Bits::from_u64(4, 1))]);
        let bad = Expr::binary(BinaryOp::Add, Expr::port("A"), Expr::port("B"));
        assert!(matches!(
            eval(&bad, &e),
            Err(EvalError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn concat_lsb_first() {
        let e = env(&[
            ("LO", Bits::from_u64(4, 0xa)),
            ("HI", Bits::from_u64(4, 0x5)),
        ]);
        let expr = Expr::Concat(vec![Expr::port("LO"), Expr::port("HI")]);
        assert_eq!(eval(&expr, &e).unwrap().to_u64(), Some(0x5a));
    }

    #[test]
    fn reductions_and_zero_test() {
        let e = env(&[("A", Bits::from_u64(4, 0))]);
        let z = Expr::unary(UnaryOp::IsZero, Expr::port("A"));
        assert_eq!(eval(&z, &e).unwrap().to_u64(), Some(1));
        let ra = Expr::unary(UnaryOp::ReduceAnd, Expr::port("A"));
        assert_eq!(eval(&ra, &e).unwrap().to_u64(), Some(0));
    }
}
