//! The standard GENUS library: one generator per Table-1 family, plus
//! convenience constructors for the components used throughout the paper.

use crate::build::{schema_for, styles_for};
use crate::component::{Component, GenerateError, Generator};
use crate::kind::{ComponentKind, GateOp};
use crate::op::{Op, OpSet};
use crate::params::{names, ParamValue, Params};
use std::collections::BTreeMap;

/// A catalog of generators, indexed by name.
///
/// [`GenusLibrary::standard`] mirrors the paper's Table 1: every
/// combinational, sequential, interface and miscellaneous family. Libraries
/// can also be assembled from LEGEND text (see the `legend` crate) or
/// customized by [`insert`](GenusLibrary::insert)ing generators.
///
/// # Examples
///
/// ```
/// use genus::stdlib::GenusLibrary;
///
/// let lib = GenusLibrary::standard();
/// assert!(lib.generator("COUNTER").is_some());
/// let counter = lib.counter(3).expect("3-bit counter");
/// assert_eq!(counter.spec().width, 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GenusLibrary {
    generators: BTreeMap<String, Generator>,
}

impl GenusLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        GenusLibrary::default()
    }

    /// Builds the full standard library (every Table-1 family).
    pub fn standard() -> Self {
        let mut lib = GenusLibrary::new();
        for kind in ComponentKind::all() {
            lib.insert(Generator::new(
                &kind.name(),
                kind,
                schema_for(kind),
                styles_for(kind),
                &format!("standard {} generator", kind.name()),
            ));
        }
        lib
    }

    /// Adds (or replaces) a generator.
    pub fn insert(&mut self, generator: Generator) {
        self.generators
            .insert(generator.name().to_string(), generator);
    }

    /// Looks up a generator by name.
    pub fn generator(&self, name: &str) -> Option<&Generator> {
        self.generators.get(name)
    }

    /// Iterates generators in name order.
    pub fn generators(&self) -> impl Iterator<Item = &Generator> {
        self.generators.values()
    }

    /// Number of generators.
    pub fn len(&self) -> usize {
        self.generators.len()
    }

    /// True when the library has no generators.
    pub fn is_empty(&self) -> bool {
        self.generators.is_empty()
    }

    fn instantiate(&self, kind: ComponentKind, params: Params) -> Result<Component, GenerateError> {
        let name = kind.name();
        match self.generator(&name) {
            Some(g) => g.instantiate(&params),
            None => Err(GenerateError::Unbuildable(format!(
                "library has no {name} generator"
            ))),
        }
    }

    /// An ALU with the given width and function list (paper Figure 3 uses
    /// `width = 64` with [`Op::paper_alu16`]).
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn alu(&self, width: usize, ops: OpSet) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::Alu,
            Params::new()
                .with(names::INPUT_WIDTH, ParamValue::Width(width))
                .with(names::FUNCTION_LIST, ParamValue::Ops(ops)),
        )
    }

    /// An adder with carry-in and carry-out.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn adder(&self, width: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::AddSub,
            Params::new().with(names::INPUT_WIDTH, ParamValue::Width(width)),
        )
    }

    /// An adder with carry-in/out and group propagate/generate outputs
    /// (the kind of slice a carry-lookahead generator consumes).
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn adder_pg(&self, width: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::AddSub,
            Params::new()
                .with(names::INPUT_WIDTH, ParamValue::Width(width))
                .with(names::GROUP_PG, ParamValue::Flag(true)),
        )
    }

    /// An adder/subtractor with carry-in and carry-out.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn addsub(&self, width: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::AddSub,
            Params::new()
                .with(names::INPUT_WIDTH, ParamValue::Width(width))
                .with(
                    names::FUNCTION_LIST,
                    ParamValue::Ops([Op::Add, Op::Sub].into_iter().collect()),
                ),
        )
    }

    /// An N-to-1 multiplexer.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn mux(&self, width: usize, ways: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::Mux,
            Params::new()
                .with(names::INPUT_WIDTH, ParamValue::Width(width))
                .with(names::NUM_INPUTS, ParamValue::Width(ways)),
        )
    }

    /// A logic unit over the given (logic-class) functions.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn logic_unit(&self, width: usize, ops: OpSet) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::LogicUnit,
            Params::new()
                .with(names::INPUT_WIDTH, ParamValue::Width(width))
                .with(names::FUNCTION_LIST, ParamValue::Ops(ops)),
        )
    }

    /// A primitive gate with the given fan-in, bitwise over `width`.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn gate(
        &self,
        op: GateOp,
        width: usize,
        fan_in: usize,
    ) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::Gate(op),
            Params::new()
                .with(names::INPUT_WIDTH, ParamValue::Width(width))
                .with(names::NUM_INPUTS, ParamValue::Width(fan_in)),
        )
    }

    /// A magnitude comparator with EQ/LT/GT outputs.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn comparator(&self, width: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::Comparator,
            Params::new().with(names::INPUT_WIDTH, ParamValue::Width(width)),
        )
    }

    /// A binary decoder (`width` select bits to `2^width` lines).
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn decoder(&self, width: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::Decoder,
            Params::new().with(names::INPUT_WIDTH, ParamValue::Width(width)),
        )
    }

    /// A BCD decoder (4 bits to 10 lines).
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn bcd_decoder(&self) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::Decoder,
            Params::new()
                .with(names::INPUT_WIDTH, ParamValue::Width(4))
                .with(names::STYLE, ParamValue::Style("BCD".to_string())),
        )
    }

    /// A priority encoder over `lines` inputs.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn encoder(&self, lines: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::Encoder,
            Params::new().with(names::NUM_INPUTS, ParamValue::Width(lines)),
        )
    }

    /// A single-position shifter.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn shifter(&self, width: usize, ops: OpSet) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::Shifter,
            Params::new()
                .with(names::INPUT_WIDTH, ParamValue::Width(width))
                .with(names::FUNCTION_LIST, ParamValue::Ops(ops)),
        )
    }

    /// A barrel shifter.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn barrel_shifter(&self, width: usize, ops: OpSet) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::BarrelShifter,
            Params::new()
                .with(names::INPUT_WIDTH, ParamValue::Width(width))
                .with(names::FUNCTION_LIST, ParamValue::Ops(ops)),
        )
    }

    /// An n-by-m combinational multiplier.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn multiplier(&self, n: usize, m: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::Multiplier,
            Params::new()
                .with(names::INPUT_WIDTH, ParamValue::Width(n))
                .with(names::INPUT_WIDTH2, ParamValue::Width(m)),
        )
    }

    /// A combinational divider.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn divider(&self, width: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::Divider,
            Params::new().with(names::INPUT_WIDTH, ParamValue::Width(width)),
        )
    }

    /// A carry-lookahead generator over `groups` propagate/generate pairs.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn cla_generator(&self, groups: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::CarryLookahead,
            Params::new().with(names::NUM_INPUTS, ParamValue::Width(groups)),
        )
    }

    /// A plain data register.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn register(&self, width: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::Register,
            Params::new().with(names::INPUT_WIDTH, ParamValue::Width(width)),
        )
    }

    /// A data register with an enable pin.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn register_en(&self, width: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::Register,
            Params::new()
                .with(names::INPUT_WIDTH, ParamValue::Width(width))
                .with(names::ENABLE_FLAG, ParamValue::Flag(true)),
        )
    }

    /// The Figure-2 style up/down/loadable counter.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn counter(&self, width: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::Counter,
            Params::new().with(names::INPUT_WIDTH, ParamValue::Width(width)),
        )
    }

    /// A register file of `depth` words.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn register_file(&self, width: usize, depth: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::RegisterFile,
            Params::new()
                .with(names::INPUT_WIDTH, ParamValue::Width(width))
                .with(names::INPUT_WIDTH2, ParamValue::Width(depth)),
        )
    }

    /// A RAM of `depth` words.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn memory(&self, width: usize, depth: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::Memory,
            Params::new()
                .with(names::INPUT_WIDTH, ParamValue::Width(width))
                .with(names::INPUT_WIDTH2, ParamValue::Width(depth)),
        )
    }

    /// A stack of `depth` words.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn stack(&self, width: usize, depth: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::StackFifo,
            Params::new()
                .with(names::INPUT_WIDTH, ParamValue::Width(width))
                .with(names::INPUT_WIDTH2, ParamValue::Width(depth)),
        )
    }

    /// A non-inverting buffer.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn buffer(&self, width: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::BufferComp,
            Params::new().with(names::INPUT_WIDTH, ParamValue::Width(width)),
        )
    }

    /// A tristate driver.
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn tristate(&self, width: usize) -> Result<Component, GenerateError> {
        self.instantiate(
            ComponentKind::Tristate,
            Params::new().with(names::INPUT_WIDTH, ParamValue::Width(width)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::TypeClass;

    #[test]
    fn standard_library_covers_table1() {
        let lib = GenusLibrary::standard();
        // 8 gates + 21 other families.
        assert_eq!(lib.len(), ComponentKind::all().len());
        for kind in ComponentKind::all() {
            assert!(
                lib.generator(&kind.name()).is_some(),
                "missing generator {kind}"
            );
        }
    }

    #[test]
    fn every_class_represented() {
        let lib = GenusLibrary::standard();
        for class in [
            TypeClass::Combinational,
            TypeClass::Sequential,
            TypeClass::Interface,
            TypeClass::Miscellaneous,
        ] {
            assert!(lib.generators().any(|g| g.kind().type_class() == class));
        }
    }

    #[test]
    fn figure3_alu_instantiates() {
        let lib = GenusLibrary::standard();
        let alu = lib.alu(64, Op::paper_alu16()).unwrap();
        assert_eq!(alu.spec().width, 64);
        assert_eq!(alu.port("S").unwrap().width, 4);
        assert_eq!(alu.port("A").unwrap().width, 64);
    }

    #[test]
    fn convenience_constructors_build() {
        let lib = GenusLibrary::standard();
        assert!(lib.adder(16).is_ok());
        assert!(lib.addsub(2).is_ok());
        assert!(lib.mux(8, 4).is_ok());
        assert!(lib.comparator(8).is_ok());
        assert!(lib.decoder(3).is_ok());
        assert!(lib.bcd_decoder().is_ok());
        assert!(lib.encoder(8).is_ok());
        assert!(lib.multiplier(8, 8).is_ok());
        assert!(lib.divider(8).is_ok());
        assert!(lib.cla_generator(4).is_ok());
        assert!(lib.register(8).is_ok());
        assert!(lib.register_en(8).is_ok());
        assert!(lib.counter(8).is_ok());
        assert!(lib.register_file(8, 4).is_ok());
        assert!(lib.memory(8, 16).is_ok());
        assert!(lib.stack(8, 4).is_ok());
        assert!(lib.buffer(8).is_ok());
        assert!(lib.tristate(8).is_ok());
        assert!(lib
            .logic_unit(8, [Op::And, Op::Or].into_iter().collect())
            .is_ok());
        assert!(lib.gate(GateOp::Nand, 1, 2).is_ok());
        assert!(lib.shifter(8, OpSet::only(Op::Shl)).is_ok());
        assert!(lib.barrel_shifter(16, OpSet::only(Op::Shr)).is_ok());
    }

    #[test]
    fn empty_library_reports_missing_generator() {
        let lib = GenusLibrary::new();
        assert!(lib.is_empty());
        assert!(matches!(lib.adder(8), Err(GenerateError::Unbuildable(_))));
    }
}
