//! Construction of concrete components from (kind, parameters).
//!
//! This module is the working core of every GENUS generator: given a
//! [`ComponentKind`] and a resolved parameter list it produces the ports,
//! the operation list with behavioral effects, and the functional
//! [`ComponentSpec`] of the component. The LEGEND crate and the standard
//! library both funnel into [`build_component`].

use crate::behavior::{BinaryOp, CmpOp, Effect, Expr, UnaryOp};
use crate::component::{Component, GenerateError, OpSelect, Operation, Port, PortClass};
use crate::kind::{ComponentKind, GateOp};
use crate::op::{Op, OpClass, OpSet};
use crate::params::{names, ParamSpec, ParamValue, Params};
use crate::spec::ComponentSpec;
use rtl_base::bits::Bits;

/// Ceiling log2; `clog2(1) == 0`.
pub fn clog2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Width of a select port addressing `n` alternatives (at least one bit).
pub fn select_width(n: usize) -> usize {
    clog2(n).max(1)
}

fn err(msg: impl Into<String>) -> GenerateError {
    GenerateError::Unbuildable(msg.into())
}

fn set_value_bits(width: usize, v: i64) -> Bits {
    if v < 0 {
        Bits::ones(width)
    } else {
        Bits::from_u64(width, v as u64)
    }
}

/// The standard parameter schema of a component kind (what a LEGEND
/// description of the standard library would declare under `PARAMETERS:`).
pub fn schema_for(kind: ComponentKind) -> Vec<ParamSpec> {
    use ComponentKind::*;
    let w_req = ParamSpec::required(names::INPUT_WIDTH, "data width in bits");
    let w_opt =
        |d: usize| ParamSpec::optional(names::INPUT_WIDTH, ParamValue::Width(d), "data width");
    let n_opt = |d: usize| ParamSpec::optional(names::NUM_INPUTS, ParamValue::Width(d), "fan-in");
    let ops_opt = |ops: OpSet| {
        ParamSpec::optional(names::FUNCTION_LIST, ParamValue::Ops(ops), "operation list")
    };
    let style_opt =
        |d: &str| ParamSpec::optional(names::STYLE, ParamValue::Style(d.to_string()), "style");
    let flag_opt =
        |name: &str, d: bool, doc: &str| ParamSpec::optional(name, ParamValue::Flag(d), doc);
    match kind {
        Gate(_) => vec![w_opt(1), n_opt(2)],
        LogicUnit => vec![
            w_req,
            ParamSpec::required(names::FUNCTION_LIST, "logic functions"),
        ],
        Mux | Selector => vec![w_req, n_opt(2)],
        Decoder => vec![
            w_req,
            style_opt("BINARY"),
            flag_opt(names::ENABLE_FLAG, false, "enable pin"),
        ],
        Encoder => vec![ParamSpec::required(names::NUM_INPUTS, "input lines")],
        AddSub => vec![
            w_req,
            ops_opt(OpSet::only(Op::Add)),
            flag_opt(names::CARRY_IN, true, "carry input"),
            flag_opt(names::CARRY_OUT, true, "carry output"),
            flag_opt(names::GROUP_PG, false, "group propagate/generate outputs"),
        ],
        Comparator => vec![
            w_req,
            ops_opt([Op::Eq, Op::Lt, Op::Gt].into_iter().collect()),
        ],
        Alu => vec![
            w_req,
            ParamSpec::required(names::FUNCTION_LIST, "ALU functions"),
            flag_opt(names::CARRY_IN, true, "carry input"),
        ],
        Shifter => vec![w_req, ops_opt([Op::Shl, Op::Shr].into_iter().collect())],
        BarrelShifter => vec![
            w_req,
            ParamSpec::optional(
                names::INPUT_WIDTH2,
                ParamValue::Width(0),
                "shift-amount width (0 = log2 of data width)",
            ),
            ops_opt(OpSet::only(Op::Shl)),
        ],
        Multiplier => vec![
            w_req,
            ParamSpec::optional(
                names::INPUT_WIDTH2,
                ParamValue::Width(0),
                "second operand width (0 = same as first)",
            ),
        ],
        Divider => vec![w_req],
        CarryLookahead => vec![n_opt(4)],
        Register => vec![
            w_req,
            flag_opt(names::ENABLE_FLAG, false, "enable pin"),
            flag_opt(names::ASYNC_SET_RESET, false, "async set/reset pins"),
            ParamSpec::optional(names::SET_VALUE, ParamValue::Int(-1), "async set value"),
        ],
        RegisterFile | Memory => {
            let mut v = vec![
                w_req,
                ParamSpec::required(names::INPUT_WIDTH2, "depth in words"),
            ];
            if kind == Memory {
                v.push(style_opt("RAM"));
            }
            v
        }
        Counter => vec![
            w_req,
            ops_opt([Op::Load, Op::CountUp, Op::CountDown].into_iter().collect()),
            ParamSpec::optional(names::SET_VALUE, ParamValue::Int(-1), "async set value"),
            style_opt("SYNCHRONOUS"),
            flag_opt(names::ENABLE_FLAG, true, "count-enable pin"),
            flag_opt(names::ASYNC_SET_RESET, true, "async set/reset pins"),
            ParamSpec::optional(
                names::COMPILER_NAME,
                ParamValue::Text("counter_vhdl.c".to_string()),
                "behavioral-model backend",
            ),
        ],
        StackFifo => vec![
            w_req,
            ParamSpec::required(names::INPUT_WIDTH2, "depth in words"),
            style_opt("STACK"),
        ],
        PortComp => vec![w_req, style_opt("IN")],
        BufferComp | ClockDriver | SchmittTrigger | Delay => vec![w_opt(1)],
        Tristate => vec![w_req],
        WiredOr | Bus => vec![w_req, n_opt(2)],
        Concat => vec![w_req, ParamSpec::required(names::NUM_INPUTS, "part count")],
        Extract => vec![
            w_req,
            ParamSpec::required(names::INPUT_WIDTH2, "field width"),
            ParamSpec::optional(names::OFFSET, ParamValue::Int(0), "field offset"),
        ],
        ClockGenerator => vec![ParamSpec::optional(
            names::PERIOD,
            ParamValue::Int(10),
            "period hint (ns)",
        )],
    }
}

/// The styles a kind advertises (LEGEND `STYLES:`).
pub fn styles_for(kind: ComponentKind) -> Vec<String> {
    use ComponentKind::*;
    match kind {
        Counter => vec!["SYNCHRONOUS".to_string(), "RIPPLE".to_string()],
        Decoder => vec!["BINARY".to_string(), "BCD".to_string()],
        StackFifo => vec!["STACK".to_string(), "FIFO".to_string()],
        Memory => vec!["RAM".to_string(), "ROM".to_string()],
        PortComp => vec!["IN".to_string(), "OUT".to_string()],
        _ => Vec::new(),
    }
}

struct Builder {
    ports: Vec<Port>,
    operations: Vec<Operation>,
    op_select: Option<OpSelect>,
    clock: Option<String>,
    registered: std::collections::BTreeSet<String>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            ports: Vec::new(),
            operations: Vec::new(),
            op_select: None,
            clock: None,
            registered: std::collections::BTreeSet::new(),
        }
    }

    /// Declares a state-holding output (publishes held state at the
    /// clock edge).
    fn reg_out(&mut self, name: &str, width: usize, class: PortClass) -> &mut Self {
        self.out(name, width, class);
        self.registered.insert(name.to_string());
        self
    }

    fn inp(&mut self, name: &str, width: usize, class: PortClass) -> &mut Self {
        self.ports.push(Port::input(name, width, class));
        self
    }

    fn out(&mut self, name: &str, width: usize, class: PortClass) -> &mut Self {
        self.ports.push(Port::output(name, width, class));
        self
    }

    fn clocked(&mut self) -> &mut Self {
        self.inp("CLK", 1, PortClass::Clock);
        self.clock = Some("CLK".to_string());
        self
    }

    fn op(&mut self, op: Op, control: Option<&str>, effects: Vec<Effect>) -> &mut Self {
        self.operations.push(Operation {
            op,
            control: control.map(str::to_string),
            effects,
        });
        self
    }

    fn select_over(&mut self, port: &str, ops: OpSet) -> &mut Self {
        if ops.len() > 1 {
            self.inp(port, select_width(ops.len()), PortClass::Select);
            self.op_select = Some(OpSelect {
                port: port.to_string(),
                encoding: ops.iter().collect(),
            });
        }
        self
    }

    fn finish(self, gen_name: &str, spec: ComponentSpec, params: Params) -> Component {
        let name = format!("{}_{}", gen_name, spec.width.max(1));
        Component {
            name,
            generator: gen_name.to_string(),
            spec,
            ports: self.ports,
            operations: self.operations,
            op_select: self.op_select,
            clock: self.clock,
            params,
            registered: self.registered,
        }
    }
}

fn gate_fold(g: GateOp, inputs: &[String]) -> Expr {
    let port = |n: &String| Expr::port(n);
    match g {
        GateOp::Not => Expr::unary(UnaryOp::Not, port(&inputs[0])),
        GateOp::Buf => port(&inputs[0]),
        GateOp::And | GateOp::Or | GateOp::Xor | GateOp::Nand | GateOp::Nor | GateOp::Xnor => {
            let base = match g {
                GateOp::And | GateOp::Nand => BinaryOp::And,
                GateOp::Or | GateOp::Nor => BinaryOp::Or,
                _ => BinaryOp::Xor,
            };
            let mut acc = port(&inputs[0]);
            for i in &inputs[1..] {
                acc = Expr::binary(base, acc, port(i));
            }
            if g.inverting() {
                acc = Expr::unary(UnaryOp::Not, acc);
            }
            acc
        }
    }
}

/// Effect expression for one ALU/logic-unit operation over ports `A`, `B`
/// (and `CI` when `carry_in`), producing a `width`-bit result.
fn alu_op_expr(op: Op, width: usize, carry_in: bool) -> Result<Expr, GenerateError> {
    let a = || Expr::port("A");
    let b = || Expr::port("B");
    let ci = |default1: bool| {
        if carry_in {
            Expr::zext(width, Expr::port("CI"))
        } else {
            Expr::cuint(width, default1 as u64)
        }
    };
    use BinaryOp::*;
    Ok(match op {
        Op::Add => Expr::binary(Add, Expr::binary(Add, a(), b()), ci(false)),
        Op::Sub => Expr::binary(
            Add,
            Expr::binary(Add, a(), Expr::unary(UnaryOp::Not, b())),
            ci(true),
        ),
        Op::Inc => Expr::unary(UnaryOp::Inc, a()),
        Op::Dec => Expr::unary(UnaryOp::Dec, a()),
        Op::Eq => Expr::zext(width, Expr::cmp(CmpOp::Eq, a(), b())),
        Op::Lt => Expr::zext(width, Expr::cmp(CmpOp::Ltu, a(), b())),
        Op::Gt => Expr::zext(width, Expr::cmp(CmpOp::Gtu, a(), b())),
        Op::Neq => Expr::zext(width, Expr::cmp(CmpOp::Ne, a(), b())),
        Op::Ge => Expr::zext(width, Expr::cmp(CmpOp::Geu, a(), b())),
        Op::Le => Expr::zext(width, Expr::cmp(CmpOp::Leu, a(), b())),
        Op::Zerop => Expr::zext(width, Expr::unary(UnaryOp::IsZero, a())),
        Op::And => Expr::binary(And, a(), b()),
        Op::Or => Expr::binary(Or, a(), b()),
        Op::Nand => Expr::binary(Nand, a(), b()),
        Op::Nor => Expr::binary(Nor, a(), b()),
        Op::Xor => Expr::binary(Xor, a(), b()),
        Op::Xnor => Expr::binary(Xnor, a(), b()),
        Op::Lnot => Expr::unary(UnaryOp::Not, a()),
        Op::Limpl => Expr::binary(Limpl, a(), b()),
        Op::Shl => Expr::binary(ShlV, a(), Expr::cuint(1, 1)),
        Op::Shr => Expr::binary(ShrV, a(), Expr::cuint(1, 1)),
        Op::Asr => Expr::binary(AsrV, a(), Expr::cuint(1, 1)),
        Op::Rotl => Expr::binary(RotlV, a(), Expr::cuint(1, 1)),
        Op::Rotr => Expr::binary(RotrV, a(), Expr::cuint(1, 1)),
        other => return Err(err(format!("operation {other} not valid in an ALU"))),
    })
}

/// Reconstructs a component directly from its functional specification.
///
/// This is the bridge used to *simulate* anything described by a
/// [`ComponentSpec`] — library cells and decomposition modules alike: the
/// spec is mapped back to generator parameters and built. It is the
/// mechanical counterpart of the paper's claim that cells are "described
/// with the same representation language used in recognizing and
/// decomposing GENUS components".
///
/// # Errors
///
/// [`GenerateError::Unbuildable`] when the spec encodes an invalid
/// combination.
pub fn component_for_spec(spec: &ComponentSpec) -> Result<Component, GenerateError> {
    use ComponentKind::*;
    let mut p = Params::new();
    p.set(names::INPUT_WIDTH, ParamValue::Width(spec.width));
    match spec.kind {
        Gate(_) | Mux | Selector | WiredOr | Bus | Concat => {
            p.set(names::NUM_INPUTS, ParamValue::Width(spec.inputs));
        }
        LogicUnit | Shifter => {
            p.set(names::FUNCTION_LIST, ParamValue::Ops(spec.ops));
        }
        Alu => {
            p.set(names::FUNCTION_LIST, ParamValue::Ops(spec.ops));
            p.set(names::CARRY_IN, ParamValue::Flag(spec.carry_in));
        }
        AddSub => {
            p.set(names::FUNCTION_LIST, ParamValue::Ops(spec.ops));
            p.set(names::CARRY_IN, ParamValue::Flag(spec.carry_in));
            p.set(names::CARRY_OUT, ParamValue::Flag(spec.carry_out));
            p.set(names::GROUP_PG, ParamValue::Flag(spec.group_pg));
        }
        Comparator => {
            p.set(names::FUNCTION_LIST, ParamValue::Ops(spec.ops));
        }
        Decoder => {
            let style = if spec.width == 4 && spec.width2 == 10 {
                "BCD"
            } else {
                "BINARY"
            };
            p.set(names::STYLE, ParamValue::Style(style.to_string()));
            p.set(names::ENABLE_FLAG, ParamValue::Flag(spec.enable));
        }
        Encoder => {
            p = Params::new().with(names::NUM_INPUTS, ParamValue::Width(spec.inputs));
        }
        BarrelShifter => {
            p.set(names::INPUT_WIDTH2, ParamValue::Width(spec.width2));
            p.set(names::FUNCTION_LIST, ParamValue::Ops(spec.ops));
        }
        Multiplier => {
            p.set(names::INPUT_WIDTH2, ParamValue::Width(spec.width2));
        }
        CarryLookahead => {
            p = Params::new().with(names::NUM_INPUTS, ParamValue::Width(spec.inputs));
        }
        Register => {
            p.set(names::ENABLE_FLAG, ParamValue::Flag(spec.enable));
            p.set(
                names::ASYNC_SET_RESET,
                ParamValue::Flag(spec.async_set_reset),
            );
        }
        RegisterFile | Memory => {
            p.set(names::INPUT_WIDTH2, ParamValue::Width(spec.width2));
            if spec.kind == Memory && !spec.ops.contains(Op::Write) {
                p.set(names::STYLE, ParamValue::Style("ROM".to_string()));
            }
        }
        Counter => {
            p.set(names::FUNCTION_LIST, ParamValue::Ops(spec.ops));
            p.set(names::ENABLE_FLAG, ParamValue::Flag(spec.enable));
            p.set(
                names::ASYNC_SET_RESET,
                ParamValue::Flag(spec.async_set_reset),
            );
            if let Some(style) = &spec.style {
                p.set(names::STYLE, ParamValue::Style(style.clone()));
            }
        }
        StackFifo => {
            p.set(names::INPUT_WIDTH2, ParamValue::Width(spec.width2));
            if let Some(style) = &spec.style {
                p.set(names::STYLE, ParamValue::Style(style.clone()));
            }
        }
        PortComp => {
            if let Some(style) = &spec.style {
                p.set(names::STYLE, ParamValue::Style(style.clone()));
            }
        }
        Extract => {
            p.set(names::INPUT_WIDTH2, ParamValue::Width(spec.width2));
            p.set(names::OFFSET, ParamValue::Int(spec.inputs as i64));
        }
        Divider | BufferComp | ClockDriver | SchmittTrigger | Delay | Tristate => {}
        ClockGenerator => {
            p = Params::new();
        }
    }
    let resolved = p.resolve(&schema_for(spec.kind))?;
    build_component(spec.kind, &spec.kind.name(), &resolved)
}

/// Builds a component of `kind` named after `gen_name` from a *resolved*
/// parameter list (defaults already filled in).
///
/// # Errors
///
/// [`GenerateError::Unbuildable`] when the parameter combination is
/// invalid (zero width, empty or ill-classed function list, unknown style,
/// oversized decoder, ...).
pub fn build_component(
    kind: ComponentKind,
    gen_name: &str,
    params: &Params,
) -> Result<Component, GenerateError> {
    use ComponentKind::*;
    let width = params.width(names::INPUT_WIDTH).unwrap_or(1);
    if width == 0 {
        return Err(err("zero data width"));
    }
    let mut b = Builder::new();
    let spec;
    match kind {
        Gate(g) => {
            let n = match g {
                GateOp::Not | GateOp::Buf => 1,
                _ => params.width(names::NUM_INPUTS).unwrap_or(2),
            };
            if n == 0 || (n == 1 && !matches!(g, GateOp::Not | GateOp::Buf)) {
                return Err(err(format!("{g} gate needs fan-in >= 2, got {n}")));
            }
            let input_names: Vec<String> = (0..n).map(|i| format!("I{i}")).collect();
            for name in &input_names {
                b.inp(name, width, PortClass::Data);
            }
            b.out("O", width, PortClass::Data);
            let expr = gate_fold(g, &input_names);
            b.op(
                match g {
                    GateOp::And => Op::And,
                    GateOp::Or => Op::Or,
                    GateOp::Nand => Op::Nand,
                    GateOp::Nor => Op::Nor,
                    GateOp::Xor => Op::Xor,
                    GateOp::Xnor => Op::Xnor,
                    GateOp::Not => Op::Lnot,
                    GateOp::Buf => Op::Hold,
                },
                None,
                vec![Effect::new("O", expr)],
            );
            spec = ComponentSpec::new(kind, width).with_inputs(n);
        }
        LogicUnit => {
            let ops = params
                .ops(names::FUNCTION_LIST)
                .ok_or_else(|| err("logic unit needs a function list"))?;
            if ops.is_empty() {
                return Err(err("empty function list"));
            }
            if ops.iter().any(|op| op.class() != OpClass::Logic) {
                return Err(err("logic unit functions must be logic-class"));
            }
            b.inp("A", width, PortClass::Data);
            b.inp("B", width, PortClass::Data);
            b.out("O", width, PortClass::Data);
            b.select_over("S", ops);
            for op in ops.iter() {
                let e = alu_op_expr(op, width, false)?;
                b.op(op, None, vec![Effect::new("O", e)]);
            }
            spec = ComponentSpec::new(kind, width).with_ops(ops);
        }
        Mux => {
            let n = params.width(names::NUM_INPUTS).unwrap_or(2);
            if n < 2 {
                return Err(err("mux needs at least 2 inputs"));
            }
            for i in 0..n {
                b.inp(&format!("I{i}"), width, PortClass::Data);
            }
            b.inp("S", select_width(n), PortClass::Select);
            b.out("O", width, PortClass::Data);
            // Select values >= n are don't-care; we pick the last input so
            // the model stays total.
            let cases: Vec<Expr> = (0..n).map(|i| Expr::port(&format!("I{i}"))).collect();
            let sel = Expr::Select {
                sel: Box::new(Expr::port("S")),
                cases,
                default: Box::new(Expr::port(&format!("I{}", n - 1))),
            };
            b.op(Op::Hold, None, vec![Effect::new("O", sel)]);
            spec = ComponentSpec::new(kind, width).with_inputs(n);
        }
        Selector => {
            let n = params.width(names::NUM_INPUTS).unwrap_or(2);
            if n < 2 {
                return Err(err("selector needs at least 2 inputs"));
            }
            for i in 0..n {
                b.inp(&format!("I{i}"), width, PortClass::Data);
            }
            b.inp("SEL", n, PortClass::Select);
            b.out("O", width, PortClass::Data);
            // One-hot AND-OR plane: O = OR_i (I_i & replicate(SEL[i])).
            let mut acc = Expr::cuint(width, 0);
            for i in 0..n {
                let bit = Expr::slice(Expr::port("SEL"), i, 1);
                let repl = Expr::SextTo(width, Box::new(bit));
                let term = Expr::binary(BinaryOp::And, Expr::port(&format!("I{i}")), repl);
                acc = Expr::binary(BinaryOp::Or, acc, term);
            }
            b.op(Op::Hold, None, vec![Effect::new("O", acc)]);
            spec = ComponentSpec::new(kind, width).with_inputs(n);
        }
        Decoder => {
            let style = params.style(names::STYLE).unwrap_or("BINARY").to_string();
            let out_lines = match style.as_str() {
                "BINARY" => {
                    if width > 12 {
                        return Err(err("decoder select width capped at 12"));
                    }
                    1usize << width
                }
                "BCD" => {
                    if width != 4 {
                        return Err(err("BCD decoder takes a 4-bit input"));
                    }
                    10
                }
                other => return Err(err(format!("unknown decoder style {other}"))),
            };
            let enable = params.flag(names::ENABLE_FLAG).unwrap_or(false);
            b.inp("A", width, PortClass::Data);
            if enable {
                b.inp("EN", 1, PortClass::Enable);
            }
            b.out("O", out_lines, PortClass::Data);
            // O = 1 << A, truncated to the line count (out-of-range BCD
            // codes decode to no line).
            let one = Expr::cuint(out_lines, 1);
            let shifted = Expr::binary(BinaryOp::ShlV, one, Expr::port("A"));
            b.op(Op::Hold, None, vec![Effect::new("O", shifted)]);
            spec = ComponentSpec::new(kind, width)
                .with_width2(out_lines)
                .with_enable(enable)
                .with_style(&style);
        }
        Encoder => {
            let n = params
                .width(names::NUM_INPUTS)
                .ok_or_else(|| err("encoder needs an input line count"))?;
            if n < 2 {
                return Err(err("encoder needs at least 2 input lines"));
            }
            let out_w = select_width(n);
            b.inp("I", n, PortClass::Data);
            b.out("O", out_w, PortClass::Data);
            b.out("V", 1, PortClass::Status);
            b.op(
                Op::Hold,
                None,
                vec![
                    Effect::new(
                        "O",
                        Expr::PriorityIndex {
                            expr: Box::new(Expr::port("I")),
                            out_width: out_w,
                        },
                    ),
                    Effect::new("V", Expr::unary(UnaryOp::ReduceOr, Expr::port("I"))),
                ],
            );
            spec = ComponentSpec::new(kind, out_w).with_inputs(n);
        }
        AddSub => {
            let ops = params
                .ops(names::FUNCTION_LIST)
                .unwrap_or(OpSet::only(Op::Add));
            if ops.is_empty()
                || !([Op::Add, Op::Sub].into_iter().collect::<OpSet>()).is_superset(ops)
            {
                return Err(err("adder/subtractor functions must be ADD and/or SUB"));
            }
            let carry_in = params.flag(names::CARRY_IN).unwrap_or(true);
            let carry_out = params.flag(names::CARRY_OUT).unwrap_or(true);
            let group_pg = params.flag(names::GROUP_PG).unwrap_or(false);
            if group_pg && ops.contains(Op::Sub) {
                return Err(err("group P/G outputs are only defined for pure adders"));
            }
            b.inp("A", width, PortClass::Data);
            b.inp("B", width, PortClass::Data);
            if carry_in {
                b.inp("CI", 1, PortClass::CarryIn);
            }
            b.out("O", width, PortClass::Data);
            if carry_out {
                b.out("CO", 1, PortClass::CarryOut);
            }
            if group_pg {
                b.out("P", 1, PortClass::Status);
                b.out("G", 1, PortClass::Status);
            }
            b.select_over("S", ops);
            for op in ops.iter() {
                let (bexpr, default_ci) = match op {
                    Op::Add => (Expr::port("B"), 0u64),
                    Op::Sub => (Expr::unary(UnaryOp::Not, Expr::port("B")), 1u64),
                    _ => unreachable!(),
                };
                let cin = if carry_in {
                    Expr::port("CI")
                } else {
                    Expr::cuint(1, default_ci)
                };
                let wide = Expr::add_wide(Expr::port("A"), bexpr, cin);
                let mut effects = vec![Effect::new("O", Expr::slice(wide.clone(), 0, width))];
                if carry_out {
                    effects.push(Effect::new("CO", Expr::slice(wide, width, 1)));
                }
                if group_pg {
                    // Group propagate: every bit position propagates
                    // (p_i = a_i XOR b_i); group generate: carry out with
                    // zero carry-in.
                    effects.push(Effect::new(
                        "P",
                        Expr::unary(
                            UnaryOp::ReduceAnd,
                            Expr::binary(BinaryOp::Xor, Expr::port("A"), Expr::port("B")),
                        ),
                    ));
                    let g_wide =
                        Expr::add_wide(Expr::port("A"), Expr::port("B"), Expr::cuint(1, 0));
                    effects.push(Effect::new("G", Expr::slice(g_wide, width, 1)));
                }
                b.op(op, None, effects);
            }
            spec = ComponentSpec::new(kind, width)
                .with_ops(ops)
                .with_carry_in(carry_in)
                .with_carry_out(carry_out)
                .with_group_pg(group_pg);
        }
        Comparator => {
            let ops = params
                .ops(names::FUNCTION_LIST)
                .unwrap_or([Op::Eq, Op::Lt, Op::Gt].into_iter().collect());
            if ops.is_empty() || ops.iter().any(|op| op.class() != OpClass::Comparison) {
                return Err(err("comparator functions must be comparison-class"));
            }
            if ops.contains(Op::Zerop) {
                return Err(err("ZEROP belongs to the ALU, not the comparator"));
            }
            b.inp("A", width, PortClass::Data);
            b.inp("B", width, PortClass::Data);
            for op in ops.iter() {
                b.out(op.name(), 1, PortClass::Status);
                let cmp = match op {
                    Op::Eq => CmpOp::Eq,
                    Op::Neq => CmpOp::Ne,
                    Op::Lt => CmpOp::Ltu,
                    Op::Gt => CmpOp::Gtu,
                    Op::Le => CmpOp::Leu,
                    Op::Ge => CmpOp::Geu,
                    _ => unreachable!(),
                };
                b.op(
                    op,
                    None,
                    vec![Effect::new(
                        op.name(),
                        Expr::cmp(cmp, Expr::port("A"), Expr::port("B")),
                    )],
                );
            }
            spec = ComponentSpec::new(kind, width).with_ops(ops);
        }
        Alu => {
            let ops = params
                .ops(names::FUNCTION_LIST)
                .ok_or_else(|| err("ALU needs a function list"))?;
            if ops.is_empty() {
                return Err(err("empty ALU function list"));
            }
            let carry_in = params.flag(names::CARRY_IN).unwrap_or(true);
            b.inp("A", width, PortClass::Data);
            b.inp("B", width, PortClass::Data);
            if carry_in {
                b.inp("CI", 1, PortClass::CarryIn);
            }
            b.out("O", width, PortClass::Data);
            b.select_over("S", ops);
            for op in ops.iter() {
                let e = alu_op_expr(op, width, carry_in)?;
                b.op(op, None, vec![Effect::new("O", e)]);
            }
            spec = ComponentSpec::new(kind, width)
                .with_ops(ops)
                .with_carry_in(carry_in);
        }
        Shifter => {
            let ops = params
                .ops(names::FUNCTION_LIST)
                .unwrap_or([Op::Shl, Op::Shr].into_iter().collect());
            if ops.is_empty() || ops.iter().any(|op| op.class() != OpClass::Shift) {
                return Err(err("shifter functions must be shift-class"));
            }
            b.inp("A", width, PortClass::Data);
            b.out("O", width, PortClass::Data);
            b.select_over("S", ops);
            for op in ops.iter() {
                let e = alu_op_expr(op, width, false)?;
                b.op(op, None, vec![Effect::new("O", e)]);
            }
            spec = ComponentSpec::new(kind, width).with_ops(ops);
        }
        BarrelShifter => {
            let ops = params
                .ops(names::FUNCTION_LIST)
                .unwrap_or(OpSet::only(Op::Shl));
            if ops.is_empty() || ops.iter().any(|op| op.class() != OpClass::Shift) {
                return Err(err("barrel shifter functions must be shift-class"));
            }
            let mut amt_w = params.width(names::INPUT_WIDTH2).unwrap_or(0);
            if amt_w == 0 {
                amt_w = select_width(width);
            }
            b.inp("A", width, PortClass::Data);
            b.inp("SH", amt_w, PortClass::Data);
            b.out("O", width, PortClass::Data);
            b.select_over("S", ops);
            for op in ops.iter() {
                let bop = match op {
                    Op::Shl => BinaryOp::ShlV,
                    Op::Shr => BinaryOp::ShrV,
                    Op::Asr => BinaryOp::AsrV,
                    Op::Rotl => BinaryOp::RotlV,
                    Op::Rotr => BinaryOp::RotrV,
                    _ => unreachable!(),
                };
                b.op(
                    op,
                    None,
                    vec![Effect::new(
                        "O",
                        Expr::binary(bop, Expr::port("A"), Expr::port("SH")),
                    )],
                );
            }
            spec = ComponentSpec::new(kind, width)
                .with_width2(amt_w)
                .with_ops(ops);
        }
        Multiplier => {
            let mut w2 = params.width(names::INPUT_WIDTH2).unwrap_or(0);
            if w2 == 0 {
                w2 = width;
            }
            b.inp("A", width, PortClass::Data);
            b.inp("B", w2, PortClass::Data);
            b.out("O", width + w2, PortClass::Data);
            b.op(
                Op::Mul,
                None,
                vec![Effect::new(
                    "O",
                    Expr::binary(BinaryOp::MulFull, Expr::port("A"), Expr::port("B")),
                )],
            );
            spec = ComponentSpec::new(kind, width)
                .with_width2(w2)
                .with_ops(OpSet::only(Op::Mul));
        }
        Divider => {
            b.inp("A", width, PortClass::Data);
            b.inp("B", width, PortClass::Data);
            b.out("Q", width, PortClass::Data);
            b.out("R", width, PortClass::Data);
            b.op(
                Op::Div,
                None,
                vec![
                    Effect::new(
                        "Q",
                        Expr::binary(BinaryOp::DivOr1s, Expr::port("A"), Expr::port("B")),
                    ),
                    Effect::new(
                        "R",
                        Expr::binary(BinaryOp::RemOrA, Expr::port("A"), Expr::port("B")),
                    ),
                ],
            );
            spec = ComponentSpec::new(kind, width).with_ops(OpSet::only(Op::Div));
        }
        CarryLookahead => {
            let n = params.width(names::NUM_INPUTS).unwrap_or(4);
            if n < 2 {
                return Err(err("carry-lookahead generator needs >= 2 groups"));
            }
            b.inp("P", n, PortClass::Data);
            b.inp("G", n, PortClass::Data);
            b.inp("CI", 1, PortClass::CarryIn);
            b.out("C", n, PortClass::Data);
            b.out("GP", 1, PortClass::Status);
            b.out("GG", 1, PortClass::Status);
            // c_{i+1} = G_i | (P_i & c_i), with c_0 = CI; C packs
            // c_1..c_n LSB-first.
            let mut carries = Vec::with_capacity(n);
            let mut c: Expr = Expr::port("CI");
            for i in 0..n {
                let gi = Expr::slice(Expr::port("G"), i, 1);
                let pi = Expr::slice(Expr::port("P"), i, 1);
                c = Expr::binary(BinaryOp::Or, gi, Expr::binary(BinaryOp::And, pi, c));
                carries.push(c.clone());
            }
            // Group generate: the same chain seeded with zero carry-in.
            let mut gg: Expr = Expr::cuint(1, 0);
            for i in 0..n {
                let gi = Expr::slice(Expr::port("G"), i, 1);
                let pi = Expr::slice(Expr::port("P"), i, 1);
                gg = Expr::binary(BinaryOp::Or, gi, Expr::binary(BinaryOp::And, pi, gg));
            }
            b.op(
                Op::Hold,
                None,
                vec![
                    Effect::new("C", Expr::Concat(carries)),
                    Effect::new("GP", Expr::unary(UnaryOp::ReduceAnd, Expr::port("P"))),
                    Effect::new("GG", gg),
                ],
            );
            spec = ComponentSpec::new(kind, n)
                .with_inputs(n)
                .with_carry_in(true);
        }
        Register => {
            let enable = params.flag(names::ENABLE_FLAG).unwrap_or(false);
            let async_sr = params.flag(names::ASYNC_SET_RESET).unwrap_or(false);
            let set_value = match params.get(names::SET_VALUE) {
                Some(ParamValue::Int(v)) => *v,
                _ => -1,
            };
            b.inp("D", width, PortClass::Data);
            b.clocked();
            if enable {
                b.inp("EN", 1, PortClass::Enable);
            }
            if async_sr {
                b.inp("ARST", 1, PortClass::AsyncSetReset);
                b.inp("ASET", 1, PortClass::AsyncSetReset);
            }
            b.reg_out("Q", width, PortClass::Data);
            if async_sr {
                b.op(
                    Op::AsyncReset,
                    Some("ARST"),
                    vec![Effect::new("Q", Expr::cuint(width, 0))],
                );
                b.op(
                    Op::AsyncSet,
                    Some("ASET"),
                    vec![Effect::new(
                        "Q",
                        Expr::Const(set_value_bits(width, set_value)),
                    )],
                );
            }
            b.op(Op::Load, None, vec![Effect::new("Q", Expr::port("D"))]);
            spec = ComponentSpec::new(kind, width)
                .with_ops(OpSet::only(Op::Load))
                .with_enable(enable)
                .with_async_set_reset(async_sr);
        }
        Counter => {
            let ops = params
                .ops(names::FUNCTION_LIST)
                .unwrap_or([Op::Load, Op::CountUp, Op::CountDown].into_iter().collect());
            let allowed: OpSet = [Op::Load, Op::CountUp, Op::CountDown].into_iter().collect();
            if ops.is_empty() || !allowed.is_superset(ops) {
                return Err(err("counter functions must be LOAD/COUNT_UP/COUNT_DOWN"));
            }
            let style = params
                .style(names::STYLE)
                .unwrap_or("SYNCHRONOUS")
                .to_string();
            if style != "SYNCHRONOUS" && style != "RIPPLE" {
                return Err(err(format!("unknown counter style {style}")));
            }
            let enable = params.flag(names::ENABLE_FLAG).unwrap_or(true);
            let async_sr = params.flag(names::ASYNC_SET_RESET).unwrap_or(true);
            let set_value = match params.get(names::SET_VALUE) {
                Some(ParamValue::Int(v)) => *v,
                _ => -1,
            };
            if ops.contains(Op::Load) {
                b.inp("I0", width, PortClass::Data);
            }
            b.clocked();
            if enable {
                b.inp("CEN", 1, PortClass::Enable);
            }
            if async_sr {
                b.inp("ARESET", 1, PortClass::AsyncSetReset);
                b.inp("ASET", 1, PortClass::AsyncSetReset);
            }
            b.reg_out("O0", width, PortClass::Data);
            if async_sr {
                b.op(
                    Op::AsyncReset,
                    Some("ARESET"),
                    vec![Effect::new("O0", Expr::cuint(width, 0))],
                );
                b.op(
                    Op::AsyncSet,
                    Some("ASET"),
                    vec![Effect::new(
                        "O0",
                        Expr::Const(set_value_bits(width, set_value)),
                    )],
                );
            }
            if ops.contains(Op::Load) {
                b.op(
                    Op::Load,
                    Some("CLOAD"),
                    vec![Effect::new("O0", Expr::port("I0"))],
                );
                b.inp("CLOAD", 1, PortClass::Control);
            }
            if ops.contains(Op::CountUp) {
                b.op(
                    Op::CountUp,
                    Some("CUP"),
                    vec![Effect::new(
                        "O0",
                        Expr::unary(UnaryOp::Inc, Expr::port("O0")),
                    )],
                );
                b.inp("CUP", 1, PortClass::Control);
            }
            if ops.contains(Op::CountDown) {
                b.op(
                    Op::CountDown,
                    Some("CDOWN"),
                    vec![Effect::new(
                        "O0",
                        Expr::unary(UnaryOp::Dec, Expr::port("O0")),
                    )],
                );
                b.inp("CDOWN", 1, PortClass::Control);
            }
            spec = ComponentSpec::new(kind, width)
                .with_ops(ops)
                .with_enable(enable)
                .with_async_set_reset(async_sr)
                .with_style(&style);
        }
        RegisterFile | Memory => {
            let depth = params
                .width(names::INPUT_WIDTH2)
                .ok_or_else(|| err("needs a depth"))?;
            if depth == 0 {
                return Err(err("zero depth"));
            }
            if width * depth > 1 << 16 {
                return Err(err("memory capacity capped at 64 Kbit"));
            }
            let rom = kind == Memory && params.style(names::STYLE) == Some("ROM");
            let aw = select_width(depth);
            let mem_w = width * depth;
            let amt = |addr: &str| {
                Expr::binary(
                    BinaryOp::MulFull,
                    Expr::port(addr),
                    Expr::cuint(17, width as u64),
                )
            };
            let read_port = if kind == RegisterFile { "RA" } else { "ADDR" };
            b.inp(read_port, aw, PortClass::Data);
            if !rom {
                if kind == RegisterFile {
                    b.inp("WA", aw, PortClass::Data);
                }
                b.inp(
                    if kind == RegisterFile { "WD" } else { "DIN" },
                    width,
                    PortClass::Data,
                );
                b.inp("WEN", 1, PortClass::Control);
            }
            b.clocked();
            b.out(
                if kind == RegisterFile { "RD" } else { "DOUT" },
                width,
                PortClass::Data,
            );
            b.reg_out("MEM", mem_w, PortClass::Data);
            let dout = Expr::ZextTo(
                width,
                Box::new(Expr::binary(
                    BinaryOp::ShrV,
                    Expr::port("MEM"),
                    amt(read_port),
                )),
            );
            b.op(
                Op::Read,
                None,
                vec![Effect::new(
                    if kind == RegisterFile { "RD" } else { "DOUT" },
                    dout,
                )],
            );
            if !rom {
                let waddr = if kind == RegisterFile { "WA" } else { "ADDR" };
                let wdata = if kind == RegisterFile { "WD" } else { "DIN" };
                let mask = Expr::ZextTo(mem_w, Box::new(Expr::Const(Bits::ones(width))));
                let cleared = Expr::binary(
                    BinaryOp::And,
                    Expr::port("MEM"),
                    Expr::unary(UnaryOp::Not, Expr::binary(BinaryOp::ShlV, mask, amt(waddr))),
                );
                let placed = Expr::binary(
                    BinaryOp::ShlV,
                    Expr::ZextTo(mem_w, Box::new(Expr::port(wdata))),
                    amt(waddr),
                );
                b.op(
                    Op::Write,
                    Some("WEN"),
                    vec![Effect::new(
                        "MEM",
                        Expr::binary(BinaryOp::Or, cleared, placed),
                    )],
                );
            }
            let ops: OpSet = if rom {
                OpSet::only(Op::Read)
            } else {
                [Op::Read, Op::Write].into_iter().collect()
            };
            spec = ComponentSpec::new(kind, width)
                .with_width2(depth)
                .with_ops(ops);
        }
        StackFifo => {
            let depth = params
                .width(names::INPUT_WIDTH2)
                .ok_or_else(|| err("needs a depth"))?;
            if depth < 2 {
                return Err(err("stack/FIFO depth must be >= 2"));
            }
            if width * depth > 1 << 16 {
                return Err(err("stack/FIFO capacity capped at 64 Kbit"));
            }
            let style = params.style(names::STYLE).unwrap_or("STACK").to_string();
            let pw = select_width(depth) + 1; // counts 0..=depth and sums < 2*depth
            let mem_w = width * depth;
            b.inp("DIN", width, PortClass::Data);
            b.clocked();
            b.out("DOUT", width, PortClass::Data);
            b.out("EMPTY", 1, PortClass::Status);
            b.out("FULL", 1, PortClass::Status);
            b.reg_out("MEM", mem_w, PortClass::Data);
            let mulw = |e: Expr| Expr::binary(BinaryOp::MulFull, e, Expr::cuint(17, width as u64));
            let mask = Expr::ZextTo(mem_w, Box::new(Expr::Const(Bits::ones(width))));
            let place = |at: Expr| {
                let cleared = Expr::binary(
                    BinaryOp::And,
                    Expr::port("MEM"),
                    Expr::unary(
                        UnaryOp::Not,
                        Expr::binary(BinaryOp::ShlV, mask.clone(), mulw(at.clone())),
                    ),
                );
                let data = Expr::binary(
                    BinaryOp::ShlV,
                    Expr::ZextTo(mem_w, Box::new(Expr::port("DIN"))),
                    mulw(at),
                );
                Expr::binary(BinaryOp::Or, cleared, data)
            };
            match style.as_str() {
                "STACK" => {
                    b.reg_out("PTR", pw, PortClass::Data);
                    let top = Expr::binary(BinaryOp::Sub, Expr::port("PTR"), Expr::cuint(pw, 1));
                    b.op(
                        Op::Read,
                        None,
                        vec![
                            Effect::new(
                                "DOUT",
                                Expr::ZextTo(
                                    width,
                                    Box::new(Expr::binary(
                                        BinaryOp::ShrV,
                                        Expr::port("MEM"),
                                        mulw(top),
                                    )),
                                ),
                            ),
                            Effect::new("EMPTY", Expr::unary(UnaryOp::IsZero, Expr::port("PTR"))),
                            Effect::new(
                                "FULL",
                                Expr::cmp(
                                    CmpOp::Eq,
                                    Expr::port("PTR"),
                                    Expr::cuint(pw, depth as u64),
                                ),
                            ),
                        ],
                    );
                    b.inp("CPUSH", 1, PortClass::Control);
                    b.inp("CPOP", 1, PortClass::Control);
                    b.op(
                        Op::Push,
                        Some("CPUSH"),
                        vec![
                            Effect::new("MEM", place(Expr::port("PTR"))),
                            Effect::new("PTR", Expr::unary(UnaryOp::Inc, Expr::port("PTR"))),
                        ],
                    );
                    b.op(
                        Op::Pop,
                        Some("CPOP"),
                        vec![Effect::new(
                            "PTR",
                            Expr::unary(UnaryOp::Dec, Expr::port("PTR")),
                        )],
                    );
                }
                "FIFO" => {
                    b.reg_out("HEAD", pw, PortClass::Data);
                    b.reg_out("COUNT", pw, PortClass::Data);
                    let d = Expr::cuint(pw, depth as u64);
                    let tail = Expr::binary(
                        BinaryOp::RemOrA,
                        Expr::binary(BinaryOp::Add, Expr::port("HEAD"), Expr::port("COUNT")),
                        d.clone(),
                    );
                    b.op(
                        Op::Read,
                        None,
                        vec![
                            Effect::new(
                                "DOUT",
                                Expr::ZextTo(
                                    width,
                                    Box::new(Expr::binary(
                                        BinaryOp::ShrV,
                                        Expr::port("MEM"),
                                        mulw(Expr::port("HEAD")),
                                    )),
                                ),
                            ),
                            Effect::new("EMPTY", Expr::unary(UnaryOp::IsZero, Expr::port("COUNT"))),
                            Effect::new(
                                "FULL",
                                Expr::cmp(CmpOp::Eq, Expr::port("COUNT"), d.clone()),
                            ),
                        ],
                    );
                    b.inp("CPUSH", 1, PortClass::Control);
                    b.inp("CPOP", 1, PortClass::Control);
                    b.op(
                        Op::Push,
                        Some("CPUSH"),
                        vec![
                            Effect::new("MEM", place(tail)),
                            Effect::new("COUNT", Expr::unary(UnaryOp::Inc, Expr::port("COUNT"))),
                        ],
                    );
                    b.op(
                        Op::Pop,
                        Some("CPOP"),
                        vec![
                            Effect::new(
                                "HEAD",
                                Expr::binary(
                                    BinaryOp::RemOrA,
                                    Expr::unary(UnaryOp::Inc, Expr::port("HEAD")),
                                    d,
                                ),
                            ),
                            Effect::new("COUNT", Expr::unary(UnaryOp::Dec, Expr::port("COUNT"))),
                        ],
                    );
                }
                other => return Err(err(format!("unknown stack/FIFO style {other}"))),
            }
            spec = ComponentSpec::new(kind, width)
                .with_width2(depth)
                .with_ops([Op::Push, Op::Pop].into_iter().collect())
                .with_style(&style);
        }
        PortComp => {
            let style = params.style(names::STYLE).unwrap_or("IN").to_string();
            match style.as_str() {
                "IN" => {
                    b.inp("PAD", width, PortClass::Data);
                    b.out("O", width, PortClass::Data);
                    b.op(Op::Hold, None, vec![Effect::new("O", Expr::port("PAD"))]);
                }
                "OUT" => {
                    b.inp("I", width, PortClass::Data);
                    b.out("PAD", width, PortClass::Data);
                    b.op(Op::Hold, None, vec![Effect::new("PAD", Expr::port("I"))]);
                }
                other => return Err(err(format!("unknown port style {other}"))),
            }
            spec = ComponentSpec::new(kind, width).with_style(&style);
        }
        BufferComp | ClockDriver | SchmittTrigger | Delay => {
            b.inp("I", width, PortClass::Data);
            b.out("O", width, PortClass::Data);
            b.op(Op::Hold, None, vec![Effect::new("O", Expr::port("I"))]);
            spec = ComponentSpec::new(kind, width);
        }
        Tristate => {
            b.inp("I", width, PortClass::Data);
            b.inp("OE", 1, PortClass::Control);
            b.out("O", width, PortClass::Data);
            // High-Z is modelled as zero so a wired-OR of tristates works.
            let sel = Expr::Select {
                sel: Box::new(Expr::port("OE")),
                cases: vec![Expr::cuint(width, 0), Expr::port("I")],
                default: Box::new(Expr::cuint(width, 0)),
            };
            b.op(Op::Hold, None, vec![Effect::new("O", sel)]);
            spec = ComponentSpec::new(kind, width);
        }
        WiredOr | Bus => {
            let n = params.width(names::NUM_INPUTS).unwrap_or(2);
            if n < 2 {
                return Err(err("wired-or/bus needs at least 2 sources"));
            }
            for i in 0..n {
                b.inp(&format!("I{i}"), width, PortClass::Data);
            }
            b.out("O", width, PortClass::Data);
            let mut acc = Expr::port("I0");
            for i in 1..n {
                acc = Expr::binary(BinaryOp::Or, acc, Expr::port(&format!("I{i}")));
            }
            b.op(Op::Or, None, vec![Effect::new("O", acc)]);
            spec = ComponentSpec::new(kind, width).with_inputs(n);
        }
        Concat => {
            let n = params
                .width(names::NUM_INPUTS)
                .ok_or_else(|| err("concat needs a part count"))?;
            if n < 2 {
                return Err(err("concat needs at least 2 parts"));
            }
            let mut parts = Vec::with_capacity(n);
            for i in 0..n {
                b.inp(&format!("I{i}"), width, PortClass::Data);
                parts.push(Expr::port(&format!("I{i}")));
            }
            b.out("O", width * n, PortClass::Data);
            b.op(Op::Hold, None, vec![Effect::new("O", Expr::Concat(parts))]);
            spec = ComponentSpec::new(kind, width).with_inputs(n);
        }
        Extract => {
            let len = params
                .width(names::INPUT_WIDTH2)
                .ok_or_else(|| err("extract needs a field width"))?;
            let offset = match params.get(names::OFFSET) {
                Some(ParamValue::Int(v)) if *v >= 0 => *v as usize,
                Some(_) => return Err(err("negative extract offset")),
                None => 0,
            };
            if len == 0 || offset + len > width {
                return Err(err(format!(
                    "extract field [{offset}, {offset}+{len}) exceeds input width {width}"
                )));
            }
            b.inp("I", width, PortClass::Data);
            b.out("O", len, PortClass::Data);
            b.op(
                Op::Hold,
                None,
                vec![Effect::new("O", Expr::slice(Expr::port("I"), offset, len))],
            );
            // The offset participates in functionality, so it must be part
            // of the spec; the otherwise-unused fan-in field carries it.
            spec = ComponentSpec::new(kind, width)
                .with_width2(len)
                .with_inputs(offset);
        }
        ClockGenerator => {
            b.out("CLK", 1, PortClass::Clock);
            spec = ComponentSpec::new(kind, 1);
        }
    }
    Ok(b.finish(gen_name, spec, params.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Env;

    fn p() -> Params {
        Params::new()
    }

    fn build(kind: ComponentKind, params: Params) -> Component {
        let resolved = params.resolve(&schema_for(kind)).unwrap();
        build_component(kind, &kind.name(), &resolved).unwrap()
    }

    fn env(pairs: &[(&str, Bits)]) -> Env {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn clog2_values() {
        assert_eq!(clog2(1), 0);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(3), 2);
        assert_eq!(clog2(4), 2);
        assert_eq!(clog2(5), 3);
        assert_eq!(clog2(16), 4);
        assert_eq!(clog2(17), 5);
        assert_eq!(select_width(1), 1);
        assert_eq!(select_width(16), 4);
    }

    #[test]
    fn nand_gate_folds_and_inverts() {
        let c = build(
            ComponentKind::Gate(GateOp::Nand),
            p().with(names::INPUT_WIDTH, ParamValue::Width(4))
                .with(names::NUM_INPUTS, ParamValue::Width(3)),
        );
        let out = c
            .eval(&env(&[
                ("I0", Bits::from_u64(4, 0b1111)),
                ("I1", Bits::from_u64(4, 0b1010)),
                ("I2", Bits::from_u64(4, 0b0110)),
            ]))
            .unwrap();
        assert_eq!(out["O"].to_u64(), Some(0b1101));
        assert_eq!(c.spec().inputs, 3);
    }

    #[test]
    fn not_gate_is_single_input() {
        let c = build(
            ComponentKind::Gate(GateOp::Not),
            p().with(names::INPUT_WIDTH, ParamValue::Width(8)),
        );
        assert_eq!(c.inputs().count(), 1);
        let out = c.eval(&env(&[("I0", Bits::from_u64(8, 0x0f))])).unwrap();
        assert_eq!(out["O"].to_u64(), Some(0xf0));
    }

    #[test]
    fn mux_selects_by_index() {
        let c = build(
            ComponentKind::Mux,
            p().with(names::INPUT_WIDTH, ParamValue::Width(8))
                .with(names::NUM_INPUTS, ParamValue::Width(4)),
        );
        assert_eq!(c.port("S").unwrap().width, 2);
        let e = env(&[
            ("I0", Bits::from_u64(8, 10)),
            ("I1", Bits::from_u64(8, 20)),
            ("I2", Bits::from_u64(8, 30)),
            ("I3", Bits::from_u64(8, 40)),
            ("S", Bits::from_u64(2, 2)),
        ]);
        assert_eq!(c.eval(&e).unwrap()["O"].to_u64(), Some(30));
    }

    #[test]
    fn selector_is_one_hot() {
        let c = build(
            ComponentKind::Selector,
            p().with(names::INPUT_WIDTH, ParamValue::Width(4))
                .with(names::NUM_INPUTS, ParamValue::Width(3)),
        );
        let e = env(&[
            ("I0", Bits::from_u64(4, 1)),
            ("I1", Bits::from_u64(4, 2)),
            ("I2", Bits::from_u64(4, 4)),
            ("SEL", Bits::from_u64(3, 0b010)),
        ]);
        assert_eq!(c.eval(&e).unwrap()["O"].to_u64(), Some(2));
    }

    #[test]
    fn binary_decoder_one_hot_output() {
        let c = build(
            ComponentKind::Decoder,
            p().with(names::INPUT_WIDTH, ParamValue::Width(3)),
        );
        assert_eq!(c.spec().width2, 8);
        let out = c.eval(&env(&[("A", Bits::from_u64(3, 5))])).unwrap();
        assert_eq!(out["O"].to_u64(), Some(1 << 5));
    }

    #[test]
    fn bcd_decoder_blanks_out_of_range() {
        let c = build(
            ComponentKind::Decoder,
            p().with(names::INPUT_WIDTH, ParamValue::Width(4))
                .with(names::STYLE, ParamValue::Style("BCD".into())),
        );
        assert_eq!(c.spec().width2, 10);
        let out = c.eval(&env(&[("A", Bits::from_u64(4, 9))])).unwrap();
        assert_eq!(out["O"].to_u64(), Some(1 << 9));
        let out = c.eval(&env(&[("A", Bits::from_u64(4, 12))])).unwrap();
        assert_eq!(out["O"].to_u64(), Some(0));
    }

    #[test]
    fn priority_encoder_reports_highest_line() {
        let c = build(
            ComponentKind::Encoder,
            p().with(names::NUM_INPUTS, ParamValue::Width(8)),
        );
        let out = c
            .eval(&env(&[("I", Bits::from_u64(8, 0b0010_0110))]))
            .unwrap();
        assert_eq!(out["O"].to_u64(), Some(5));
        assert_eq!(out["V"].to_u64(), Some(1));
        let none = c.eval(&env(&[("I", Bits::zero(8))])).unwrap();
        assert_eq!(none["O"].to_u64(), Some(0));
        assert_eq!(none["V"].to_u64(), Some(0));
    }

    #[test]
    fn addsub_subtracts_with_borrow_convention() {
        let ops: OpSet = [Op::Add, Op::Sub].into_iter().collect();
        let c = build(
            ComponentKind::AddSub,
            p().with(names::INPUT_WIDTH, ParamValue::Width(8))
                .with(names::FUNCTION_LIST, ParamValue::Ops(ops)),
        );
        // S=1 selects SUB (canonical order ADD=0, SUB=1); CI=1 means "no
        // borrow in".
        let e = env(&[
            ("A", Bits::from_u64(8, 40)),
            ("B", Bits::from_u64(8, 15)),
            ("CI", Bits::from_u64(1, 1)),
            ("S", Bits::from_u64(1, 1)),
        ]);
        let out = c.eval(&e).unwrap();
        assert_eq!(out["O"].to_u64(), Some(25));
        assert_eq!(out["CO"].to_u64(), Some(1)); // no borrow
    }

    #[test]
    fn adder_group_pg_outputs() {
        let c = build(
            ComponentKind::AddSub,
            p().with(names::INPUT_WIDTH, ParamValue::Width(4))
                .with(names::GROUP_PG, ParamValue::Flag(true)),
        );
        assert!(c.spec().group_pg);
        // A=0101, B=1010: all bits propagate, nothing generates.
        let e = env(&[
            ("A", Bits::from_u64(4, 0b0101)),
            ("B", Bits::from_u64(4, 0b1010)),
            ("CI", Bits::from_u64(1, 1)),
        ]);
        let out = c.eval(&e).unwrap();
        assert_eq!(out["P"].to_u64(), Some(1));
        assert_eq!(out["G"].to_u64(), Some(0));
        assert_eq!(out["CO"].to_u64(), Some(1)); // propagated carry-in
                                                 // A=1100, B=0100: bit 2 generates.
        let e2 = env(&[
            ("A", Bits::from_u64(4, 0b1100)),
            ("B", Bits::from_u64(4, 0b0100)),
            ("CI", Bits::from_u64(1, 0)),
        ]);
        let out2 = c.eval(&e2).unwrap();
        assert_eq!(out2["P"].to_u64(), Some(0));
        assert_eq!(out2["G"].to_u64(), Some(1));
    }

    #[test]
    fn comparator_flags() {
        let c = build(
            ComponentKind::Comparator,
            p().with(names::INPUT_WIDTH, ParamValue::Width(8)),
        );
        let out = c
            .eval(&env(&[
                ("A", Bits::from_u64(8, 9)),
                ("B", Bits::from_u64(8, 17)),
            ]))
            .unwrap();
        assert_eq!(out["EQ"].to_u64(), Some(0));
        assert_eq!(out["LT"].to_u64(), Some(1));
        assert_eq!(out["GT"].to_u64(), Some(0));
    }

    #[test]
    fn alu16_matches_reference_semantics() {
        let c = build(
            ComponentKind::Alu,
            p().with(names::INPUT_WIDTH, ParamValue::Width(8))
                .with(names::FUNCTION_LIST, ParamValue::Ops(Op::paper_alu16())),
        );
        assert_eq!(c.port("S").unwrap().width, 4);
        let a = 0xa5u64;
        let bv = 0x3cu64;
        let run = |sel: u64| {
            let e = env(&[
                ("A", Bits::from_u64(8, a)),
                ("B", Bits::from_u64(8, bv)),
                ("CI", Bits::from_u64(1, 0)),
                ("S", Bits::from_u64(4, sel)),
            ]);
            c.eval(&e).unwrap()["O"].to_u64().unwrap()
        };
        assert_eq!(run(0), (a + bv) & 0xff); // ADD, CI=0
        assert_eq!(run(1), (a + (!bv & 0xff)) & 0xff); // SUB with CI=0: a-b-1
        assert_eq!(run(2), (a + 1) & 0xff); // INC
        assert_eq!(run(3), (a - 1) & 0xff); // DEC
        assert_eq!(run(4), 0); // EQ
        assert_eq!(run(5), 0); // LT (a5 > 3c)
        assert_eq!(run(6), 1); // GT
        assert_eq!(run(7), 0); // ZEROP
        assert_eq!(run(8), a & bv);
        assert_eq!(run(9), a | bv);
        assert_eq!(run(10), !(a & bv) & 0xff);
        assert_eq!(run(11), !(a | bv) & 0xff);
        assert_eq!(run(12), a ^ bv);
        assert_eq!(run(13), !(a ^ bv) & 0xff);
        assert_eq!(run(14), !a & 0xff);
        assert_eq!(run(15), (!a | bv) & 0xff);
    }

    #[test]
    fn barrel_shifter_uses_amount_port() {
        let c = build(
            ComponentKind::BarrelShifter,
            p().with(names::INPUT_WIDTH, ParamValue::Width(16)),
        );
        assert_eq!(c.port("SH").unwrap().width, 4);
        let e = env(&[
            ("A", Bits::from_u64(16, 0x0001)),
            ("SH", Bits::from_u64(4, 9)),
        ]);
        assert_eq!(c.eval(&e).unwrap()["O"].to_u64(), Some(0x0200));
    }

    #[test]
    fn multiplier_full_width() {
        let c = build(
            ComponentKind::Multiplier,
            p().with(names::INPUT_WIDTH, ParamValue::Width(8))
                .with(names::INPUT_WIDTH2, ParamValue::Width(4)),
        );
        assert_eq!(c.port("O").unwrap().width, 12);
        let e = env(&[("A", Bits::from_u64(8, 200)), ("B", Bits::from_u64(4, 11))]);
        assert_eq!(c.eval(&e).unwrap()["O"].to_u64(), Some(2200));
    }

    #[test]
    fn cla_generator_carries() {
        let c = build(ComponentKind::CarryLookahead, p());
        // P = 1111, G = 0001, CI = 0: carry ripples from g0 through all.
        let e = env(&[
            ("P", Bits::from_u64(4, 0b1111)),
            ("G", Bits::from_u64(4, 0b0001)),
            ("CI", Bits::from_u64(1, 0)),
        ]);
        let out = c.eval(&e).unwrap();
        assert_eq!(out["C"].to_u64(), Some(0b1111));
        assert_eq!(out["GP"].to_u64(), Some(1));
        assert_eq!(out["GG"].to_u64(), Some(1));
        // No generates, no carry-in: no carries.
        let e0 = env(&[
            ("P", Bits::from_u64(4, 0b1111)),
            ("G", Bits::zero(4)),
            ("CI", Bits::from_u64(1, 0)),
        ]);
        let out0 = c.eval(&e0).unwrap();
        assert_eq!(out0["C"].to_u64(), Some(0));
        assert_eq!(out0["GG"].to_u64(), Some(0));
    }

    #[test]
    fn register_loads_and_respects_enable() {
        let c = build(
            ComponentKind::Register,
            p().with(names::INPUT_WIDTH, ParamValue::Width(8))
                .with(names::ENABLE_FLAG, ParamValue::Flag(true)),
        );
        let mut e = env(&[
            ("D", Bits::from_u64(8, 0x5a)),
            ("Q", Bits::from_u64(8, 0x11)),
            ("EN", Bits::from_u64(1, 1)),
        ]);
        assert_eq!(c.eval(&e).unwrap()["Q"].to_u64(), Some(0x5a));
        e.insert("EN".into(), Bits::zero(1));
        assert_eq!(c.eval(&e).unwrap()["Q"].to_u64(), Some(0x11)); // hold
    }

    #[test]
    fn register_async_reset_beats_enable() {
        let c = build(
            ComponentKind::Register,
            p().with(names::INPUT_WIDTH, ParamValue::Width(8))
                .with(names::ENABLE_FLAG, ParamValue::Flag(true))
                .with(names::ASYNC_SET_RESET, ParamValue::Flag(true)),
        );
        let e = env(&[
            ("D", Bits::from_u64(8, 0x5a)),
            ("Q", Bits::from_u64(8, 0x11)),
            ("EN", Bits::zero(1)),
            ("ARST", Bits::from_u64(1, 1)),
            ("ASET", Bits::zero(1)),
        ]);
        assert_eq!(c.eval(&e).unwrap()["Q"].to_u64(), Some(0));
    }

    #[test]
    fn counter_counts_loads_and_holds() {
        let c = build(
            ComponentKind::Counter,
            p().with(names::INPUT_WIDTH, ParamValue::Width(4)),
        );
        let base = |cen: u64, cload: u64, cup: u64, cdown: u64, q: u64| {
            env(&[
                ("I0", Bits::from_u64(4, 9)),
                ("O0", Bits::from_u64(4, q)),
                ("CEN", Bits::from_u64(1, cen)),
                ("ARESET", Bits::zero(1)),
                ("ASET", Bits::zero(1)),
                ("CLOAD", Bits::from_u64(1, cload)),
                ("CUP", Bits::from_u64(1, cup)),
                ("CDOWN", Bits::from_u64(1, cdown)),
            ])
        };
        assert_eq!(
            c.eval(&base(1, 0, 1, 0, 7)).unwrap()["O0"].to_u64(),
            Some(8)
        );
        assert_eq!(
            c.eval(&base(1, 0, 0, 1, 7)).unwrap()["O0"].to_u64(),
            Some(6)
        );
        assert_eq!(
            c.eval(&base(1, 1, 1, 1, 7)).unwrap()["O0"].to_u64(),
            Some(9)
        ); // load priority
        assert_eq!(
            c.eval(&base(0, 1, 1, 1, 7)).unwrap()["O0"].to_u64(),
            Some(7)
        ); // disabled
        assert_eq!(
            c.eval(&base(1, 0, 1, 0, 15)).unwrap()["O0"].to_u64(),
            Some(0)
        ); // wrap
    }

    #[test]
    fn register_file_reads_old_value_during_write() {
        let c = build(
            ComponentKind::RegisterFile,
            p().with(names::INPUT_WIDTH, ParamValue::Width(8))
                .with(names::INPUT_WIDTH2, ParamValue::Width(4)),
        );
        // MEM holds word 2 = 0x77; write 0x99 to word 2 while reading it.
        let mem = Bits::from_u64(32, 0x0077_0000);
        let e = env(&[
            ("RA", Bits::from_u64(2, 2)),
            ("WA", Bits::from_u64(2, 2)),
            ("WD", Bits::from_u64(8, 0x99)),
            ("WEN", Bits::from_u64(1, 1)),
            ("MEM", mem),
        ]);
        let out = c.eval(&e).unwrap();
        assert_eq!(out["RD"].to_u64(), Some(0x77)); // read-before-write
        assert_eq!(out["MEM"].to_u64(), Some(0x0099_0000));
    }

    #[test]
    fn stack_pushes_and_pops() {
        let c = build(
            ComponentKind::StackFifo,
            p().with(names::INPUT_WIDTH, ParamValue::Width(8))
                .with(names::INPUT_WIDTH2, ParamValue::Width(4)),
        );
        let e = env(&[
            ("DIN", Bits::from_u64(8, 0xab)),
            ("MEM", Bits::zero(32)),
            ("PTR", Bits::from_u64(3, 0)),
            ("CPUSH", Bits::from_u64(1, 1)),
            ("CPOP", Bits::zero(1)),
        ]);
        let out = c.eval(&e).unwrap();
        assert_eq!(out["PTR"].to_u64(), Some(1));
        assert_eq!(out["MEM"].to_u64(), Some(0xab));
        assert_eq!(out["EMPTY"].to_u64(), Some(1)); // flags reflect pre-state
    }

    #[test]
    fn fifo_wraps_head() {
        let c = build(
            ComponentKind::StackFifo,
            p().with(names::INPUT_WIDTH, ParamValue::Width(4))
                .with(names::INPUT_WIDTH2, ParamValue::Width(3))
                .with(names::STYLE, ParamValue::Style("FIFO".into())),
        );
        let e = env(&[
            ("DIN", Bits::from_u64(4, 5)),
            ("MEM", Bits::from_u64(12, 0x0a0)), // word1 = 0xa
            ("HEAD", Bits::from_u64(3, 2)),
            ("COUNT", Bits::from_u64(3, 1)),
            ("CPUSH", Bits::zero(1)),
            ("CPOP", Bits::from_u64(1, 1)),
        ]);
        let out = c.eval(&e).unwrap();
        assert_eq!(out["HEAD"].to_u64(), Some(0)); // (2+1) mod 3
        assert_eq!(out["COUNT"].to_u64(), Some(0));
    }

    #[test]
    fn tristate_drives_zero_when_disabled() {
        let c = build(
            ComponentKind::Tristate,
            p().with(names::INPUT_WIDTH, ParamValue::Width(8)),
        );
        let e = env(&[("I", Bits::from_u64(8, 0xff)), ("OE", Bits::zero(1))]);
        assert_eq!(c.eval(&e).unwrap()["O"].to_u64(), Some(0));
    }

    #[test]
    fn concat_and_extract_are_inverse() {
        let cc = build(
            ComponentKind::Concat,
            p().with(names::INPUT_WIDTH, ParamValue::Width(4))
                .with(names::NUM_INPUTS, ParamValue::Width(2)),
        );
        let e = env(&[
            ("I0", Bits::from_u64(4, 0x3)),
            ("I1", Bits::from_u64(4, 0xe)),
        ]);
        let glued = cc.eval(&e).unwrap()["O"].clone();
        assert_eq!(glued.to_u64(), Some(0xe3));
        let ex = build(
            ComponentKind::Extract,
            p().with(names::INPUT_WIDTH, ParamValue::Width(8))
                .with(names::INPUT_WIDTH2, ParamValue::Width(4))
                .with(names::OFFSET, ParamValue::Int(4)),
        );
        let out = ex.eval(&env(&[("I", glued)])).unwrap();
        assert_eq!(out["O"].to_u64(), Some(0xe));
    }

    #[test]
    fn invalid_combinations_rejected() {
        let r = Params::new()
            .with(names::INPUT_WIDTH, ParamValue::Width(8))
            .with(names::FUNCTION_LIST, ParamValue::Ops(OpSet::only(Op::Add)))
            .resolve(&schema_for(ComponentKind::LogicUnit))
            .unwrap();
        assert!(build_component(ComponentKind::LogicUnit, "LU", &r).is_err());

        let r = Params::new()
            .with(names::INPUT_WIDTH, ParamValue::Width(13))
            .resolve(&schema_for(ComponentKind::Decoder))
            .unwrap();
        assert!(build_component(ComponentKind::Decoder, "DECODER", &r).is_err());

        let r = Params::new()
            .with(names::INPUT_WIDTH, ParamValue::Width(8))
            .with(names::NUM_INPUTS, ParamValue::Width(1))
            .resolve(&schema_for(ComponentKind::Mux))
            .unwrap();
        assert!(build_component(ComponentKind::Mux, "MUX", &r).is_err());
    }

    #[test]
    fn component_for_spec_roundtrips() {
        // Build components, then rebuild them from their specs and check
        // the specs (and hence ports/behavior) agree.
        let cases: Vec<Component> = vec![
            build(
                ComponentKind::Alu,
                p().with(names::INPUT_WIDTH, ParamValue::Width(8))
                    .with(names::FUNCTION_LIST, ParamValue::Ops(Op::paper_alu16())),
            ),
            build(
                ComponentKind::AddSub,
                p().with(names::INPUT_WIDTH, ParamValue::Width(4))
                    .with(names::GROUP_PG, ParamValue::Flag(true)),
            ),
            build(
                ComponentKind::Mux,
                p().with(names::INPUT_WIDTH, ParamValue::Width(8))
                    .with(names::NUM_INPUTS, ParamValue::Width(5)),
            ),
            build(ComponentKind::CarryLookahead, p()),
            build(
                ComponentKind::Counter,
                p().with(names::INPUT_WIDTH, ParamValue::Width(3)),
            ),
            build(
                ComponentKind::Decoder,
                p().with(names::INPUT_WIDTH, ParamValue::Width(4))
                    .with(names::STYLE, ParamValue::Style("BCD".into())),
            ),
            build(
                ComponentKind::Extract,
                p().with(names::INPUT_WIDTH, ParamValue::Width(8))
                    .with(names::INPUT_WIDTH2, ParamValue::Width(3))
                    .with(names::OFFSET, ParamValue::Int(2)),
            ),
        ];
        for c in cases {
            let re = component_for_spec(c.spec()).unwrap();
            assert_eq!(re.spec(), c.spec(), "spec drift for {}", c.name());
            assert_eq!(re.ports(), c.ports(), "port drift for {}", c.name());
        }
    }

    #[test]
    fn every_kind_builds_with_minimal_params() {
        for kind in ComponentKind::all() {
            let mut params = Params::new().with(names::INPUT_WIDTH, ParamValue::Width(4));
            match kind {
                ComponentKind::LogicUnit => {
                    params.set(
                        names::FUNCTION_LIST,
                        ParamValue::Ops([Op::And, Op::Or].into_iter().collect()),
                    );
                }
                ComponentKind::Alu => {
                    params.set(names::FUNCTION_LIST, ParamValue::Ops(Op::paper_alu16()));
                }
                ComponentKind::Encoder => {
                    params = Params::new().with(names::NUM_INPUTS, ParamValue::Width(4));
                }
                ComponentKind::CarryLookahead | ComponentKind::ClockGenerator => {
                    params = Params::new();
                }
                ComponentKind::RegisterFile | ComponentKind::Memory | ComponentKind::StackFifo => {
                    params.set(names::INPUT_WIDTH2, ParamValue::Width(4));
                }
                ComponentKind::Concat => {
                    params.set(names::NUM_INPUTS, ParamValue::Width(2));
                }
                ComponentKind::Extract => {
                    params.set(names::INPUT_WIDTH2, ParamValue::Width(2));
                }
                _ => {}
            }
            let resolved = params.resolve(&schema_for(kind)).unwrap();
            let c = build_component(kind, &kind.name(), &resolved)
                .unwrap_or_else(|e| panic!("{kind} failed to build: {e}"));
            assert!(!c.ports().is_empty(), "{kind} has no ports");
        }
    }
}
