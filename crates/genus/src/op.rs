//! Operations performed by generic components.
//!
//! Every GENUS component advertises the operations it can perform (the
//! LEGEND `OPERATIONS` section, Figure 2 of the paper). The 16-function ALU
//! of the paper's Figure 3 performs exactly [`Op::paper_alu16`].

use std::fmt;

/// A component operation.
///
/// The first sixteen variants are the paper's ALU function list
/// (`ADD SUB INC DEC EQ LT GT ZEROP AND OR NAND NOR XOR XNOR LNOT LIMPL`);
/// the remainder cover the other GENUS families (shifters, counters,
/// registers, stacks and memories).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Op {
    /// Two's-complement addition.
    Add = 0,
    /// Two's-complement subtraction.
    Sub,
    /// Increment by one.
    Inc,
    /// Decrement by one.
    Dec,
    /// Equality comparison.
    Eq,
    /// Unsigned less-than comparison.
    Lt,
    /// Unsigned greater-than comparison.
    Gt,
    /// Zero-detect of the first operand.
    Zerop,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise NAND.
    Nand,
    /// Bitwise NOR.
    Nor,
    /// Bitwise XOR.
    Xor,
    /// Bitwise XNOR.
    Xnor,
    /// Bitwise NOT of the first operand (logical not, `LNOT`).
    Lnot,
    /// Bitwise implication `!a | b` (`LIMPL`).
    Limpl,
    /// Parallel load (registers, counters).
    Load,
    /// Count up by one (counters).
    CountUp,
    /// Count down by one (counters).
    CountDown,
    /// Logical shift left by one.
    Shl,
    /// Logical shift right by one.
    Shr,
    /// Arithmetic shift right by one.
    Asr,
    /// Rotate left by one.
    Rotl,
    /// Rotate right by one.
    Rotr,
    /// Unsigned multiplication.
    Mul,
    /// Unsigned division.
    Div,
    /// Inequality comparison.
    Neq,
    /// Unsigned greater-or-equal.
    Ge,
    /// Unsigned less-or-equal.
    Le,
    /// Push (stacks/FIFOs).
    Push,
    /// Pop (stacks/FIFOs).
    Pop,
    /// Memory/register-file read.
    Read,
    /// Memory/register-file write.
    Write,
    /// Hold current state (explicit no-op).
    Hold,
    /// Asynchronous set to the preset value.
    AsyncSet,
    /// Asynchronous reset to zero.
    AsyncReset,
}

/// Total number of [`Op`] variants (used by the bitset).
const OP_COUNT: usize = 36;

/// All operations, in declaration order.
pub const ALL_OPS: [Op; OP_COUNT] = [
    Op::Add,
    Op::Sub,
    Op::Inc,
    Op::Dec,
    Op::Eq,
    Op::Lt,
    Op::Gt,
    Op::Zerop,
    Op::And,
    Op::Or,
    Op::Nand,
    Op::Nor,
    Op::Xor,
    Op::Xnor,
    Op::Lnot,
    Op::Limpl,
    Op::Load,
    Op::CountUp,
    Op::CountDown,
    Op::Shl,
    Op::Shr,
    Op::Asr,
    Op::Rotl,
    Op::Rotr,
    Op::Mul,
    Op::Div,
    Op::Neq,
    Op::Ge,
    Op::Le,
    Op::Push,
    Op::Pop,
    Op::Read,
    Op::Write,
    Op::Hold,
    Op::AsyncSet,
    Op::AsyncReset,
];

/// Broad classification of operations, used by DTAS rules that split an ALU
/// into an arithmetic unit, a comparator and a logic unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Add/subtract-like operations that propagate a carry.
    Arithmetic,
    /// Result is a predicate of the operands.
    Comparison,
    /// Bitwise operations with no carry chain.
    Logic,
    /// Shift and rotate operations.
    Shift,
    /// Multiply/divide.
    MulDiv,
    /// State-changing operations of sequential components.
    Sequential,
}

impl Op {
    /// The paper's 16-function ALU operation list (Figure 3).
    pub fn paper_alu16() -> OpSet {
        OpSet::from_iter([
            Op::Add,
            Op::Sub,
            Op::Inc,
            Op::Dec,
            Op::Eq,
            Op::Lt,
            Op::Gt,
            Op::Zerop,
            Op::And,
            Op::Or,
            Op::Nand,
            Op::Nor,
            Op::Xor,
            Op::Xnor,
            Op::Lnot,
            Op::Limpl,
        ])
    }

    /// The operation's broad class.
    pub fn class(self) -> OpClass {
        use Op::*;
        match self {
            Add | Sub | Inc | Dec => OpClass::Arithmetic,
            Eq | Lt | Gt | Zerop | Neq | Ge | Le => OpClass::Comparison,
            And | Or | Nand | Nor | Xor | Xnor | Lnot | Limpl => OpClass::Logic,
            Shl | Shr | Asr | Rotl | Rotr => OpClass::Shift,
            Mul | Div => OpClass::MulDiv,
            Load | CountUp | CountDown | Push | Pop | Read | Write | Hold | AsyncSet
            | AsyncReset => OpClass::Sequential,
        }
    }

    /// True when the operation needs only one data operand.
    pub fn is_unary(self) -> bool {
        use Op::*;
        matches!(
            self,
            Inc | Dec
                | Zerop
                | Lnot
                | Shl
                | Shr
                | Asr
                | Rotl
                | Rotr
                | Load
                | CountUp
                | CountDown
                | Hold
        )
    }

    /// The canonical GENUS/LEGEND name (upper-case, e.g. `COUNT_UP`).
    pub fn name(self) -> &'static str {
        use Op::*;
        match self {
            Add => "ADD",
            Sub => "SUB",
            Inc => "INC",
            Dec => "DEC",
            Eq => "EQ",
            Lt => "LT",
            Gt => "GT",
            Zerop => "ZEROP",
            And => "AND",
            Or => "OR",
            Nand => "NAND",
            Nor => "NOR",
            Xor => "XOR",
            Xnor => "XNOR",
            Lnot => "LNOT",
            Limpl => "LIMPL",
            Load => "LOAD",
            CountUp => "COUNT_UP",
            CountDown => "COUNT_DOWN",
            Shl => "SHL",
            Shr => "SHR",
            Asr => "ASR",
            Rotl => "ROTL",
            Rotr => "ROTR",
            Mul => "MUL",
            Div => "DIV",
            Neq => "NEQ",
            Ge => "GE",
            Le => "LE",
            Push => "PUSH",
            Pop => "POP",
            Read => "READ",
            Write => "WRITE",
            Hold => "HOLD",
            AsyncSet => "ASYNC_SET",
            AsyncReset => "ASYNC_RESET",
        }
    }

    /// Parses a canonical operation name.
    ///
    /// # Errors
    ///
    /// Returns the offending name on failure.
    pub fn parse(name: &str) -> Result<Op, String> {
        ALL_OPS
            .into_iter()
            .find(|op| op.name() == name)
            .ok_or_else(|| format!("unknown operation {name:?}"))
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of operations, stored as a bitset.
///
/// Iteration order is declaration order of [`Op`], which keeps every
/// derived artifact (spec strings, decompositions) deterministic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct OpSet(u64);

impl OpSet {
    /// The empty set.
    pub fn new() -> Self {
        OpSet(0)
    }

    /// Singleton set.
    pub fn only(op: Op) -> Self {
        let mut s = OpSet::new();
        s.insert(op);
        s
    }

    /// Inserts an operation; returns true if newly added.
    pub fn insert(&mut self, op: Op) -> bool {
        let bit = 1u64 << (op as u8);
        let added = self.0 & bit == 0;
        self.0 |= bit;
        added
    }

    /// Removes an operation; returns true if it was present.
    pub fn remove(&mut self, op: Op) -> bool {
        let bit = 1u64 << (op as u8);
        let had = self.0 & bit != 0;
        self.0 &= !bit;
        had
    }

    /// Membership test.
    pub fn contains(self, op: Op) -> bool {
        self.0 & (1u64 << (op as u8)) != 0
    }

    /// Number of operations in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no operation is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True when every element of `other` is in `self`.
    pub fn is_superset(self, other: OpSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Set union.
    pub fn union(self, other: OpSet) -> OpSet {
        OpSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: OpSet) -> OpSet {
        OpSet(self.0 & other.0)
    }

    /// Elements of `self` not in `other`.
    pub fn difference(self, other: OpSet) -> OpSet {
        OpSet(self.0 & !other.0)
    }

    /// Iterates operations in declaration order.
    pub fn iter(self) -> impl Iterator<Item = Op> {
        ALL_OPS.into_iter().filter(move |&op| self.contains(op))
    }

    /// The subset whose class matches `class`.
    pub fn of_class(self, class: OpClass) -> OpSet {
        self.iter().filter(|op| op.class() == class).collect()
    }

    /// Distinct classes present in the set, in a fixed order.
    pub fn classes(self) -> Vec<OpClass> {
        let mut out = Vec::new();
        for class in [
            OpClass::Arithmetic,
            OpClass::Comparison,
            OpClass::Logic,
            OpClass::Shift,
            OpClass::MulDiv,
            OpClass::Sequential,
        ] {
            if self.iter().any(|op| op.class() == class) {
                out.push(class);
            }
        }
        out
    }
}

impl FromIterator<Op> for OpSet {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        let mut s = OpSet::new();
        for op in iter {
            s.insert(op);
        }
        s
    }
}

impl fmt::Display for OpSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for op in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{op}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for OpSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OpSet({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_alu16_is_the_figure3_function_list() {
        let ops = Op::paper_alu16();
        assert_eq!(ops.len(), 16);
        assert_eq!(
            ops.to_string(),
            "ADD SUB INC DEC EQ LT GT ZEROP AND OR NAND NOR XOR XNOR LNOT LIMPL"
        );
    }

    #[test]
    fn opset_basic_algebra() {
        let mut s = OpSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Op::Add));
        assert!(!s.insert(Op::Add));
        assert!(s.contains(Op::Add));
        assert_eq!(s.len(), 1);
        s.insert(Op::Xor);
        let t = OpSet::only(Op::Xor);
        assert!(s.is_superset(t));
        assert!(!t.is_superset(s));
        assert_eq!(s.intersection(t), t);
        assert_eq!(s.difference(t), OpSet::only(Op::Add));
        assert_eq!(t.union(OpSet::only(Op::Add)), s);
        assert!(s.remove(Op::Add));
        assert!(!s.remove(Op::Add));
    }

    #[test]
    fn classes_split_the_alu16() {
        let ops = Op::paper_alu16();
        let arith = ops.of_class(OpClass::Arithmetic);
        let cmp = ops.of_class(OpClass::Comparison);
        let logic = ops.of_class(OpClass::Logic);
        assert_eq!(arith.len(), 4);
        assert_eq!(cmp.len(), 4);
        assert_eq!(logic.len(), 8);
        assert_eq!(arith.union(cmp).union(logic), ops);
        assert_eq!(
            ops.classes(),
            vec![OpClass::Arithmetic, OpClass::Comparison, OpClass::Logic]
        );
    }

    #[test]
    fn names_roundtrip() {
        for op in ALL_OPS {
            assert_eq!(Op::parse(op.name()).unwrap(), op);
        }
        assert!(Op::parse("FROB").is_err());
    }

    #[test]
    fn unary_flags() {
        assert!(Op::Inc.is_unary());
        assert!(Op::Lnot.is_unary());
        assert!(!Op::Add.is_unary());
        assert!(!Op::Limpl.is_unary());
    }

    #[test]
    fn iteration_is_declaration_ordered() {
        let s: OpSet = [Op::Xor, Op::Add, Op::Load].into_iter().collect();
        let v: Vec<Op> = s.iter().collect();
        assert_eq!(v, vec![Op::Add, Op::Xor, Op::Load]);
    }
}
