//! Port-interned, precompiled behavioral models.
//!
//! [`Component::eval`](crate::component::Component::eval) interprets
//! effect expressions over a string-keyed [`Env`] —
//! convenient for one-off evaluation, but a simulator calling it per cell
//! per cycle pays a `BTreeMap` build (and string hashing) on every call.
//! [`CompiledModel`] interns every port name to a dense `u32` id once,
//! compiles each effect expression against those ids, and evaluates over a
//! flat `&mut [Option<Bits>]` slot array instead.
//!
//! Semantics are bit-identical to
//! [`eval_filtered`](crate::component::Component::eval_filtered) —
//! including defaulting (held state or zero), enable/select/control pin
//! resolution order, control-line priority, async set/reset override and
//! error cases — pinned by the `compiled_matches_interpreted` tests.

use crate::behavior::{eval, BinaryOp, CmpOp, Effect, Env, EvalError, Expr, UnaryOp};
use crate::component::{Component, Operation, PortClass, PortDir};
use crate::op::Op;
use rtl_base::bits::Bits;
use std::collections::HashMap;

/// A port id in a [`CompiledModel`]: an index into its slot array.
pub type PortId = u32;

/// An effect expression compiled against interned port ids.
enum CExpr {
    Port(PortId),
    Const(Bits),
    Unary(UnaryOp, Box<CExpr>),
    Binary(BinaryOp, Box<CExpr>, Box<CExpr>),
    Cmp(CmpOp, Box<CExpr>, Box<CExpr>),
    AddWide {
        a: Box<CExpr>,
        b: Box<CExpr>,
        cin: Box<CExpr>,
    },
    Slice {
        expr: Box<CExpr>,
        lo: usize,
        len: usize,
    },
    Concat(Vec<CExpr>),
    ZextTo(usize, Box<CExpr>),
    SextTo(usize, Box<CExpr>),
    Select {
        sel: Box<CExpr>,
        cases: Vec<CExpr>,
        default: Box<CExpr>,
    },
    PriorityIndex {
        expr: Box<CExpr>,
        out_width: usize,
    },
}

/// One compiled operation: its firing condition ports and id-addressed
/// effects.
struct COperation {
    /// Control pin (interned) and whether it is asynchronous set/reset.
    control: Option<(PortId, bool)>,
    /// `(target, expr)` per effect, in declaration order.
    effects: Vec<(PortId, CExpr)>,
}

/// A [`Component`]'s behavioral model with every port name interned and
/// every effect expression precompiled. Build once per component (see
/// [`Component::compiled`]), evaluate per cycle via
/// [`eval_into`](Self::eval_into).
pub struct CompiledModel {
    /// Slot id → name (component ports first, then any extra names
    /// referenced by effect expressions; those extra slots are never bound
    /// and reproduce the interpreter's unbound-port errors).
    names: Vec<String>,
    ids: HashMap<String, PortId>,
    /// Output ports as `(id, width)`.
    outputs: Vec<(PortId, usize)>,
    /// `output_mask[slot]` — true when the slot is an output port.
    output_mask: Vec<bool>,
    /// Interned enable pin, if any.
    enable: Option<PortId>,
    /// Interned select port and its value → operation-index decoding.
    op_select: Option<(PortId, Vec<Option<usize>>)>,
    operations: Vec<COperation>,
}

/// Name → dense id table built during compilation.
#[derive(Default)]
struct Interner {
    names: Vec<String>,
    ids: HashMap<String, PortId>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> PortId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as PortId;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }
}

impl CompiledModel {
    /// Compiles a component's behavioral model.
    pub fn new(component: &Component) -> Self {
        let mut table = Interner::default();
        for port in component.ports() {
            table.intern(&port.name);
        }
        let outputs: Vec<(PortId, usize)> = component
            .outputs()
            .map(|p| (table.ids[&p.name], p.width))
            .collect();
        let enable = component
            .ports()
            .iter()
            .find(|p| p.class == PortClass::Enable && p.dir == PortDir::In)
            .map(|p| table.ids[&p.name]);
        let op_select = component.op_select().map(|sel| {
            let port = table.intern(&sel.port);
            let decode = sel
                .encoding
                .iter()
                .map(|&op| position_of(component, op))
                .collect();
            (port, decode)
        });
        let is_async = |ctrl: &str| {
            component
                .port(ctrl)
                .map(|p| p.class == PortClass::AsyncSetReset)
                .unwrap_or(false)
        };
        let operations = component
            .operations()
            .iter()
            .map(|operation| COperation {
                control: operation
                    .control
                    .as_deref()
                    .map(|ctrl| (table.intern(ctrl), is_async(ctrl))),
                effects: operation
                    .effects
                    .iter()
                    .map(|effect| {
                        (
                            table.intern(&effect.target),
                            compile_expr(&effect.expr, &mut table),
                        )
                    })
                    .collect(),
            })
            .collect();
        let mut output_mask = vec![false; table.names.len()];
        for &(slot, _) in &outputs {
            output_mask[slot as usize] = true;
        }
        CompiledModel {
            names: table.names,
            ids: table.ids,
            outputs,
            output_mask,
            enable,
            op_select,
            operations,
        }
    }

    /// Number of value slots an evaluation array must have.
    pub fn slots(&self) -> usize {
        self.names.len()
    }

    /// The interned id of a port (or effect-referenced name).
    pub fn port_id(&self, name: &str) -> Option<PortId> {
        self.ids.get(name).copied()
    }

    /// The name behind a slot id.
    pub fn name(&self, id: PortId) -> &str {
        &self.names[id as usize]
    }

    /// Output ports as `(id, width)` pairs.
    pub fn outputs(&self) -> &[(PortId, usize)] {
        &self.outputs
    }

    /// Per-slot output mask (`mask[slot]` is true for output ports) —
    /// precomputed so per-cycle callers never rebuild it.
    pub fn output_mask(&self) -> &[bool] {
        &self.output_mask
    }

    /// Evaluates the component function over a slot array: input slots
    /// carry bound values (`None` = unbound), output slots carry current
    /// state for sequential holds (`None` = no state, defaults to zero).
    /// On success the **wanted output slots are overwritten in place**
    /// with the new output values; nothing is written on error.
    ///
    /// `targets`, when given, is a per-slot mask selecting the outputs to
    /// compute — the id-space mirror of
    /// [`eval_filtered`](Component::eval_filtered)'s target set.
    ///
    /// # Errors
    ///
    /// Exactly the interpreter's: [`EvalError::UnboundPort`] when a
    /// needed slot is `None`, [`EvalError::WidthMismatch`] on
    /// inconsistent operand widths.
    pub fn eval_into(
        &self,
        values: &mut [Option<Bits>],
        targets: Option<&[bool]>,
    ) -> Result<(), EvalError> {
        debug_assert!(values.len() >= self.slots());
        let wanted = |id: PortId| targets.is_none_or(|t| t[id as usize]);
        // A deasserted enable pin freezes every operation except
        // asynchronous set/reset.
        let enabled = match self.enable {
            Some(en) => values[en as usize].as_ref().is_none_or(|v| !v.is_zero()),
            None => true,
        };
        // Stage effect writes so expressions never observe this call's own
        // outputs (the interpreter evaluates against the input env) and so
        // errors commit nothing.
        let mut staged: Vec<(PortId, Bits)> = Vec::new();
        let fire =
            |staged: &mut Vec<(PortId, Bits)>, operation: &COperation| -> Result<(), EvalError> {
                for (target, expr) in &operation.effects {
                    if !wanted(*target) {
                        continue;
                    }
                    let v = ceval(expr, values, &self.names)?;
                    staged.push((*target, v));
                }
                Ok(())
            };
        if let Some((sel_port, decode)) = &self.op_select {
            if enabled {
                let sv = values[*sel_port as usize].as_ref().ok_or_else(|| {
                    EvalError::UnboundPort(self.names[*sel_port as usize].clone())
                })?;
                let idx = sv.to_u128().unwrap_or(u128::MAX);
                if idx < decode.len() as u128 {
                    if let Some(op_index) = decode[idx as usize] {
                        fire(&mut staged, &self.operations[op_index])?;
                    }
                }
                // Out-of-range select: outputs hold their defaults.
            }
        } else {
            for operation in &self.operations {
                match operation.control {
                    None => {
                        if enabled {
                            fire(&mut staged, operation)?;
                        }
                    }
                    Some((ctrl, asynchronous)) => {
                        let cv = values[ctrl as usize].as_ref().ok_or_else(|| {
                            EvalError::UnboundPort(self.names[ctrl as usize].clone())
                        })?;
                        if !cv.is_zero() && (enabled || asynchronous) {
                            fire(&mut staged, operation)?;
                            break; // control lines have listed priority
                        }
                    }
                }
            }
        }
        // Commit: wanted outputs default to held state (or zero), then
        // staged effect writes land in declaration order.
        for &(id, width) in &self.outputs {
            if wanted(id) && values[id as usize].is_none() {
                values[id as usize] = Some(Bits::zero(width));
            }
        }
        for (id, v) in staged {
            values[id as usize] = Some(v);
        }
        Ok(())
    }
}

/// The operation index firing for an [`Op`], mirroring the interpreter's
/// `operations.iter().find(|o| o.op == op)`.
fn position_of(component: &Component, op: Op) -> Option<usize> {
    component
        .operations()
        .iter()
        .position(|operation: &Operation| operation.op == op)
}

fn compile_expr(expr: &Expr, table: &mut Interner) -> CExpr {
    match expr {
        Expr::Port(name) => CExpr::Port(table.intern(name)),
        Expr::Const(b) => CExpr::Const(b.clone()),
        Expr::Unary(op, e) => CExpr::Unary(*op, Box::new(compile_expr(e, table))),
        Expr::Binary(op, l, r) => CExpr::Binary(
            *op,
            Box::new(compile_expr(l, table)),
            Box::new(compile_expr(r, table)),
        ),
        Expr::Cmp(op, l, r) => CExpr::Cmp(
            *op,
            Box::new(compile_expr(l, table)),
            Box::new(compile_expr(r, table)),
        ),
        Expr::AddWide { a, b, cin } => CExpr::AddWide {
            a: Box::new(compile_expr(a, table)),
            b: Box::new(compile_expr(b, table)),
            cin: Box::new(compile_expr(cin, table)),
        },
        Expr::Slice { expr, lo, len } => CExpr::Slice {
            expr: Box::new(compile_expr(expr, table)),
            lo: *lo,
            len: *len,
        },
        Expr::Concat(parts) => {
            CExpr::Concat(parts.iter().map(|p| compile_expr(p, table)).collect())
        }
        Expr::ZextTo(w, e) => CExpr::ZextTo(*w, Box::new(compile_expr(e, table))),
        Expr::SextTo(w, e) => CExpr::SextTo(*w, Box::new(compile_expr(e, table))),
        Expr::Select {
            sel,
            cases,
            default,
        } => CExpr::Select {
            sel: Box::new(compile_expr(sel, table)),
            cases: cases.iter().map(|c| compile_expr(c, table)).collect(),
            default: Box::new(compile_expr(default, table)),
        },
        Expr::PriorityIndex { expr, out_width } => CExpr::PriorityIndex {
            expr: Box::new(compile_expr(expr, table)),
            out_width: *out_width,
        },
    }
}

fn require_same(context: &str, l: &Bits, r: &Bits) -> Result<(), EvalError> {
    if l.width() != r.width() {
        return Err(EvalError::WidthMismatch {
            context: context.to_string(),
            left: l.width(),
            right: r.width(),
        });
    }
    Ok(())
}

/// The id-addressed mirror of [`crate::behavior::eval`] — same cases,
/// same results, same errors (names resolved back through `names`).
fn ceval(expr: &CExpr, values: &[Option<Bits>], names: &[String]) -> Result<Bits, EvalError> {
    match expr {
        CExpr::Port(id) => values[*id as usize]
            .clone()
            .ok_or_else(|| EvalError::UnboundPort(names[*id as usize].clone())),
        CExpr::Const(b) => Ok(b.clone()),
        CExpr::Unary(op, e) => {
            let v = ceval(e, values, names)?;
            Ok(match op {
                UnaryOp::Not => !&v,
                UnaryOp::Neg => v.wrapping_neg(),
                UnaryOp::Inc => v.inc(),
                UnaryOp::Dec => v.dec(),
                UnaryOp::ReduceAnd => Bits::from_bool(v.reduce_and()),
                UnaryOp::ReduceOr => Bits::from_bool(v.reduce_or()),
                UnaryOp::ReduceXor => Bits::from_bool(v.reduce_xor()),
                UnaryOp::IsZero => Bits::from_bool(v.is_zero()),
            })
        }
        CExpr::Binary(op, l, r) => {
            let lv = ceval(l, values, names)?;
            let rv = ceval(r, values, names)?;
            use BinaryOp::*;
            match op {
                ShlV | ShrV | AsrV | RotlV | RotrV => {
                    // Shift amount may have any width; saturate large counts.
                    let amt = rv.to_u128().unwrap_or(u128::MAX);
                    let amt = amt.min(2 * lv.width() as u128 + 1) as usize;
                    Ok(match op {
                        ShlV => lv.shl(amt),
                        ShrV => lv.shr(amt),
                        AsrV => lv.asr(amt),
                        RotlV => lv.rotl(amt),
                        RotrV => lv.rotr(amt),
                        _ => unreachable!(),
                    })
                }
                MulFull => Ok(lv.mul_full(&rv)),
                _ => {
                    require_same(&format!("{op:?}"), &lv, &rv)?;
                    Ok(match op {
                        And => &lv & &rv,
                        Or => &lv | &rv,
                        Xor => &lv ^ &rv,
                        Nand => !&(&lv & &rv),
                        Nor => !&(&lv | &rv),
                        Xnor => !&(&lv ^ &rv),
                        Limpl => &(!&lv) | &rv,
                        Add => lv.wrapping_add(&rv),
                        Sub => lv.wrapping_sub(&rv),
                        DivOr1s => {
                            if rv.is_zero() {
                                Bits::ones(lv.width())
                            } else {
                                lv.div_rem(&rv).0
                            }
                        }
                        RemOrA => {
                            if rv.is_zero() {
                                lv.clone()
                            } else {
                                lv.div_rem(&rv).1
                            }
                        }
                        _ => unreachable!(),
                    })
                }
            }
        }
        CExpr::Cmp(op, l, r) => {
            let lv = ceval(l, values, names)?;
            let rv = ceval(r, values, names)?;
            require_same(&format!("{op:?}"), &lv, &rv)?;
            use std::cmp::Ordering::*;
            let ord = lv.cmp_unsigned(&rv);
            let b = match op {
                CmpOp::Eq => ord == Equal,
                CmpOp::Ne => ord != Equal,
                CmpOp::Ltu => ord == Less,
                CmpOp::Gtu => ord == Greater,
                CmpOp::Leu => ord != Greater,
                CmpOp::Geu => ord != Less,
            };
            Ok(Bits::from_bool(b))
        }
        CExpr::AddWide { a, b, cin } => {
            let av = ceval(a, values, names)?;
            let bv = ceval(b, values, names)?;
            let cv = ceval(cin, values, names)?;
            require_same("AddWide", &av, &bv)?;
            if cv.width() != 1 {
                return Err(EvalError::WidthMismatch {
                    context: "AddWide carry".to_string(),
                    left: 1,
                    right: cv.width(),
                });
            }
            let (sum, carry) = av.add_with_carry(&bv, cv.bit(0));
            Ok(sum.concat(&Bits::from_bool(carry)))
        }
        CExpr::Slice { expr, lo, len } => {
            let v = ceval(expr, values, names)?;
            if lo + len > v.width() {
                return Err(EvalError::WidthMismatch {
                    context: format!("slice [{lo},{lo}+{len})"),
                    left: lo + len,
                    right: v.width(),
                });
            }
            Ok(v.slice(*lo, *len))
        }
        CExpr::Concat(parts) => {
            let mut acc = Bits::zero(0);
            for p in parts {
                let v = ceval(p, values, names)?;
                acc = acc.concat(&v);
            }
            Ok(acc)
        }
        CExpr::ZextTo(w, e) => Ok(ceval(e, values, names)?.zext(*w)),
        CExpr::SextTo(w, e) => Ok(ceval(e, values, names)?.sext(*w)),
        CExpr::Select {
            sel,
            cases,
            default,
        } => {
            let sv = ceval(sel, values, names)?;
            let idx = sv.to_u128().unwrap_or(u128::MAX);
            let chosen = if idx < cases.len() as u128 {
                &cases[idx as usize]
            } else {
                default
            };
            let out = ceval(chosen, values, names)?;
            // Enforce consistent case widths against the default.
            let dw = ceval(default, values, names)?;
            require_same("Select", &out, &dw)?;
            Ok(out)
        }
        CExpr::PriorityIndex { expr, out_width } => {
            let v = ceval(expr, values, names)?;
            let idx = (0..v.width()).rev().find(|&i| v.bit(i)).unwrap_or(0);
            Ok(Bits::from_u64(*out_width, idx as u64))
        }
    }
}

impl Component {
    /// Compiles this component's behavioral model against interned port
    /// ids (see [`CompiledModel`]).
    pub fn compiled(&self) -> CompiledModel {
        CompiledModel::new(self)
    }
}

/// Reference cross-check: drives both evaluators from one `Env` and
/// asserts identical outputs/errors. Exposed for the simulator's tests.
#[doc(hidden)]
pub fn eval_both_ways(
    component: &Component,
    inputs: &Env,
    targets: Option<&std::collections::BTreeSet<String>>,
) -> (Result<Env, EvalError>, Result<Env, EvalError>) {
    let interpreted = component.eval_filtered(inputs, targets);
    let model = component.compiled();
    let mut values: Vec<Option<Bits>> = vec![None; model.slots()];
    for (name, v) in inputs {
        if let Some(id) = model.port_id(name) {
            values[id as usize] = Some(v.clone());
        }
    }
    let mask = targets.map(|t| {
        let mut mask = vec![false; model.slots()];
        for name in t {
            if let Some(id) = model.port_id(name) {
                mask[id as usize] = true;
            }
        }
        mask
    });
    let compiled = model.eval_into(&mut values, mask.as_deref()).map(|()| {
        let mut out = Env::new();
        for &(id, _) in model.outputs() {
            let wanted = targets.is_none_or(|t| t.contains(model.name(id)));
            if wanted {
                if let Some(v) = &values[id as usize] {
                    out.insert(model.name(id).to_string(), v.clone());
                }
            }
        }
        out
    });
    (interpreted, compiled)
}

// Keep the interpreter reachable from this module so the doc references
// above stay checked.
const _: fn(&Expr, &Env) -> Result<Bits, EvalError> = eval;
const _: fn(&str, Expr) -> Effect = Effect::new;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stdlib::GenusLibrary;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_env(component: &Component, rng: &mut StdRng, bind_outputs: bool) -> Env {
        let mut env = Env::new();
        for port in component.ports() {
            let skip = port.dir == PortDir::Out && !bind_outputs;
            if skip {
                continue;
            }
            let mut bits = Bits::zero(port.width);
            for i in 0..port.width {
                if rng.gen::<bool>() {
                    bits.set_bit(i, true);
                }
            }
            env.insert(port.name.clone(), bits);
        }
        env
    }

    fn assert_agree(component: &Component, env: &Env) {
        let (interpreted, compiled) = eval_both_ways(component, env, None);
        match (&interpreted, &compiled) {
            (Ok(a), Ok(b)) => {
                // The interpreter may surface effect targets that are not
                // declared outputs; compare on declared outputs.
                for port in component.outputs() {
                    assert_eq!(
                        a.get(&port.name),
                        b.get(&port.name),
                        "{} output {} diverged",
                        component.name(),
                        port.name
                    );
                }
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "{}", component.name()),
            _ => panic!(
                "{}: interpreted {interpreted:?} vs compiled {compiled:?}",
                component.name()
            ),
        }
    }

    #[test]
    fn compiled_matches_interpreted_across_the_stdlib() {
        let lib = GenusLibrary::standard();
        let mut rng = StdRng::seed_from_u64(7);
        let mut components: Vec<Component> = vec![
            lib.adder(8).unwrap(),
            lib.alu(4, crate::op::Op::paper_alu16()).unwrap(),
            lib.mux(4, 4).unwrap(),
            lib.register_en(8).unwrap(),
            lib.counter(4).unwrap(),
            lib.comparator(4).unwrap(),
        ];
        // Every generator's sample-ish instantiation via the adder width
        // sweep keeps this cheap but broad.
        components.push(lib.adder(1).unwrap());
        for component in &components {
            for _ in 0..200 {
                // Sequential components read held state from output slots.
                let env = random_env(component, &mut rng, component.is_sequential());
                assert_agree(component, &env);
            }
            // Unbound-input errors must match too.
            let empty = Env::new();
            assert_agree(component, &empty);
        }
    }

    #[test]
    fn filtered_targets_match() {
        let lib = GenusLibrary::standard();
        let adder = lib.adder(8).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let all: Vec<String> = adder.outputs().map(|p| p.name.clone()).collect();
        for target in &all {
            let targets: std::collections::BTreeSet<String> =
                [target.clone()].into_iter().collect();
            for _ in 0..50 {
                let env = random_env(&adder, &mut rng, false);
                let (interpreted, compiled) = eval_both_ways(&adder, &env, Some(&targets));
                assert_eq!(
                    interpreted.as_ref().ok().and_then(|e| e.get(target)),
                    compiled.as_ref().ok().and_then(|e| e.get(target)),
                );
            }
        }
    }
}
