//! Component kinds and type classes.
//!
//! Mirrors Table 1 of the paper ("Typical LEGEND/GENUS Generic
//! Components"), which groups component families into four *type classes*:
//! combinational, sequential, interface and miscellaneous.

use std::fmt;

/// The abstract functionality class of a component family (the GENUS *type*
/// level of the types → generators → components → instances hierarchy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TypeClass {
    /// Output is a pure function of the inputs.
    Combinational,
    /// Holds state across clock edges.
    Sequential,
    /// Connects a design to its environment.
    Interface,
    /// Wiring, timing and structural glue.
    Miscellaneous,
}

impl fmt::Display for TypeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TypeClass::Combinational => "combinational",
            TypeClass::Sequential => "sequential",
            TypeClass::Interface => "interface",
            TypeClass::Miscellaneous => "miscellaneous",
        })
    }
}

/// Primitive boolean gate functions (the `Boolean Gates` family of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GateOp {
    /// N-input AND.
    And,
    /// N-input OR.
    Or,
    /// N-input NAND.
    Nand,
    /// N-input NOR.
    Nor,
    /// N-input XOR (parity).
    Xor,
    /// N-input XNOR.
    Xnor,
    /// Inverter.
    Not,
    /// Non-inverting buffer.
    Buf,
}

impl GateOp {
    /// The canonical gate name.
    pub fn name(self) -> &'static str {
        match self {
            GateOp::And => "AND",
            GateOp::Or => "OR",
            GateOp::Nand => "NAND",
            GateOp::Nor => "NOR",
            GateOp::Xor => "XOR",
            GateOp::Xnor => "XNOR",
            GateOp::Not => "NOT",
            GateOp::Buf => "BUF",
        }
    }

    /// Parses a canonical gate name.
    ///
    /// # Errors
    ///
    /// Returns the offending name on failure.
    pub fn parse(s: &str) -> Result<GateOp, String> {
        [
            GateOp::And,
            GateOp::Or,
            GateOp::Nand,
            GateOp::Nor,
            GateOp::Xor,
            GateOp::Xnor,
            GateOp::Not,
            GateOp::Buf,
        ]
        .into_iter()
        .find(|g| g.name() == s)
        .ok_or_else(|| format!("unknown gate {s:?}"))
    }

    /// True for gates with an inverted output (NAND, NOR, XNOR, NOT).
    pub fn inverting(self) -> bool {
        matches!(
            self,
            GateOp::Nand | GateOp::Nor | GateOp::Xnor | GateOp::Not
        )
    }
}

impl fmt::Display for GateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A GENUS component family (the *generator* granularity of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentKind {
    // --- combinational ---
    /// Primitive boolean gate with a configurable fan-in, bitwise over the
    /// component width.
    Gate(GateOp),
    /// Logic unit: bitwise boolean function selected at run time.
    LogicUnit,
    /// N-to-1 multiplexer.
    Mux,
    /// One-hot selector (decoded mux).
    Selector,
    /// Binary or BCD decoder (n select bits to 2^n / 10 lines).
    Decoder,
    /// Priority encoder (2^n lines to n bits).
    Encoder,
    /// Adder, subtractor, or adder/subtractor.
    AddSub,
    /// Magnitude comparator.
    Comparator,
    /// Arithmetic-logic unit.
    Alu,
    /// Single-position shifter.
    Shifter,
    /// Barrel shifter (arbitrary shift amount).
    BarrelShifter,
    /// n-by-m combinational multiplier.
    Multiplier,
    /// Combinational divider.
    Divider,
    /// Carry-lookahead generator (group propagate/generate to carries).
    CarryLookahead,
    // --- sequential ---
    /// Data register.
    Register,
    /// Register file.
    RegisterFile,
    /// Up/down/loadable counter.
    Counter,
    /// Stack or FIFO.
    StackFifo,
    /// RAM/ROM memory.
    Memory,
    // --- interface ---
    /// External port.
    PortComp,
    /// Buffer/driver.
    BufferComp,
    /// Clock driver.
    ClockDriver,
    /// Schmitt trigger.
    SchmittTrigger,
    /// Tristate driver.
    Tristate,
    /// Wired-OR junction.
    WiredOr,
    // --- miscellaneous ---
    /// Bus.
    Bus,
    /// Pure delay element.
    Delay,
    /// Switchbox concatenation (wiring).
    Concat,
    /// Switchbox extraction (wiring).
    Extract,
    /// Clock generator.
    ClockGenerator,
}

impl ComponentKind {
    /// The type class this family belongs to (Table 1's grouping).
    pub fn type_class(self) -> TypeClass {
        use ComponentKind::*;
        match self {
            Gate(_) | LogicUnit | Mux | Selector | Decoder | Encoder | AddSub | Comparator
            | Alu | Shifter | BarrelShifter | Multiplier | Divider | CarryLookahead => {
                TypeClass::Combinational
            }
            Register | RegisterFile | Counter | StackFifo | Memory => TypeClass::Sequential,
            PortComp | BufferComp | ClockDriver | SchmittTrigger | Tristate | WiredOr => {
                TypeClass::Interface
            }
            Bus | Delay | Concat | Extract | ClockGenerator => TypeClass::Miscellaneous,
        }
    }

    /// The canonical generator name (as a LEGEND `NAME:` header).
    pub fn name(self) -> String {
        use ComponentKind::*;
        match self {
            Gate(g) => format!("GATE_{}", g.name()),
            LogicUnit => "LU".to_string(),
            Mux => "MUX".to_string(),
            Selector => "SELECTOR".to_string(),
            Decoder => "DECODER".to_string(),
            Encoder => "ENCODER".to_string(),
            AddSub => "ADDSUB".to_string(),
            Comparator => "COMPARATOR".to_string(),
            Alu => "ALU".to_string(),
            Shifter => "SHIFTER".to_string(),
            BarrelShifter => "BARREL_SHIFTER".to_string(),
            Multiplier => "MULTIPLIER".to_string(),
            Divider => "DIVIDER".to_string(),
            CarryLookahead => "CLA_GEN".to_string(),
            Register => "REGISTER".to_string(),
            RegisterFile => "REGISTER_FILE".to_string(),
            Counter => "COUNTER".to_string(),
            StackFifo => "STACK_FIFO".to_string(),
            Memory => "MEMORY".to_string(),
            PortComp => "PORT".to_string(),
            BufferComp => "BUFFER".to_string(),
            ClockDriver => "CLOCK_DRIVER".to_string(),
            SchmittTrigger => "SCHMITT_TRIGGER".to_string(),
            Tristate => "TRISTATE".to_string(),
            WiredOr => "WIRED_OR".to_string(),
            Bus => "BUS".to_string(),
            Delay => "DELAY".to_string(),
            Concat => "CONCAT".to_string(),
            Extract => "EXTRACT".to_string(),
            ClockGenerator => "CLOCK_GENERATOR".to_string(),
        }
    }

    /// All kinds, in Table-1 order.
    pub fn all() -> Vec<ComponentKind> {
        use ComponentKind::*;
        let mut v = vec![
            Gate(GateOp::And),
            Gate(GateOp::Or),
            Gate(GateOp::Nand),
            Gate(GateOp::Nor),
            Gate(GateOp::Xor),
            Gate(GateOp::Xnor),
            Gate(GateOp::Not),
            Gate(GateOp::Buf),
        ];
        v.extend([
            LogicUnit,
            Mux,
            Selector,
            Decoder,
            Encoder,
            AddSub,
            Comparator,
            Alu,
            Shifter,
            BarrelShifter,
            Multiplier,
            Divider,
            CarryLookahead,
            Register,
            RegisterFile,
            Counter,
            StackFifo,
            Memory,
            PortComp,
            BufferComp,
            ClockDriver,
            SchmittTrigger,
            Tristate,
            WiredOr,
            Bus,
            Delay,
            Concat,
            Extract,
            ClockGenerator,
        ]);
        v
    }

    /// Parses a canonical generator name.
    ///
    /// # Errors
    ///
    /// Returns the offending name on failure.
    pub fn parse(s: &str) -> Result<ComponentKind, String> {
        ComponentKind::all()
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown component kind {s:?}"))
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_classes() {
        let all = ComponentKind::all();
        for class in [
            TypeClass::Combinational,
            TypeClass::Sequential,
            TypeClass::Interface,
            TypeClass::Miscellaneous,
        ] {
            assert!(
                all.iter().any(|k| k.type_class() == class),
                "no kind in class {class}"
            );
        }
    }

    #[test]
    fn names_roundtrip() {
        for k in ComponentKind::all() {
            assert_eq!(ComponentKind::parse(&k.name()).unwrap(), k);
        }
        assert!(ComponentKind::parse("WIDGET").is_err());
    }

    #[test]
    fn gates_have_eight_functions() {
        let gates: Vec<_> = ComponentKind::all()
            .into_iter()
            .filter(|k| matches!(k, ComponentKind::Gate(_)))
            .collect();
        assert_eq!(gates.len(), 8);
    }

    #[test]
    fn sequential_members_match_table1() {
        use ComponentKind::*;
        for k in [Register, RegisterFile, Counter, StackFifo, Memory] {
            assert_eq!(k.type_class(), TypeClass::Sequential);
        }
    }

    #[test]
    fn gateop_inverting() {
        assert!(GateOp::Nand.inverting());
        assert!(!GateOp::And.inverting());
        assert_eq!(GateOp::parse("XNOR").unwrap(), GateOp::Xnor);
    }
}
