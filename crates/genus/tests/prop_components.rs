//! Property tests: generated component models against native arithmetic
//! references.

use genus::behavior::Env;
use genus::kind::{ComponentKind, GateOp};
use genus::op::{Op, OpSet};
use genus::params::{names, ParamValue, Params};
use genus::stdlib::GenusLibrary;
use proptest::prelude::*;
use rtl_base::bits::Bits;

fn env(pairs: Vec<(&str, Bits)>) -> Env {
    pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
}

fn mask(w: usize) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1 << w) - 1
    }
}

proptest! {
    #[test]
    fn adder_matches_native(w in 1usize..32, a in any::<u64>(), b in any::<u64>(), ci in any::<bool>()) {
        let lib = GenusLibrary::standard();
        let adder = lib.adder(w).unwrap();
        let a = a & mask(w);
        let b = b & mask(w);
        let out = adder
            .eval(&env(vec![
                ("A", Bits::from_u64(w, a)),
                ("B", Bits::from_u64(w, b)),
                ("CI", Bits::from_bool(ci)),
            ]))
            .unwrap();
        let wide = a as u128 + b as u128 + ci as u128;
        prop_assert_eq!(out["O"].to_u64().unwrap(), (wide as u64) & mask(w));
        prop_assert_eq!(out["CO"].to_u64().unwrap(), (wide >> w) as u64);
    }

    #[test]
    fn alu16_matches_reference(w in 1usize..24, a in any::<u64>(), b in any::<u64>(), sel in 0u64..16, ci in any::<bool>()) {
        let lib = GenusLibrary::standard();
        let alu = lib.alu(w, Op::paper_alu16()).unwrap();
        let a = a & mask(w);
        let b = b & mask(w);
        let out = alu
            .eval(&env(vec![
                ("A", Bits::from_u64(w, a)),
                ("B", Bits::from_u64(w, b)),
                ("CI", Bits::from_bool(ci)),
                ("S", Bits::from_u64(4, sel)),
            ]))
            .unwrap();
        let m = mask(w);
        let c = ci as u64;
        let expect = match sel {
            0 => a.wrapping_add(b).wrapping_add(c) & m,          // ADD
            1 => a.wrapping_add(!b & m).wrapping_add(c) & m,     // SUB (borrow conv.)
            2 => a.wrapping_add(1) & m,                          // INC
            3 => a.wrapping_sub(1) & m,                          // DEC
            4 => (a == b) as u64,                                // EQ
            5 => (a < b) as u64,                                 // LT
            6 => (a > b) as u64,                                 // GT
            7 => (a == 0) as u64,                                // ZEROP
            8 => a & b,
            9 => a | b,
            10 => !(a & b) & m,
            11 => !(a | b) & m,
            12 => a ^ b,
            13 => !(a ^ b) & m,
            14 => !a & m,
            15 => (!a | b) & m,
            _ => unreachable!(),
        };
        prop_assert_eq!(out["O"].to_u64().unwrap(), expect, "sel={}", sel);
    }

    #[test]
    fn mux_selects_the_indexed_input(w in 1usize..16, n in 2usize..9, sel_seed in any::<u64>(), vals in prop::collection::vec(any::<u64>(), 9)) {
        let lib = GenusLibrary::standard();
        let mux = lib.mux(w, n).unwrap();
        let sel = sel_seed % n as u64;
        let sw = mux.port("S").unwrap().width;
        let mut e = env(vec![("S", Bits::from_u64(sw, sel))]);
        for (i, v) in vals.iter().take(n).enumerate() {
            e.insert(format!("I{i}"), Bits::from_u64(w, *v));
        }
        let out = mux.eval(&e).unwrap();
        prop_assert_eq!(
            out["O"].to_u64().unwrap(),
            vals[sel as usize] & mask(w)
        );
    }

    #[test]
    fn comparator_flags_are_exclusive(w in 1usize..24, a in any::<u64>(), b in any::<u64>()) {
        let lib = GenusLibrary::standard();
        let cmp = lib.comparator(w).unwrap();
        let a = a & mask(w);
        let b = b & mask(w);
        let out = cmp
            .eval(&env(vec![
                ("A", Bits::from_u64(w, a)),
                ("B", Bits::from_u64(w, b)),
            ]))
            .unwrap();
        let flags = [
            out["EQ"].to_u64().unwrap(),
            out["LT"].to_u64().unwrap(),
            out["GT"].to_u64().unwrap(),
        ];
        prop_assert_eq!(flags.iter().sum::<u64>(), 1, "exactly one flag");
        prop_assert_eq!(flags[0] == 1, a == b);
        prop_assert_eq!(flags[1] == 1, a < b);
    }

    #[test]
    fn gate_fold_matches_native(w in 1usize..16, n in 2usize..6, vals in prop::collection::vec(any::<u64>(), 6)) {
        let lib = GenusLibrary::standard();
        for (g, f) in [
            (GateOp::And, (|x: u64, y: u64| x & y) as fn(u64, u64) -> u64),
            (GateOp::Or, |x, y| x | y),
            (GateOp::Xor, |x, y| x ^ y),
        ] {
            let gate = lib.gate(g, w, n).unwrap();
            let mut e = Env::new();
            for (i, v) in vals.iter().take(n).enumerate() {
                e.insert(format!("I{i}"), Bits::from_u64(w, *v));
            }
            let out = gate.eval(&e).unwrap();
            let expect = vals
                .iter()
                .take(n)
                .map(|v| v & mask(w))
                .reduce(f)
                .unwrap();
            prop_assert_eq!(out["O"].to_u64().unwrap(), expect & mask(w));
        }
    }

    #[test]
    fn counter_sequences(w in 1usize..16, start in any::<u64>(), ups in 0usize..5, downs in 0usize..5) {
        let lib = GenusLibrary::standard();
        let counter = lib.counter(w).unwrap();
        let start = start & mask(w);
        let mut state = start;
        let drive = |state: u64, up: u64, down: u64| {
            counter
                .eval(&env(vec![
                    ("I0", Bits::from_u64(w, 0)),
                    ("O0", Bits::from_u64(w, state)),
                    ("CEN", Bits::from_u64(1, 1)),
                    ("ARESET", Bits::zero(1)),
                    ("ASET", Bits::zero(1)),
                    ("CLOAD", Bits::zero(1)),
                    ("CUP", Bits::from_u64(1, up)),
                    ("CDOWN", Bits::from_u64(1, down)),
                ]))
                .unwrap()["O0"]
                .to_u64()
                .unwrap()
        };
        for _ in 0..ups {
            state = drive(state, 1, 0);
        }
        for _ in 0..downs {
            state = drive(state, 0, 1);
        }
        let expect = start
            .wrapping_add(ups as u64)
            .wrapping_sub(downs as u64)
            & mask(w);
        prop_assert_eq!(state, expect);
    }

    #[test]
    fn multiplier_matches_native(n in 1usize..12, m in 1usize..12, a in any::<u64>(), b in any::<u64>()) {
        let lib = GenusLibrary::standard();
        let mult = lib.multiplier(n, m).unwrap();
        let a = a & mask(n);
        let b = b & mask(m);
        let out = mult
            .eval(&env(vec![
                ("A", Bits::from_u64(n, a)),
                ("B", Bits::from_u64(m, b)),
            ]))
            .unwrap();
        prop_assert_eq!(out["O"].to_u64().unwrap(), a * b);
    }

    #[test]
    fn spec_roundtrip_for_random_params(w in 1usize..32, en in any::<bool>(), sr in any::<bool>()) {
        // Register family: spec → component → spec is the identity.
        let lib = GenusLibrary::standard();
        let g = lib.generator("REGISTER").unwrap();
        let c = g
            .instantiate(
                &Params::new()
                    .with(names::INPUT_WIDTH, ParamValue::Width(w))
                    .with(names::ENABLE_FLAG, ParamValue::Flag(en))
                    .with(names::ASYNC_SET_RESET, ParamValue::Flag(sr)),
            )
            .unwrap();
        let re = genus::build::component_for_spec(c.spec()).unwrap();
        prop_assert_eq!(re.spec(), c.spec());
        prop_assert_eq!(re.ports(), c.ports());
    }

    #[test]
    fn opset_string_roundtrip(bits in any::<u32>()) {
        // Any subset of the 16 ALU ops pretty-prints and re-parses.
        let all: Vec<Op> = Op::paper_alu16().iter().collect();
        let subset: OpSet = all
            .iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) != 0)
            .map(|(_, op)| *op)
            .collect();
        let text = subset.to_string();
        let reparsed: OpSet = text
            .split_whitespace()
            .map(|t| Op::parse(t).unwrap())
            .collect();
        prop_assert_eq!(reparsed, subset);
    }

    #[test]
    fn alu_spec_display_is_stable(w in 1usize..100) {
        let spec = genus::spec::ComponentSpec::new(ComponentKind::Alu, w)
            .with_ops(Op::paper_alu16())
            .with_carry_in(true);
        let s = spec.to_string();
        let prefix = format!("ALU.{}+CI(", w);
        prop_assert!(s.starts_with(&prefix));
    }
}
