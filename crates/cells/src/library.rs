//! Cell libraries and the functional-match query.

use crate::cell::Cell;
use genus::spec::ComponentSpec;
use std::collections::BTreeMap;
use std::fmt;

/// A technology library: a named set of [`Cell`]s.
///
/// # Examples
///
/// ```
/// use cells::{Cell, CellLibrary};
/// use genus::kind::{ComponentKind, GateOp};
/// use genus::spec::ComponentSpec;
///
/// let mut lib = CellLibrary::new("tiny");
/// lib.insert(Cell::new(
///     "ND2",
///     ComponentSpec::new(ComponentKind::Gate(GateOp::Nand), 1).with_inputs(2),
///     1.0,
///     0.7,
/// ));
/// assert_eq!(lib.len(), 1);
/// assert!(lib.cell("ND2").is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CellLibrary {
    name: String,
    cells: Vec<Cell>,
    by_name: BTreeMap<String, usize>,
}

impl CellLibrary {
    /// Creates an empty library.
    pub fn new(name: &str) -> Self {
        CellLibrary {
            name: name.to_string(),
            ..CellLibrary::default()
        }
    }

    /// The library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a cell, replacing any cell with the same name.
    pub fn insert(&mut self, cell: Cell) {
        if let Some(&idx) = self.by_name.get(&cell.name) {
            self.cells[idx] = cell;
        } else {
            self.by_name.insert(cell.name.clone(), self.cells.len());
            self.cells.push(cell);
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the library has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Looks up a cell by data book name.
    pub fn cell(&self, name: &str) -> Option<&Cell> {
        self.by_name.get(name).map(|&i| &self.cells[i])
    }

    /// All cells, in insertion (data book) order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The functional-match query of DTAS technology mapping: every cell
    /// whose specification can implement `required` (paper §5). Matching
    /// cells are returned in data book order.
    pub fn implementers(&self, required: &ComponentSpec) -> Vec<&Cell> {
        self.cells
            .iter()
            .filter(|c| c.spec.can_implement(required))
            .collect()
    }

    /// A content fingerprint over the library: name, cell order, and
    /// every cell's specification and costs. Engines key cross-query
    /// synthesis caches — including *persisted* warm-start snapshots,
    /// which is why the digest is the stable
    /// [`StableHasher`](rtl_base::hash::StableHasher) rather than
    /// `DefaultHasher` — on this hash, so any change to the library —
    /// renamed cells, recalibrated areas or delays, added or dropped
    /// entries — produces a different fingerprint and invalidates cached
    /// results and on-disk snapshots alike.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = rtl_base::hash::StableHasher::new();
        self.name.hash(&mut h);
        self.cells.len().hash(&mut h);
        for c in &self.cells {
            c.name.hash(&mut h);
            c.spec.hash(&mut h);
            c.area.to_bits().hash(&mut h);
            c.delay.to_bits().hash(&mut h);
            c.carry_delay.map(f64::to_bits).hash(&mut h);
            c.pg_delay.map(f64::to_bits).hash(&mut h);
        }
        h.finish()
    }

    /// Restricts the library to the named cells, preserving order —
    /// used to study how design spaces degrade with poorer libraries.
    pub fn subset(&self, names: &[&str]) -> CellLibrary {
        let mut out = CellLibrary::new(&format!("{}_subset", self.name));
        for c in &self.cells {
            if names.contains(&c.name.as_str()) {
                out.insert(c.clone());
            }
        }
        out
    }
}

impl fmt::Display for CellLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "LIBRARY {} ({} cells)", self.name, self.cells.len())?;
        for c in &self.cells {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

impl FromIterator<Cell> for CellLibrary {
    fn from_iter<I: IntoIterator<Item = Cell>>(iter: I) -> Self {
        let mut lib = CellLibrary::new("anonymous");
        for c in iter {
            lib.insert(c);
        }
        lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genus::kind::ComponentKind;
    use genus::op::{Op, OpSet};

    fn add_cell(name: &str, width: usize) -> Cell {
        Cell::new(
            name,
            ComponentSpec::new(ComponentKind::AddSub, width)
                .with_ops(OpSet::only(Op::Add))
                .with_carry_in(true)
                .with_carry_out(true),
            10.0 * width as f64,
            2.0 * width as f64,
        )
    }

    #[test]
    fn implementers_filters_by_width() {
        let lib: CellLibrary = [add_cell("A1", 1), add_cell("A2", 2), add_cell("A4", 4)]
            .into_iter()
            .collect();
        let want = ComponentSpec::new(ComponentKind::AddSub, 2)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true);
        let hits = lib.implementers(&want);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "A2");
    }

    #[test]
    fn addsub_cell_implements_pure_adder() {
        let mut lib = CellLibrary::new("t");
        lib.insert(Cell::new(
            "AS2",
            ComponentSpec::new(ComponentKind::AddSub, 2)
                .with_ops([Op::Add, Op::Sub].into_iter().collect())
                .with_carry_in(true)
                .with_carry_out(true),
            17.0,
            4.0,
        ));
        let want_add = ComponentSpec::new(ComponentKind::AddSub, 2)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true);
        assert_eq!(lib.implementers(&want_add).len(), 1);
    }

    #[test]
    fn insert_replaces_same_name() {
        let mut lib = CellLibrary::new("t");
        lib.insert(add_cell("A", 1));
        let mut better = add_cell("A", 1);
        better.area = 5.0;
        lib.insert(better);
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.cell("A").unwrap().area, 5.0);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let lib: CellLibrary = [add_cell("A1", 1), add_cell("A2", 2)].into_iter().collect();
        let same: CellLibrary = [add_cell("A1", 1), add_cell("A2", 2)].into_iter().collect();
        assert_eq!(lib.fingerprint(), same.fingerprint());
        let mut recalibrated = lib.clone();
        let mut cheaper = add_cell("A2", 2);
        cheaper.area = 1.0;
        recalibrated.insert(cheaper);
        assert_ne!(lib.fingerprint(), recalibrated.fingerprint());
        let smaller = lib.subset(&["A1"]);
        assert_ne!(lib.fingerprint(), smaller.fingerprint());
    }

    #[test]
    fn subset_preserves_order() {
        let lib: CellLibrary = [add_cell("A1", 1), add_cell("A2", 2), add_cell("A4", 4)]
            .into_iter()
            .collect();
        let sub = lib.subset(&["A4", "A1"]);
        let names: Vec<&str> = sub.cells().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["A1", "A4"]);
    }
}
