//! RTL technology cell libraries — the "data book" side of the bridge.
//!
//! The paper's central criticism of module-generator flows is that they
//! cannot "provide technology mapping into the data book libraries of
//! functional RTL cells used commonly throughout the industrial design
//! community" (§1, abstract). This crate models those data books:
//!
//! * a [`cell::Cell`] is one macrocell with a *functional specification*
//!   (the same [`genus::spec::ComponentSpec`] language used for generic
//!   components — paper §5), an area in equivalent NAND gates, and
//!   pin-class delays in nanoseconds;
//! * a [`library::CellLibrary`] answers the functional-match query DTAS
//!   issues during decomposition ("a cell of type ADD with two 4-bit
//!   inputs plus carry-in and a 4-bit output plus carry-out");
//! * [`databook`] parses and prints a plain-text data book format;
//! * [`lsi`] ships the 30-cell subset used in the paper's §6 evaluation,
//!   reconstructed from its description (the original 1987 databook is
//!   proprietary — see `DESIGN.md` for the substitution notes).
//!
//! # Examples
//!
//! ```
//! use cells::lsi::lsi_logic_subset;
//! use genus::spec::ComponentSpec;
//! use genus::kind::ComponentKind;
//! use genus::op::{Op, OpSet};
//!
//! let lib = lsi_logic_subset();
//! assert_eq!(lib.len(), 30);
//! // The paper's example query (§5).
//! let want = ComponentSpec::new(ComponentKind::AddSub, 4)
//!     .with_ops(OpSet::only(Op::Add))
//!     .with_carry_in(true)
//!     .with_carry_out(true);
//! let hits = lib.implementers(&want);
//! assert!(hits.iter().any(|c| c.name == "ADD4"));
//! ```

pub mod cell;
pub mod databook;
pub mod library;
pub mod lsi;

pub use cell::Cell;
pub use library::CellLibrary;
