//! The paper's evaluation library: a 30-cell subset of an LSI Logic-style
//! 1.5-micron macrocell data book.
//!
//! The original \[LSIL87\] databook is proprietary, so this is a
//! reconstruction from the paper's description of the subset (§6):
//! multiplexers (2:1, 4:1 and 8:1, in 1- and 4-bit-wide variants), 1-, 2-
//! and 4-bit adders, a 4-bit carry-lookahead generator, a 2-bit
//! adder/subtractor, D flip-flops and 4-/8-bit registers, rounded out with
//! SSI gates. Area/delay values are calibrated so the ripple-vs-lookahead
//! trade-off *shape* of the paper's Figure 3 holds; absolute numbers are
//! not the authors'.
//!
//! The library ships as a [data book text file](crate::databook) compiled
//! into the binary, so loading it also exercises the data book parser.

use crate::databook;
use crate::library::CellLibrary;

/// The embedded data book source text.
pub const LSI_DATABOOK: &str = include_str!("../data/lsi_lma9k.book");

/// Loads the 30-cell LSI-style subset used by the paper's §6 evaluation.
///
/// # Panics
///
/// Panics if the embedded data book fails to parse — that is a build
/// defect, not a runtime condition (covered by tests).
pub fn lsi_logic_subset() -> CellLibrary {
    databook::parse(LSI_DATABOOK).expect("embedded LSI data book must parse")
}

#[cfg(test)]
mod tests {
    use super::*;
    use genus::kind::{ComponentKind, GateOp};
    use genus::op::{Op, OpSet};
    use genus::spec::ComponentSpec;

    #[test]
    fn has_exactly_thirty_cells() {
        assert_eq!(lsi_logic_subset().len(), 30);
    }

    #[test]
    fn contains_the_papers_families() {
        let lib = lsi_logic_subset();
        for name in [
            "MUX21H", "MUX41", "MUX81", // 2:1 / 4:1 / 8:1 muxes
            "FA1A", "ADD2", "ADD4", // 1-/2-/4-bit adders
            "CLA4", // 4-bit carry-lookahead generator
            "AS2",  // 2-bit adder/subtractor
            "FD1",  // D flip-flop
            "RG4", "RG8", // 4-/8-bit registers
        ] {
            assert!(lib.cell(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn papers_add4_query_succeeds() {
        // §5: "a cell of type ADD with two 4-bit inputs plus carry-in and
        // a 4-bit output plus carry-out".
        let lib = lsi_logic_subset();
        let want = ComponentSpec::new(ComponentKind::AddSub, 4)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true);
        let hits = lib.implementers(&want);
        let names: Vec<&str> = hits.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"ADD4"));
        assert!(names.contains(&"ADD4PG")); // extra pins are acceptable
    }

    #[test]
    fn ripple_carry_is_faster_than_data_path() {
        let lib = lsi_logic_subset();
        for name in ["FA1A", "ADD2", "ADD4"] {
            let c = lib.cell(name).unwrap();
            assert!(
                c.carry_delay.unwrap() < c.delay,
                "{name} carry path should be faster"
            );
        }
    }

    #[test]
    fn calibration_ripple64_matches_figure3_ballpark() {
        // 64-bit ripple of FA1A: first cell's data delay + 63 carry hops.
        let lib = lsi_logic_subset();
        let fa = lib.cell("FA1A").unwrap();
        let ripple = fa.delay + 63.0 * fa.carry_delay.unwrap();
        // The paper's slowest 64-bit ALU is 134.3 ns; the bare adder chain
        // should land in the same regime (the ALU adds mux overhead).
        assert!((100.0..140.0).contains(&ripple), "ripple = {ripple}");
    }

    #[test]
    fn gates_cover_common_functions() {
        let lib = lsi_logic_subset();
        for (g, n) in [
            (GateOp::Nand, 2),
            (GateOp::Nand, 8),
            (GateOp::Nor, 8),
            (GateOp::Xor, 2),
            (GateOp::Not, 1),
        ] {
            let want = ComponentSpec::new(ComponentKind::Gate(g), 1).with_inputs(n);
            assert!(
                !lib.implementers(&want).is_empty(),
                "no {g} gate with fan-in {n}"
            );
        }
    }

    #[test]
    fn area_units_are_nand_equivalents() {
        let lib = lsi_logic_subset();
        assert_eq!(lib.cell("ND2").unwrap().area, 1.0);
        assert!(lib.cell("IVA").unwrap().area < 1.0);
    }
}
