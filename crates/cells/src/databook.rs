//! Plain-text data book format: parsing and printing cell libraries.
//!
//! The format is line oriented; `#` starts a comment. A library is one
//! `LIBRARY <name>` header followed by `CELL` lines:
//!
//! ```text
//! LIBRARY lsi_lma9k_subset
//! CELL ADD4   ADDSUB  W 4 OPS ADD CI CO    AREA 26.0 DELAY 5.0 CARRY 3.0
//! CELL MUX41  MUX     W 1 N 4              AREA 7.0  DELAY 2.0
//! CELL CLA4   CLA_GEN N 4 CI               AREA 14.0 DELAY 2.0 PGD 1.7
//! ```
//!
//! Keywords: `W` (width), `W2` (second width/depth), `N` (fan-in),
//! `OPS op...`, flags `CI CO EN SR PG`, `STYLE <s>`, `AREA`, `DELAY`,
//! `CARRY` (carry-arc delay), `PGD` (P/G-arc delay).

use crate::cell::Cell;
use crate::library::CellLibrary;
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;
use std::fmt;

/// Error produced while parsing a data book.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBookError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseBookError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "data book line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseBookError {}

fn perr(line: usize, message: impl Into<String>) -> ParseBookError {
    ParseBookError {
        line,
        message: message.into(),
    }
}

const KEYWORDS: &[&str] = &[
    "W", "W2", "N", "OPS", "CI", "CO", "EN", "SR", "PG", "STYLE", "AREA", "DELAY", "CARRY", "PGD",
];

/// Parses a data book document into a [`CellLibrary`].
///
/// # Errors
///
/// Returns [`ParseBookError`] with a line number on malformed input.
pub fn parse(text: &str) -> Result<CellLibrary, ParseBookError> {
    let mut lib: Option<CellLibrary> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "LIBRARY" => {
                if tokens.len() != 2 {
                    return Err(perr(line_no, "LIBRARY takes exactly one name"));
                }
                if lib.is_some() {
                    return Err(perr(line_no, "duplicate LIBRARY header"));
                }
                lib = Some(CellLibrary::new(tokens[1]));
            }
            "CELL" => {
                let lib = lib
                    .as_mut()
                    .ok_or_else(|| perr(line_no, "CELL before LIBRARY header"))?;
                let cell = parse_cell(&tokens[1..], line_no)?;
                if lib.cell(&cell.name).is_some() {
                    return Err(perr(line_no, format!("duplicate cell {}", cell.name)));
                }
                lib.insert(cell);
            }
            other => return Err(perr(line_no, format!("unknown directive {other:?}"))),
        }
    }
    lib.ok_or_else(|| perr(0, "no LIBRARY header found"))
}

fn parse_cell(tokens: &[&str], line: usize) -> Result<Cell, ParseBookError> {
    if tokens.len() < 2 {
        return Err(perr(line, "CELL needs a name and a kind"));
    }
    let name = tokens[0];
    let kind = ComponentKind::parse(tokens[1]).map_err(|e| perr(line, e))?;
    let mut width = 1usize;
    let mut width2 = 0usize;
    let mut inputs = 0usize;
    let mut ops = OpSet::new();
    let (mut ci, mut co, mut en, mut sr, mut pg) = (false, false, false, false, false);
    let mut style: Option<String> = None;
    let mut area: Option<f64> = None;
    let mut delay: Option<f64> = None;
    let mut carry: Option<f64> = None;
    let mut pgd: Option<f64> = None;

    let mut i = 2;
    let take_usize = |i: &mut usize, what: &str| -> Result<usize, ParseBookError> {
        *i += 1;
        tokens
            .get(*i)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| perr(line, format!("{what} needs an integer argument")))
    };
    let take_f64 = |i: &mut usize, what: &str| -> Result<f64, ParseBookError> {
        *i += 1;
        tokens
            .get(*i)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| perr(line, format!("{what} needs a numeric argument")))
    };
    while i < tokens.len() {
        match tokens[i] {
            "W" => width = take_usize(&mut i, "W")?,
            "W2" => width2 = take_usize(&mut i, "W2")?,
            "N" => inputs = take_usize(&mut i, "N")?,
            "OPS" => {
                let mut any = false;
                while let Some(tok) = tokens.get(i + 1) {
                    if KEYWORDS.contains(tok) {
                        break;
                    }
                    ops.insert(Op::parse(tok).map_err(|e| perr(line, e))?);
                    any = true;
                    i += 1;
                }
                if !any {
                    return Err(perr(line, "OPS needs at least one operation"));
                }
            }
            "CI" => ci = true,
            "CO" => co = true,
            "EN" => en = true,
            "SR" => sr = true,
            "PG" => pg = true,
            "STYLE" => {
                i += 1;
                style = Some(
                    tokens
                        .get(i)
                        .ok_or_else(|| perr(line, "STYLE needs a name"))?
                        .to_string(),
                );
            }
            "AREA" => area = Some(take_f64(&mut i, "AREA")?),
            "DELAY" => delay = Some(take_f64(&mut i, "DELAY")?),
            "CARRY" => carry = Some(take_f64(&mut i, "CARRY")?),
            "PGD" => pgd = Some(take_f64(&mut i, "PGD")?),
            other => return Err(perr(line, format!("unknown token {other:?}"))),
        }
        i += 1;
    }
    let area = area.ok_or_else(|| perr(line, format!("cell {name} is missing AREA")))?;
    let delay = delay.ok_or_else(|| perr(line, format!("cell {name} is missing DELAY")))?;
    if area < 0.0 || delay < 0.0 {
        return Err(perr(line, "negative area or delay"));
    }

    // The CLA generator's width field tracks its group count.
    if kind == ComponentKind::CarryLookahead {
        width = inputs;
    }
    let mut spec = ComponentSpec::new(kind, width)
        .with_width2(width2)
        .with_inputs(inputs)
        .with_ops(ops)
        .with_carry_in(ci)
        .with_carry_out(co)
        .with_enable(en)
        .with_async_set_reset(sr)
        .with_group_pg(pg);
    if let Some(s) = style {
        spec = spec.with_style(&s);
    }
    let mut cell = Cell::new(name, spec, area, delay);
    if let Some(c) = carry {
        cell = cell.with_carry_delay(c);
    }
    if let Some(p) = pgd {
        cell = cell.with_pg_delay(p);
    }
    Ok(cell)
}

/// Prints a library back into the data book format accepted by [`parse`].
pub fn print(lib: &CellLibrary) -> String {
    let mut out = format!("LIBRARY {}\n", lib.name());
    for c in lib.cells() {
        let s = &c.spec;
        let mut line = format!("CELL {} {}", c.name, s.kind.name());
        if s.kind != ComponentKind::CarryLookahead {
            line.push_str(&format!(" W {}", s.width));
        }
        if s.width2 > 0 {
            line.push_str(&format!(" W2 {}", s.width2));
        }
        if s.inputs > 0 {
            line.push_str(&format!(" N {}", s.inputs));
        }
        if !s.ops.is_empty() {
            line.push_str(" OPS");
            for op in s.ops.iter() {
                line.push(' ');
                line.push_str(op.name());
            }
        }
        for (flag, label) in [
            (s.carry_in, "CI"),
            (s.carry_out, "CO"),
            (s.enable, "EN"),
            (s.async_set_reset, "SR"),
            (s.group_pg, "PG"),
        ] {
            if flag {
                line.push(' ');
                line.push_str(label);
            }
        }
        if let Some(style) = &s.style {
            line.push_str(&format!(" STYLE {style}"));
        }
        line.push_str(&format!(" AREA {} DELAY {}", c.area, c.delay));
        if let Some(cd) = c.carry_delay {
            line.push_str(&format!(" CARRY {cd}"));
        }
        if let Some(pd) = c.pg_delay {
            line.push_str(&format!(" PGD {pd}"));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
LIBRARY demo
CELL ND2  GATE_NAND W 1 N 2 AREA 1.0 DELAY 0.7   # trailing comment
CELL ADD4 ADDSUB W 4 OPS ADD CI CO AREA 26 DELAY 5.0 CARRY 3.0
CELL CLA4 CLA_GEN N 4 CI AREA 14 DELAY 2.0 PGD 1.7
";

    #[test]
    fn parses_sample() {
        let lib = parse(SAMPLE).unwrap();
        assert_eq!(lib.name(), "demo");
        assert_eq!(lib.len(), 3);
        let add4 = lib.cell("ADD4").unwrap();
        assert_eq!(add4.spec.width, 4);
        assert!(add4.spec.carry_in && add4.spec.carry_out);
        assert_eq!(add4.carry_delay, Some(3.0));
        let cla = lib.cell("CLA4").unwrap();
        assert_eq!(cla.spec.inputs, 4);
        assert_eq!(cla.pg_delay, Some(1.7));
    }

    #[test]
    fn roundtrip_print_parse() {
        let lib = parse(SAMPLE).unwrap();
        let text = print(&lib);
        let lib2 = parse(&text).unwrap();
        assert_eq!(lib2.len(), lib.len());
        for c in lib.cells() {
            let c2 = lib2.cell(&c.name).unwrap();
            assert_eq!(c2.spec, c.spec, "spec drift for {}", c.name);
            assert_eq!(c2.area, c.area);
            assert_eq!(c2.delay, c.delay);
            assert_eq!(c2.carry_delay, c.carry_delay);
            assert_eq!(c2.pg_delay, c.pg_delay);
        }
    }

    #[test]
    fn rejects_unknown_directive() {
        let e = parse("LIBRARY x\nFROB y\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_cell_before_library() {
        let e = parse("CELL ND2 GATE_NAND W 1 N 2 AREA 1 DELAY 1\n").unwrap_err();
        assert!(e.message.contains("before LIBRARY"));
    }

    #[test]
    fn rejects_missing_area() {
        let e = parse("LIBRARY x\nCELL ND2 GATE_NAND W 1 N 2 DELAY 1\n").unwrap_err();
        assert!(e.message.contains("AREA"));
    }

    #[test]
    fn rejects_unknown_kind_and_op() {
        assert!(parse("LIBRARY x\nCELL A WIDGET AREA 1 DELAY 1\n").is_err());
        assert!(parse("LIBRARY x\nCELL A ADDSUB W 1 OPS FROB AREA 1 DELAY 1\n").is_err());
    }

    #[test]
    fn rejects_duplicates() {
        let text =
            "LIBRARY x\nCELL A GATE_NOT W 1 AREA 1 DELAY 1\nCELL A GATE_NOT W 1 AREA 1 DELAY 1\n";
        assert!(parse(text).unwrap_err().message.contains("duplicate cell"));
        assert!(parse("LIBRARY x\nLIBRARY y\n").is_err());
    }

    #[test]
    fn empty_ops_rejected() {
        let e = parse("LIBRARY x\nCELL A ADDSUB W 1 OPS AREA 1 DELAY 1\n").unwrap_err();
        assert!(e.message.contains("OPS"));
    }
}
