//! A single RTL library cell.

use genus::component::PortClass;
use genus::spec::ComponentSpec;
use std::fmt;

/// One macrocell of a technology library.
///
/// Functionality is carried by a [`ComponentSpec`] — the exact
/// representation DTAS uses for generic components — so technology mapping
/// is a *functional match*, never graph isomorphism (paper §5).
///
/// # Examples
///
/// ```
/// use cells::cell::Cell;
/// use genus::spec::ComponentSpec;
/// use genus::kind::ComponentKind;
/// use genus::op::{Op, OpSet};
///
/// let fa = Cell::new(
///     "FA1A",
///     ComponentSpec::new(ComponentKind::AddSub, 1)
///         .with_ops(OpSet::only(Op::Add))
///         .with_carry_in(true)
///         .with_carry_out(true),
///     7.0,
///     2.4,
/// )
/// .with_carry_delay(1.9);
/// assert_eq!(fa.area, 7.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Databook cell name (e.g. `ADD4`).
    pub name: String,
    /// Functional specification.
    pub spec: ComponentSpec,
    /// Area in equivalent two-input NAND gates.
    pub area: f64,
    /// Worst-case delay from a data input to any output, ns.
    pub delay: f64,
    /// Delay from the carry input to any output (the ripple path), ns.
    /// Defaults to `delay` when absent.
    pub carry_delay: Option<f64>,
    /// Delay from data inputs to group propagate/generate (status)
    /// outputs, ns. Defaults to `delay` when absent.
    pub pg_delay: Option<f64>,
}

impl Cell {
    /// Creates a cell with a single worst-case delay.
    pub fn new(name: &str, spec: ComponentSpec, area: f64, delay: f64) -> Self {
        Cell {
            name: name.to_string(),
            spec,
            area,
            delay,
            carry_delay: None,
            pg_delay: None,
        }
    }

    /// Sets the carry-in → output delay.
    pub fn with_carry_delay(mut self, d: f64) -> Self {
        self.carry_delay = Some(d);
        self
    }

    /// Sets the data → propagate/generate delay.
    pub fn with_pg_delay(mut self, d: f64) -> Self {
        self.pg_delay = Some(d);
        self
    }

    /// Pin-to-pin delay between port classes: the timing-arc model used by
    /// critical-path estimation.
    ///
    /// * carry-in → anything uses the (usually much faster) carry arc;
    /// * anything → status (P/G flags) uses the P/G arc;
    /// * everything else uses the worst-case data delay.
    pub fn arc_delay(&self, from: PortClass, to: PortClass) -> f64 {
        if from == PortClass::CarryIn {
            self.carry_delay.unwrap_or(self.delay)
        } else if to == PortClass::Status {
            self.pg_delay.unwrap_or(self.delay)
        } else {
            self.delay
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {:.1} gates {:.1} ns",
            self.name, self.spec, self.area, self.delay
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genus::kind::ComponentKind;
    use genus::op::{Op, OpSet};

    fn adder() -> Cell {
        Cell::new(
            "ADD4",
            ComponentSpec::new(ComponentKind::AddSub, 4)
                .with_ops(OpSet::only(Op::Add))
                .with_carry_in(true)
                .with_carry_out(true),
            26.0,
            5.0,
        )
        .with_carry_delay(3.0)
    }

    #[test]
    fn arc_delay_prefers_carry_path() {
        let c = adder();
        assert_eq!(c.arc_delay(PortClass::CarryIn, PortClass::CarryOut), 3.0);
        assert_eq!(c.arc_delay(PortClass::Data, PortClass::CarryOut), 5.0);
        assert_eq!(c.arc_delay(PortClass::Data, PortClass::Data), 5.0);
    }

    #[test]
    fn pg_delay_used_for_status_outputs() {
        let c = adder().with_pg_delay(3.4);
        assert_eq!(c.arc_delay(PortClass::Data, PortClass::Status), 3.4);
        assert_eq!(c.arc_delay(PortClass::CarryIn, PortClass::Status), 3.0);
    }

    #[test]
    fn defaults_to_worst_case() {
        let c = Cell::new(
            "X",
            ComponentSpec::new(ComponentKind::BufferComp, 1),
            1.0,
            0.8,
        );
        assert_eq!(c.arc_delay(PortClass::CarryIn, PortClass::Data), 0.8);
        assert_eq!(c.arc_delay(PortClass::Data, PortClass::Status), 0.8);
    }

    #[test]
    fn display_mentions_name_and_cost() {
        let s = adder().to_string();
        assert!(s.contains("ADD4"));
        assert!(s.contains("26.0 gates"));
    }
}
