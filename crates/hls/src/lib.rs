//! High-level synthesis front end: behavioral specifications to GENUS
//! netlists and state sequencing tables.
//!
//! The paper's system architecture (Figure 1) feeds DTAS from "high-level
//! synthesis tools such as state schedulers, component allocators,
//! component and connectivity binders" that "progressively transform the
//! abstract behavioral design specification into a state sequencing table
//! and a netlist of GENUS components". The original used VSS; this crate
//! is a compact reimplementation of that pipeline:
//!
//! * [`lang`] — a small behavioral language (entities with ports,
//!   variables, assignments, `if`/`while`);
//! * [`mod@compile`] — state scheduling (hazard- and resource-limited packing
//!   of assignments into control steps), component allocation (shared
//!   adder/subtractor and comparator units), component binding
//!   (operations onto GENUS components) and connectivity binding
//!   (operand/register multiplexers);
//! * [`statetable`] — the control-based state sequencing table (the
//!   paper's BIF role) consumed by the `controlc` control compiler.
//!
//! # Examples
//!
//! ```
//! use hls::compile::{compile, Constraints};
//! use hls::lang::parse_entity;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//! entity accumulate(x: in 8, total: out 8) {
//!     var acc: 8;
//!     acc = acc + x;
//!     acc = acc + x;
//!     total = acc;
//! }";
//! let entity = parse_entity(src)?;
//! let design = compile(&entity, &Constraints::default())?;
//! assert!(design.netlist.validate().is_ok());
//! assert!(design.state_table.states().len() >= 3);
//! # Ok(())
//! # }
//! ```

pub mod compile;
pub mod lang;
pub mod statetable;

pub use compile::{compile, Constraints, Design};
pub use lang::{parse_entity, Entity};
pub use statetable::{StateTable, Transition};
