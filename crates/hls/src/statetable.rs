//! The state sequencing table — the paper's control-based BIF role.
//!
//! High-level synthesis outputs "a state sequencing table" alongside the
//! GENUS netlist (paper §1, §7). Each state asserts control values
//! (register write-enables, multiplexer selects, function-unit modes) and
//! names its successor, possibly conditioned on a datapath status bit.

use rtl_base::table::{Align, TextTable};
use std::collections::BTreeMap;
use std::fmt;

/// Transition out of a state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Transition {
    /// Unconditional next state.
    Next(usize),
    /// Two-way branch on a 1-bit datapath status net.
    Branch {
        /// Status net name.
        cond: String,
        /// Successor when the bit is 1.
        if_true: usize,
        /// Successor when the bit is 0.
        if_false: usize,
    },
    /// Terminal state (self-loop).
    Done,
}

/// One state: asserted control values plus the transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct State {
    /// Human-readable label (e.g. `s3_loop_test`).
    pub name: String,
    /// Control net → asserted value. Unlisted controls are zero.
    pub asserts: BTreeMap<String, u64>,
    /// Where to go next.
    pub transition: Transition,
}

/// The state sequencing table. State 0 is the reset state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StateTable {
    states: Vec<State>,
    /// All control nets with widths (the controller's output signature).
    controls: BTreeMap<String, usize>,
}

impl StateTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        StateTable::default()
    }

    /// Declares a control net (idempotent; widens if redeclared wider).
    pub fn declare_control(&mut self, name: &str, width: usize) {
        let w = self.controls.entry(name.to_string()).or_insert(width);
        *w = (*w).max(width);
    }

    /// Appends a state, returning its index.
    pub fn push_state(&mut self, state: State) -> usize {
        self.states.push(state);
        self.states.len() - 1
    }

    /// All states.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// Mutable state access (the compiler patches transitions).
    pub fn state_mut(&mut self, idx: usize) -> &mut State {
        &mut self.states[idx]
    }

    /// Declared control nets with widths, in name order.
    pub fn controls(&self) -> impl Iterator<Item = (&str, usize)> {
        self.controls.iter().map(|(n, w)| (n.as_str(), *w))
    }

    /// Status nets referenced by branches, in first-use order.
    pub fn statuses(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.states {
            if let Transition::Branch { cond, .. } = &s.transition {
                if !out.contains(cond) {
                    out.push(cond.clone());
                }
            }
        }
        out
    }

    /// Validates transition targets.
    ///
    /// # Errors
    ///
    /// Returns a message naming the out-of-range target.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.states.len();
        for (i, s) in self.states.iter().enumerate() {
            let targets: Vec<usize> = match &s.transition {
                Transition::Next(t) => vec![*t],
                Transition::Branch {
                    if_true, if_false, ..
                } => vec![*if_true, *if_false],
                Transition::Done => vec![],
            };
            for t in targets {
                if t >= n {
                    return Err(format!("state {i} ({}) targets missing state {t}", s.name));
                }
            }
            for name in s.asserts.keys() {
                if !self.controls.contains_key(name) {
                    return Err(format!("state {i} asserts undeclared control {name}"));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for StateTable {
    /// BIF-flavored rendering: one row per state.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(vec!["#", "state", "asserts", "next"]);
        t.align(0, Align::Right);
        for (i, s) in self.states.iter().enumerate() {
            let asserts = if s.asserts.is_empty() {
                "-".to_string()
            } else {
                s.asserts
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let next = match &s.transition {
                Transition::Next(n) => format!("-> {n}"),
                Transition::Branch {
                    cond,
                    if_true,
                    if_false,
                } => format!("{cond} ? {if_true} : {if_false}"),
                Transition::Done => "done".to_string(),
            };
            t.row(vec![i.to_string(), s.name.clone(), asserts, next]);
        }
        f.write_str(&t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> StateTable {
        let mut t = StateTable::new();
        t.declare_control("we_a", 1);
        t.push_state(State {
            name: "s0".into(),
            asserts: [("we_a".to_string(), 1u64)].into_iter().collect(),
            transition: Transition::Next(1),
        });
        t.push_state(State {
            name: "s1".into(),
            asserts: BTreeMap::new(),
            transition: Transition::Branch {
                cond: "eq".into(),
                if_true: 0,
                if_false: 1,
            },
        });
        t
    }

    #[test]
    fn validates_and_displays() {
        let t = simple();
        t.validate().unwrap();
        let s = t.to_string();
        assert!(s.contains("we_a=1"));
        assert!(s.contains("eq ? 0 : 1"));
    }

    #[test]
    fn statuses_in_first_use_order() {
        let t = simple();
        assert_eq!(t.statuses(), vec!["eq".to_string()]);
    }

    #[test]
    fn bad_target_rejected() {
        let mut t = simple();
        t.state_mut(0).transition = Transition::Next(9);
        assert!(t.validate().is_err());
    }

    #[test]
    fn undeclared_control_rejected() {
        let mut t = simple();
        t.state_mut(0).asserts.insert("ghost".into(), 1);
        assert!(t.validate().is_err());
    }
}
