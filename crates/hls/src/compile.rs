//! Scheduling, allocation and binding: behavioral entities to a GENUS
//! datapath netlist plus a state sequencing table.
//!
//! The pipeline follows the paper's Figure-1 boxes:
//!
//! 1. **State scheduling** — assignments pack greedily into control steps
//!    under read-after-write hazards and function-unit resource limits
//!    ([`Constraints`]); `if`/`while` conditions get their own test
//!    states.
//! 2. **Component allocation** — one shared adder/subtractor (and
//!    comparator) per concurrent arithmetic operation, sized per operand
//!    width.
//! 3. **Component binding** — each operation binds to a GENUS component
//!    instance (`ADDSUB`, `COMPARATOR`, gates, registers).
//! 4. **Connectivity binding** — operand and register-input multiplexers
//!    are inserted wherever a shared resource sees different sources in
//!    different states.

use crate::lang::{BinOp, Dir, Entity, Expr, Stmt};
use crate::statetable::{State, StateTable, Transition};
use genus::build::select_width;
use genus::component::Instance;
use genus::kind::GateOp;
use genus::netlist::{Netlist, NetlistError};
use genus::op::{Op, OpSet};
use genus::stdlib::GenusLibrary;
use rtl_base::bits::Bits;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Resource constraints for the state scheduler.
#[derive(Clone, Copy, Debug)]
pub struct Constraints {
    /// Add/subtract operations allowed per state.
    pub max_addsub: usize,
    /// Comparisons allowed per state.
    pub max_compare: usize,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            max_addsub: 1,
            max_compare: 1,
        }
    }
}

/// Compilation failure.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileError(pub String);

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hls: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

impl From<NetlistError> for CompileError {
    fn from(e: NetlistError) -> Self {
        CompileError(e.to_string())
    }
}

/// The output of high-level synthesis: a GENUS netlist and a state
/// sequencing table, plus the control/status interface between them.
#[derive(Clone, Debug)]
pub struct Design {
    /// Entity name.
    pub entity: String,
    /// The datapath as generic GENUS components. Control nets are exposed
    /// as inputs, status nets as outputs, so the datapath is simulatable
    /// stand-alone or after linking with a compiled controller.
    pub netlist: Netlist,
    /// The state sequencing table.
    pub state_table: StateTable,
    /// Control nets (name, width) the controller must drive.
    pub controls: Vec<(String, usize)>,
    /// Status nets the controller reads.
    pub statuses: Vec<String>,
}

impl Design {
    /// An allocation/binding summary: component counts by kind, states,
    /// and the control interface width.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
        for inst in self.netlist.instances() {
            *by_kind.entry(inst.component.kind().name()).or_insert(0) += 1;
        }
        let mut out = format!(
            "design {}: {} states, {} GENUS instances, {} control nets, {} status nets\n",
            self.entity,
            self.state_table.states().len(),
            self.netlist.instances().len(),
            self.controls.len(),
            self.statuses.len()
        );
        for (kind, count) in by_kind {
            let _ = writeln!(out, "  {count:>3} x {kind}");
        }
        out
    }
}

// ---------------------------------------------------------------------
// Phase 1: scheduling into proto-states.

#[derive(Clone, Debug)]
enum Proto {
    Work(Vec<(String, Expr)>),
    Test(Expr),
    Done,
}

#[derive(Clone, Debug)]
enum ProtoNext {
    Unset,
    Next(usize),
    Branch(usize, usize),
}

struct Scheduler<'a> {
    entity: &'a Entity,
    constraints: Constraints,
    states: Vec<(Proto, ProtoNext)>,
}

fn expr_counts(e: &Expr) -> (usize, usize) {
    match e {
        Expr::Var(_) | Expr::Lit(_) => (0, 0),
        Expr::Not(inner) => expr_counts(inner),
        Expr::Bin(op, l, r) => {
            let (la, lc) = expr_counts(l);
            let (ra, rc) = expr_counts(r);
            (
                la + ra + usize::from(op.is_arith()),
                lc + rc + usize::from(op.is_comparison()),
            )
        }
    }
}

fn expr_reads(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Var(v) => {
            if !out.contains(v) {
                out.push(v.clone());
            }
        }
        Expr::Lit(_) => {}
        Expr::Not(inner) => expr_reads(inner, out),
        Expr::Bin(_, l, r) => {
            expr_reads(l, out);
            expr_reads(r, out);
        }
    }
}

impl<'a> Scheduler<'a> {
    /// Schedules a statement list; returns (entry, dangling exits).
    fn seq(&mut self, stmts: &[Stmt]) -> (Option<usize>, Vec<usize>) {
        let mut entry: Option<usize> = None;
        let mut dangling: Vec<usize> = Vec::new();
        let mut pack: Vec<(String, Expr)> = Vec::new();
        let mut written: Vec<String> = Vec::new();
        let mut arith = 0usize;
        let mut cmp = 0usize;

        macro_rules! link_to {
            ($idx:expr) => {{
                let idx = $idx;
                if entry.is_none() {
                    entry = Some(idx);
                }
                for d in dangling.drain(..) {
                    // Fill only the dangling slot: branch states keep
                    // their taken edge.
                    patch_branch(&mut self.states[d].1, idx);
                }
            }};
        }

        macro_rules! flush {
            () => {
                if !pack.is_empty() {
                    let idx = self.states.len();
                    self.states
                        .push((Proto::Work(std::mem::take(&mut pack)), ProtoNext::Unset));
                    written.clear();
                    #[allow(unused_assignments)]
                    {
                        arith = 0;
                        cmp = 0;
                    }
                    link_to!(idx);
                    dangling.push(idx);
                }
            };
        }

        for stmt in stmts {
            match stmt {
                Stmt::Assign(target, expr) => {
                    let (ea, ec) = expr_counts(expr);
                    let mut reads = Vec::new();
                    expr_reads(expr, &mut reads);
                    let hazard =
                        written.contains(target) || reads.iter().any(|r| written.contains(r));
                    let over = arith + ea > self.constraints.max_addsub
                        || cmp + ec > self.constraints.max_compare;
                    if hazard || over {
                        flush!();
                    }
                    pack.push((target.clone(), expr.clone()));
                    written.push(target.clone());
                    arith += ea;
                    cmp += ec;
                }
                Stmt::If(cond, then_body, else_body) => {
                    flush!();
                    let test = self.states.len();
                    self.states
                        .push((Proto::Test(cond.clone()), ProtoNext::Unset));
                    link_to!(test);
                    let (t_entry, mut t_exits) = self.seq(then_body);
                    let (f_entry, mut f_exits) = self.seq(else_body);
                    // Branches with empty bodies fall through to the join;
                    // the test state itself dangles for those.
                    let join_true = t_entry;
                    let join_false = f_entry;
                    match (join_true, join_false) {
                        (Some(t), Some(fl)) => {
                            self.states[test].1 = ProtoNext::Branch(t, fl);
                        }
                        (Some(t), None) => {
                            self.states[test].1 = ProtoNext::Branch(t, usize::MAX);
                            f_exits.push(test); // false edge joins
                        }
                        (None, Some(fl)) => {
                            self.states[test].1 = ProtoNext::Branch(usize::MAX, fl);
                            t_exits.push(test); // true edge joins
                        }
                        (None, None) => {
                            self.states[test].1 = ProtoNext::Branch(usize::MAX, usize::MAX);
                            t_exits.push(test);
                        }
                    }
                    dangling.extend(t_exits);
                    dangling.extend(f_exits);
                }
                Stmt::While(cond, body) => {
                    flush!();
                    let test = self.states.len();
                    self.states
                        .push((Proto::Test(cond.clone()), ProtoNext::Unset));
                    link_to!(test);
                    let (b_entry, b_exits) = self.seq(body);
                    let loop_target = b_entry.unwrap_or(test);
                    self.states[test].1 = ProtoNext::Branch(loop_target, usize::MAX);
                    for d in b_exits {
                        self.states[d].1 = ProtoNext::Next(test);
                    }
                    dangling.push(test); // false edge continues
                }
            }
        }
        flush!();
        let _ = &self.entity;
        (entry, dangling)
    }
}

/// Patches `usize::MAX` placeholders in a branch to `target`.
fn patch_branch(next: &mut ProtoNext, target: usize) {
    if let ProtoNext::Branch(t, f) = next {
        if *t == usize::MAX {
            *t = target;
        }
        if *f == usize::MAX {
            *f = target;
        }
    } else if matches!(next, ProtoNext::Unset) {
        *next = ProtoNext::Next(target);
    }
}

// ---------------------------------------------------------------------
// Phase 2: allocation, binding and connectivity.

/// One use of a shared two-operand unit.
#[derive(Clone, Debug)]
struct UnitUse {
    state: usize,
    a: String,
    b: String,
    /// `true` = subtract (adder units only).
    sub: bool,
}

#[derive(Clone, Debug, Default)]
struct Unit {
    uses: Vec<UnitUse>,
    /// Comparator flag outputs actually read (`"eq"`, `"lt"`, `"gt"`);
    /// unread flags get no net, so the emitted netlist carries no
    /// dead comparator outputs.
    flags: BTreeSet<&'static str>,
}

struct Binder<'a> {
    entity: &'a Entity,
    netlist: Netlist,
    lib: GenusLibrary,
    /// (width, index) → adder unit.
    adders: BTreeMap<(usize, usize), Unit>,
    /// (width, index) → comparator unit.
    comparators: BTreeMap<(usize, usize), Unit>,
    /// per-state running counters.
    state_adders: usize,
    state_cmps: usize,
    /// Constant nets already created: (width, value) → net.
    consts: BTreeMap<(usize, u64), String>,
    gate_counter: usize,
    /// register → (state, source net) writes.
    reg_writes: BTreeMap<String, Vec<(usize, String)>>,
    /// extra per-state asserts discovered during lowering.
    asserts: BTreeMap<usize, BTreeMap<String, u64>>,
}

impl<'a> Binder<'a> {
    fn const_net(&mut self, width: usize, value: u64) -> Result<String, CompileError> {
        if let Some(n) = self.consts.get(&(width, value)) {
            return Ok(n.clone());
        }
        let name = format!("const_w{width}_{value}");
        self.netlist
            .add_const_net(&name, Bits::from_u64(width, value))?;
        self.consts.insert((width, value), name.clone());
        Ok(name)
    }

    fn fresh_gate(&mut self, prefix: &str) -> String {
        self.gate_counter += 1;
        format!("{prefix}{}", self.gate_counter)
    }

    fn gate(&mut self, op: GateOp, width: usize, inputs: &[&str]) -> Result<String, CompileError> {
        let name = self.fresh_gate("g");
        let comp = self
            .lib
            .gate(op, width, inputs.len().max(1))
            .map_err(|e| CompileError(e.to_string()))?;
        let out_net = format!("{name}_o");
        self.netlist.add_net(&out_net, width)?;
        let mut inst = Instance::new(&name, Arc::new(comp));
        for (i, net) in inputs.iter().enumerate() {
            inst.connect(&format!("I{i}"), net);
        }
        inst.connect("O", &out_net);
        self.netlist.add_instance(inst)?;
        Ok(out_net)
    }

    /// Width of an expression (literals inherit from siblings).
    fn width_of(&self, e: &Expr) -> Option<usize> {
        match e {
            Expr::Var(v) => self.entity.width_of(v),
            Expr::Lit(_) => None,
            Expr::Not(inner) => self.width_of(inner),
            Expr::Bin(op, l, r) => {
                if op.is_comparison() {
                    Some(1)
                } else {
                    self.width_of(l).or_else(|| self.width_of(r))
                }
            }
        }
    }

    /// Lowers an expression in a state, returning the net carrying its
    /// value.
    fn lower(&mut self, state: usize, e: &Expr, want_width: usize) -> Result<String, CompileError> {
        match e {
            Expr::Var(v) => Ok(value_net(self.entity, v)),
            Expr::Lit(n) => self.const_net(want_width, *n),
            Expr::Not(inner) => {
                let src = self.lower(state, inner, want_width)?;
                self.gate(GateOp::Not, want_width, &[&src])
            }
            Expr::Bin(op, l, r) => {
                let w = match op.is_comparison() {
                    true => self
                        .width_of(l)
                        .or_else(|| self.width_of(r))
                        .ok_or_else(|| CompileError("comparison of two literals".to_string()))?,
                    false => want_width,
                };
                let a = self.lower(state, l, w)?;
                let b = self.lower(state, r, w)?;
                match op {
                    BinOp::And => self.gate(GateOp::And, w, &[&a, &b]),
                    BinOp::Or => self.gate(GateOp::Or, w, &[&a, &b]),
                    BinOp::Xor => self.gate(GateOp::Xor, w, &[&a, &b]),
                    BinOp::Add | BinOp::Sub => {
                        let idx = self.state_adders;
                        self.state_adders += 1;
                        let unit = self.adders.entry((w, idx)).or_default();
                        unit.uses.push(UnitUse {
                            state,
                            a,
                            b,
                            sub: *op == BinOp::Sub,
                        });
                        Ok(format!("au_w{w}_{idx}_o"))
                    }
                    cmp => {
                        let idx = self.state_cmps;
                        self.state_cmps += 1;
                        let flag = match cmp {
                            BinOp::Eq | BinOp::Ne => "eq",
                            BinOp::Lt | BinOp::Ge => "lt",
                            BinOp::Gt | BinOp::Le => "gt",
                            _ => unreachable!(),
                        };
                        let unit = self.comparators.entry((w, idx)).or_default();
                        unit.uses.push(UnitUse {
                            state,
                            a,
                            b,
                            sub: false,
                        });
                        unit.flags.insert(flag);
                        // The flag net exists once the unit is
                        // materialized (only read flags get a net).
                        let flag_net = format!("cu_w{w}_{idx}_{flag}");
                        match cmp {
                            BinOp::Ne | BinOp::Ge | BinOp::Le => {
                                self.gate(GateOp::Not, 1, &[&flag_net])
                            }
                            _ => Ok(flag_net),
                        }
                    }
                }
            }
        }
    }

    /// Builds a mux in front of `pin_net` when `sources` disagree across
    /// states; returns asserted select values per state.
    fn mux_or_wire(
        &mut self,
        name: &str,
        width: usize,
        pin_net: &str,
        sources: &[(usize, String)],
    ) -> Result<BTreeMap<usize, u64>, CompileError> {
        let mut distinct: Vec<&str> = Vec::new();
        for (_, src) in sources {
            if !distinct.contains(&src.as_str()) {
                distinct.push(src);
            }
        }
        let mut selects = BTreeMap::new();
        if distinct.len() == 1 {
            // Alias: wire straight through with a buffer (keeps the net
            // names stable without signal aliasing in genus netlists).
            let comp = self
                .lib
                .buffer(width)
                .map_err(|e| CompileError(e.to_string()))?;
            self.netlist.add_instance(
                Instance::new(&format!("{name}_buf"), Arc::new(comp))
                    .with_connection("I", distinct[0])
                    .with_connection("O", pin_net),
            )?;
            return Ok(selects);
        }
        let comp = self
            .lib
            .mux(width, distinct.len())
            .map_err(|e| CompileError(e.to_string()))?;
        let sel_net = format!("{name}_sel");
        self.netlist
            .add_net(&sel_net, select_width(distinct.len()))?;
        let mut inst = Instance::new(name, Arc::new(comp));
        for (i, src) in distinct.iter().enumerate() {
            inst.connect(&format!("I{i}"), src);
        }
        inst.connect("S", &sel_net);
        inst.connect("O", pin_net);
        self.netlist.add_instance(inst)?;
        for (state, src) in sources {
            let idx = distinct
                .iter()
                .position(|d| d == src)
                .expect("collected above") as u64;
            selects.insert(*state, idx);
        }
        Ok(selects)
    }
}

/// The net carrying a name's current value (register Q or input port).
fn value_net(entity: &Entity, name: &str) -> String {
    if entity
        .ports
        .iter()
        .any(|p| p.name == name && p.dir == Dir::In)
    {
        format!("in_{name}")
    } else {
        format!("q_{name}")
    }
}

/// Compiles a behavioral entity into a [`Design`].
///
/// # Errors
///
/// [`CompileError`] on width mismatches or malformed programs.
pub fn compile(entity: &Entity, constraints: &Constraints) -> Result<Design, CompileError> {
    // ---- Phase 1: schedule. ----
    let mut scheduler = Scheduler {
        entity,
        constraints: *constraints,
        states: Vec::new(),
    };
    let (entry, dangling) = scheduler.seq(&entity.body);
    let mut proto = scheduler.states;
    let done_idx = proto.len();
    proto.push((Proto::Done, ProtoNext::Next(done_idx)));
    for d in dangling {
        patch_branch(&mut proto[d].1, done_idx);
    }
    // Shift so that entry is state 0 when it isn't already (proto states
    // are created in program order, so entry is 0 or the program is
    // empty).
    let entry = entry.unwrap_or(done_idx);
    if entry != 0 {
        return Err(CompileError(
            "internal: entry state must be first".to_string(),
        ));
    }

    // ---- Phase 2: bind. ----
    let mut binder = Binder {
        entity,
        netlist: Netlist::new(&entity.name),
        lib: GenusLibrary::standard(),
        adders: BTreeMap::new(),
        comparators: BTreeMap::new(),
        state_adders: 0,
        state_cmps: 0,
        consts: BTreeMap::new(),
        gate_counter: 0,
        reg_writes: BTreeMap::new(),
        asserts: BTreeMap::new(),
    };

    // Clock and input ports.
    binder.netlist.add_net("clk", 1)?;
    binder.netlist.expose_input("clk", "clk")?;
    for p in &entity.ports {
        if p.dir == Dir::In {
            let net = format!("in_{}", p.name);
            binder.netlist.add_net(&net, p.width)?;
            binder.netlist.expose_input(&p.name, &net)?;
        }
    }
    // Registers: variables and output ports.
    let mut registers: Vec<(String, usize)> = entity.vars.clone();
    for p in &entity.ports {
        if p.dir == Dir::Out {
            registers.push((p.name.clone(), p.width));
        }
    }
    for (name, width) in &registers {
        binder.netlist.add_net(&format!("q_{name}"), *width)?;
    }

    // Pre-create adder/comparator output nets so expression lowering can
    // reference them before the units are materialized: nets are created
    // lazily on first use instead, via a fixup pass below. To keep one
    // pass, lower first while collecting unit uses, then materialize.
    let mut statuses: Vec<String> = Vec::new();
    let mut transitions: Vec<Transition> = Vec::new();
    let mut work_assigns: Vec<Vec<(String, String)>> = Vec::new(); // per state: (reg, src net)
    for (idx, (p, next)) in proto.iter().enumerate() {
        binder.state_adders = 0;
        binder.state_cmps = 0;
        match p {
            Proto::Work(assigns) => {
                let mut bound = Vec::new();
                for (target, expr) in assigns {
                    let width = entity
                        .width_of(target)
                        .ok_or_else(|| CompileError(format!("unknown target {target}")))?;
                    let src = binder.lower(idx, expr, width)?;
                    binder
                        .reg_writes
                        .entry(target.clone())
                        .or_default()
                        .push((idx, src.clone()));
                    bound.push((target.clone(), src));
                }
                work_assigns.push(bound);
            }
            Proto::Test(cond) => {
                let net = binder.lower(idx, cond, 1)?;
                if !statuses.contains(&net) {
                    statuses.push(net.clone());
                }
                work_assigns.push(Vec::new());
                if let ProtoNext::Branch(t, f) = next {
                    transitions.push(Transition::Branch {
                        cond: net,
                        if_true: *t,
                        if_false: *f,
                    });
                    continue;
                }
            }
            Proto::Done => {
                work_assigns.push(Vec::new());
            }
        }
        transitions.push(match next {
            ProtoNext::Next(n) => {
                if *n == idx && matches!(p, Proto::Done) {
                    Transition::Done
                } else {
                    Transition::Next(*n)
                }
            }
            ProtoNext::Branch(t, f) => Transition::Branch {
                cond: "?".to_string(),
                if_true: *t,
                if_false: *f,
            },
            ProtoNext::Unset => Transition::Done,
        });
    }

    // Materialize adder units.
    let adders = std::mem::take(&mut binder.adders);
    for ((w, k), unit) in &adders {
        let base = format!("au_w{w}_{k}");
        let modes: Vec<bool> = unit.uses.iter().map(|u| u.sub).collect();
        let any_add = modes.iter().any(|&m| !m);
        let any_sub = modes.iter().any(|&m| m);
        let ops: OpSet = match (any_add, any_sub) {
            (true, true) => [Op::Add, Op::Sub].into_iter().collect(),
            (false, true) => OpSet::only(Op::Sub),
            _ => OpSet::only(Op::Add),
        };
        let comp = binder
            .lib
            .generator("ADDSUB")
            .expect("standard library")
            .instantiate(
                &genus::params::Params::new()
                    .with(
                        genus::params::names::INPUT_WIDTH,
                        genus::params::ParamValue::Width(*w),
                    )
                    .with(
                        genus::params::names::FUNCTION_LIST,
                        genus::params::ParamValue::Ops(ops),
                    ),
            )
            .map_err(|e| CompileError(e.to_string()))?;
        let a_pin = format!("{base}_a");
        let b_pin = format!("{base}_b");
        let o_net = format!("{base}_o");
        binder.netlist.add_net(&a_pin, *w)?;
        binder.netlist.add_net(&b_pin, *w)?;
        binder.netlist.add_net(&o_net, *w)?;
        let mut inst = Instance::new(&base, Arc::new(comp));
        inst.connect("A", &a_pin);
        inst.connect("B", &b_pin);
        inst.connect("O", &o_net);
        // Carry-in: 0 for add, 1 for subtract; the mode select doubles as
        // carry-in when both operations are bound.
        if any_add && any_sub {
            let mode_net = format!("{base}_mode");
            binder.netlist.add_net(&mode_net, 1)?;
            inst.connect("S", &mode_net);
            inst.connect("CI", &mode_net);
            for u in &unit.uses {
                binder
                    .asserts
                    .entry(u.state)
                    .or_default()
                    .insert(mode_net.clone(), u.sub as u64);
            }
        } else if any_sub {
            let one = binder.const_net(1, 1)?;
            inst.connect("CI", &one);
        } else {
            let zero = binder.const_net(1, 0)?;
            inst.connect("CI", &zero);
        }
        binder.netlist.add_instance(inst)?;
        let a_sources: Vec<(usize, String)> =
            unit.uses.iter().map(|u| (u.state, u.a.clone())).collect();
        let b_sources: Vec<(usize, String)> =
            unit.uses.iter().map(|u| (u.state, u.b.clone())).collect();
        for (tag, pin, sources) in [("amux", a_pin, a_sources), ("bmux", b_pin, b_sources)] {
            let sel = binder.mux_or_wire(&format!("{base}_{tag}"), *w, &pin, &sources)?;
            for (state, v) in sel {
                binder
                    .asserts
                    .entry(state)
                    .or_default()
                    .insert(format!("{base}_{tag}_sel"), v);
            }
        }
    }

    // Materialize comparator units.
    let comparators = std::mem::take(&mut binder.comparators);
    for ((w, k), unit) in &comparators {
        let base = format!("cu_w{w}_{k}");
        let comp = binder
            .lib
            .comparator(*w)
            .map_err(|e| CompileError(e.to_string()))?;
        let a_pin = format!("{base}_a");
        let b_pin = format!("{base}_b");
        binder.netlist.add_net(&a_pin, *w)?;
        binder.netlist.add_net(&b_pin, *w)?;
        let mut inst = Instance::new(&base, Arc::new(comp));
        inst.connect("A", &a_pin);
        inst.connect("B", &b_pin);
        // Only read flags get a net; output ports may stay unconnected,
        // and dead flag nets would be DT101 lint findings downstream.
        for (flag, port) in [("eq", "EQ"), ("lt", "LT"), ("gt", "GT")] {
            if unit.flags.contains(flag) {
                binder.netlist.add_net(&format!("{base}_{flag}"), 1)?;
                inst.connect(port, &format!("{base}_{flag}"));
            }
        }
        binder.netlist.add_instance(inst)?;
        let a_sources: Vec<(usize, String)> =
            unit.uses.iter().map(|u| (u.state, u.a.clone())).collect();
        let b_sources: Vec<(usize, String)> =
            unit.uses.iter().map(|u| (u.state, u.b.clone())).collect();
        for (tag, pin, sources) in [("amux", a_pin, a_sources), ("bmux", b_pin, b_sources)] {
            let sel = binder.mux_or_wire(&format!("{base}_{tag}"), *w, &pin, &sources)?;
            for (state, v) in sel {
                binder
                    .asserts
                    .entry(state)
                    .or_default()
                    .insert(format!("{base}_{tag}_sel"), v);
            }
        }
    }

    // Materialize registers with write-enable controls and input muxes.
    let reg_writes = std::mem::take(&mut binder.reg_writes);
    for (name, width) in &registers {
        let comp = binder
            .lib
            .register_en(*width)
            .map_err(|e| CompileError(e.to_string()))?;
        let d_net = format!("d_{name}");
        let we_net = format!("we_{name}");
        binder.netlist.add_net(&d_net, *width)?;
        binder.netlist.add_net(&we_net, 1)?;
        binder.netlist.add_instance(
            Instance::new(&format!("reg_{name}"), Arc::new(comp))
                .with_connection("D", &d_net)
                .with_connection("EN", &we_net)
                .with_connection("CLK", "clk")
                .with_connection("Q", &format!("q_{name}")),
        )?;
        let writes = reg_writes.get(name).cloned().unwrap_or_default();
        if writes.is_empty() {
            // Never written: tie D low, enable stays 0.
            let zero = binder.const_net(*width, 0)?;
            let comp = binder
                .lib
                .buffer(*width)
                .map_err(|e| CompileError(e.to_string()))?;
            binder.netlist.add_instance(
                Instance::new(&format!("dmux_{name}_buf"), Arc::new(comp))
                    .with_connection("I", &zero)
                    .with_connection("O", &d_net),
            )?;
        } else {
            let sel = binder.mux_or_wire(&format!("dmux_{name}"), *width, &d_net, &writes)?;
            for (state, v) in sel {
                binder
                    .asserts
                    .entry(state)
                    .or_default()
                    .insert(format!("dmux_{name}_sel"), v);
            }
            for (state, _) in &writes {
                binder
                    .asserts
                    .entry(*state)
                    .or_default()
                    .insert(we_net.clone(), 1);
            }
        }
    }

    // Expose outputs and statuses.
    for p in &entity.ports {
        if p.dir == Dir::Out {
            binder
                .netlist
                .expose_output(&p.name, &format!("q_{}", p.name))?;
        }
    }
    for s in &statuses {
        binder.netlist.expose_output(&format!("st_{s}"), s)?;
    }

    // Control nets become external inputs (driven by the controller after
    // linking).
    let mut controls: Vec<(String, usize)> = Vec::new();
    let mut control_names: Vec<String> = Vec::new();
    for per_state in binder.asserts.values() {
        for name in per_state.keys() {
            if !control_names.contains(name) {
                control_names.push(name.clone());
            }
        }
    }
    for (name, _) in &registers {
        let we = format!("we_{name}");
        if !control_names.contains(&we) {
            control_names.push(we);
        }
    }
    control_names.sort();
    for name in &control_names {
        let width = binder
            .netlist
            .net(name)
            .map(|n| n.width)
            .ok_or_else(|| CompileError(format!("control net {name} missing")))?;
        binder.netlist.expose_input(&format!("ctl_{name}"), name)?;
        controls.push((name.clone(), width));
    }

    // ---- State table. ----
    let mut table = StateTable::new();
    for (name, width) in &controls {
        table.declare_control(name, *width);
    }
    for (idx, (p, _)) in proto.iter().enumerate() {
        let label = match p {
            Proto::Work(_) => format!("s{idx}_work"),
            Proto::Test(_) => format!("s{idx}_test"),
            Proto::Done => format!("s{idx}_done"),
        };
        let asserts = binder.asserts.get(&idx).cloned().unwrap_or_default();
        table.push_state(State {
            name: label,
            asserts,
            transition: transitions[idx].clone(),
        });
    }
    table.validate().map_err(CompileError)?;
    binder.netlist.validate()?;
    let _ = work_assigns;

    Ok(Design {
        entity: entity.name.clone(),
        netlist: binder.netlist,
        state_table: table,
        controls,
        statuses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse_entity;

    const GCD: &str = "
entity gcd(a_in: in 8, b_in: in 8, r: out 8, done: out 1) {
    var a: 8;
    var b: 8;
    a = a_in;
    b = b_in;
    while (a != b) {
        if (a > b) { a = a - b; } else { b = b - a; }
    }
    r = a;
    done = 1;
}";

    #[test]
    fn gcd_compiles_and_validates() {
        let entity = parse_entity(GCD).unwrap();
        let design = compile(&entity, &Constraints::default()).unwrap();
        design.netlist.validate().unwrap();
        design.state_table.validate().unwrap();
        // One shared subtractor serves both a-b and b-a.
        let adders = design
            .netlist
            .instances()
            .iter()
            .filter(|i| i.component.kind() == genus::kind::ComponentKind::AddSub)
            .count();
        assert_eq!(adders, 1, "{}", design.state_table);
        // The while and if conditions produce branch states.
        let branches = design
            .state_table
            .states()
            .iter()
            .filter(|s| matches!(s.transition, Transition::Branch { .. }))
            .count();
        assert_eq!(branches, 2);
        assert!(!design.statuses.is_empty());
    }

    #[test]
    fn hazard_forces_new_state() {
        let src = "
entity t(x: in 8, y: out 8) {
    var a: 8;
    a = x;
    y = a + 1;
}";
        let entity = parse_entity(src).unwrap();
        let design = compile(&entity, &Constraints::default()).unwrap();
        // a=x | y=a+1 cannot share a state (y reads a).
        let works = design
            .state_table
            .states()
            .iter()
            .filter(|s| s.name.ends_with("_work"))
            .count();
        assert_eq!(works, 2, "{}", design.state_table);
    }

    #[test]
    fn resource_limit_forces_new_state() {
        let src = "
entity t(x: in 8, y: out 8, z: out 8) {
    y = x + 1;
    z = x - 1;
}";
        let entity = parse_entity(src).unwrap();
        let tight = compile(&entity, &Constraints::default()).unwrap();
        let works_tight = tight
            .state_table
            .states()
            .iter()
            .filter(|s| s.name.ends_with("_work"))
            .count();
        assert_eq!(works_tight, 2);
        let loose = compile(
            &entity,
            &Constraints {
                max_addsub: 2,
                max_compare: 1,
            },
        )
        .unwrap();
        let works_loose = loose
            .state_table
            .states()
            .iter()
            .filter(|s| s.name.ends_with("_work"))
            .count();
        assert_eq!(works_loose, 1);
        // The loose schedule allocates two adder units.
        let adders = loose
            .netlist
            .instances()
            .iter()
            .filter(|i| i.component.kind() == genus::kind::ComponentKind::AddSub)
            .count();
        assert_eq!(adders, 2);
    }

    #[test]
    fn shared_adder_gets_operand_muxes() {
        let entity = parse_entity(GCD).unwrap();
        let design = compile(&entity, &Constraints::default()).unwrap();
        let muxes = design
            .netlist
            .instances()
            .iter()
            .filter(|i| i.name.contains("amux") || i.name.contains("bmux"))
            .count();
        assert!(muxes >= 2, "operand muxes expected");
    }

    #[test]
    fn empty_else_branch_falls_through() {
        let src = "
entity t(x: in 8, y: out 8) {
    var a: 8;
    a = x;
    if (a > 3) { a = a - 1; }
    y = a;
}";
        let entity = parse_entity(src).unwrap();
        let design = compile(&entity, &Constraints::default()).unwrap();
        design.state_table.validate().unwrap();
    }
}
