//! The behavioral specification language.
//!
//! A deliberately small imperative language: one entity with typed ports,
//! bit-vector variables, assignments, `if`/`else` and `while`. It plays
//! the role of the paper's "abstract behavioral language" input to
//! high-level synthesis.

use std::fmt;

/// Port direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Input port.
    In,
    /// Output port.
    Out,
}

/// A declared port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortDecl {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: Dir,
    /// Width in bits.
    pub width: usize,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl BinOp {
    /// True for comparison operators (1-bit results).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge
        )
    }

    /// True for add/subtract (shared-FU operators).
    pub fn is_arith(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub)
    }
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Variable or input-port reference.
    Var(String),
    /// Literal (width from context).
    Lit(u64),
    /// Bitwise complement.
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `target = expr;`
    Assign(String, Expr),
    /// `if (cond) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { .. }`
    While(Expr, Vec<Stmt>),
}

/// A behavioral entity.
#[derive(Clone, Debug, PartialEq)]
pub struct Entity {
    /// Entity name.
    pub name: String,
    /// Ports.
    pub ports: Vec<PortDecl>,
    /// Variables with widths.
    pub vars: Vec<(String, usize)>,
    /// Body.
    pub body: Vec<Stmt>,
}

impl Entity {
    /// Width of a named variable or port.
    pub fn width_of(&self, name: &str) -> Option<usize> {
        self.vars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, w)| *w)
            .or_else(|| self.ports.iter().find(|p| p.name == name).map(|p| p.width))
    }
}

/// Parse error with (line, message).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Num(u64),
    Sym(&'static str),
}

struct Lexer {
    toks: Vec<(Tok, usize)>,
    at: usize,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let code = raw.split("//").next().unwrap_or("");
        let mut chars = code.chars().peekable();
        while let Some(&c) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
                continue;
            }
            if c.is_ascii_digit() {
                let mut n = 0u64;
                while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                    n = n * 10 + d as u64;
                    chars.next();
                }
                out.push((Tok::Num(n), line));
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(s), line));
                continue;
            }
            chars.next();
            let two = |c2: char,
                       a: &'static str,
                       b: &'static str,
                       chars: &mut std::iter::Peekable<std::str::Chars>| {
                if chars.peek() == Some(&c2) {
                    chars.next();
                    a
                } else {
                    b
                }
            };
            let sym = match c {
                '(' => "(",
                ')' => ")",
                '{' => "{",
                '}' => "}",
                ':' => ":",
                ';' => ";",
                ',' => ",",
                '+' => "+",
                '-' => "-",
                '&' => "&",
                '|' => "|",
                '^' => "^",
                '~' => "~",
                '=' => two('=', "==", "=", &mut chars),
                '!' => {
                    if chars.peek() == Some(&'=') {
                        chars.next();
                        "!="
                    } else {
                        return Err(ParseError {
                            line,
                            message: "stray '!'".to_string(),
                        });
                    }
                }
                '<' => two('=', "<=", "<", &mut chars),
                '>' => two('=', ">=", ">", &mut chars),
                other => {
                    return Err(ParseError {
                        line,
                        message: format!("unexpected character {other:?}"),
                    })
                }
            };
            out.push((Tok::Sym(sym), line));
        }
    }
    Ok(out)
}

impl Lexer {
    fn line(&self) -> usize {
        self.toks.get(self.at).map(|(_, l)| *l).unwrap_or(0)
    }

    fn err(&self, m: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: m.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.at).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.at).map(|(t, _)| t.clone());
        self.at += 1;
        t
    }

    fn sym(&mut self, s: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Sym(t)) if t == s => Ok(()),
            other => Err(self.err(format!("expected {s:?}, found {other:?}"))),
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek() == Some(&Tok::Sym(Box::leak(s.to_string().into_boxed_str()))) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn num(&mut self) -> Result<u64, ParseError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(n),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => Err(self.err(format!("expected {kw:?}, found {other:?}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.addsub()?;
        let op = match self.peek() {
            Some(Tok::Sym("==")) => Some(BinOp::Eq),
            Some(Tok::Sym("!=")) => Some(BinOp::Ne),
            Some(Tok::Sym("<")) => Some(BinOp::Lt),
            Some(Tok::Sym(">")) => Some(BinOp::Gt),
            Some(Tok::Sym("<=")) => Some(BinOp::Le),
            Some(Tok::Sym(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let right = self.addsub()?;
            return Ok(Expr::Bin(op, Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn addsub(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("+")) => BinOp::Add,
                Some(Tok::Sym("-")) => BinOp::Sub,
                Some(Tok::Sym("&")) => BinOp::And,
                Some(Tok::Sym("|")) => BinOp::Or,
                Some(Tok::Sym("^")) => BinOp::Xor,
                _ => break,
            };
            self.next();
            let right = self.term()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Tok::Sym("~")) => {
                self.next();
                Ok(Expr::Not(Box::new(self.term()?)))
            }
            Some(Tok::Sym("(")) => {
                self.next();
                let e = self.expr()?;
                self.sym(")")?;
                Ok(e)
            }
            Some(Tok::Ident(_)) => Ok(Expr::Var(self.ident()?)),
            Some(Tok::Num(_)) => Ok(Expr::Lit(self.num()?)),
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.sym("{")?;
        let mut out = Vec::new();
        while self.peek() != Some(&Tok::Sym("}")) {
            out.push(self.stmt()?);
        }
        self.sym("}")?;
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Tok::Ident(kw)) if kw == "if" => {
                self.next();
                self.sym("(")?;
                let cond = self.expr()?;
                self.sym(")")?;
                let then_body = self.block()?;
                let else_body = if self.peek() == Some(&Tok::Ident("else".to_string())) {
                    self.next();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then_body, else_body))
            }
            Some(Tok::Ident(kw)) if kw == "while" => {
                self.next();
                self.sym("(")?;
                let cond = self.expr()?;
                self.sym(")")?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body))
            }
            _ => {
                let target = self.ident()?;
                self.sym("=")?;
                let e = self.expr()?;
                self.sym(";")?;
                Ok(Stmt::Assign(target, e))
            }
        }
    }
}

/// Parses one behavioral entity from source text.
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors and on references to
/// undeclared names.
pub fn parse_entity(src: &str) -> Result<Entity, ParseError> {
    let mut lx = Lexer {
        toks: lex(src)?,
        at: 0,
    };
    lx.keyword("entity")?;
    let name = lx.ident()?;
    lx.sym("(")?;
    let mut ports = Vec::new();
    loop {
        let pname = lx.ident()?;
        lx.sym(":")?;
        let dir = match lx.ident()?.as_str() {
            "in" => Dir::In,
            "out" => Dir::Out,
            other => {
                return Err(lx.err(format!("expected in/out, found {other}")));
            }
        };
        let width = lx.num()? as usize;
        ports.push(PortDecl {
            name: pname,
            dir,
            width,
        });
        if !lx.eat_sym(",") {
            break;
        }
    }
    lx.sym(")")?;
    lx.sym("{")?;
    let mut vars = Vec::new();
    let mut body = Vec::new();
    while lx.peek() != Some(&Tok::Sym("}")) {
        if lx.peek() == Some(&Tok::Ident("var".to_string())) {
            lx.next();
            let vname = lx.ident()?;
            lx.sym(":")?;
            let width = lx.num()? as usize;
            lx.sym(";")?;
            vars.push((vname, width));
        } else {
            body.push(lx.stmt()?);
        }
    }
    lx.sym("}")?;
    let entity = Entity {
        name,
        ports,
        vars,
        body,
    };
    check_names(&entity)?;
    Ok(entity)
}

fn check_names(entity: &Entity) -> Result<(), ParseError> {
    fn walk_expr(entity: &Entity, e: &Expr) -> Result<(), ParseError> {
        match e {
            Expr::Var(v) => {
                if entity.width_of(v).is_none() {
                    return Err(ParseError {
                        line: 0,
                        message: format!("undeclared name {v}"),
                    });
                }
                if entity
                    .ports
                    .iter()
                    .any(|p| p.name == *v && p.dir == Dir::Out)
                {
                    return Err(ParseError {
                        line: 0,
                        message: format!("output port {v} cannot be read"),
                    });
                }
                Ok(())
            }
            Expr::Lit(_) => Ok(()),
            Expr::Not(inner) => walk_expr(entity, inner),
            Expr::Bin(_, l, r) => {
                walk_expr(entity, l)?;
                walk_expr(entity, r)
            }
        }
    }
    fn walk_stmts(entity: &Entity, stmts: &[Stmt]) -> Result<(), ParseError> {
        for s in stmts {
            match s {
                Stmt::Assign(t, e) => {
                    if entity.width_of(t).is_none() {
                        return Err(ParseError {
                            line: 0,
                            message: format!("undeclared target {t}"),
                        });
                    }
                    if entity
                        .ports
                        .iter()
                        .any(|p| p.name == *t && p.dir == Dir::In)
                    {
                        return Err(ParseError {
                            line: 0,
                            message: format!("input port {t} cannot be assigned"),
                        });
                    }
                    walk_expr(entity, e)?;
                }
                Stmt::If(c, a, b) => {
                    walk_expr(entity, c)?;
                    walk_stmts(entity, a)?;
                    walk_stmts(entity, b)?;
                }
                Stmt::While(c, body) => {
                    walk_expr(entity, c)?;
                    walk_stmts(entity, body)?;
                }
            }
        }
        Ok(())
    }
    walk_stmts(entity, &entity.body)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GCD: &str = "
entity gcd(a_in: in 8, b_in: in 8, r: out 8, done: out 1) {
    var a: 8;
    var b: 8;
    a = a_in;
    b = b_in;
    while (a != b) {
        if (a > b) { a = a - b; } else { b = b - a; }
    }
    r = a;
    done = 1;
}";

    #[test]
    fn parses_gcd() {
        let e = parse_entity(GCD).unwrap();
        assert_eq!(e.name, "gcd");
        assert_eq!(e.ports.len(), 4);
        assert_eq!(e.vars.len(), 2);
        assert_eq!(e.body.len(), 5);
        assert!(matches!(e.body[2], Stmt::While(..)));
    }

    #[test]
    fn width_lookup() {
        let e = parse_entity(GCD).unwrap();
        assert_eq!(e.width_of("a"), Some(8));
        assert_eq!(e.width_of("done"), Some(1));
        assert_eq!(e.width_of("nope"), None);
    }

    #[test]
    fn rejects_undeclared() {
        let err = parse_entity("entity t(x: in 4) { y = x; }").unwrap_err();
        assert!(err.message.contains("undeclared"));
    }

    #[test]
    fn rejects_reading_output() {
        let err = parse_entity("entity t(x: in 4, y: out 4) { y = y + x; }").unwrap_err();
        assert!(err.message.contains("cannot be read"));
    }

    #[test]
    fn rejects_assigning_input() {
        let err = parse_entity("entity t(x: in 4, y: out 4) { x = 1; }").unwrap_err();
        assert!(err.message.contains("cannot be assigned"));
    }

    #[test]
    fn comparison_parses_once() {
        let e = parse_entity("entity t(x: in 4, y: out 1) { y = x <= 3; }").unwrap();
        match &e.body[0] {
            Stmt::Assign(_, Expr::Bin(BinOp::Le, _, _)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_are_ignored() {
        let e = parse_entity("entity t(x: in 4, y: out 4) { // c\n y = x; }").unwrap();
        assert_eq!(e.body.len(), 1);
    }
}
