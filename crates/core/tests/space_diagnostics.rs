use cells::lsi::lsi_logic_subset;
use dtas::{rules::RuleSet, space::*, template::SpecModelCache};
use genus::kind::ComponentKind;
use genus::op::{Op, OpSet};
use genus::spec::ComponentSpec;

#[test]
fn add16_front_diagnostics() {
    let mut space = DesignSpace::new();
    let rules = RuleSet::standard().with_lsi_extensions();
    let lib = lsi_logic_subset();
    let cache = SpecModelCache::new();
    let spec = ComponentSpec::new(ComponentKind::AddSub, 16)
        .with_ops(OpSet::only(Op::Add))
        .with_carry_in(true)
        .with_carry_out(true);
    let id = space.expand(&spec, &rules, &lib, &cache).unwrap();
    println!("== impls at root:");
    for (i, im) in space.nodes[id].impls.iter().enumerate() {
        println!("  {i}: {}", im.label());
    }
    for node in &space.nodes {
        if node.spec.kind == ComponentKind::CarryLookahead || node.spec.group_pg {
            println!(
                "node {} has {} impls: {:?}",
                node.spec,
                node.impls.len(),
                node.impls.iter().map(|i| i.label()).collect::<Vec<_>>()
            );
        }
    }
    let mut solver = Solver::new(&space, SolveConfig::default());
    let front = solver.front(id, &cache);
    println!("== front:");
    for p in &front {
        let im = dtas::extract::extract(&space, id, &p.policy);
        println!(
            "  area {:7.1} delay {:5.1}  root-rule {}",
            p.area,
            p.delay(),
            im.label()
        );
    }
}

#[test]
#[ignore]
fn alu64_design_space_report() {
    let lib = lsi_logic_subset();
    let engine = dtas::Dtas::new(lib);
    let spec = ComponentSpec::new(ComponentKind::Alu, 64)
        .with_ops(Op::paper_alu16())
        .with_carry_in(true);
    let start = std::time::Instant::now();
    let set = engine.run(&spec).unwrap();
    println!("elapsed: {:?}", start.elapsed());
    println!("{set}");
}
