//! Materializing design points into hierarchical implementations.
//!
//! "Each implementation is represented as a hierarchical netlist that
//! traces the top-down design of the input netlist into subcomponents.
//! Leaves of each hierarchical netlist map the alternative design to cells
//! drawn from the given RTL library." (paper §5)

use crate::space::{DesignSpace, ImplChoice, Policy, SpecId};
use crate::template::NetlistTemplate;
use genus::spec::ComponentSpec;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// How one specification is implemented.
///
/// Templates and child subtrees are [`Arc`]-shared: under the paper's
/// uniform-implementation rule one policy maps each specification to one
/// implementation, so identical subtrees (the 64 full adders of a ripple
/// chain, say) are one shared node, and cloning an implementation — or a
/// whole cached [`DesignSet`](crate::DesignSet) — is pointer bumps rather
/// than a deep copy.
#[derive(Clone, Debug)]
pub enum ImplKind {
    /// A library cell leaf.
    Cell {
        /// Data book cell name.
        name: String,
    },
    /// One level of decomposition.
    Netlist {
        /// The decomposition template (carries the rule name and wiring).
        template: Arc<NetlistTemplate>,
        /// Child implementations, aligned with `template.modules`.
        children: Vec<Arc<Implementation>>,
    },
}

/// A hierarchical, library-specific implementation of one specification.
#[derive(Clone, Debug)]
pub struct Implementation {
    /// The specification being implemented.
    pub spec: ComponentSpec,
    /// The chosen implementation.
    pub kind: ImplKind,
}

impl Implementation {
    /// The rule name (for netlists) or cell name (for leaves).
    pub fn label(&self) -> &str {
        match &self.kind {
            ImplKind::Cell { name } => name,
            ImplKind::Netlist { template, .. } => &template.rule,
        }
    }

    /// Counts leaf cells by data book name.
    pub fn cell_census(&self) -> BTreeMap<String, usize> {
        let mut census = BTreeMap::new();
        self.walk_cells(&mut census);
        census
    }

    fn walk_cells(&self, census: &mut BTreeMap<String, usize>) {
        match &self.kind {
            ImplKind::Cell { name } => {
                *census.entry(name.clone()).or_insert(0) += 1;
            }
            ImplKind::Netlist { children, .. } => {
                for c in children {
                    c.walk_cells(census);
                }
            }
        }
    }

    /// Total number of leaf cells.
    pub fn cell_count(&self) -> usize {
        self.cell_census().values().sum()
    }

    /// Depth of the decomposition hierarchy (a cell leaf has depth 1).
    pub fn depth(&self) -> usize {
        match &self.kind {
            ImplKind::Cell { .. } => 1,
            ImplKind::Netlist { children, .. } => {
                1 + children.iter().map(|c| c.depth()).max().unwrap_or(0)
            }
        }
    }

    fn fmt_tree(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match &self.kind {
            ImplKind::Cell { name } => {
                writeln!(f, "{pad}{} -> cell {name}", self.spec)
            }
            ImplKind::Netlist { template, children } => {
                writeln!(f, "{pad}{} -> rule {}", self.spec, template.rule)?;
                // Print each distinct child once with its multiplicity.
                let mut seen: Vec<(&Implementation, usize)> = Vec::new();
                for c in children {
                    if let Some(entry) = seen.iter_mut().find(|(s, _)| s.spec == c.spec) {
                        entry.1 += 1;
                    } else {
                        seen.push((c.as_ref(), 1));
                    }
                }
                for (child, count) in seen {
                    if count > 1 {
                        writeln!(f, "{pad}  {count} x",)?;
                    }
                    child.fmt_tree(f, indent + 1)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Implementation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_tree(f, 0)
    }
}

/// Builds the implementation tree a design point's policy describes.
///
/// Under the uniform-implementation rule a policy maps each spec to
/// exactly one choice, so every occurrence of a spec shares one extracted
/// subtree: the build is linear in the policy's *distinct* specs, not in
/// the (exponentially larger) unfolded module tree.
///
/// # Panics
///
/// Panics if the policy does not cover a reachable spec — policies
/// produced by the [`Solver`](crate::space::Solver) always do.
pub fn extract(space: &DesignSpace, root: SpecId, policy: &Policy) -> Implementation {
    let mut memo: HashMap<SpecId, Arc<Implementation>> = HashMap::new();
    Implementation::clone(&extract_shared(space, root, policy, &mut memo))
}

fn extract_shared(
    space: &DesignSpace,
    id: SpecId,
    policy: &Policy,
    memo: &mut HashMap<SpecId, Arc<Implementation>>,
) -> Arc<Implementation> {
    if let Some(shared) = memo.get(&id) {
        return Arc::clone(shared);
    }
    let node = &space.nodes[id];
    let choice_idx = policy
        .get(id)
        .unwrap_or_else(|| panic!("policy misses spec {}", node.spec));
    let built = match &node.impls[choice_idx] {
        ImplChoice::Cell(c) => Implementation {
            spec: node.spec.clone(),
            kind: ImplKind::Cell {
                name: c.cell.clone(),
            },
        },
        ImplChoice::Netlist(template) => {
            let children = node.children[choice_idx]
                .iter()
                .map(|&cid| extract_shared(space, cid, policy, memo))
                .collect();
            Implementation {
                spec: node.spec.clone(),
                kind: ImplKind::Netlist {
                    template: Arc::clone(template),
                    children,
                },
            }
        }
    };
    let shared = Arc::new(built);
    memo.insert(id, Arc::clone(&shared));
    shared
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleSet;
    use crate::space::{SolveConfig, Solver};
    use crate::template::SpecModelCache;
    use cells::lsi::lsi_logic_subset;
    use genus::kind::ComponentKind;
    use genus::op::{Op, OpSet};

    fn add_spec(w: usize) -> ComponentSpec {
        ComponentSpec::new(ComponentKind::AddSub, w)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true)
    }

    #[test]
    fn extract_add16_designs() {
        let mut space = DesignSpace::new();
        let rules = RuleSet::standard().with_lsi_extensions();
        let lib = lsi_logic_subset();
        let cache = SpecModelCache::new();
        let id = space.expand(&add_spec(16), &rules, &lib, &cache).unwrap();
        let mut solver = Solver::new(&space, SolveConfig::default());
        let front = solver.front(id, &cache);
        assert!(!front.is_empty());
        for point in &front {
            let implementation = extract(&space, id, &point.policy);
            assert_eq!(implementation.spec, add_spec(16));
            assert!(implementation.cell_count() >= 4);
            assert!(implementation.depth() >= 2);
            // Every leaf is a real library cell.
            for cell_name in implementation.cell_census().keys() {
                assert!(lib.cell(cell_name).is_some(), "unknown cell {cell_name}");
            }
        }
        // The smallest design should be a ripple of small adders; the
        // fastest should use the lookahead generator.
        let fastest = extract(&space, id, &front.last().unwrap().policy);
        assert!(
            fastest.cell_census().contains_key("CLA4"),
            "fastest ADD16 should use carry lookahead: {fastest}"
        );
    }

    #[test]
    fn display_tree_mentions_rules_and_cells() {
        let mut space = DesignSpace::new();
        let rules = RuleSet::standard();
        let lib = lsi_logic_subset();
        let cache = SpecModelCache::new();
        let id = space.expand(&add_spec(8), &rules, &lib, &cache).unwrap();
        let mut solver = Solver::new(&space, SolveConfig::default());
        let front = solver.front(id, &cache);
        let text = extract(&space, id, &front[0].policy).to_string();
        assert!(text.contains("rule "));
        assert!(text.contains("cell "));
    }
}
