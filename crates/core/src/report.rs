//! Design sets and Figure-3-style reporting.

use crate::cost::Timing;
use crate::extract::Implementation;
use genus::spec::ComponentSpec;
use rtl_base::table::{Align, TextTable};
use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

/// One alternative design for a specification.
#[derive(Clone, Debug)]
pub struct Alternative {
    /// Total area in equivalent NAND gates.
    pub area: f64,
    /// Worst-case delay in ns.
    pub delay: f64,
    /// Full timing-arc table.
    pub timing: Timing,
    /// The hierarchical implementation.
    pub implementation: Implementation,
}

/// Synthesis bookkeeping, reported alongside results.
#[derive(Clone, Debug, Default)]
pub struct SynthStats {
    /// Specification nodes in the design space.
    pub spec_nodes: usize,
    /// Implementation alternatives across all nodes.
    pub impl_choices: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Nonzero when combination enumeration hit its cap (results then
    /// sample the space instead of covering it).
    pub truncated_combinations: u64,
}

/// The output of DTAS for one component specification: a set of
/// alternative implementations with their costs, plus design-space size
/// accounting.
#[derive(Clone, Debug)]
pub struct DesignSet {
    /// The specification that was synthesized.
    pub spec: ComponentSpec,
    /// Alternatives ordered by increasing area (and decreasing delay).
    pub alternatives: Vec<Alternative>,
    /// Unconstrained design-space size (paper §5: the product over module
    /// occurrences). `f64::INFINITY` when it overflows — see
    /// [`unconstrained_log10`](Self::unconstrained_log10).
    pub unconstrained_size: f64,
    /// `log10` of the unconstrained size (always finite for non-empty
    /// spaces).
    pub unconstrained_log10: f64,
    /// Design count under the uniform-implementation constraint alone;
    /// `None` when enumeration exceeded its budget.
    pub uniform_size: Option<u64>,
    /// Bookkeeping.
    pub stats: SynthStats,
}

impl DesignSet {
    /// The smallest-area alternative.
    pub fn smallest(&self) -> Option<&Alternative> {
        self.alternatives.first()
    }

    /// The fastest alternative.
    pub fn fastest(&self) -> Option<&Alternative> {
        self.alternatives
            .iter()
            .min_by(|a, b| a.delay.partial_cmp(&b.delay).expect("finite delays"))
    }

    /// Renders the paper's Figure-3 presentation: every alternative with
    /// its area, delay, and percentage deltas against the smallest design.
    pub fn figure3_table(&self) -> String {
        let mut t = TextTable::new(vec![
            "#", "style", "area", "delay", "area %", "delay %", "cells",
        ]);
        for col in 2..=6 {
            t.align(col, Align::Right);
        }
        let (base_area, base_delay) = match self.smallest() {
            Some(s) => (s.area, s.delay),
            None => (1.0, 1.0),
        };
        for (i, alt) in self.alternatives.iter().enumerate() {
            let area_pct = 100.0 * (alt.area - base_area) / base_area;
            let delay_pct = 100.0 * (alt.delay - base_delay) / base_delay;
            t.row(vec![
                format!("{}", i + 1),
                alt.implementation.label().to_string(),
                format!("{:.0}", alt.area),
                format!("{:.1}", alt.delay),
                format!("{:+.0}%", area_pct),
                format!("{:+.0}%", delay_pct),
                format!("{}", alt.implementation.cell_count()),
            ]);
        }
        t.render()
    }
}

impl DesignSet {
    /// Human-readable unconstrained size, falling back to `10^x` notation
    /// when the count overflows `f64`.
    pub fn unconstrained_display(&self) -> String {
        if self.unconstrained_size.is_finite() {
            format!("{:.3e}", self.unconstrained_size)
        } else {
            format!("10^{:.0}", self.unconstrained_log10)
        }
    }

    /// An ASCII rendition of the paper's Figure-3 scatter: one row per
    /// alternative (delay on the left), position along the row encoding
    /// area, annotated with the percentage deltas against the smallest
    /// design.
    pub fn ascii_plot(&self) -> String {
        let mut out = String::from("delay (ns)\n");
        let Some(base) = self.smallest() else {
            return out;
        };
        let a_min = base.area;
        let a_max = self.alternatives.last().map(|a| a.area).unwrap_or(a_min);
        for alt in &self.alternatives {
            let col = if a_max > a_min {
                (50.0 * (alt.area - a_min) / (a_max - a_min)) as usize
            } else {
                0
            };
            let _ = writeln!(
                out,
                "{:7.1} |{}* ({:+.0}%, {:+.0}%)",
                alt.delay,
                " ".repeat(col),
                100.0 * (alt.area - base.area) / base.area,
                100.0 * (alt.delay - base.delay) / base.delay,
            );
        }
        let _ = writeln!(
            out,
            "        +{} area (gates): {:.0} .. {:.0}",
            "-".repeat(52),
            a_min,
            a_max
        );
        out
    }
}

impl fmt::Display for DesignSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Component Specification: {}", self.spec)?;
        writeln!(
            f,
            "design space: {} unconstrained, {} with uniform implementations, {} after filters",
            self.unconstrained_display(),
            match self.uniform_size {
                Some(n) => n.to_string(),
                None => "> budget".to_string(),
            },
            self.alternatives.len()
        )?;
        write!(f, "{}", self.figure3_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::ImplKind;
    use genus::kind::ComponentKind;

    fn alt(area: f64, delay: f64, label: &str) -> Alternative {
        Alternative {
            area,
            delay,
            timing: Timing::default(),
            implementation: Implementation {
                spec: ComponentSpec::new(ComponentKind::AddSub, 4),
                kind: ImplKind::Cell {
                    name: label.to_string(),
                },
            },
        }
    }

    fn set() -> DesignSet {
        DesignSet {
            spec: ComponentSpec::new(ComponentKind::AddSub, 4),
            alternatives: vec![alt(100.0, 50.0, "slow"), alt(134.0, 9.5, "fast")],
            unconstrained_size: 250_000.0,
            unconstrained_log10: 250_000.0f64.log10(),
            uniform_size: Some(42),
            stats: SynthStats::default(),
        }
    }

    #[test]
    fn accessors() {
        let s = set();
        assert_eq!(s.smallest().unwrap().area, 100.0);
        assert_eq!(s.fastest().unwrap().delay, 9.5);
    }

    #[test]
    fn figure3_table_shows_percent_deltas() {
        let table = set().figure3_table();
        assert!(table.contains("+0%"), "{table}");
        assert!(table.contains("+34%"), "{table}");
        assert!(table.contains("-81%"), "{table}");
    }

    #[test]
    fn display_mentions_space_sizes() {
        let text = set().to_string();
        assert!(text.contains("2.500e5"), "{text}");
        assert!(text.contains("42"));
    }

    #[test]
    fn ascii_plot_has_one_row_per_alternative() {
        let plot = set().ascii_plot();
        assert_eq!(plot.lines().count(), 4); // header + 2 points + axis
        assert!(plot.contains("(+34%, -81%)"), "{plot}");
        assert!(plot.contains("(+0%, +0%)"));
    }
}
