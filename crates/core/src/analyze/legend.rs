//! LEGEND lints (`DT4xx`): consistency of component descriptions.
//!
//! LEGEND descriptions declare a generator's ports and operation
//! semantics; the lowering path trusts them. These passes catch the
//! description-level defects — duplicate generators ([`DT401`]), ports
//! nothing uses ([`DT402`]), one operation assigning a target twice
//! ([`DT403`]), references to undeclared ports ([`DT404`]) and
//! operations that can never fire ([`DT405`]).

use super::{ArtifactKind, Diagnostic, Lint, LintTarget, Severity};
use ::legend::ast::{LegendDescription, LegendExpr};
use std::collections::{BTreeMap, BTreeSet};

/// `DT401`: two descriptions share a generator name.
pub const DT401: &str = "DT401";
/// `DT402`: a declared data port no operation reads or writes.
pub const DT402: &str = "DT402";
/// `DT403`: one operation assigns the same target twice.
pub const DT403: &str = "DT403";
/// `DT404`: a reference to a port the description does not declare.
pub const DT404: &str = "DT404";
/// `DT405`: an operation that can never fire.
pub const DT405: &str = "DT405";

/// Registers every LEGEND pass, in code order.
pub fn register(lints: &mut Vec<Box<dyn Lint>>) {
    lints.push(Box::new(DuplicateGenerator));
    lints.push(Box::new(UnusedPort));
    lints.push(Box::new(ShadowedAssignment));
    lints.push(Box::new(UnknownPortRef));
    lints.push(Box::new(UnfireableOperation));
}

fn expr_ports<'a>(e: &'a LegendExpr, out: &mut Vec<&'a str>) {
    match e {
        LegendExpr::Port(p) => out.push(p),
        LegendExpr::Number(_) => {}
        LegendExpr::Not(inner) => expr_ports(inner, out),
        LegendExpr::Binary(_, l, r) => {
            expr_ports(l, out);
            expr_ports(r, out);
        }
    }
}

/// Every symbol a description declares (data ports, clock, enable,
/// control and async pins, and parameters — widths and expressions may
/// reference any of them).
fn declared(desc: &LegendDescription) -> BTreeSet<&str> {
    let mut set: BTreeSet<&str> = BTreeSet::new();
    set.extend(desc.inputs.iter().map(|p| p.name.as_str()));
    set.extend(desc.outputs.iter().map(|p| p.name.as_str()));
    set.extend(desc.clock.as_deref());
    set.extend(desc.enable.iter().map(String::as_str));
    set.extend(desc.control.iter().map(String::as_str));
    set.extend(desc.r#async.iter().map(String::as_str));
    set.extend(desc.parameters.iter().map(|(n, _)| n.as_str()));
    set
}

/// `DT401`: duplicate generator names across one document.
pub struct DuplicateGenerator;

impl Lint for DuplicateGenerator {
    fn code(&self) -> &'static str {
        DT401
    }
    fn name(&self) -> &'static str {
        "duplicate-generator"
    }
    fn description(&self) -> &'static str {
        "two descriptions share a generator name"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Legend
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Legend(descs) = target else {
            return;
        };
        let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
        for desc in *descs {
            *seen.entry(desc.name.as_str()).or_insert(0) += 1;
        }
        for (name, count) in seen {
            if count > 1 {
                out.push(Diagnostic::new(
                    DT401,
                    Severity::Error,
                    ArtifactKind::Legend,
                    format!("generator {name}"),
                    format!("declared {count} times; later declarations are unreachable"),
                ));
            }
        }
    }
}

/// `DT402`: data ports no operation touches.
///
/// Only runs on descriptions that declare operations — a port-only
/// description (interface stubs) has nothing to check against.
///
/// The *input* check further requires the description to be fully
/// explicit: every operation must carry OPS clauses (an opaque operation
/// defers its semantics to the VHDL model, which may read any input) and
/// multi-operation generators must gate each operation on a CONTROL pin
/// (otherwise dispatch is by an implicit select bus — an input no OPS
/// clause ever names, like the ALU's `S`). Output use is always provable
/// from the per-operation OUTPUTS lists.
pub struct UnusedPort;

/// True when non-use of an input can be proven from the description
/// alone (see [`UnusedPort`]).
fn inputs_checkable(desc: &LegendDescription) -> bool {
    desc.operations.iter().all(|op| !op.ops.is_empty())
        && (desc.operations.len() == 1 || desc.operations.iter().all(|op| op.control.is_some()))
}

impl Lint for UnusedPort {
    fn code(&self) -> &'static str {
        DT402
    }
    fn name(&self) -> &'static str {
        "unused-port"
    }
    fn description(&self) -> &'static str {
        "a declared data port no operation reads or writes"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Legend
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Legend(descs) = target else {
            return;
        };
        for desc in *descs {
            if desc.operations.is_empty() {
                continue;
            }
            let mut read: BTreeSet<&str> = BTreeSet::new();
            let mut written: BTreeSet<&str> = BTreeSet::new();
            for op in &desc.operations {
                read.extend(op.inputs.iter().map(String::as_str));
                written.extend(op.outputs.iter().map(String::as_str));
                for clause in &op.ops {
                    written.insert(clause.target.as_str());
                    let mut refs = Vec::new();
                    expr_ports(&clause.expr, &mut refs);
                    read.extend(refs);
                }
            }
            // Control-plane pins (clock/enable/control/async) are used by
            // the firing machinery, not by OPS clauses.
            let control_plane: BTreeSet<&str> = desc
                .clock
                .as_deref()
                .into_iter()
                .chain(desc.enable.iter().map(String::as_str))
                .chain(desc.control.iter().map(String::as_str))
                .chain(desc.r#async.iter().map(String::as_str))
                .collect();
            for p in &desc.inputs {
                let name = p.name.as_str();
                if inputs_checkable(desc) && !read.contains(name) && !control_plane.contains(name) {
                    out.push(
                        Diagnostic::new(
                            DT402,
                            Severity::Warn,
                            ArtifactKind::Legend,
                            format!("{}.{}", desc.name, name),
                            "input port is never read by any operation",
                        )
                        .with_suggestion("remove the port or reference it in an OPS clause"),
                    );
                }
            }
            for p in &desc.outputs {
                let name = p.name.as_str();
                if !written.contains(name) && !read.contains(name) {
                    out.push(
                        Diagnostic::new(
                            DT402,
                            Severity::Warn,
                            ArtifactKind::Legend,
                            format!("{}.{}", desc.name, name),
                            "output port is never assigned by any operation",
                        )
                        .with_suggestion("remove the port or assign it in an OPS clause"),
                    );
                }
            }
        }
    }
}

/// `DT403`: one operation assigning a target twice.
pub struct ShadowedAssignment;

impl Lint for ShadowedAssignment {
    fn code(&self) -> &'static str {
        DT403
    }
    fn name(&self) -> &'static str {
        "shadowed-assignment"
    }
    fn description(&self) -> &'static str {
        "one operation assigns the same target twice"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Legend
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Legend(descs) = target else {
            return;
        };
        for desc in *descs {
            for op in &desc.operations {
                let mut seen: BTreeSet<&str> = BTreeSet::new();
                for clause in &op.ops {
                    if !seen.insert(clause.target.as_str()) {
                        out.push(Diagnostic::new(
                            DT403,
                            Severity::Warn,
                            ArtifactKind::Legend,
                            format!("{}.{}", desc.name, op.name),
                            format!(
                                "target {} is assigned more than once; earlier \
                                 assignments are shadowed",
                                clause.target
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// `DT404`: references to undeclared ports.
pub struct UnknownPortRef;

impl Lint for UnknownPortRef {
    fn code(&self) -> &'static str {
        DT404
    }
    fn name(&self) -> &'static str {
        "unknown-port-ref"
    }
    fn description(&self) -> &'static str {
        "a reference to a port the description does not declare"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Legend
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Legend(descs) = target else {
            return;
        };
        for desc in *descs {
            let known = declared(desc);
            let mut report = |what: &str, name: &str, op: &str| {
                if !known.contains(name) {
                    out.push(Diagnostic::new(
                        DT404,
                        Severity::Error,
                        ArtifactKind::Legend,
                        format!("{}.{}", desc.name, op),
                        format!("{what} references undeclared port {name}"),
                    ));
                }
            };
            for op in &desc.operations {
                for name in &op.inputs {
                    report("operation input list", name, &op.name);
                }
                for name in &op.outputs {
                    report("operation output list", name, &op.name);
                }
                for clause in &op.ops {
                    report("OPS clause target", &clause.target, &op.name);
                    let mut refs = Vec::new();
                    expr_ports(&clause.expr, &mut refs);
                    for name in refs {
                        report("OPS clause expression", name, &op.name);
                    }
                }
            }
        }
    }
}

/// `DT405`: operations that can never fire.
///
/// Two shapes: an operation gated on a pin that is not in the CONTROL or
/// ENABLE lists (the controller will never assert it), and a duplicate
/// operation name (only the first declaration is ever selected).
pub struct UnfireableOperation;

impl Lint for UnfireableOperation {
    fn code(&self) -> &'static str {
        DT405
    }
    fn name(&self) -> &'static str {
        "unfireable-operation"
    }
    fn description(&self) -> &'static str {
        "an operation that can never fire"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Legend
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Legend(descs) = target else {
            return;
        };
        for desc in *descs {
            let known = declared(desc);
            let firing: BTreeSet<&str> = desc
                .control
                .iter()
                .chain(desc.enable.iter())
                .map(String::as_str)
                .collect();
            let mut names: BTreeSet<&str> = BTreeSet::new();
            for op in &desc.operations {
                if !names.insert(op.name.as_str()) {
                    out.push(Diagnostic::new(
                        DT405,
                        Severity::Warn,
                        ArtifactKind::Legend,
                        format!("{}.{}", desc.name, op.name),
                        "duplicate operation name; this declaration is unreachable",
                    ));
                }
                if let Some(pin) = &op.control {
                    // An undeclared pin is DT404's finding; only flag
                    // declared pins outside the CONTROL/ENABLE lists.
                    if known.contains(pin.as_str()) && !firing.contains(pin.as_str()) {
                        out.push(
                            Diagnostic::new(
                                DT405,
                                Severity::Warn,
                                ArtifactKind::Legend,
                                format!("{}.{}", desc.name, op.name),
                                format!(
                                    "gating pin {pin} is not in the CONTROL or ENABLE \
                                     lists; the operation can never be selected"
                                ),
                            )
                            .with_suggestion("add the pin to CONTROL: or drop the gate"),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::LintRegistry;
    use ::legend::ast::{OperationDecl, OpsClause, PortDecl, WidthSpec};

    fn run(descs: &[LegendDescription]) -> Vec<&'static str> {
        LintRegistry::standard()
            .run(&LintTarget::Legend(descs))
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    fn port(name: &str, w: usize) -> PortDecl {
        PortDecl {
            name: name.to_string(),
            width: WidthSpec(w),
        }
    }

    fn load_op(target: &str, from: &str, control: Option<&str>) -> OperationDecl {
        OperationDecl {
            name: "LOAD".to_string(),
            inputs: vec![from.to_string()],
            outputs: vec![target.to_string()],
            control: control.map(str::to_string),
            ops: vec![OpsClause {
                op_name: "LOAD".to_string(),
                target: target.to_string(),
                expr: LegendExpr::Port(from.to_string()),
            }],
        }
    }

    fn register_desc() -> LegendDescription {
        LegendDescription {
            name: "REGISTER".to_string(),
            inputs: vec![port("IN", 8)],
            outputs: vec![port("OUT", 8)],
            clock: Some("CLK".to_string()),
            control: vec!["CLOAD".to_string()],
            operations: vec![load_op("OUT", "IN", Some("CLOAD"))],
            ..LegendDescription::default()
        }
    }

    #[test]
    fn figure2_counter_is_clean() {
        let descs = ::legend::parse_document(::legend::figure2::FIGURE2).unwrap();
        let report = LintRegistry::standard().run(&LintTarget::Legend(&descs));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn standard_library_is_clean() {
        let descs = ::legend::parse_document(&::legend::standard_library_text()).unwrap();
        let report = LintRegistry::standard().run(&LintTarget::Legend(&descs));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn clean_register_description() {
        assert!(run(&[register_desc()]).is_empty());
    }

    #[test]
    fn duplicate_generator_and_unused_port() {
        let mut a = register_desc();
        a.inputs.push(port("SPARE", 8));
        let b = register_desc();
        let found = run(&[a, b]);
        assert!(found.contains(&DT401));
        assert!(found.contains(&DT402));
    }

    #[test]
    fn shadowed_assignment_and_unknown_ref() {
        let mut d = register_desc();
        d.operations[0].ops.push(OpsClause {
            op_name: "LOAD".to_string(),
            target: "OUT".to_string(),
            expr: LegendExpr::Port("GHOST".to_string()),
        });
        let found = run(&[d]);
        assert!(found.contains(&DT403));
        assert!(found.contains(&DT404));
    }

    #[test]
    fn unfireable_control_pin() {
        let mut d = register_desc();
        // Gate on the clock instead of a control pin: declared, but not
        // in CONTROL/ENABLE, so the op can never be selected.
        d.operations[0].control = Some("CLK".to_string());
        let found = run(&[d]);
        assert_eq!(found, vec![DT405]);
    }
}
