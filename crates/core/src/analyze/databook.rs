//! Databook lints (`DT3xx`): cost-model sanity of a technology library.
//!
//! The ROADMAP's standing constraint says databook calibration is
//! load-bearing: cell costs decide which structures survive the Pareto
//! front. These passes catch the cost-model defects that silently degrade
//! mapping quality — poisoned numbers ([`DT301`]), cells that can never
//! win ([`DT302`]), missing timing arcs ([`DT303`]) and families whose
//! cost curves bend backwards ([`DT304`]).

use super::{ArtifactKind, Diagnostic, Lint, LintTarget, Severity};
use cells::Cell;
use std::collections::BTreeMap;

/// `DT301`: a non-finite or negative cost number.
pub const DT301: &str = "DT301";
/// `DT302`: a cell Pareto-dominated by another cell of the same library.
pub const DT302: &str = "DT302";
/// `DT303`: a declared pin with no matching delay arc.
pub const DT303: &str = "DT303";
/// `DT304`: a cell family whose minimum cost decreases as width grows.
pub const DT304: &str = "DT304";

/// Registers every databook pass, in code order.
pub fn register(lints: &mut Vec<Box<dyn Lint>>) {
    lints.push(Box::new(BadCost));
    lints.push(Box::new(DominatedCell));
    lints.push(Box::new(MissingArc));
    lints.push(Box::new(NonMonotoneFamily));
}

/// `DT301`: NaN, infinite or negative area/delay values.
pub struct BadCost;

impl Lint for BadCost {
    fn code(&self) -> &'static str {
        DT301
    }
    fn name(&self) -> &'static str {
        "bad-cost"
    }
    fn description(&self) -> &'static str {
        "a NaN, infinite or negative cost number"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Databook
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Databook(lib) = target else {
            return;
        };
        for cell in lib.cells() {
            let mut check = |what: &str, v: f64| {
                if !v.is_finite() || v < 0.0 {
                    out.push(Diagnostic::new(
                        DT301,
                        Severity::Error,
                        ArtifactKind::Databook,
                        format!("cell {}", cell.name),
                        format!("{what} is {v}"),
                    ));
                }
            };
            check("area", cell.area);
            check("delay", cell.delay);
            if let Some(d) = cell.carry_delay {
                check("carry delay", d);
            }
            if let Some(d) = cell.pg_delay {
                check("pg delay", d);
            }
        }
    }
}

/// The delay of the carry arc, falling back to the data arc when the cell
/// declares none (mirroring [`Cell::arc_delay`]'s fallback).
fn carry_arc(c: &Cell) -> f64 {
    c.carry_delay.unwrap_or(c.delay)
}

fn pg_arc(c: &Cell) -> f64 {
    c.pg_delay.unwrap_or(c.delay)
}

/// `DT302`: a cell another cell beats on every axis.
///
/// `a` dominates `b` when `a.spec.can_implement(&b.spec)` — functional
/// matching is transitive, so `a` can then serve every request `b` can —
/// and `a` costs no more on any axis (area, delay, carry arc, pg arc)
/// while being strictly cheaper on at least one. Such a `b` can never
/// appear in a Pareto front and is dead weight in the databook.
pub struct DominatedCell;

impl Lint for DominatedCell {
    fn code(&self) -> &'static str {
        DT302
    }
    fn name(&self) -> &'static str {
        "dominated-cell"
    }
    fn description(&self) -> &'static str {
        "a cell Pareto-dominated by a functional superset cell"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Databook
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Databook(lib) = target else {
            return;
        };
        for victim in lib.cells() {
            let dominator = lib.cells().iter().find(|c| {
                c.name != victim.name
                    && c.spec.can_implement(&victim.spec)
                    && c.area <= victim.area
                    && c.delay <= victim.delay
                    && carry_arc(c) <= carry_arc(victim)
                    && pg_arc(c) <= pg_arc(victim)
                    && (c.area < victim.area
                        || c.delay < victim.delay
                        || carry_arc(c) < carry_arc(victim)
                        || pg_arc(c) < pg_arc(victim))
            });
            if let Some(d) = dominator {
                out.push(
                    Diagnostic::new(
                        DT302,
                        Severity::Warn,
                        ArtifactKind::Databook,
                        format!("cell {}", victim.name),
                        format!(
                            "dominated by {} (area {} vs {}, delay {} vs {})",
                            d.name, d.area, victim.area, d.delay, victim.delay
                        ),
                    )
                    .with_suggestion("it can never win a Pareto front; drop or re-cost it"),
                );
            }
        }
    }
}

/// `DT303`: pins promising a timing arc the cell does not declare.
///
/// A ripple-through cell (both carry-in and carry-out) whose carry path
/// delay falls back to the full data delay grossly overestimates chained
/// carry hops; likewise a P/G cell without a pg arc. Cells with only a
/// carry-in (like a CLA block's `CI`) have no carry-through path and are
/// exempt.
pub struct MissingArc;

impl Lint for MissingArc {
    fn code(&self) -> &'static str {
        DT303
    }
    fn name(&self) -> &'static str {
        "missing-arc"
    }
    fn description(&self) -> &'static str {
        "a declared pin with no matching delay arc"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Databook
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Databook(lib) = target else {
            return;
        };
        for cell in lib.cells() {
            if cell.spec.carry_in && cell.spec.carry_out && cell.carry_delay.is_none() {
                out.push(
                    Diagnostic::new(
                        DT303,
                        Severity::Warn,
                        ArtifactKind::Databook,
                        format!("cell {}", cell.name),
                        "carry-through cell has no CARRY delay arc",
                    )
                    .with_suggestion("add a CARRY arc; the data delay overestimates ripple hops"),
                );
            }
            if cell.spec.group_pg && cell.pg_delay.is_none() {
                out.push(
                    Diagnostic::new(
                        DT303,
                        Severity::Warn,
                        ArtifactKind::Databook,
                        format!("cell {}", cell.name),
                        "propagate/generate cell has no PGD delay arc",
                    )
                    .with_suggestion("add a PGD arc for the lookahead path"),
                );
            }
        }
    }
}

/// `DT304`: families whose best cost shrinks as width grows.
///
/// Cells are grouped into families by their specification with the width
/// erased; within a family, the cheapest area and the cheapest delay at
/// each width must be non-decreasing in width (a wider component cannot
/// be smaller or faster than a narrower one of the same family — if it
/// is, one of the two cost entries is a typo).
pub struct NonMonotoneFamily;

impl Lint for NonMonotoneFamily {
    fn code(&self) -> &'static str {
        DT304
    }
    fn name(&self) -> &'static str {
        "non-monotone-family"
    }
    fn description(&self) -> &'static str {
        "a family whose minimum cost decreases as width grows"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Databook
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Databook(lib) = target else {
            return;
        };
        // family key -> width -> (min area, min delay)
        let mut families: BTreeMap<String, BTreeMap<usize, (f64, f64)>> = BTreeMap::new();
        for cell in lib.cells() {
            let mut key_spec = cell.spec.clone();
            let width = key_spec.width;
            key_spec.width = 0;
            key_spec.style = None;
            let entry = families
                .entry(key_spec.identifier())
                .or_default()
                .entry(width)
                .or_insert((f64::INFINITY, f64::INFINITY));
            entry.0 = entry.0.min(cell.area);
            entry.1 = entry.1.min(cell.delay);
        }
        for (family, by_width) in &families {
            let mut prev: Option<(usize, (f64, f64))> = None;
            for (&width, &(area, delay)) in by_width {
                if let Some((pw, (pa, pd))) = prev {
                    let mut bad = |what: &str, wide: f64, narrow: f64| {
                        if wide < narrow {
                            out.push(
                                Diagnostic::new(
                                    DT304,
                                    Severity::Warn,
                                    ArtifactKind::Databook,
                                    format!("family {family}"),
                                    format!(
                                        "min {what} at width {width} ({wide}) is below \
                                         width {pw} ({narrow})"
                                    ),
                                )
                                .with_suggestion("check the narrower cell's cost for a typo"),
                            );
                        }
                    };
                    bad("area", area, pa);
                    bad("delay", delay, pd);
                }
                prev = Some((width, (area, delay)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::LintRegistry;
    use cells::CellLibrary;
    use genus::kind::{ComponentKind, GateOp};
    use genus::op::{Op, OpSet};
    use genus::spec::ComponentSpec;

    fn gate2(name: &str, area: f64, delay: f64) -> Cell {
        let spec = ComponentSpec::new(ComponentKind::Gate(GateOp::Nand), 1)
            .with_inputs(2)
            .with_ops(OpSet::only(Op::Nand));
        Cell::new(name, spec, area, delay)
    }

    fn run(lib: &CellLibrary) -> Vec<&'static str> {
        LintRegistry::standard()
            .run(&LintTarget::Databook(lib))
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn shipped_book_is_clean() {
        let lib = cells::lsi::lsi_logic_subset();
        let report = LintRegistry::standard().run(&LintTarget::Databook(&lib));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn nan_cost_is_an_error_zero_is_not() {
        let mut lib = CellLibrary::new("t");
        lib.insert(gate2("BAD", f64::NAN, 1.0));
        lib.insert(gate2("FREE", 0.0, 0.0));
        assert_eq!(run(&lib), vec![DT301]);
    }

    #[test]
    fn dominated_pair_detected_tradeoff_pair_not() {
        let mut lib = CellLibrary::new("t");
        lib.insert(gate2("GOOD", 1.0, 1.0));
        lib.insert(gate2("WORSE", 2.0, 1.5));
        let found = run(&lib);
        assert_eq!(found, vec![DT302]);
        // A genuine area/delay trade-off pair stays clean.
        let mut lib2 = CellLibrary::new("t2");
        lib2.insert(gate2("SMALL", 1.0, 2.0));
        lib2.insert(gate2("FAST", 2.0, 1.0));
        assert!(run(&lib2).is_empty());
    }

    #[test]
    fn ripple_cell_without_carry_arc_flagged() {
        let spec = ComponentSpec::new(ComponentKind::AddSub, 2)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true);
        let mut lib = CellLibrary::new("t");
        lib.insert(Cell::new("ADD2X", spec.clone(), 4.0, 3.0));
        assert_eq!(run(&lib), vec![DT303]);
        // The same cell with the arc declared is clean.
        let mut lib2 = CellLibrary::new("t2");
        lib2.insert(Cell::new("ADD2Y", spec, 4.0, 3.0).with_carry_delay(1.0));
        assert!(run(&lib2).is_empty());
    }

    #[test]
    fn non_monotone_family_flagged() {
        let spec = |w: usize| {
            ComponentSpec::new(ComponentKind::Register, w).with_ops(OpSet::only(Op::Load))
        };
        let mut lib = CellLibrary::new("t");
        lib.insert(Cell::new("R4", spec(4), 10.0, 1.0));
        lib.insert(Cell::new("R8", spec(8), 5.0, 1.0)); // wider yet smaller
        assert_eq!(run(&lib), vec![DT304]);
    }
}
