//! Rule-base lints (`DT2xx`): hygiene of the decomposition rules against
//! a loaded technology library.
//!
//! The passes drive the whole rule base over a deterministic *probe
//! corpus* — specifications of every family the paper's §7 lists —
//! and then over every module specification those expansions produce,
//! to a fixed point (the same transitive closure
//! [`DesignSpace::expand`](crate::space::DesignSpace::expand) would
//! explore, minus solving). One shared `ClosureAnalysis` feeds all six
//! codes; it is memoized on the (rule-set, library) fingerprint pair so
//! running the whole registry costs one closure, not six.

use super::{ArtifactKind, Diagnostic, Lint, LintTarget, Severity};
use crate::rules::{helpers, RuleSet};
use crate::template::{NetlistTemplate, SpecModelCache};
use cells::CellLibrary;
use genus::kind::{ComponentKind, GateOp};
use genus::op::{Op, OpClass, OpSet};
use genus::spec::ComponentSpec;
use genus::stdlib::GenusLibrary;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// `DT201`: a rule whose every template an earlier rule also produces.
pub const DT201: &str = "DT201";
/// `DT202`: a rule that never fires on any probed or derived spec.
pub const DT202: &str = "DT202";
/// `DT203`: a rule expanding a spec into a template containing that same
/// spec (a rewrite that cannot terminate).
pub const DT203: &str = "DT203";
/// `DT204`: a library rule producing a module spec no cell implements
/// and no rule decomposes.
pub const DT204: &str = "DT204";
/// `DT205`: a rule emitting a structurally invalid template.
pub const DT205: &str = "DT205";
/// `DT206`: two rules sharing a name.
pub const DT206: &str = "DT206";

/// Registers every rule-base pass, in code order.
pub fn register(lints: &mut Vec<Box<dyn Lint>>) {
    lints.push(Box::new(ShadowedRule));
    lints.push(Box::new(InapplicableRule));
    lints.push(Box::new(SelfRecursiveRule));
    lints.push(Box::new(UnmatchableLeaf));
    lints.push(Box::new(InvalidTemplate));
    lints.push(Box::new(DuplicateRuleName));
}

/// Everything the closure sweep learned about a rule base.
struct ClosureAnalysis {
    /// Rule names, in registration order.
    names: Vec<String>,
    /// Whether each rule produced at least one template anywhere.
    fired: Vec<bool>,
    /// Per rule: earlier rules that duplicated every one of its templates
    /// on every spec it fired on (`None` until the rule first fires).
    shadowers: Vec<Option<BTreeSet<usize>>>,
    /// (rule, spec) pairs where a template contained the parent spec.
    self_recursive: BTreeSet<(String, String)>,
    /// (rule, validation message) pairs for invalid templates.
    invalid: BTreeSet<(String, String)>,
    /// Library-rule module specs with no implementing cell and no
    /// expanding rule: spec identifier -> producing rule.
    unmatchable: BTreeMap<String, String>,
    /// Specs explored before hitting the safety cap.
    specs_explored: usize,
    /// The closure hit the spec cap; absence-of-firing codes are
    /// unreliable and suppressed.
    truncated: bool,
}

/// Safety cap on distinct specs explored — the shipped base explores a
/// few thousand; a runaway rule base should degrade to partial findings,
/// not hang the lint.
const SPEC_CAP: usize = 50_000;

fn normalized(t: &NetlistTemplate) -> NetlistTemplate {
    let mut c = t.clone();
    c.rule = String::new();
    c
}

fn closure(rules: &RuleSet, library: &CellLibrary) -> ClosureAnalysis {
    let rule_list: Vec<&dyn crate::rules::Rule> = rules.iter().collect();
    let n = rule_list.len();
    let generic = rules.generic_count();
    let cache = SpecModelCache::new();

    let mut analysis = ClosureAnalysis {
        names: rule_list.iter().map(|r| r.name().to_string()).collect(),
        fired: vec![false; n],
        shadowers: vec![None; n],
        self_recursive: BTreeSet::new(),
        invalid: BTreeSet::new(),
        unmatchable: BTreeMap::new(),
        specs_explored: 0,
        truncated: false,
    };

    let mut frontier = probe_corpus();
    let mut visited: BTreeSet<String> = frontier.iter().map(|s| s.identifier()).collect();
    // Module specs first produced by a library rule: identifier ->
    // (spec, producing rule index).
    let mut library_produced: BTreeMap<String, (ComponentSpec, usize)> = BTreeMap::new();
    // Specs at least one rule expanded.
    let mut expandable: BTreeSet<String> = BTreeSet::new();

    while let Some(spec) = frontier.pop() {
        analysis.specs_explored += 1;
        let spec_id = spec.identifier();
        // (rule index, normalized templates) for rules that fired here.
        let mut fired_here: Vec<(usize, Vec<NetlistTemplate>)> = Vec::new();
        for (i, rule) in rule_list.iter().enumerate() {
            let templates = rule.expand(&spec);
            if templates.is_empty() {
                continue;
            }
            analysis.fired[i] = true;
            expandable.insert(spec_id.clone());
            for t in &templates {
                if t.modules.iter().any(|m| m.spec == spec) {
                    analysis
                        .self_recursive
                        .insert((rule.name().to_string(), spec.to_string()));
                }
                if let Err(e) = t.validate(&spec, &cache) {
                    analysis
                        .invalid
                        .insert((rule.name().to_string(), e.message));
                }
                for m in &t.modules {
                    let id = m.spec.identifier();
                    if i >= generic {
                        library_produced
                            .entry(id.clone())
                            .or_insert_with(|| (m.spec.clone(), i));
                    }
                    if visited.len() < SPEC_CAP {
                        if visited.insert(id) {
                            frontier.push(m.spec.clone());
                        }
                    } else {
                        analysis.truncated = true;
                    }
                }
            }
            fired_here.push((i, templates.iter().map(normalized).collect()));
        }
        // Shadow bookkeeping: a later rule stays "shadowed by j" only if
        // on every spec it fires on, rule j (earlier) produced a superset
        // of its templates.
        for idx in 0..fired_here.len() {
            let (i, ref mine) = fired_here[idx];
            let covering: BTreeSet<usize> = fired_here[..idx]
                .iter()
                .filter(|(j, theirs)| *j < i && mine.iter().all(|t| theirs.contains(t)))
                .map(|(j, _)| *j)
                .collect();
            match &mut analysis.shadowers[i] {
                None => analysis.shadowers[i] = Some(covering),
                Some(prev) => {
                    *prev = prev.intersection(&covering).copied().collect();
                }
            }
        }
    }

    if !analysis.truncated {
        for (id, (spec, rule_idx)) in &library_produced {
            if !expandable.contains(id) && library.implementers(spec).is_empty() {
                analysis
                    .unmatchable
                    .insert(spec.to_string(), rule_list[*rule_idx].name().to_string());
            }
        }
    }
    analysis
}

/// Memoized closure keyed by (rule-set fingerprint, library fingerprint).
/// One entry: the registry runs six rule lints back to back on the same
/// pair, and successive CLI/test invocations reuse it too.
fn shared_closure(rules: &RuleSet, library: &CellLibrary) -> Arc<ClosureAnalysis> {
    static LAST: Mutex<Option<(u64, u64, Arc<ClosureAnalysis>)>> = Mutex::new(None);
    let key = (rules.fingerprint(), library.fingerprint());
    let mut slot = LAST.lock().expect("closure cache poisoned");
    if let Some((rf, lf, a)) = slot.as_ref() {
        if (*rf, *lf) == key {
            return Arc::clone(a);
        }
    }
    let analysis = Arc::new(closure(rules, library));
    *slot = Some((key.0, key.1, Arc::clone(&analysis)));
    analysis
}

/// Logic-class subset of the paper's 16-function ALU operation list.
fn logic_ops() -> OpSet {
    Op::paper_alu16().of_class(OpClass::Logic)
}

/// The deterministic probe corpus: specifications of every family the
/// paper's §7 lists for DTAS, over a spread of widths, fan-ins and pin
/// variants. The closure then adds every module spec these decompose
/// into, so decomposition-intermediate rules are exercised too.
fn probe_corpus() -> Vec<ComponentSpec> {
    let lib = GenusLibrary::standard();
    let mut v: Vec<ComponentSpec> = Vec::new();
    {
        let mut push = |c: Result<genus::component::Component, genus::component::GenerateError>| {
            if let Ok(c) = c {
                v.push(c.spec().clone());
            }
        };
        for w in [1usize, 2, 3, 4, 8, 16, 32] {
            push(lib.adder(w));
            push(lib.adder_pg(w));
            push(lib.addsub(w));
            push(lib.alu(w, Op::paper_alu16()));
            push(lib.logic_unit(w, logic_ops()));
            push(lib.comparator(w));
            push(lib.shifter(
                w,
                OpSet::from_iter([Op::Shl, Op::Shr, Op::Asr, Op::Rotl, Op::Rotr]),
            ));
            push(lib.barrel_shifter(w, OpSet::from_iter([Op::Shl, Op::Shr])));
            push(lib.register(w));
            push(lib.register_en(w));
            push(lib.counter(w));
            push(lib.buffer(w));
            push(lib.tristate(w));
            push(lib.divider(w));
            push(lib.multiplier(w, w));
            push(lib.gate(GateOp::Not, w, 1));
            push(lib.gate(GateOp::Buf, w, 1));
            for n in [2usize, 3, 4, 5, 8, 9] {
                push(lib.mux(w, n));
            }
        }
        for w in [1usize, 4, 8] {
            for g in [
                GateOp::And,
                GateOp::Or,
                GateOp::Nand,
                GateOp::Nor,
                GateOp::Xor,
                GateOp::Xnor,
            ] {
                for n in [2usize, 3, 4, 8, 9] {
                    push(lib.gate(g, w, n));
                }
            }
        }
        push(lib.multiplier(8, 4));
        for g in [2usize, 4] {
            push(lib.cla_generator(g));
        }
        for sel in [1usize, 2, 3, 4] {
            push(lib.decoder(sel));
        }
        push(lib.bcd_decoder());
        for lines in [4usize, 8] {
            push(lib.encoder(lines));
        }
        for depth in [4usize, 8] {
            push(lib.memory(8, depth));
            push(lib.register_file(8, depth));
            push(lib.stack(8, depth));
        }
    }
    // Pin/ops variants the generator surface does not produce directly.
    for w in [4usize, 8, 16, 32] {
        v.push(helpers::adder(w));
        v.push(helpers::adder_pg(w));
        v.push(helpers::addsub(
            w,
            OpSet::from_iter([Op::Add, Op::Sub]),
            true,
            true,
        ));
        v.push(helpers::addsub(w, OpSet::only(Op::Sub), false, false));
        v.push(helpers::alu(w, Op::paper_alu16(), true));
        v.push(helpers::lu(w, logic_ops()));
        v.push(helpers::comparator(
            w,
            OpSet::from_iter([Op::Eq, Op::Lt, Op::Gt]),
        ));
    }
    // Families without a stdlib generator: interface and wiring kinds.
    for w in [1usize, 4, 8] {
        v.push(ComponentSpec::new(ComponentKind::Selector, w).with_inputs(4));
        v.push(ComponentSpec::new(ComponentKind::PortComp, w));
        v.push(ComponentSpec::new(ComponentKind::ClockDriver, 1));
        v.push(ComponentSpec::new(ComponentKind::SchmittTrigger, w));
        v.push(ComponentSpec::new(ComponentKind::WiredOr, w).with_inputs(4));
        v.push(ComponentSpec::new(ComponentKind::Bus, w).with_inputs(4));
        v.push(ComponentSpec::new(ComponentKind::Delay, w));
        v.push(ComponentSpec::new(ComponentKind::Concat, w).with_inputs(2));
        // Extract: width = input width, width2 = field width, inputs =
        // field offset (see `genus::build`'s parameter encoding).
        v.push(ComponentSpec::new(ComponentKind::Extract, w).with_width2(1));
        v.push(ComponentSpec::new(ComponentKind::Tristate, w));
    }
    // Single-op and restricted-op variants that trigger the base-case and
    // wiring rules (alu-one-*, lu-single-gate, comparator-*-slice/chain).
    for w in [1usize, 2, 4, 8, 16] {
        v.push(helpers::comparator(w, OpSet::only(Op::Eq)));
        v.push(helpers::comparator(w, OpSet::from_iter([Op::Eq, Op::Lt])));
    }
    for w in [4usize, 8] {
        v.push(helpers::alu(w, OpSet::only(Op::Shl), false));
        v.push(helpers::alu(w, OpSet::only(Op::Rotr), false));
        v.push(helpers::lu(w, OpSet::only(Op::And)));
        v.push(helpers::lu(w, OpSet::only(Op::Xor)));
    }
    // Enabled decoders (width2 = 2^width lines) and single-direction
    // counters for the enable-mask and toggle-chain rules.
    for k in [2usize, 3] {
        v.push(
            ComponentSpec::new(ComponentKind::Decoder, k)
                .with_width2(1 << k)
                .with_enable(true),
        );
    }
    for w in [4usize, 8] {
        v.push(ComponentSpec::new(ComponentKind::Counter, w).with_ops(OpSet::only(Op::CountUp)));
        v.push(
            ComponentSpec::new(ComponentKind::Counter, w)
                .with_ops(OpSet::only(Op::CountUp))
                .with_enable(true),
        );
    }
    // Counter style variants.
    let count_ops = OpSet::from_iter([Op::Load, Op::CountUp, Op::CountDown]);
    for w in [4usize, 8] {
        for style in ["SYNCHRONOUS", "RIPPLE"] {
            v.push(
                ComponentSpec::new(ComponentKind::Counter, w)
                    .with_ops(count_ops)
                    .with_enable(true)
                    .with_style(style),
            );
        }
        v.push(ComponentSpec::new(ComponentKind::Counter, w).with_ops(count_ops));
    }
    v
}

/// `DT201`: a rule fully duplicated by an earlier rule.
pub struct ShadowedRule;

impl Lint for ShadowedRule {
    fn code(&self) -> &'static str {
        DT201
    }
    fn name(&self) -> &'static str {
        "shadowed-rule"
    }
    fn description(&self) -> &'static str {
        "a rule whose every template an earlier rule also produces"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Rules
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Rules { rules, library } = target else {
            return;
        };
        let a = shared_closure(rules, library);
        for (i, shadowers) in a.shadowers.iter().enumerate() {
            let Some(set) = shadowers else { continue };
            if let Some(&j) = set.iter().next() {
                out.push(
                    Diagnostic::new(
                        DT201,
                        Severity::Warn,
                        ArtifactKind::Rules,
                        format!("rule {}", a.names[i]),
                        format!(
                            "every template it produced was also produced by the \
                             earlier rule {}",
                            a.names[j]
                        ),
                    )
                    .with_suggestion("remove the rule or specialize its trigger"),
                );
            }
        }
    }
}

/// `DT202`: a rule no probed or derived spec ever triggers.
pub struct InapplicableRule;

impl Lint for InapplicableRule {
    fn code(&self) -> &'static str {
        DT202
    }
    fn name(&self) -> &'static str {
        "inapplicable-rule"
    }
    fn description(&self) -> &'static str {
        "a rule that never fires on any probed or derived spec"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Rules
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Rules { rules, library } = target else {
            return;
        };
        let a = shared_closure(rules, library);
        if a.truncated {
            return;
        }
        for (i, fired) in a.fired.iter().enumerate() {
            if !fired {
                out.push(
                    Diagnostic::new(
                        DT202,
                        Severity::Warn,
                        ArtifactKind::Rules,
                        format!("rule {}", a.names[i]),
                        format!(
                            "never produced a template across {} probed and derived \
                             specifications",
                            a.specs_explored
                        ),
                    )
                    .with_suggestion("its trigger condition may be unsatisfiable"),
                );
            }
        }
    }
}

/// `DT203`: direct self-recursion — a template containing its own parent.
pub struct SelfRecursiveRule;

impl Lint for SelfRecursiveRule {
    fn code(&self) -> &'static str {
        DT203
    }
    fn name(&self) -> &'static str {
        "self-recursive-rule"
    }
    fn description(&self) -> &'static str {
        "a rule expanding a spec into a template containing that same spec"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Rules
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Rules { rules, library } = target else {
            return;
        };
        let a = shared_closure(rules, library);
        for (rule, spec) in &a.self_recursive {
            out.push(
                Diagnostic::new(
                    DT203,
                    Severity::Error,
                    ArtifactKind::Rules,
                    format!("rule {rule}"),
                    format!("expands {spec} into a template containing {spec} itself"),
                )
                .with_suggestion(
                    "the rewrite cannot terminate; decompose into strictly smaller specs",
                ),
            );
        }
    }
}

/// `DT204`: library-rule leaves nothing can implement.
pub struct UnmatchableLeaf;

impl Lint for UnmatchableLeaf {
    fn code(&self) -> &'static str {
        DT204
    }
    fn name(&self) -> &'static str {
        "unmatchable-leaf"
    }
    fn description(&self) -> &'static str {
        "a library rule producing a module spec no cell implements and no rule decomposes"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Rules
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Rules { rules, library } = target else {
            return;
        };
        let a = shared_closure(rules, library);
        for (spec, rule) in &a.unmatchable {
            out.push(
                Diagnostic::new(
                    DT204,
                    Severity::Warn,
                    ArtifactKind::Rules,
                    format!("rule {rule}"),
                    format!(
                        "produces module {spec}, which no cell of library {} \
                         implements and no rule decomposes",
                        library.name()
                    ),
                )
                .with_suggestion("the rule targets a cell this library does not have"),
            );
        }
    }
}

/// `DT205`: structurally invalid templates.
pub struct InvalidTemplate;

impl Lint for InvalidTemplate {
    fn code(&self) -> &'static str {
        DT205
    }
    fn name(&self) -> &'static str {
        "invalid-template"
    }
    fn description(&self) -> &'static str {
        "a rule emitting a template that fails structural validation"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Rules
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Rules { rules, library } = target else {
            return;
        };
        let a = shared_closure(rules, library);
        for (rule, message) in &a.invalid {
            out.push(Diagnostic::new(
                DT205,
                Severity::Error,
                ArtifactKind::Rules,
                format!("rule {rule}"),
                message.clone(),
            ));
        }
    }
}

/// `DT206`: duplicate rule names.
pub struct DuplicateRuleName;

impl Lint for DuplicateRuleName {
    fn code(&self) -> &'static str {
        DT206
    }
    fn name(&self) -> &'static str {
        "duplicate-rule-name"
    }
    fn description(&self) -> &'static str {
        "two rules sharing a name"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Rules
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Rules { rules, .. } = target else {
            return;
        };
        let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
        for rule in rules.iter() {
            *seen.entry(rule.name()).or_insert(0) += 1;
        }
        for (name, count) in seen {
            if count > 1 {
                out.push(Diagnostic::new(
                    DT206,
                    Severity::Error,
                    ArtifactKind::Rules,
                    format!("rule {name}"),
                    format!(
                        "{count} rules share this name; reports and lint sites \
                         cannot distinguish them"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::LintRegistry;
    use crate::template::TemplateBuilder;
    use cells::lsi::lsi_logic_subset;

    fn run(rules: &RuleSet, library: &CellLibrary) -> Vec<&'static str> {
        LintRegistry::standard()
            .run(&LintTarget::Rules { rules, library })
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn shipped_rule_base_is_clean() {
        let rules = RuleSet::standard().with_lsi_extensions();
        let library = lsi_logic_subset();
        let report = LintRegistry::standard().run(&LintTarget::Rules {
            rules: &rules,
            library: &library,
        });
        assert!(report.is_clean(), "{report}");
    }

    struct NamedRule {
        name: &'static str,
        expand: fn(&ComponentSpec) -> Vec<NetlistTemplate>,
    }

    impl crate::rules::Rule for NamedRule {
        fn name(&self) -> &str {
            self.name
        }
        fn doc(&self) -> &str {
            "test rule"
        }
        fn expand(&self, spec: &ComponentSpec) -> Vec<NetlistTemplate> {
            (self.expand)(spec)
        }
    }

    fn base_with(extra: Vec<Box<dyn crate::rules::Rule>>) -> RuleSet {
        let mut rules = RuleSet::standard().with_lsi_extensions();
        rules.append_library_rules(extra);
        rules
    }

    #[test]
    fn never_firing_rule_is_inapplicable() {
        let rules = base_with(vec![Box::new(NamedRule {
            name: "never-fires",
            expand: |_| Vec::new(),
        })]);
        let found = run(&rules, &lsi_logic_subset());
        assert_eq!(found, vec![DT202]);
    }

    #[test]
    fn self_recursive_rule_detected() {
        fn expand(spec: &ComponentSpec) -> Vec<NetlistTemplate> {
            if spec.kind != ComponentKind::Delay {
                return Vec::new();
            }
            // DELAY -> the same DELAY spec wrapped once more.
            let mut t = TemplateBuilder::new("delay-self");
            t.module(
                "m0",
                spec.clone(),
                vec![("I", crate::template::Signal::parent("I"))],
                vec![("O", "w", spec.width)],
            );
            t.output("O", crate::template::Signal::net("w"));
            vec![t.build()]
        }
        let rules = base_with(vec![Box::new(NamedRule {
            name: "delay-self",
            expand,
        })]);
        let found = run(&rules, &lsi_logic_subset());
        assert!(found.contains(&DT203), "{found:?}");
    }

    #[test]
    fn duplicate_rule_name_detected() {
        let rules = base_with(vec![
            Box::new(NamedRule {
                name: "twin",
                expand: |_| Vec::new(),
            }),
            Box::new(NamedRule {
                name: "twin",
                expand: |_| Vec::new(),
            }),
        ]);
        let found = run(&rules, &lsi_logic_subset());
        assert!(found.contains(&DT206), "{found:?}");
    }
}
