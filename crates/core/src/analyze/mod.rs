//! Static analysis of bridge artifacts: a unified diagnostics framework.
//!
//! The bridge only works when the GENUS netlist, the DTAS rule base, the
//! technology databook and the LEGEND component descriptions are mutually
//! consistent — yet without this module every artifact is trusted blindly
//! until a solve fails deep inside the engine (or silently returns a
//! degenerate front). `analyze` is the pre-flight layer: a set of [`Lint`]
//! passes producing [`Diagnostic`]s with stable `DT###` codes, collected
//! into a [`LintReport`].
//!
//! Four artifact families are covered (one submodule each):
//!
//! * [`netlist`] — `DT1xx`: structural sanity of GENUS netlists beyond
//!   what [`Netlist::validate`](genus::netlist::Netlist::validate) reports
//!   (all findings, not first-error; plus combinational loops and
//!   reachability).
//! * [`rules`] — `DT2xx`: hygiene of the DTAS rule base against a loaded
//!   library (shadowed/inapplicable rules, self-recursive rewrites,
//!   unmatchable library-rule leaves, invalid templates, duplicate names).
//! * [`databook`] — `DT3xx`: cost-model sanity of a technology databook
//!   (non-finite/negative costs, Pareto-dominated cells, missing delay
//!   arcs, non-monotone cost-vs-width families).
//! * [`legend`] — `DT4xx`: consistency of LEGEND component descriptions
//!   (duplicate generators, unused ports, shadowed assignments, unknown
//!   port references, unfireable operations).
//!
//! # Examples
//!
//! Lint the shipped 30-cell databook (which must be clean):
//!
//! ```
//! use dtas::analyze::{LintRegistry, LintTarget};
//! use cells::lsi::lsi_logic_subset;
//!
//! let registry = LintRegistry::standard();
//! let library = lsi_logic_subset();
//! let report = registry.run(&LintTarget::Databook(&library));
//! assert!(report.is_clean(), "{report}");
//! ```

pub mod databook;
pub mod legend;
pub mod netlist;
pub mod rules;

use crate::rules::RuleSet;
use ::legend::ast::LegendDescription;
use cells::CellLibrary;
use genus::netlist::Netlist;
use std::fmt;

/// How bad a finding is.
///
/// Ordered so that `Info < Warn < Error`; [`LintReport::max_severity`]
/// relies on this to derive process exit codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never fails a run.
    Info,
    /// Suspicious but not certainly broken.
    Warn,
    /// The artifact will misbehave if used.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// The artifact family a lint inspects (and a diagnostic refers to).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// A GENUS structural netlist.
    Netlist,
    /// The DTAS decomposition rule base (checked against a library).
    Rules,
    /// A technology databook (cell library with costs).
    Databook,
    /// LEGEND component descriptions.
    Legend,
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArtifactKind::Netlist => "netlist",
            ArtifactKind::Rules => "rules",
            ArtifactKind::Databook => "databook",
            ArtifactKind::Legend => "legend",
        })
    }
}

/// One finding: a stable code, a severity, a locus and a message.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`DT101`, `DT302`, ...). Codes are
    /// never reused for a different meaning once shipped.
    pub code: &'static str,
    /// How bad the finding is.
    pub severity: Severity,
    /// Which artifact family the finding is about.
    pub artifact: ArtifactKind,
    /// The locus inside the artifact (net, rule, cell or generator name —
    /// the closest thing a flat artifact has to a source span).
    pub site: String,
    /// Human-readable description of the defect.
    pub message: String,
    /// Optional remediation hint.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic without a suggestion.
    pub fn new(
        code: &'static str,
        severity: Severity,
        artifact: ArtifactKind,
        site: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            artifact,
            site: site.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a remediation hint.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {} {}: {}",
            self.severity, self.code, self.artifact, self.site, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (hint: {s})")?;
        }
        Ok(())
    }
}

/// A borrowed artifact handed to the lint passes.
pub enum LintTarget<'a> {
    /// A structural netlist.
    Netlist(&'a Netlist),
    /// The rule base, checked against the library it will map onto.
    Rules {
        /// The rule base under analysis.
        rules: &'a RuleSet,
        /// The technology library the rules target.
        library: &'a CellLibrary,
    },
    /// A technology databook.
    Databook(&'a CellLibrary),
    /// A set of LEGEND component descriptions (one parsed document).
    Legend(&'a [LegendDescription]),
}

impl LintTarget<'_> {
    /// The artifact family of this target.
    pub fn kind(&self) -> ArtifactKind {
        match self {
            LintTarget::Netlist(_) => ArtifactKind::Netlist,
            LintTarget::Rules { .. } => ArtifactKind::Rules,
            LintTarget::Databook(_) => ArtifactKind::Databook,
            LintTarget::Legend(_) => ArtifactKind::Legend,
        }
    }

    /// A short human-readable name for the artifact instance.
    pub fn describe(&self) -> String {
        match self {
            LintTarget::Netlist(nl) => format!("netlist {}", nl.name()),
            LintTarget::Rules { rules, library } => {
                format!("{} rules vs library {}", rules.len(), library.name())
            }
            LintTarget::Databook(lib) => format!("databook {}", lib.name()),
            LintTarget::Legend(descs) => format!("{} legend generators", descs.len()),
        }
    }
}

/// One static-analysis pass.
///
/// A lint inspects a single [`ArtifactKind`] and appends zero or more
/// [`Diagnostic`]s, all carrying the lint's [`code`](Lint::code). Passes
/// must be deterministic: the same artifact always yields the same
/// findings in the same order.
pub trait Lint: Send + Sync {
    /// The stable diagnostic code this pass emits (`DT###`).
    fn code(&self) -> &'static str;
    /// Short kebab-case name.
    fn name(&self) -> &'static str;
    /// One-line description of what the pass detects.
    fn description(&self) -> &'static str;
    /// The artifact family this pass inspects.
    fn applies_to(&self) -> ArtifactKind;
    /// Runs the pass, appending findings to `out`. Called only with a
    /// target whose [`kind`](LintTarget::kind) matches
    /// [`applies_to`](Lint::applies_to).
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>);
}

/// The findings of one or more lint runs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LintReport {
    /// All findings, sorted by (code, site, message).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True when there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The worst severity present, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// True when at least one Error-severity finding is present.
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// Number of findings at `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Folds another report's findings into this one (re-sorting).
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
        self.sort();
    }

    fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (a.code, &a.site, &a.message).cmp(&(b.code, &b.site, &b.message)));
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "clean: no findings");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} info",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        )
    }
}

/// An ordered collection of lint passes.
pub struct LintRegistry {
    lints: Vec<Box<dyn Lint>>,
}

impl LintRegistry {
    /// Every shipped pass, in code order.
    pub fn standard() -> Self {
        let mut lints: Vec<Box<dyn Lint>> = Vec::new();
        netlist::register(&mut lints);
        rules::register(&mut lints);
        databook::register(&mut lints);
        legend::register(&mut lints);
        LintRegistry { lints }
    }

    /// The registered passes.
    pub fn lints(&self) -> impl Iterator<Item = &dyn Lint> {
        self.lints.iter().map(|l| l.as_ref())
    }

    /// Runs every pass applicable to `target`, returning a sorted report.
    pub fn run(&self, target: &LintTarget<'_>) -> LintReport {
        let kind = target.kind();
        let mut report = LintReport::default();
        for lint in &self.lints {
            if lint.applies_to() == kind {
                lint.run(target, &mut report.diagnostics);
            }
        }
        report.sort();
        report
    }
}

impl Default for LintRegistry {
    fn default() -> Self {
        LintRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_for_exit_codes() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn registry_has_unique_codes_in_order() {
        let reg = LintRegistry::standard();
        let codes: Vec<&str> = reg.lints().map(|l| l.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), codes.len(), "duplicate lint codes");
        assert!(codes.len() >= 10, "ISSUE requires >= 10 codes");
        for code in &codes {
            assert!(code.starts_with("DT") && code.len() == 5, "bad code {code}");
        }
    }

    #[test]
    fn report_counts_and_severity() {
        let mut r = LintReport::default();
        assert!(r.is_clean());
        assert_eq!(r.max_severity(), None);
        r.diagnostics.push(Diagnostic::new(
            "DT999",
            Severity::Warn,
            ArtifactKind::Netlist,
            "x",
            "m",
        ));
        let mut other = LintReport::default();
        other.diagnostics.push(
            Diagnostic::new("DT100", Severity::Error, ArtifactKind::Netlist, "y", "n")
                .with_suggestion("fix it"),
        );
        r.merge(other);
        assert_eq!(r.max_severity(), Some(Severity::Error));
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Warn), 1);
        // Sorted by code: DT100 first.
        assert_eq!(r.diagnostics[0].code, "DT100");
        let shown = r.to_string();
        assert!(shown.contains("error[DT100] netlist y: n (hint: fix it)"));
        assert!(shown.contains("1 error(s), 1 warning(s), 0 info"));
    }
}
