//! Netlist lints (`DT1xx`): structural sanity of GENUS netlists.
//!
//! [`Netlist::validate`](genus::netlist::Netlist::validate) stops at the
//! first error; these passes report *every* finding, and add analyses
//! validation does not attempt: combinational-loop detection through the
//! components' port dependency graphs ([`DT105`]) and reachability of
//! every instance from the design outputs ([`DT106`]).

use super::{ArtifactKind, Diagnostic, Lint, LintTarget, Severity};
use genus::component::PortDir;
use genus::netlist::Netlist;
use std::collections::{BTreeMap, BTreeSet};

/// `DT101`: a net no instance input or external output ever reads.
pub const DT101: &str = "DT101";
/// `DT102`: a net with readers but no driver.
pub const DT102: &str = "DT102";
/// `DT103`: a net driven by more than one source.
pub const DT103: &str = "DT103";
/// `DT104`: a connection whose port and net widths differ.
pub const DT104: &str = "DT104";
/// `DT105`: a combinational feedback loop.
pub const DT105: &str = "DT105";
/// `DT106`: an instance unreachable from any external output.
pub const DT106: &str = "DT106";
/// `DT107`: a connection referencing an unknown port or net, or an
/// unconnected component input.
pub const DT107: &str = "DT107";

/// Registers every netlist pass, in code order.
pub fn register(lints: &mut Vec<Box<dyn Lint>>) {
    lints.push(Box::new(DanglingNet));
    lints.push(Box::new(UndrivenNet));
    lints.push(Box::new(MultipleDrivers));
    lints.push(Box::new(WidthMismatch));
    lints.push(Box::new(CombinationalLoop));
    lints.push(Box::new(UnreachableComponent));
    lints.push(Box::new(UnknownReference));
}

/// Per-net usage tally: how many sources drive it and how many sinks read
/// it. Connections with unknown ports or nets are skipped (they are
/// [`DT107`]'s findings, not noise for the usage lints).
fn net_usage(nl: &Netlist) -> BTreeMap<&str, (usize, usize)> {
    let mut usage: BTreeMap<&str, (usize, usize)> = nl
        .nets()
        .iter()
        .map(|n| (n.name.as_str(), (0, 0)))
        .collect();
    for n in nl.nets() {
        if n.constant.is_some() {
            usage.get_mut(n.name.as_str()).expect("known net").0 += 1;
        }
    }
    for p in nl.ports() {
        if let Some(u) = usage.get_mut(p.net.as_str()) {
            match p.dir {
                PortDir::In => u.0 += 1,
                PortDir::Out => u.1 += 1,
            }
        }
    }
    for inst in nl.instances() {
        for (port_name, net_name) in &inst.connections {
            let Some(port) = inst.component.port(port_name) else {
                continue;
            };
            let Some(u) = usage.get_mut(net_name.as_str()) else {
                continue;
            };
            match port.dir {
                PortDir::In => u.1 += 1,
                PortDir::Out => u.0 += 1,
            }
        }
    }
    usage
}

/// `DT101`: nets nothing reads.
pub struct DanglingNet;

impl Lint for DanglingNet {
    fn code(&self) -> &'static str {
        DT101
    }
    fn name(&self) -> &'static str {
        "dangling-net"
    }
    fn description(&self) -> &'static str {
        "a net no instance input or external output reads"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Netlist
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Netlist(nl) = target else {
            return;
        };
        for (net, (_, readers)) in net_usage(nl) {
            if readers == 0 {
                out.push(
                    Diagnostic::new(
                        DT101,
                        Severity::Warn,
                        ArtifactKind::Netlist,
                        format!("net {net}"),
                        "nothing reads this net",
                    )
                    .with_suggestion("remove the net or wire it to a sink"),
                );
            }
        }
    }
}

/// `DT102`: nets with readers but no driver.
pub struct UndrivenNet;

impl Lint for UndrivenNet {
    fn code(&self) -> &'static str {
        DT102
    }
    fn name(&self) -> &'static str {
        "undriven-net"
    }
    fn description(&self) -> &'static str {
        "a net that is read but has no driver"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Netlist
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Netlist(nl) = target else {
            return;
        };
        for (net, (drivers, readers)) in net_usage(nl) {
            if readers > 0 && drivers == 0 {
                out.push(
                    Diagnostic::new(
                        DT102,
                        Severity::Error,
                        ArtifactKind::Netlist,
                        format!("net {net}"),
                        format!("read by {readers} sink(s) but driven by nothing"),
                    )
                    .with_suggestion(
                        "drive it from an instance output, an external input or a constant",
                    ),
                );
            }
        }
    }
}

/// `DT103`: nets with more than one driver.
pub struct MultipleDrivers;

impl Lint for MultipleDrivers {
    fn code(&self) -> &'static str {
        DT103
    }
    fn name(&self) -> &'static str {
        "multiple-drivers"
    }
    fn description(&self) -> &'static str {
        "a net driven by more than one source"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Netlist
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Netlist(nl) = target else {
            return;
        };
        for (net, (drivers, _)) in net_usage(nl) {
            if drivers > 1 {
                out.push(Diagnostic::new(
                    DT103,
                    Severity::Error,
                    ArtifactKind::Netlist,
                    format!("net {net}"),
                    format!("{drivers} drivers contend on this net"),
                ));
            }
        }
    }
}

/// `DT104`: connection width mismatches.
pub struct WidthMismatch;

impl Lint for WidthMismatch {
    fn code(&self) -> &'static str {
        DT104
    }
    fn name(&self) -> &'static str {
        "width-mismatch"
    }
    fn description(&self) -> &'static str {
        "a connection whose port and net widths differ"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Netlist
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Netlist(nl) = target else {
            return;
        };
        for inst in nl.instances() {
            for (port_name, net_name) in &inst.connections {
                let (Some(port), Some(net)) = (inst.component.port(port_name), nl.net(net_name))
                else {
                    continue;
                };
                if port.width != net.width {
                    out.push(Diagnostic::new(
                        DT104,
                        Severity::Error,
                        ArtifactKind::Netlist,
                        format!("{}.{}", inst.name, port_name),
                        format!(
                            "port is {} bit(s) but net {} is {}",
                            port.width, net.name, net.width
                        ),
                    ));
                }
            }
        }
    }
}

/// `DT105`: combinational feedback loops.
///
/// Builds a net-to-net dependency graph through each component's
/// [`output_dependencies`](genus::component::Component::output_dependencies),
/// skipping registered outputs (a register legitimately closes a cycle),
/// and reports every strongly connected component that loops.
pub struct CombinationalLoop;

impl Lint for CombinationalLoop {
    fn code(&self) -> &'static str {
        DT105
    }
    fn name(&self) -> &'static str {
        "combinational-loop"
    }
    fn description(&self) -> &'static str {
        "a feedback loop with no register on the path"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Netlist
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Netlist(nl) = target else {
            return;
        };
        let index: BTreeMap<&str, usize> = nl
            .nets()
            .iter()
            .enumerate()
            .map(|(i, n)| (n.name.as_str(), i))
            .collect();
        let names: Vec<&str> = nl.nets().iter().map(|n| n.name.as_str()).collect();
        let n = names.len();
        let mut fwd: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        let mut rev: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for inst in nl.instances() {
            let deps = inst.component.output_dependencies();
            for (out_port, in_ports) in &deps {
                if inst.component.is_registered_output(out_port) {
                    continue;
                }
                let Some(out_net) = inst
                    .connections
                    .get(out_port)
                    .and_then(|net| index.get(net.as_str()))
                else {
                    continue;
                };
                for in_port in in_ports {
                    let Some(in_net) = inst
                        .connections
                        .get(in_port)
                        .and_then(|net| index.get(net.as_str()))
                    else {
                        continue;
                    };
                    fwd[*in_net].insert(*out_net);
                    rev[*out_net].insert(*in_net);
                }
            }
        }
        // Kosaraju: finish order on the forward graph, then components on
        // the reverse graph. Iterative so pathological netlists cannot
        // blow the stack.
        let mut finish: Vec<usize> = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack = vec![(start, false)];
            while let Some((node, expanded)) = stack.pop() {
                if expanded {
                    finish.push(node);
                    continue;
                }
                if seen[node] {
                    continue;
                }
                seen[node] = true;
                stack.push((node, true));
                for &next in &fwd[node] {
                    if !seen[next] {
                        stack.push((next, false));
                    }
                }
            }
        }
        let mut component = vec![usize::MAX; n];
        let mut comps: Vec<Vec<usize>> = Vec::new();
        for &start in finish.iter().rev() {
            if component[start] != usize::MAX {
                continue;
            }
            let id = comps.len();
            let mut members = Vec::new();
            let mut stack = vec![start];
            while let Some(node) = stack.pop() {
                if component[node] != usize::MAX {
                    continue;
                }
                component[node] = id;
                members.push(node);
                for &next in &rev[node] {
                    if component[next] == usize::MAX {
                        stack.push(next);
                    }
                }
            }
            comps.push(members);
        }
        for members in comps {
            let looping = members.len() > 1 || fwd[members[0]].contains(&members[0]);
            if !looping {
                continue;
            }
            let mut cycle: Vec<&str> = members.iter().map(|&i| names[i]).collect();
            cycle.sort_unstable();
            out.push(
                Diagnostic::new(
                    DT105,
                    Severity::Error,
                    ArtifactKind::Netlist,
                    format!("net {}", cycle[0]),
                    format!("combinational loop through {}", cycle.join(" -> ")),
                )
                .with_suggestion("break the loop with a register"),
            );
        }
    }
}

/// `DT106`: instances no external output depends on.
pub struct UnreachableComponent;

impl Lint for UnreachableComponent {
    fn code(&self) -> &'static str {
        DT106
    }
    fn name(&self) -> &'static str {
        "unreachable-component"
    }
    fn description(&self) -> &'static str {
        "an instance that influences no external output"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Netlist
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Netlist(nl) = target else {
            return;
        };
        // With no declared outputs there is nothing to be reachable from;
        // that is a legitimate state for a netlist still being built.
        if !nl.ports().iter().any(|p| p.dir == PortDir::Out) {
            return;
        }
        // Net -> driving instance indices (through output connections).
        let mut driver_of: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, inst) in nl.instances().iter().enumerate() {
            for (port_name, net_name) in &inst.connections {
                if inst.component.port(port_name).map(|p| p.dir) == Some(PortDir::Out) {
                    driver_of.entry(net_name.as_str()).or_default().push(i);
                }
            }
        }
        let mut reached = vec![false; nl.instances().len()];
        let mut frontier: Vec<&str> = nl
            .ports()
            .iter()
            .filter(|p| p.dir == PortDir::Out)
            .map(|p| p.net.as_str())
            .collect();
        let mut visited_nets: BTreeSet<&str> = frontier.iter().copied().collect();
        while let Some(net) = frontier.pop() {
            for &i in driver_of.get(net).into_iter().flatten() {
                if reached[i] {
                    continue;
                }
                reached[i] = true;
                let inst = &nl.instances()[i];
                for (port_name, net_name) in &inst.connections {
                    if inst.component.port(port_name).map(|p| p.dir) == Some(PortDir::In)
                        && visited_nets.insert(net_name.as_str())
                    {
                        frontier.push(net_name.as_str());
                    }
                }
            }
        }
        for (i, inst) in nl.instances().iter().enumerate() {
            if !reached[i] {
                out.push(
                    Diagnostic::new(
                        DT106,
                        Severity::Warn,
                        ArtifactKind::Netlist,
                        format!("instance {}", inst.name),
                        "no external output depends on this instance",
                    )
                    .with_suggestion("expose its result as an output or remove it"),
                );
            }
        }
    }
}

/// `DT107`: unknown ports, unknown nets and unconnected inputs.
pub struct UnknownReference;

impl Lint for UnknownReference {
    fn code(&self) -> &'static str {
        DT107
    }
    fn name(&self) -> &'static str {
        "unknown-reference"
    }
    fn description(&self) -> &'static str {
        "a connection referencing an unknown port or net, or an unconnected input"
    }
    fn applies_to(&self) -> ArtifactKind {
        ArtifactKind::Netlist
    }
    fn run(&self, target: &LintTarget<'_>, out: &mut Vec<Diagnostic>) {
        let LintTarget::Netlist(nl) = target else {
            return;
        };
        for inst in nl.instances() {
            for (port_name, net_name) in &inst.connections {
                if inst.component.port(port_name).is_none() {
                    out.push(Diagnostic::new(
                        DT107,
                        Severity::Error,
                        ArtifactKind::Netlist,
                        format!("{}.{}", inst.name, port_name),
                        format!(
                            "component {} has no port {port_name}",
                            inst.component.name()
                        ),
                    ));
                }
                if nl.net(net_name).is_none() {
                    out.push(Diagnostic::new(
                        DT107,
                        Severity::Error,
                        ArtifactKind::Netlist,
                        format!("{}.{}", inst.name, port_name),
                        format!("references unknown net {net_name}"),
                    ));
                }
            }
            for port in inst.component.inputs() {
                if !inst.connections.contains_key(&port.name) {
                    out.push(Diagnostic::new(
                        DT107,
                        Severity::Error,
                        ArtifactKind::Netlist,
                        format!("{}.{}", inst.name, port.name),
                        "input port is unconnected",
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::LintRegistry;
    use genus::component::Instance;
    use genus::stdlib::GenusLibrary;
    use std::sync::Arc;

    fn clean_adder() -> Netlist {
        let lib = GenusLibrary::standard();
        let adder = Arc::new(lib.adder(8).unwrap());
        let mut nl = Netlist::new("t");
        for (n, w) in [("a", 8), ("b", 8), ("s", 8), ("ci", 1), ("co", 1)] {
            nl.add_net(n, w).unwrap();
        }
        nl.add_instance(
            Instance::new("u0", adder)
                .with_connection("A", "a")
                .with_connection("B", "b")
                .with_connection("CI", "ci")
                .with_connection("O", "s")
                .with_connection("CO", "co"),
        )
        .unwrap();
        nl.expose_input("a", "a").unwrap();
        nl.expose_input("b", "b").unwrap();
        nl.expose_input("ci", "ci").unwrap();
        nl.expose_output("s", "s").unwrap();
        nl.expose_output("co", "co").unwrap();
        nl
    }

    fn codes(nl: &Netlist) -> Vec<&'static str> {
        LintRegistry::standard()
            .run(&LintTarget::Netlist(nl))
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_netlist_is_clean() {
        assert!(codes(&clean_adder()).is_empty());
    }

    #[test]
    fn dangling_and_undriven() {
        let mut nl = clean_adder();
        nl.add_net("orphan", 4).unwrap();
        assert_eq!(codes(&nl), vec![DT101]);
    }

    #[test]
    fn combinational_loop_found_and_register_breaks_it() {
        let lib = GenusLibrary::standard();
        let buf = Arc::new(lib.buffer(4).unwrap());
        let mut nl = Netlist::new("loop");
        nl.add_net("x", 4).unwrap();
        nl.add_net("y", 4).unwrap();
        nl.add_instance(
            Instance::new("u0", Arc::clone(&buf))
                .with_connection("I", "x")
                .with_connection("O", "y"),
        )
        .unwrap();
        nl.add_instance(
            Instance::new("u1", Arc::clone(&buf))
                .with_connection("I", "y")
                .with_connection("O", "x"),
        )
        .unwrap();
        nl.expose_output("y", "y").unwrap();
        let found = codes(&nl);
        assert!(found.contains(&DT105), "{found:?}");
        // Same topology with a register in the path: no DT105.
        let reg = Arc::new(lib.register(4).unwrap());
        let mut nl2 = Netlist::new("reg_loop");
        nl2.add_net("x", 4).unwrap();
        nl2.add_net("y", 4).unwrap();
        nl2.add_net("clk", 1).unwrap();
        nl2.expose_input("clk", "clk").unwrap();
        nl2.add_instance(
            Instance::new("u0", Arc::clone(&buf))
                .with_connection("I", "x")
                .with_connection("O", "y"),
        )
        .unwrap();
        let mut r = Instance::new("r0", reg);
        r.connect("D", "y").connect("Q", "x").connect("CLK", "clk");
        nl2.add_instance(r).unwrap();
        nl2.expose_output("y", "y").unwrap();
        let found2 = codes(&nl2);
        assert!(!found2.contains(&DT105), "{found2:?}");
    }
}
