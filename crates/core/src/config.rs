//! Engine configuration.

use crate::space::FilterPolicy;
use rtl_base::hash::StableHasher;
use std::hash::Hash;
use std::path::PathBuf;

/// Configuration of a DTAS run.
#[derive(Clone, Debug)]
pub struct DtasConfig {
    /// Performance filter at internal spec nodes.
    pub node_filter: FilterPolicy,
    /// Alternatives kept per internal node.
    pub node_cap: usize,
    /// Performance filter at the root (the paper keeps near-optimal
    /// "favorable tradeoff" designs, not just the strict front).
    pub root_filter: FilterPolicy,
    /// Alternatives kept at the root.
    pub root_cap: usize,
    /// Cap on child-front combinations per template.
    pub max_combinations: usize,
    /// Budget for exact uniform-constraint design counting (0 disables).
    pub uniform_count_limit: u64,
    /// Worker threads for expansion, solving and counting. `None` uses
    /// [`std::thread::available_parallelism`]; `Some(1)` forces the serial
    /// path. Results are identical at every setting.
    pub threads: Option<usize>,
    /// Engine-level cross-query memoization: when on (the default),
    /// design spaces, node fronts and whole result sets persist inside
    /// [`Dtas`](crate::Dtas) across `synthesize` calls, so repeated
    /// specs — and shared sub-specs under *different* roots — are solved
    /// once per engine lifetime. Turn off to ablate (every query starts
    /// cold).
    pub cache: bool,
    /// Directory for the on-disk warm-start store. When set, the engine
    /// binds a [`PersistentStore`](crate::store::PersistentStore) on this
    /// directory: construction loads a compatible snapshot (design space,
    /// solved fronts, memoized results) if one exists, and the state is
    /// flushed back on drop or explicit
    /// [`checkpoint`](crate::Dtas::checkpoint). Snapshots are keyed by
    /// library, rule-set and configuration fingerprints plus the codec
    /// format version, so an incompatible snapshot is rejected and the
    /// engine simply starts cold. Ignored when `cache` is off.
    pub persist_path: Option<PathBuf>,
    /// Compaction trigger for the tiered store: when the accumulated
    /// delta segments exceed this fraction of the base segment's size,
    /// the next checkpoint rewrites a fresh base (folding the chain)
    /// instead of appending another delta. Lower values compact more
    /// eagerly (faster loads, more write amplification); higher values
    /// let chains grow longer. A non-finite or negative value compacts
    /// on every dirty checkpoint. Storage-only: excluded from
    /// [`result_fingerprint`](Self::result_fingerprint).
    pub compaction_ratio: f64,
    /// Opt-in static pre-flight: when on, flow entry points that accept
    /// external artifacts (the `hls-rtl-bridge` facade's `LinkedFlow::map`)
    /// run the [`analyze`](crate::analyze) netlist lints first and refuse
    /// inputs carrying Error-severity findings instead of feeding them to
    /// the engine. Off by default; it does not change what a query returns
    /// for *accepted* inputs, so it is excluded from
    /// [`result_fingerprint`](Self::result_fingerprint).
    pub strict_preflight: bool,
}

impl Default for DtasConfig {
    fn default() -> Self {
        DtasConfig {
            node_filter: FilterPolicy::Pareto,
            node_cap: 24,
            root_filter: FilterPolicy::Slack {
                area: 0.5,
                delay: 0.5,
            },
            root_cap: 16,
            max_combinations: 100_000,
            uniform_count_limit: 2_000_000,
            threads: None,
            cache: true,
            persist_path: None,
            compaction_ratio: 0.5,
            strict_preflight: false,
        }
    }
}

impl DtasConfig {
    /// Stable fingerprint over every field that shapes *results* (filters,
    /// caps, combination and counting budgets). `threads`, `cache` and
    /// `persist_path` are excluded on purpose: results are bit-identical
    /// at any thread count, and the storage knobs do not change what a
    /// query returns. Snapshots taken under a different result-shaping
    /// configuration must not be reused — their fronts were filtered
    /// differently — so this fingerprint is part of the snapshot key.
    pub fn result_fingerprint(&self) -> u64 {
        fn feed_filter(h: &mut StableHasher, filter: FilterPolicy) {
            match filter {
                FilterPolicy::Pareto => 0u8.hash(h),
                FilterPolicy::Slack { area, delay } => {
                    1u8.hash(h);
                    area.to_bits().hash(h);
                    delay.to_bits().hash(h);
                }
            }
        }
        StableHasher::digest_of(|h| {
            "dtas-config/1".hash(h);
            feed_filter(h, self.node_filter);
            (self.node_cap as u64).hash(h);
            feed_filter(h, self.root_filter);
            (self.root_cap as u64).hash(h);
            (self.max_combinations as u64).hash(h);
            self.uniform_count_limit.hash(h);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_result_shaping_fields_only() {
        let base = DtasConfig::default();
        let same = DtasConfig {
            threads: Some(7),
            cache: false,
            persist_path: Some(PathBuf::from("/tmp/x")),
            compaction_ratio: 0.1,
            strict_preflight: true,
            ..DtasConfig::default()
        };
        assert_eq!(base.result_fingerprint(), same.result_fingerprint());
        let capped = DtasConfig {
            node_cap: 8,
            ..DtasConfig::default()
        };
        assert_ne!(base.result_fingerprint(), capped.result_fingerprint());
        let refiltered = DtasConfig {
            root_filter: FilterPolicy::Pareto,
            ..DtasConfig::default()
        };
        assert_ne!(base.result_fingerprint(), refiltered.result_fingerprint());
    }
}
