//! Canonical specification keys: collapse functionally-equivalent spec
//! variants onto one memo/store/wire entry.
//!
//! The result memo (and the persistent store behind it) is keyed on
//! *structural* [`ComponentSpec`] identity, so near-duplicate traffic —
//! the same ALU padded with a redundant secondary width, a styled and an
//! unstyled request for the same adder — solves twice. This module maps
//! each requested spec to a *canonical* form ahead of every memo lookup,
//! plus a cheap answer rewrite back to the caller's shape (the delivered
//! [`DesignSet`](crate::DesignSet) differs from a fresh raw-spec solve
//! only in the root spec label, which the rewrite restores).
//!
//! # How canonicalization stays answer-preserving
//!
//! Equivalence is never assumed from field semantics; every candidate
//! elision is **probe-verified** against the live rule base and library.
//! Two specs are interchangeable for the whole solve when their one-level
//! views agree exactly:
//!
//! 1. their generic component models are [functionally
//!    equal](genus::component::Component::functionally_equal) (same
//!    ports, operations, select/clock wiring, registered outputs);
//! 2. the library offers the identical cell list for both
//!    ([`CellLibrary::implementers`]);
//! 3. every rule expands both to the identical template list, in order.
//!
//! Equal templates name equal child specs, so the equivalence extends
//! inductively over the whole decomposition subtree: expansion, fronts,
//! costs, sizes and extraction are bit-identical, leaving only the root
//! spec label to rewrite. Candidates whose elision *does* change
//! functionality (dropping a carry-in that materializes a port, a style
//! some rule actually matches on) fail probe 1 or 3 and are kept as-is —
//! no per-kind audit is needed, and rule-base changes are picked up
//! because the engine clears this cache on every `update_rules`.
//!
//! The elisions attempted, in fixed order (each kept only if the probe
//! passes): strip the style attribute; zero the secondary width; zero the
//! fan-in; clear each of the carry/enable/async/group-P-G flags.
//! Commutative operation sets need no step here: [`OpSet`](genus::op::OpSet)
//! is a bitset, canonically ordered by construction.

use crate::rules::RuleSet;
use crate::template::SpecModelCache;
use cells::CellLibrary;
use genus::spec::ComponentSpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Version tag of the canonicalization scheme, mixed into every
/// [`StoreKey`](crate::store::StoreKey) and wire handshake: state keyed
/// by one scheme's canonical specs must never be served to an engine
/// running another.
const CANON_SCHEME: &str = "dtas-canon/1";

/// The elision steps of [`CANON_SCHEME`], fingerprinted so reordering or
/// extending the candidate list bumps the canonical fingerprint.
const CANON_STEPS: [&str; 8] = [
    "style",
    "width2",
    "inputs",
    "carry_in",
    "carry_out",
    "enable",
    "async_set_reset",
    "group_pg",
];

/// Fingerprint of the canonicalization scheme this build applies ahead of
/// memo/store/wire keys.
pub fn canon_fingerprint() -> u64 {
    let mut seed = Vec::new();
    seed.extend_from_slice(CANON_SCHEME.as_bytes());
    for step in CANON_STEPS {
        seed.push(b'/');
        seed.extend_from_slice(step.as_bytes());
    }
    rtl_base::hash::fnv1a_64(&seed)
}

/// The engine's canonicalizer: a raw-spec → canonical-spec cache plus the
/// counters [`CacheStats`](crate::CacheStats) reports.
///
/// Probes are pure functions of `(spec, rules, library)`, so the cache is
/// valid until the rule base changes — the engine clears it on
/// `update_rules` (and on `clear_cache`). It owns a private
/// [`SpecModelCache`]: probing must not touch the engine's shared-state
/// lock, keeping the memoized hit path lock-profile unchanged.
#[derive(Default)]
pub(crate) struct Canonicalizer {
    cache: RwLock<HashMap<ComponentSpec, ComponentSpec>>,
    models: SpecModelCache,
    /// Queries whose canonical key differed from the raw request — each
    /// was served through (and warmed) the collapsed entry.
    pub(crate) canonical_hits: AtomicU64,
    /// Distinct raw specs this engine has mapped onto a *different*
    /// canonical spec.
    pub(crate) specs_collapsed: AtomicU64,
}

impl Canonicalizer {
    pub(crate) fn new() -> Self {
        Canonicalizer::default()
    }

    /// Drops every cached mapping and counter (rule base replaced, cache
    /// cleared). Model entries are kept: models depend only on the spec.
    pub(crate) fn clear(&self) {
        match self.cache.write() {
            Ok(mut cache) => cache.clear(),
            Err(poisoned) => {
                self.cache.clear_poison();
                poisoned.into_inner().clear();
            }
        }
        self.canonical_hits.store(0, Ordering::Relaxed);
        self.specs_collapsed.store(0, Ordering::Relaxed);
    }

    /// The canonical form of `spec` under the given rule base and
    /// library. Returns `spec` itself (a clone) when no elision survives
    /// the probes. Counts a canonical hit whenever the result differs
    /// from the request.
    pub(crate) fn canonical(
        &self,
        spec: &ComponentSpec,
        rules: &RuleSet,
        library: &CellLibrary,
    ) -> ComponentSpec {
        if let Ok(cache) = self.cache.read() {
            if let Some(canon) = cache.get(spec) {
                if canon != spec {
                    self.canonical_hits.fetch_add(1, Ordering::Relaxed);
                }
                return canon.clone();
            }
        }
        let canon = self.canonicalize(spec, rules, library);
        if canon != *spec {
            self.canonical_hits.fetch_add(1, Ordering::Relaxed);
        }
        let mut cache = match self.cache.write() {
            Ok(cache) => cache,
            Err(poisoned) => {
                self.cache.clear_poison();
                let mut cache = poisoned.into_inner();
                cache.clear();
                cache
            }
        };
        if !cache.contains_key(spec) && canon != *spec {
            self.specs_collapsed.fetch_add(1, Ordering::Relaxed);
        }
        cache.entry(spec.clone()).or_insert_with(|| canon.clone());
        canon
    }

    /// Greedy elision: try each candidate in fixed order, keeping a step
    /// only when the probe proves the one-level views identical. Each
    /// accepted step is verified against the *previous* accepted form, so
    /// the chain composes by transitivity.
    fn canonicalize(
        &self,
        spec: &ComponentSpec,
        rules: &RuleSet,
        library: &CellLibrary,
    ) -> ComponentSpec {
        let mut canon = spec.clone();
        let candidates: [fn(&ComponentSpec) -> Option<ComponentSpec>; 8] = [
            |s| {
                s.style.is_some().then(|| {
                    let mut c = s.clone();
                    c.style = None;
                    c
                })
            },
            |s| {
                (s.width2 != 0).then(|| {
                    let mut c = s.clone();
                    c.width2 = 0;
                    c
                })
            },
            |s| {
                (s.inputs != 0).then(|| {
                    let mut c = s.clone();
                    c.inputs = 0;
                    c
                })
            },
            |s| {
                s.carry_in.then(|| {
                    let mut c = s.clone();
                    c.carry_in = false;
                    c
                })
            },
            |s| {
                s.carry_out.then(|| {
                    let mut c = s.clone();
                    c.carry_out = false;
                    c
                })
            },
            |s| {
                s.enable.then(|| {
                    let mut c = s.clone();
                    c.enable = false;
                    c
                })
            },
            |s| {
                s.async_set_reset.then(|| {
                    let mut c = s.clone();
                    c.async_set_reset = false;
                    c
                })
            },
            |s| {
                s.group_pg.then(|| {
                    let mut c = s.clone();
                    c.group_pg = false;
                    c
                })
            },
        ];
        // Iterate to a fixpoint: a later elision can re-enable an earlier
        // one (a rule that matches style only while the fan-in is set,
        // say). Each accepted step clears a field and nothing ever sets
        // one, so the loop terminates after at most 8 acceptances.
        loop {
            let before = canon.clone();
            for candidate in candidates {
                if let Some(cand) = candidate(&canon) {
                    if self.equivalent(&canon, &cand, rules, library) {
                        canon = cand;
                    }
                }
            }
            if canon == before {
                return canon;
            }
        }
    }

    /// The probe: do `a` and `b` present the identical one-level view to
    /// the engine? Any failure (including unbuildable models) rejects the
    /// candidate — keeping the raw spec is always correct.
    fn equivalent(
        &self,
        a: &ComponentSpec,
        b: &ComponentSpec,
        rules: &RuleSet,
        library: &CellLibrary,
    ) -> bool {
        let (Ok(model_a), Ok(model_b)) = (self.models.model(a), self.models.model(b)) else {
            return false;
        };
        model_a.functionally_equal(&model_b)
            && library.implementers(a) == library.implementers(b)
            && rules.iter().all(|rule| rule.expand(a) == rule.expand(b))
    }
}

/// Rewrites a canonical-key answer back to the caller's raw spec: the
/// design set (and each alternative's root implementation) carries the
/// canonical spec label; everything else — children, costs, sizes,
/// stats — is exactly what a fresh raw-spec solve would produce, because
/// the probe proved the expansions identical below the root.
pub(crate) fn rewrite_result(
    result: Result<std::sync::Arc<crate::DesignSet>, crate::SynthError>,
    raw: &ComponentSpec,
    canon: &ComponentSpec,
) -> Result<std::sync::Arc<crate::DesignSet>, crate::SynthError> {
    use crate::SynthError;
    if raw == canon {
        return result;
    }
    match result {
        Ok(set) => {
            let mut set = crate::DesignSet::clone(&set);
            set.spec = raw.clone();
            for alt in &mut set.alternatives {
                alt.implementation.spec = raw.clone();
            }
            Ok(std::sync::Arc::new(set))
        }
        // Error messages embed the spec's display form; restore the
        // caller's so diagnostics (and the bit-identity tests) match a
        // fresh raw-spec solve.
        Err(SynthError::NoImplementation(m)) => Err(SynthError::NoImplementation(
            m.replace(&canon.to_string(), &raw.to_string()),
        )),
        Err(SynthError::Expand(m)) => Err(SynthError::Expand(
            m.replace(&canon.to_string(), &raw.to_string()),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cells::lsi::lsi_logic_subset;
    use genus::kind::ComponentKind;
    use genus::op::{Op, OpSet};

    fn standard() -> RuleSet {
        RuleSet::standard().with_lsi_extensions()
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let rules = standard();
        let library = lsi_logic_subset();
        let canon = Canonicalizer::new();
        let specs = [
            ComponentSpec::new(ComponentKind::Alu, 16).with_ops(Op::paper_alu16()),
            ComponentSpec::new(ComponentKind::AddSub, 8)
                .with_ops(OpSet::only(Op::Add))
                .with_carry_in(true)
                .with_carry_out(true)
                .with_style("RIPPLE"),
            ComponentSpec::new(ComponentKind::Mux, 8).with_inputs(4),
        ];
        for spec in specs {
            let once = canon.canonical(&spec, &rules, &library);
            let twice = canon.canonical(&once, &rules, &library);
            assert_eq!(once, twice, "canonical({spec}) must be a fixpoint");
        }
    }

    #[test]
    fn functional_flags_survive_canonicalization() {
        // A carry-in materializes a port; the model probe must keep it.
        let rules = standard();
        let library = lsi_logic_subset();
        let canon = Canonicalizer::new();
        let spec = ComponentSpec::new(ComponentKind::AddSub, 8)
            .with_ops(OpSet::only(Op::Add))
            .with_carry_in(true)
            .with_carry_out(true);
        let c = canon.canonical(&spec, &rules, &library);
        assert!(c.carry_in && c.carry_out, "carry pins are functional: {c}");
    }

    #[test]
    fn scheme_fingerprint_is_stable() {
        assert_eq!(canon_fingerprint(), canon_fingerprint());
        assert_ne!(canon_fingerprint(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_decorated_spec() -> impl Strategy<Value = ComponentSpec> {
            let kind = prop_oneof![
                Just(ComponentKind::AddSub),
                Just(ComponentKind::Alu),
                Just(ComponentKind::Mux),
                Just(ComponentKind::Comparator),
                Just(ComponentKind::Register),
            ];
            (
                kind,
                1usize..17,
                0usize..5,
                any::<bool>(),
                any::<bool>(),
                any::<bool>(),
                prop_oneof![
                    Just(None),
                    Just(Some("FASTEST".to_string())),
                    Just(Some("RIPPLE".to_string())),
                ],
                0usize..9,
            )
                .prop_map(|(kind, w, inputs, ci, co, en, style, w2)| {
                    let mut spec = match kind {
                        ComponentKind::AddSub => ComponentSpec::new(kind, w)
                            .with_ops(OpSet::only(Op::Add))
                            .with_carry_in(ci)
                            .with_carry_out(co),
                        ComponentKind::Alu => ComponentSpec::new(kind, w)
                            .with_ops(Op::paper_alu16())
                            .with_carry_in(ci),
                        ComponentKind::Mux => {
                            ComponentSpec::new(kind, w).with_inputs(inputs.max(2))
                        }
                        ComponentKind::Comparator => ComponentSpec::new(kind, w)
                            .with_ops([Op::Eq, Op::Lt].into_iter().collect()),
                        _ => ComponentSpec::new(kind, w)
                            .with_ops(OpSet::only(Op::Load))
                            .with_enable(en),
                    };
                    if let Some(style) = style {
                        spec = spec.with_style(&style);
                    }
                    if w2 != 0 {
                        spec = spec.with_width2(w2);
                    }
                    spec
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig {
                cases: 48,
                max_shrink_iters: 0,
            })]

            /// `canonical` is a fixpoint operator: applying it to its own
            /// output changes nothing, for arbitrary decorated specs.
            #[test]
            fn canonicalization_is_idempotent_on_random_specs(
                spec in arb_decorated_spec(),
            ) {
                let rules = standard();
                let library = lsi_logic_subset();
                let canon = Canonicalizer::new();
                let once = canon.canonical(&spec, &rules, &library);
                let twice = canon.canonical(&once, &rules, &library);
                prop_assert_eq!(&once, &twice, "canonical({}) not a fixpoint", spec);
            }

            /// Every accepted elision is probe-verified, so the canonical
            /// spec's one-level view (model, implementers, rule
            /// expansions) is identical to the raw spec's.
            #[test]
            fn canonical_spec_presents_the_same_one_level_view(
                spec in arb_decorated_spec(),
            ) {
                let rules = standard();
                let library = lsi_logic_subset();
                let canon = Canonicalizer::new();
                let c = canon.canonical(&spec, &rules, &library);
                prop_assert_eq!(
                    library.implementers(&spec),
                    library.implementers(&c),
                    "implementers differ for {}",
                    spec
                );
                for rule in rules.iter() {
                    prop_assert_eq!(
                        rule.expand(&spec),
                        rule.expand(&c),
                        "rule {} expands {} and {} differently",
                        rule.name(),
                        spec,
                        c
                    );
                }
            }
        }
    }
}
