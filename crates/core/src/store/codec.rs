//! The hand-rolled binary codec for engine snapshots.
//!
//! The build environment is offline-vendored, so there is no serde here:
//! every type is written field by field in **little-endian** order through
//! [`Writer`] and read back through the bounds-checked [`Reader`]. The
//! encoded artifact is self-describing and self-verifying:
//!
//! ```text
//! magic "DTASSNP1"  (8 bytes)
//! format version    (u32)   — bump on ANY layout or semantic change
//! library  fingerprint (u64)   ┐ the snapshot key; a mismatch on any of
//! rule-set fingerprint (u64)   ├ these rejects the file (never reused
//! config   fingerprint (u64)   ┘ under different rules/library/filters)
//! body: template table, spec nodes, taint set, fronts, memoized results
//! FNV-1a 64 checksum over everything above (8 bytes)
//! ```
//!
//! Decoding is hardened against hostile or damaged bytes: the checksum is
//! verified before anything is parsed, every length is capped by the
//! remaining buffer, every node/implementation index is bounds-checked,
//! and recursive structures carry a depth limit — a bad snapshot can only
//! ever produce a [`Err`]`(reason)`, never a panic or a wrong design.
//!
//! Results are persisted as *policies over the serialized space*, not as
//! implementation trees: the hierarchical implementations are rebuilt at
//! load time with the same [`extract`] used on the solve path, which both
//! shrinks the artifact (implementation trees unfold exponentially) and
//! guarantees warm-start results are bit-identical to cold-solve results.

use crate::cost::Timing;
use crate::extract::{self, ImplKind, Implementation};
use crate::report::{Alternative, DesignSet, SynthStats};
use crate::space::{
    CellChoice, DesignPoint, DesignSpace, FrontStore, ImplChoice, Policy, SpecId, SpecNode,
};
use crate::store::{EngineSnapshot, StoreKey};
use crate::template::{Module, NetlistTemplate, Signal};
use crate::SynthError;
use genus::component::PortClass;
use genus::kind::{ComponentKind, GateOp};
use genus::op::Op;
use genus::spec::ComponentSpec;
use rtl_base::bits::Bits;
use rtl_base::hash::fnv1a_64;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// One memoized whole-query result, as held in a snapshot.
type ResultEntry = (ComponentSpec, Result<Arc<DesignSet>, SynthError>);

/// Version of the on-disk layout. Any change to the byte layout, to the
/// meaning of a persisted field, or to solver semantics that cached
/// fronts bake in must bump this — old snapshots are then rejected and
/// engines fall back to a clean cold solve.
pub const FORMAT_VERSION: u32 = 1;

/// File magic: identifies DTAS snapshots regardless of file name. The
/// format-version field sits immediately after it (bytes 8..12) — tests
/// patch that range to simulate snapshots from a future build.
pub(crate) const MAGIC: [u8; 8] = *b"DTASSNP1";

const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8;
const CHECKSUM_LEN: usize = 8;
/// Recursion guard for [`Signal`] trees (real wiring nests a handful of
/// levels; anything deeper is a damaged file).
const MAX_SIGNAL_DEPTH: usize = 64;

// ---------------------------------------------------------------------
// Primitives.

/// Little-endian byte sink.
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn usize32(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("snapshot collection exceeds u32"));
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.usize32(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian byte source. Every accessor returns
/// `Err(reason)` instead of panicking when the buffer runs short.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated while reading {what} ({} bytes left, {n} needed)",
                self.remaining()
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn bool(&mut self, what: &str) -> Result<bool, String> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(format!("bad boolean {v} in {what}")),
        }
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A collection length, capped by the remaining bytes (every element
    /// takes at least one byte), so corrupt counts cannot drive huge
    /// allocations.
    pub(crate) fn len(&mut self, what: &str) -> Result<usize, String> {
        let n = self.u32(what)? as usize;
        if n > self.remaining() {
            return Err(format!(
                "implausible {what} count {n} ({} bytes left)",
                self.remaining()
            ));
        }
        Ok(n)
    }

    pub(crate) fn str(&mut self, what: &str) -> Result<String, String> {
        let n = self.len(what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("non-UTF-8 {what}"))
    }
}

// ---------------------------------------------------------------------
// Leaf types.

fn put_kind(w: &mut Writer, kind: ComponentKind) {
    use ComponentKind::*;
    let tag: u8 = match kind {
        Gate(_) => 0,
        LogicUnit => 1,
        Mux => 2,
        Selector => 3,
        Decoder => 4,
        Encoder => 5,
        AddSub => 6,
        Comparator => 7,
        Alu => 8,
        Shifter => 9,
        BarrelShifter => 10,
        Multiplier => 11,
        Divider => 12,
        CarryLookahead => 13,
        Register => 14,
        RegisterFile => 15,
        Counter => 16,
        StackFifo => 17,
        Memory => 18,
        PortComp => 19,
        BufferComp => 20,
        ClockDriver => 21,
        SchmittTrigger => 22,
        Tristate => 23,
        WiredOr => 24,
        Bus => 25,
        Delay => 26,
        Concat => 27,
        Extract => 28,
        ClockGenerator => 29,
    };
    w.u8(tag);
    if let Gate(op) = kind {
        w.str(op.name());
    }
}

fn get_kind(r: &mut Reader) -> Result<ComponentKind, String> {
    use ComponentKind::*;
    Ok(match r.u8("component kind")? {
        0 => {
            let name = r.str("gate op")?;
            Gate(GateOp::parse(&name)?)
        }
        1 => LogicUnit,
        2 => Mux,
        3 => Selector,
        4 => Decoder,
        5 => Encoder,
        6 => AddSub,
        7 => Comparator,
        8 => Alu,
        9 => Shifter,
        10 => BarrelShifter,
        11 => Multiplier,
        12 => Divider,
        13 => CarryLookahead,
        14 => Register,
        15 => RegisterFile,
        16 => Counter,
        17 => StackFifo,
        18 => Memory,
        19 => PortComp,
        20 => BufferComp,
        21 => ClockDriver,
        22 => SchmittTrigger,
        23 => Tristate,
        24 => WiredOr,
        25 => Bus,
        26 => Delay,
        27 => Concat,
        28 => Extract,
        29 => ClockGenerator,
        other => return Err(format!("unknown component-kind tag {other}")),
    })
}

pub(crate) fn put_spec(w: &mut Writer, spec: &ComponentSpec) {
    put_kind(w, spec.kind);
    w.u64(spec.width as u64);
    w.u64(spec.width2 as u64);
    w.u64(spec.inputs as u64);
    // Operations by name (the enum has no public discriminant mapping;
    // names round-trip through `Op::parse` and are stable spec syntax).
    w.usize32(spec.ops.len());
    for op in spec.ops.iter() {
        w.str(op.name());
    }
    w.bool(spec.carry_in);
    w.bool(spec.carry_out);
    w.bool(spec.enable);
    w.bool(spec.async_set_reset);
    w.bool(spec.group_pg);
    match &spec.style {
        None => w.bool(false),
        Some(style) => {
            w.bool(true);
            w.str(style);
        }
    }
}

pub(crate) fn get_spec(r: &mut Reader) -> Result<ComponentSpec, String> {
    let kind = get_kind(r)?;
    let width = r.u64("spec width")? as usize;
    let mut spec = ComponentSpec::new(kind, width);
    spec.width2 = r.u64("spec width2")? as usize;
    spec.inputs = r.u64("spec inputs")? as usize;
    let ops = r.len("op")?;
    for _ in 0..ops {
        let name = r.str("op name")?;
        spec.ops.insert(Op::parse(&name)?);
    }
    spec.carry_in = r.bool("carry_in")?;
    spec.carry_out = r.bool("carry_out")?;
    spec.enable = r.bool("enable")?;
    spec.async_set_reset = r.bool("async_set_reset")?;
    spec.group_pg = r.bool("group_pg")?;
    if r.bool("style presence")? {
        spec.style = Some(r.str("style")?);
    }
    Ok(spec)
}

fn put_port_class(w: &mut Writer, class: PortClass) {
    use PortClass::*;
    w.u8(match class {
        Data => 0,
        Select => 1,
        Control => 2,
        Clock => 3,
        Enable => 4,
        AsyncSetReset => 5,
        CarryIn => 6,
        CarryOut => 7,
        Status => 8,
    });
}

fn get_port_class(r: &mut Reader) -> Result<PortClass, String> {
    use PortClass::*;
    Ok(match r.u8("port class")? {
        0 => Data,
        1 => Select,
        2 => Control,
        3 => Clock,
        4 => Enable,
        5 => AsyncSetReset,
        6 => CarryIn,
        7 => CarryOut,
        8 => Status,
        other => return Err(format!("unknown port-class tag {other}")),
    })
}

pub(crate) fn put_timing(w: &mut Writer, timing: &Timing) {
    w.usize32(timing.arcs.len());
    for (&(from, to), &delay) in &timing.arcs {
        put_port_class(w, from);
        put_port_class(w, to);
        w.f64(delay);
    }
    w.f64(timing.worst);
}

pub(crate) fn get_timing(r: &mut Reader) -> Result<Timing, String> {
    let arcs = r.len("timing arc")?;
    let mut timing = Timing::default();
    for _ in 0..arcs {
        let from = get_port_class(r)?;
        let to = get_port_class(r)?;
        let delay = r.f64("arc delay")?;
        timing.arcs.insert((from, to), delay);
    }
    timing.worst = r.f64("worst delay")?;
    Ok(timing)
}

fn put_bits(w: &mut Writer, bits: &Bits) {
    w.u64(bits.width() as u64);
    let mut byte = 0u8;
    for i in 0..bits.width() {
        if bits.bit(i) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            w.u8(byte);
            byte = 0;
        }
    }
    if !bits.width().is_multiple_of(8) {
        w.u8(byte);
    }
}

fn get_bits(r: &mut Reader) -> Result<Bits, String> {
    let width = r.u64("bits width")? as usize;
    let bytes = width.div_ceil(8);
    let raw = r.take(bytes, "bits payload")?;
    Ok(Bits::from_fn(width, |i| raw[i / 8] & (1 << (i % 8)) != 0))
}

fn put_signal(w: &mut Writer, signal: &Signal) {
    match signal {
        Signal::Net(n) => {
            w.u8(0);
            w.str(n);
        }
        Signal::Parent(p) => {
            w.u8(1);
            w.str(p);
        }
        Signal::Const(b) => {
            w.u8(2);
            put_bits(w, b);
        }
        Signal::Slice(inner, lo, len) => {
            w.u8(3);
            put_signal(w, inner);
            w.u64(*lo as u64);
            w.u64(*len as u64);
        }
        Signal::Cat(parts) => {
            w.u8(4);
            w.usize32(parts.len());
            for p in parts {
                put_signal(w, p);
            }
        }
        Signal::Replicate(inner, n) => {
            w.u8(5);
            put_signal(w, inner);
            w.u64(*n as u64);
        }
    }
}

fn get_signal(r: &mut Reader, depth: usize) -> Result<Signal, String> {
    if depth > MAX_SIGNAL_DEPTH {
        return Err("signal nesting exceeds the codec depth limit".into());
    }
    Ok(match r.u8("signal tag")? {
        0 => Signal::Net(r.str("net name")?),
        1 => Signal::Parent(r.str("parent port")?),
        2 => Signal::Const(get_bits(r)?),
        3 => {
            let inner = get_signal(r, depth + 1)?;
            let lo = r.u64("slice lo")? as usize;
            let len = r.u64("slice len")? as usize;
            Signal::Slice(Box::new(inner), lo, len)
        }
        4 => {
            let parts = r.len("cat part")?;
            let mut out = Vec::with_capacity(parts);
            for _ in 0..parts {
                out.push(get_signal(r, depth + 1)?);
            }
            Signal::Cat(out)
        }
        5 => {
            let inner = get_signal(r, depth + 1)?;
            let n = r.u64("replicate count")? as usize;
            Signal::Replicate(Box::new(inner), n)
        }
        other => Err(format!("unknown signal tag {other}"))?,
    })
}

fn put_template(w: &mut Writer, template: &NetlistTemplate) {
    w.str(&template.rule);
    w.usize32(template.nets.len());
    for (net, width) in &template.nets {
        w.str(net);
        w.u64(*width as u64);
    }
    w.usize32(template.modules.len());
    for module in &template.modules {
        w.str(&module.name);
        put_spec(w, &module.spec);
        w.usize32(module.inputs.len());
        for (port, signal) in &module.inputs {
            w.str(port);
            put_signal(w, signal);
        }
        w.usize32(module.outputs.len());
        for (port, net) in &module.outputs {
            w.str(port);
            w.str(net);
        }
    }
    w.usize32(template.outputs.len());
    for (port, signal) in &template.outputs {
        w.str(port);
        put_signal(w, signal);
    }
}

fn get_template(r: &mut Reader) -> Result<NetlistTemplate, String> {
    let rule = r.str("rule name")?;
    let nets_len = r.len("net")?;
    let mut nets = BTreeMap::new();
    for _ in 0..nets_len {
        let net = r.str("net name")?;
        let width = r.u64("net width")? as usize;
        nets.insert(net, width);
    }
    let modules_len = r.len("module")?;
    let mut modules = Vec::with_capacity(modules_len);
    for _ in 0..modules_len {
        let name = r.str("module name")?;
        let spec = get_spec(r)?;
        let inputs_len = r.len("module input")?;
        let mut inputs = BTreeMap::new();
        for _ in 0..inputs_len {
            let port = r.str("input port")?;
            let signal = get_signal(r, 0)?;
            inputs.insert(port, signal);
        }
        let outputs_len = r.len("module output")?;
        let mut outputs = BTreeMap::new();
        for _ in 0..outputs_len {
            let port = r.str("output port")?;
            let net = r.str("output net")?;
            outputs.insert(port, net);
        }
        modules.push(Module {
            name,
            spec,
            inputs,
            outputs,
        });
    }
    let outputs_len = r.len("template output")?;
    let mut outputs = BTreeMap::new();
    for _ in 0..outputs_len {
        let port = r.str("parent output")?;
        let signal = get_signal(r, 0)?;
        outputs.insert(port, signal);
    }
    Ok(NetlistTemplate {
        rule,
        nets,
        modules,
        outputs,
    })
}

fn put_policy(w: &mut Writer, policy: &Policy) {
    let pairs: Vec<(SpecId, usize)> = policy.iter().collect();
    w.usize32(pairs.len());
    for (id, choice) in pairs {
        w.u32(id as u32);
        w.u32(choice as u32);
    }
}

fn get_policy(r: &mut Reader, node_count: usize) -> Result<Policy, String> {
    let pairs = r.len("policy assignment")?;
    let mut policy = Policy::new();
    for _ in 0..pairs {
        let id = r.u32("policy spec id")? as usize;
        let choice = r.u32("policy choice")? as usize;
        if id >= node_count {
            return Err(format!("policy references node {id} of {node_count}"));
        }
        policy.set(id, choice);
    }
    Ok(policy)
}

fn put_design_point(w: &mut Writer, point: &DesignPoint) {
    w.f64(point.area);
    put_timing(w, &point.timing);
    put_policy(w, &point.policy);
}

fn get_design_point(r: &mut Reader, node_count: usize) -> Result<DesignPoint, String> {
    Ok(DesignPoint {
        area: r.f64("point area")?,
        timing: get_timing(r)?,
        policy: get_policy(r, node_count)?,
    })
}

// ---------------------------------------------------------------------
// Space, fronts, results.

/// Interned template table: every distinct `Arc<NetlistTemplate>` (by
/// pointer identity — the engine shares one `Arc` per template between
/// the space and every extracted implementation) is written once and
/// referenced by index.
fn intern_templates(
    space: &DesignSpace,
) -> (
    Vec<Arc<NetlistTemplate>>,
    HashMap<*const NetlistTemplate, u32>,
) {
    let mut table: Vec<Arc<NetlistTemplate>> = Vec::new();
    let mut index: HashMap<*const NetlistTemplate, u32> = HashMap::new();
    for node in &space.nodes {
        for choice in &node.impls {
            if let ImplChoice::Netlist(template) = choice {
                let key = Arc::as_ptr(template);
                index.entry(key).or_insert_with(|| {
                    table.push(Arc::clone(template));
                    (table.len() - 1) as u32
                });
            }
        }
    }
    (table, index)
}

fn put_space(w: &mut Writer, space: &DesignSpace) {
    let (templates, template_index) = intern_templates(space);
    w.usize32(templates.len());
    for template in &templates {
        put_template(w, template);
    }
    w.usize32(space.nodes.len());
    for node in &space.nodes {
        put_spec(w, &node.spec);
        w.usize32(node.impls.len());
        for (choice, children) in node.impls.iter().zip(&node.children) {
            match choice {
                ImplChoice::Cell(cell) => {
                    w.u8(0);
                    w.str(&cell.cell);
                    w.f64(cell.area);
                    put_timing(w, &cell.timing);
                }
                ImplChoice::Netlist(template) => {
                    w.u8(1);
                    w.u32(template_index[&Arc::as_ptr(template)]);
                }
            }
            w.usize32(children.len());
            for &child in children {
                w.u32(child as u32);
            }
        }
    }
    let mut tainted: Vec<SpecId> = space.tainted.iter().copied().collect();
    tainted.sort_unstable();
    w.usize32(tainted.len());
    for id in tainted {
        w.u32(id as u32);
    }
}

fn get_space(r: &mut Reader) -> Result<DesignSpace, String> {
    let template_count = r.len("template")?;
    let mut templates = Vec::with_capacity(template_count);
    for _ in 0..template_count {
        templates.push(Arc::new(get_template(r)?));
    }
    let node_count = r.len("spec node")?;
    let mut nodes: Vec<SpecNode> = Vec::with_capacity(node_count);
    let mut memo = HashMap::with_capacity(node_count);
    for id in 0..node_count {
        let spec = get_spec(r)?;
        if memo.insert(spec.clone(), id).is_some() {
            return Err(format!("duplicate spec node {spec}"));
        }
        let impl_count = r.len("implementation")?;
        let mut impls = Vec::with_capacity(impl_count);
        let mut children = Vec::with_capacity(impl_count);
        for _ in 0..impl_count {
            let choice = match r.u8("implementation tag")? {
                0 => ImplChoice::Cell(CellChoice {
                    cell: r.str("cell name")?,
                    area: r.f64("cell area")?,
                    timing: get_timing(r)?,
                }),
                1 => {
                    let idx = r.u32("template index")? as usize;
                    let template = templates
                        .get(idx)
                        .ok_or_else(|| format!("template index {idx} of {template_count}"))?;
                    ImplChoice::Netlist(Arc::clone(template))
                }
                other => return Err(format!("unknown implementation tag {other}")),
            };
            let child_count = r.len("child id")?;
            let mut kids = Vec::with_capacity(child_count);
            for _ in 0..child_count {
                let child = r.u32("child id")? as usize;
                // Node ids are a topological order (children strictly
                // precede parents); anything else is a damaged file.
                if child >= id {
                    return Err(format!("child {child} not below node {id}"));
                }
                kids.push(child);
            }
            impls.push(choice);
            children.push(kids);
        }
        nodes.push(SpecNode {
            spec,
            impls,
            children,
        });
    }
    let tainted_count = r.len("tainted id")?;
    let mut tainted = HashSet::with_capacity(tainted_count);
    for _ in 0..tainted_count {
        let id = r.u32("tainted id")? as usize;
        if id >= node_count {
            return Err(format!("tainted id {id} of {node_count}"));
        }
        tainted.insert(id);
    }
    Ok(DesignSpace {
        nodes,
        memo,
        tainted,
    })
}

fn put_fronts(w: &mut Writer, fronts: &FrontStore, node_count: usize) {
    // The live store only grows to a node's id when a solver visits it, so
    // it can trail the space (queries that expanded but solved on a
    // private cold state). Pad to the space: absent slots are unsolved.
    w.usize32(node_count);
    for id in 0..node_count {
        match fronts.fronts.get(id).and_then(|f| f.as_ref()) {
            None => w.bool(false),
            Some(points) => {
                w.bool(true);
                w.u64(fronts.truncated[id]);
                w.usize32(points.len());
                for point in points.iter() {
                    put_design_point(w, point);
                }
            }
        }
    }
}

fn get_fronts(r: &mut Reader, space: &DesignSpace) -> Result<FrontStore, String> {
    let len = r.len("front slot")?;
    if len != space.nodes.len() {
        return Err(format!(
            "front store covers {len} nodes, space has {}",
            space.nodes.len()
        ));
    }
    let mut fronts = Vec::with_capacity(len);
    let mut truncated = Vec::with_capacity(len);
    for _ in 0..len {
        if r.bool("front presence")? {
            truncated.push(r.u64("front truncation")?);
            let count = r.len("design point")?;
            let mut points = Vec::with_capacity(count);
            for _ in 0..count {
                let point = get_design_point(r, space.nodes.len())?;
                check_policy_bounds(space, &point.policy)?;
                points.push(point);
            }
            fronts.push(Some(Arc::new(points)));
        } else {
            fronts.push(None);
            truncated.push(0);
        }
    }
    Ok(FrontStore { fronts, truncated })
}

/// Every `(node, choice)` a policy assigns must exist in the space.
fn check_policy_bounds(space: &DesignSpace, policy: &Policy) -> Result<(), String> {
    for (id, choice) in policy.iter() {
        let impls = space.nodes[id].impls.len();
        if choice >= impls {
            return Err(format!(
                "policy picks choice {choice} of {impls} at node {id}"
            ));
        }
    }
    Ok(())
}

/// Reconstructs the policy an implementation tree encodes, by walking it
/// against the space: cells match by (unique) data-book name,
/// decomposition templates by `Arc` identity with a structural-equality
/// fallback. The fallback matters for results solved on a *private* cold
/// space (the taint fallback path, where mutually-recursive rules forced
/// a fresh expansion): their template `Arc`s are different allocations,
/// but whenever the shared space carries a structurally identical
/// template for the same node, the reconstructed policy re-extracts to a
/// value-identical implementation tree. Returns `None` when a node or
/// template has no counterpart in this space — such results are simply
/// not persisted and re-solve on demand.
fn policy_of(space: &DesignSpace, implementation: &Implementation) -> Option<Policy> {
    let mut policy = Policy::new();
    let mut assigned: HashSet<SpecId> = HashSet::new();
    let mut stack: Vec<&Implementation> = vec![implementation];
    while let Some(node) = stack.pop() {
        let id = space.id_of(&node.spec)?;
        if !assigned.insert(id) {
            continue;
        }
        let spec_node = &space.nodes[id];
        let choice = match &node.kind {
            ImplKind::Cell { name } => spec_node
                .impls
                .iter()
                .position(|c| matches!(c, ImplChoice::Cell(cell) if cell.cell == *name))?,
            ImplKind::Netlist { template, children } => {
                let idx = spec_node.impls.iter().position(|c| match c {
                    ImplChoice::Netlist(t) => Arc::ptr_eq(t, template) || **t == **template,
                    ImplChoice::Cell(_) => false,
                })?;
                for child in children {
                    stack.push(child);
                }
                idx
            }
        };
        policy.set(id, choice);
    }
    Some(policy)
}

/// Validates that `policy` fully covers the subgraph its own choices
/// select under `root`, so the subsequent [`extract`] cannot panic.
fn check_policy_covers(space: &DesignSpace, root: SpecId, policy: &Policy) -> Result<(), String> {
    let mut seen: HashSet<SpecId> = HashSet::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        let node = &space.nodes[id];
        let choice = policy
            .get(id)
            .ok_or_else(|| format!("policy misses node {id}"))?;
        if choice >= node.impls.len() {
            return Err(format!(
                "policy picks choice {choice} of {} at node {id}",
                node.impls.len()
            ));
        }
        stack.extend(node.children[choice].iter().copied());
    }
    Ok(())
}

pub(crate) fn put_synth_error(w: &mut Writer, error: &SynthError) {
    match error {
        SynthError::Expand(m) => {
            w.u8(0);
            w.str(m);
        }
        SynthError::NoImplementation(m) => {
            w.u8(1);
            w.str(m);
        }
    }
}

pub(crate) fn get_synth_error(r: &mut Reader) -> Result<SynthError, String> {
    Ok(match r.u8("error tag")? {
        0 => SynthError::Expand(r.str("error message")?),
        1 => SynthError::NoImplementation(r.str("error message")?),
        other => return Err(format!("unknown error tag {other}")),
    })
}

/// Writes the memoized results. `Ok` results are persisted as per-
/// alternative policies; results whose implementations were not built
/// from the shared space (cold-fallback solves) are skipped — they will
/// be re-solved on demand, which is always correct. Returns the number of
/// results written.
fn put_results(w: &mut Writer, space: &DesignSpace, results: &[ResultEntry]) -> usize {
    // Two passes so the (skippable) count prefix stays exact: an entry
    // carries its reconstructed per-alternative policies.
    type Encodable<'a> = (
        &'a ComponentSpec,
        &'a Result<Arc<DesignSet>, SynthError>,
        Vec<Policy>,
    );
    let mut encodable: Vec<Encodable> = Vec::new();
    'results: for (spec, result) in results {
        let mut policies = Vec::new();
        if let Ok(set) = result {
            if space.id_of(spec).is_none() {
                continue;
            }
            for alt in &set.alternatives {
                match policy_of(space, &alt.implementation) {
                    Some(policy) => policies.push(policy),
                    None => continue 'results,
                }
            }
        }
        encodable.push((spec, result, policies));
    }
    w.usize32(encodable.len());
    for (spec, result, policies) in &encodable {
        put_spec(w, spec);
        match result {
            Err(error) => {
                w.u8(0);
                put_synth_error(w, error);
            }
            Ok(set) => {
                w.u8(1);
                w.usize32(set.alternatives.len());
                for (alt, policy) in set.alternatives.iter().zip(policies) {
                    w.f64(alt.area);
                    w.f64(alt.delay);
                    put_timing(w, &alt.timing);
                    put_policy(w, policy);
                }
                w.f64(set.unconstrained_size);
                w.f64(set.unconstrained_log10);
                match set.uniform_size {
                    None => w.bool(false),
                    Some(n) => {
                        w.bool(true);
                        w.u64(n);
                    }
                }
                w.u64(set.stats.spec_nodes as u64);
                w.u64(set.stats.impl_choices as u64);
                w.u64(set.stats.truncated_combinations);
            }
        }
    }
    encodable.len()
}

fn get_results(r: &mut Reader, space: &DesignSpace) -> Result<Vec<ResultEntry>, String> {
    let count = r.len("memoized result")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let spec = get_spec(r)?;
        let result = match r.u8("result tag")? {
            0 => Err(get_synth_error(r)?),
            1 => {
                let root = space
                    .id_of(&spec)
                    .ok_or_else(|| format!("result spec {spec} not in space"))?;
                let alt_count = r.len("alternative")?;
                let mut alternatives = Vec::with_capacity(alt_count);
                for _ in 0..alt_count {
                    let area = r.f64("alternative area")?;
                    let delay = r.f64("alternative delay")?;
                    let timing = get_timing(r)?;
                    let policy = get_policy(r, space.nodes.len())?;
                    check_policy_covers(space, root, &policy)?;
                    // Rebuilding through the solve path's own `extract`
                    // pins warm implementations bit-identical to cold.
                    let implementation = extract::extract(space, root, &policy);
                    alternatives.push(Alternative {
                        area,
                        delay,
                        timing,
                        implementation,
                    });
                }
                let unconstrained_size = r.f64("unconstrained size")?;
                let unconstrained_log10 = r.f64("unconstrained log10")?;
                let uniform_size = if r.bool("uniform presence")? {
                    Some(r.u64("uniform size")?)
                } else {
                    None
                };
                let stats = SynthStats {
                    spec_nodes: r.u64("stat spec_nodes")? as usize,
                    impl_choices: r.u64("stat impl_choices")? as usize,
                    // Restamped per call on delivery.
                    elapsed: Duration::ZERO,
                    truncated_combinations: r.u64("stat truncation")?,
                };
                Ok(Arc::new(DesignSet {
                    spec: spec.clone(),
                    alternatives,
                    unconstrained_size,
                    unconstrained_log10,
                    uniform_size,
                    stats,
                }))
            }
            other => return Err(format!("unknown result tag {other}")),
        };
        out.push((spec, result));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Whole snapshots.

/// Encodes a snapshot under `key`. Returns the bytes and the number of
/// memoized results actually persisted (cold-fallback results are
/// skipped; see [`put_results`]).
pub(crate) fn encode_snapshot(snapshot: &EngineSnapshot, key: &StoreKey) -> (Vec<u8>, usize) {
    let mut w = Writer::new();
    w.buf.extend_from_slice(&MAGIC);
    w.u32(key.format_version);
    w.u64(key.library);
    w.u64(key.rules);
    w.u64(key.config);
    put_space(&mut w, &snapshot.space);
    put_fronts(&mut w, &snapshot.fronts, snapshot.space.nodes.len());
    let persisted = put_results(&mut w, &snapshot.space, &snapshot.results);
    let checksum = fnv1a_64(&w.buf);
    w.u64(checksum);
    (w.buf, persisted)
}

/// Decodes a snapshot, verifying — in order — length, checksum, magic,
/// format version and all three fingerprints against `key` before any
/// structure is parsed. Every failure is a reason string; decoding never
/// panics.
pub(crate) fn decode_snapshot(bytes: &[u8], key: &StoreKey) -> Result<EngineSnapshot, String> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(format!("file too short ({} bytes)", bytes.len()));
    }
    let (payload, tail) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
    let mut r = Reader::new(tail);
    let stored = r.u64("checksum")?;
    let computed = fnv1a_64(payload);
    if stored != computed {
        return Err(format!(
            "checksum mismatch (stored {stored:016x}, computed {computed:016x})"
        ));
    }
    let mut r = Reader::new(payload);
    let magic = r.take(MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err("not a DTAS snapshot (bad magic)".into());
    }
    let version = r.u32("format version")?;
    if version != key.format_version {
        return Err(format!(
            "format version {version} (this build reads {})",
            key.format_version
        ));
    }
    let library = r.u64("library fingerprint")?;
    if library != key.library {
        return Err("library fingerprint mismatch".into());
    }
    let rules = r.u64("rule-set fingerprint")?;
    if rules != key.rules {
        return Err("rule-set fingerprint mismatch".into());
    }
    let config = r.u64("config fingerprint")?;
    if config != key.config {
        return Err("configuration fingerprint mismatch".into());
    }
    let space = get_space(&mut r)?;
    let fronts = get_fronts(&mut r, &space)?;
    let results = get_results(&mut r, &space)?;
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes", r.remaining()));
    }
    Ok(EngineSnapshot {
        space,
        fronts,
        results,
    })
}
