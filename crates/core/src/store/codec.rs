//! The hand-rolled binary codec for engine snapshot *sections*.
//!
//! The build environment is offline-vendored, so there is no serde here:
//! every type is written field by field in **little-endian** order through
//! [`Writer`] and read back through the bounds-checked [`Reader`].
//!
//! Since format version 2 the codec no longer owns a whole-file layout —
//! segment framing (magic, header, offset index, checksums, delta
//! chaining) lives in the sibling `segment` module. What this module
//! encodes are the self-contained *sections* a segment's header points
//! at: the design space, a front store, per-result bodies, and the
//! O(dirty) delta payloads (space extensions and front updates).
//!
//! Decoding is hardened against hostile or damaged bytes: every length is
//! capped by the remaining buffer, every node/implementation index is
//! bounds-checked, and recursive structures carry a depth limit — a bad
//! section can only ever produce an [`Err`]`(reason)`, never a panic or a
//! wrong design.
//!
//! Results are persisted as *policies over the serialized space*, not as
//! implementation trees: the hierarchical implementations are rebuilt at
//! load time with the same [`extract`] used on the solve path, which both
//! shrinks the artifact (implementation trees unfold exponentially) and
//! guarantees warm-start results are bit-identical to cold-solve results.

use crate::cost::Timing;
use crate::extract::{self, ImplKind, Implementation};
use crate::report::{Alternative, DesignSet, SynthStats};
use crate::space::{
    CellChoice, DesignPoint, DesignSpace, FrontStore, ImplChoice, Policy, SpecId, SpecNode,
};
use crate::template::{Module, NetlistTemplate, Signal};
use crate::SynthError;
use genus::component::PortClass;
use genus::kind::{ComponentKind, GateOp};
use genus::op::Op;
use genus::spec::ComponentSpec;
use rtl_base::bits::Bits;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// One memoized whole-query result, as held in a snapshot.
pub(crate) type ResultEntry = (ComponentSpec, Result<Arc<DesignSet>, SynthError>);

/// Version of the on-disk layout. Any change to the byte layout, to the
/// meaning of a persisted field, or to solver semantics that cached
/// fronts bake in must bump this — old snapshots are then rejected and
/// engines fall back to a clean cold solve.
///
/// History: v1 was the PR 4 monolithic snapshot (one read-all, decode-all
/// file); v2 is the tiered segment format (mmap'd lazy base + delta
/// chain, see the `segment` module); v3 adds the canonicalization-scheme
/// fingerprint to the segment header and key — memo entries are keyed by
/// canonical specs, so chains written under one scheme must never warm an
/// engine running another.
pub const FORMAT_VERSION: u32 = 3;

/// Recursion guard for [`Signal`] trees (real wiring nests a handful of
/// levels; anything deeper is a damaged file).
const MAX_SIGNAL_DEPTH: usize = 64;

// ---------------------------------------------------------------------
// Primitives.

/// Little-endian byte sink.
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }

    pub(crate) fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn usize32(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("snapshot collection exceeds u32"));
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.usize32(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian byte source. Every accessor returns
/// `Err(reason)` instead of panicking when the buffer runs short.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated while reading {what} ({} bytes left, {n} needed)",
                self.remaining()
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn bool(&mut self, what: &str) -> Result<bool, String> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(format!("bad boolean {v} in {what}")),
        }
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A collection length, capped by the remaining bytes (every element
    /// takes at least one byte), so corrupt counts cannot drive huge
    /// allocations.
    pub(crate) fn len(&mut self, what: &str) -> Result<usize, String> {
        let n = self.u32(what)? as usize;
        if n > self.remaining() {
            return Err(format!(
                "implausible {what} count {n} ({} bytes left)",
                self.remaining()
            ));
        }
        Ok(n)
    }

    pub(crate) fn str(&mut self, what: &str) -> Result<String, String> {
        let n = self.len(what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("non-UTF-8 {what}"))
    }
}

// ---------------------------------------------------------------------
// Leaf types.

fn put_kind(w: &mut Writer, kind: ComponentKind) {
    use ComponentKind::*;
    let tag: u8 = match kind {
        Gate(_) => 0,
        LogicUnit => 1,
        Mux => 2,
        Selector => 3,
        Decoder => 4,
        Encoder => 5,
        AddSub => 6,
        Comparator => 7,
        Alu => 8,
        Shifter => 9,
        BarrelShifter => 10,
        Multiplier => 11,
        Divider => 12,
        CarryLookahead => 13,
        Register => 14,
        RegisterFile => 15,
        Counter => 16,
        StackFifo => 17,
        Memory => 18,
        PortComp => 19,
        BufferComp => 20,
        ClockDriver => 21,
        SchmittTrigger => 22,
        Tristate => 23,
        WiredOr => 24,
        Bus => 25,
        Delay => 26,
        Concat => 27,
        Extract => 28,
        ClockGenerator => 29,
    };
    w.u8(tag);
    if let Gate(op) = kind {
        w.str(op.name());
    }
}

fn get_kind(r: &mut Reader) -> Result<ComponentKind, String> {
    use ComponentKind::*;
    Ok(match r.u8("component kind")? {
        0 => {
            let name = r.str("gate op")?;
            Gate(GateOp::parse(&name)?)
        }
        1 => LogicUnit,
        2 => Mux,
        3 => Selector,
        4 => Decoder,
        5 => Encoder,
        6 => AddSub,
        7 => Comparator,
        8 => Alu,
        9 => Shifter,
        10 => BarrelShifter,
        11 => Multiplier,
        12 => Divider,
        13 => CarryLookahead,
        14 => Register,
        15 => RegisterFile,
        16 => Counter,
        17 => StackFifo,
        18 => Memory,
        19 => PortComp,
        20 => BufferComp,
        21 => ClockDriver,
        22 => SchmittTrigger,
        23 => Tristate,
        24 => WiredOr,
        25 => Bus,
        26 => Delay,
        27 => Concat,
        28 => Extract,
        29 => ClockGenerator,
        other => return Err(format!("unknown component-kind tag {other}")),
    })
}

pub(crate) fn put_spec(w: &mut Writer, spec: &ComponentSpec) {
    put_kind(w, spec.kind);
    w.u64(spec.width as u64);
    w.u64(spec.width2 as u64);
    w.u64(spec.inputs as u64);
    // Operations by name (the enum has no public discriminant mapping;
    // names round-trip through `Op::parse` and are stable spec syntax).
    w.usize32(spec.ops.len());
    for op in spec.ops.iter() {
        w.str(op.name());
    }
    w.bool(spec.carry_in);
    w.bool(spec.carry_out);
    w.bool(spec.enable);
    w.bool(spec.async_set_reset);
    w.bool(spec.group_pg);
    match &spec.style {
        None => w.bool(false),
        Some(style) => {
            w.bool(true);
            w.str(style);
        }
    }
}

pub(crate) fn get_spec(r: &mut Reader) -> Result<ComponentSpec, String> {
    let kind = get_kind(r)?;
    let width = r.u64("spec width")? as usize;
    let mut spec = ComponentSpec::new(kind, width);
    spec.width2 = r.u64("spec width2")? as usize;
    spec.inputs = r.u64("spec inputs")? as usize;
    let ops = r.len("op")?;
    for _ in 0..ops {
        let name = r.str("op name")?;
        spec.ops.insert(Op::parse(&name)?);
    }
    spec.carry_in = r.bool("carry_in")?;
    spec.carry_out = r.bool("carry_out")?;
    spec.enable = r.bool("enable")?;
    spec.async_set_reset = r.bool("async_set_reset")?;
    spec.group_pg = r.bool("group_pg")?;
    if r.bool("style presence")? {
        spec.style = Some(r.str("style")?);
    }
    Ok(spec)
}

fn put_port_class(w: &mut Writer, class: PortClass) {
    use PortClass::*;
    w.u8(match class {
        Data => 0,
        Select => 1,
        Control => 2,
        Clock => 3,
        Enable => 4,
        AsyncSetReset => 5,
        CarryIn => 6,
        CarryOut => 7,
        Status => 8,
    });
}

fn get_port_class(r: &mut Reader) -> Result<PortClass, String> {
    use PortClass::*;
    Ok(match r.u8("port class")? {
        0 => Data,
        1 => Select,
        2 => Control,
        3 => Clock,
        4 => Enable,
        5 => AsyncSetReset,
        6 => CarryIn,
        7 => CarryOut,
        8 => Status,
        other => return Err(format!("unknown port-class tag {other}")),
    })
}

pub(crate) fn put_timing(w: &mut Writer, timing: &Timing) {
    w.usize32(timing.arcs.len());
    for (&(from, to), &delay) in &timing.arcs {
        put_port_class(w, from);
        put_port_class(w, to);
        w.f64(delay);
    }
    w.f64(timing.worst);
}

pub(crate) fn get_timing(r: &mut Reader) -> Result<Timing, String> {
    let arcs = r.len("timing arc")?;
    let mut timing = Timing::default();
    for _ in 0..arcs {
        let from = get_port_class(r)?;
        let to = get_port_class(r)?;
        let delay = r.f64("arc delay")?;
        timing.arcs.insert((from, to), delay);
    }
    timing.worst = r.f64("worst delay")?;
    Ok(timing)
}

fn put_bits(w: &mut Writer, bits: &Bits) {
    w.u64(bits.width() as u64);
    let mut byte = 0u8;
    for i in 0..bits.width() {
        if bits.bit(i) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            w.u8(byte);
            byte = 0;
        }
    }
    if !bits.width().is_multiple_of(8) {
        w.u8(byte);
    }
}

fn get_bits(r: &mut Reader) -> Result<Bits, String> {
    let width = r.u64("bits width")? as usize;
    let bytes = width.div_ceil(8);
    let raw = r.take(bytes, "bits payload")?;
    Ok(Bits::from_fn(width, |i| raw[i / 8] & (1 << (i % 8)) != 0))
}

fn put_signal(w: &mut Writer, signal: &Signal) {
    match signal {
        Signal::Net(n) => {
            w.u8(0);
            w.str(n);
        }
        Signal::Parent(p) => {
            w.u8(1);
            w.str(p);
        }
        Signal::Const(b) => {
            w.u8(2);
            put_bits(w, b);
        }
        Signal::Slice(inner, lo, len) => {
            w.u8(3);
            put_signal(w, inner);
            w.u64(*lo as u64);
            w.u64(*len as u64);
        }
        Signal::Cat(parts) => {
            w.u8(4);
            w.usize32(parts.len());
            for p in parts {
                put_signal(w, p);
            }
        }
        Signal::Replicate(inner, n) => {
            w.u8(5);
            put_signal(w, inner);
            w.u64(*n as u64);
        }
    }
}

fn get_signal(r: &mut Reader, depth: usize) -> Result<Signal, String> {
    if depth > MAX_SIGNAL_DEPTH {
        return Err("signal nesting exceeds the codec depth limit".into());
    }
    Ok(match r.u8("signal tag")? {
        0 => Signal::Net(r.str("net name")?),
        1 => Signal::Parent(r.str("parent port")?),
        2 => Signal::Const(get_bits(r)?),
        3 => {
            let inner = get_signal(r, depth + 1)?;
            let lo = r.u64("slice lo")? as usize;
            let len = r.u64("slice len")? as usize;
            Signal::Slice(Box::new(inner), lo, len)
        }
        4 => {
            let parts = r.len("cat part")?;
            let mut out = Vec::with_capacity(parts);
            for _ in 0..parts {
                out.push(get_signal(r, depth + 1)?);
            }
            Signal::Cat(out)
        }
        5 => {
            let inner = get_signal(r, depth + 1)?;
            let n = r.u64("replicate count")? as usize;
            Signal::Replicate(Box::new(inner), n)
        }
        other => Err(format!("unknown signal tag {other}"))?,
    })
}

fn put_template(w: &mut Writer, template: &NetlistTemplate) {
    w.str(&template.rule);
    w.usize32(template.nets.len());
    for (net, width) in &template.nets {
        w.str(net);
        w.u64(*width as u64);
    }
    w.usize32(template.modules.len());
    for module in &template.modules {
        w.str(&module.name);
        put_spec(w, &module.spec);
        w.usize32(module.inputs.len());
        for (port, signal) in &module.inputs {
            w.str(port);
            put_signal(w, signal);
        }
        w.usize32(module.outputs.len());
        for (port, net) in &module.outputs {
            w.str(port);
            w.str(net);
        }
    }
    w.usize32(template.outputs.len());
    for (port, signal) in &template.outputs {
        w.str(port);
        put_signal(w, signal);
    }
}

fn get_template(r: &mut Reader) -> Result<NetlistTemplate, String> {
    let rule = r.str("rule name")?;
    let nets_len = r.len("net")?;
    let mut nets = BTreeMap::new();
    for _ in 0..nets_len {
        let net = r.str("net name")?;
        let width = r.u64("net width")? as usize;
        nets.insert(net, width);
    }
    let modules_len = r.len("module")?;
    let mut modules = Vec::with_capacity(modules_len);
    for _ in 0..modules_len {
        let name = r.str("module name")?;
        let spec = get_spec(r)?;
        let inputs_len = r.len("module input")?;
        let mut inputs = BTreeMap::new();
        for _ in 0..inputs_len {
            let port = r.str("input port")?;
            let signal = get_signal(r, 0)?;
            inputs.insert(port, signal);
        }
        let outputs_len = r.len("module output")?;
        let mut outputs = BTreeMap::new();
        for _ in 0..outputs_len {
            let port = r.str("output port")?;
            let net = r.str("output net")?;
            outputs.insert(port, net);
        }
        modules.push(Module {
            name,
            spec,
            inputs,
            outputs,
        });
    }
    let outputs_len = r.len("template output")?;
    let mut outputs = BTreeMap::new();
    for _ in 0..outputs_len {
        let port = r.str("parent output")?;
        let signal = get_signal(r, 0)?;
        outputs.insert(port, signal);
    }
    Ok(NetlistTemplate {
        rule,
        nets,
        modules,
        outputs,
    })
}

fn put_policy(w: &mut Writer, policy: &Policy) {
    let pairs: Vec<(SpecId, usize)> = policy.iter().collect();
    w.usize32(pairs.len());
    for (id, choice) in pairs {
        w.u32(id as u32);
        w.u32(choice as u32);
    }
}

fn get_policy(r: &mut Reader, node_count: usize) -> Result<Policy, String> {
    let pairs = r.len("policy assignment")?;
    let mut policy = Policy::new();
    for _ in 0..pairs {
        let id = r.u32("policy spec id")? as usize;
        let choice = r.u32("policy choice")? as usize;
        if id >= node_count {
            return Err(format!("policy references node {id} of {node_count}"));
        }
        policy.set(id, choice);
    }
    Ok(policy)
}

fn put_design_point(w: &mut Writer, point: &DesignPoint) {
    w.f64(point.area);
    put_timing(w, &point.timing);
    put_policy(w, &point.policy);
}

fn get_design_point(r: &mut Reader, node_count: usize) -> Result<DesignPoint, String> {
    Ok(DesignPoint {
        area: r.f64("point area")?,
        timing: get_timing(r)?,
        policy: get_policy(r, node_count)?,
    })
}

// ---------------------------------------------------------------------
// Space, fronts, results.

/// Interned template table: every distinct `Arc<NetlistTemplate>` (by
/// pointer identity — the engine shares one `Arc` per template between
/// the space and every extracted implementation) is written once and
/// referenced by index. Interning runs over a node *slice* so delta
/// segments can carry a self-contained table for just their new nodes.
fn intern_templates(
    nodes: &[SpecNode],
) -> (
    Vec<Arc<NetlistTemplate>>,
    HashMap<*const NetlistTemplate, u32>,
) {
    let mut table: Vec<Arc<NetlistTemplate>> = Vec::new();
    let mut index: HashMap<*const NetlistTemplate, u32> = HashMap::new();
    for node in nodes {
        for choice in &node.impls {
            if let ImplChoice::Netlist(template) = choice {
                let key = Arc::as_ptr(template);
                index.entry(key).or_insert_with(|| {
                    table.push(Arc::clone(template));
                    (table.len() - 1) as u32
                });
            }
        }
    }
    (table, index)
}

/// Writes one node's implementation choices and child lists.
fn put_node_body(
    w: &mut Writer,
    node: &SpecNode,
    template_index: &HashMap<*const NetlistTemplate, u32>,
) {
    w.usize32(node.impls.len());
    for (choice, children) in node.impls.iter().zip(&node.children) {
        match choice {
            ImplChoice::Cell(cell) => {
                w.u8(0);
                w.str(&cell.cell);
                w.f64(cell.area);
                put_timing(w, &cell.timing);
            }
            ImplChoice::Netlist(template) => {
                w.u8(1);
                w.u32(template_index[&Arc::as_ptr(template)]);
            }
        }
        w.usize32(children.len());
        for &child in children {
            w.u32(child as u32);
        }
    }
}

/// Reads one node's implementation choices and child lists. `id` is the
/// node's *global* id: children must reference strictly lower ids (node
/// ids are a topological order), whether they live in this segment or an
/// earlier one.
fn get_node_body(
    r: &mut Reader,
    id: usize,
    templates: &[Arc<NetlistTemplate>],
) -> Result<(Vec<ImplChoice>, Vec<Vec<SpecId>>), String> {
    let impl_count = r.len("implementation")?;
    let mut impls = Vec::with_capacity(impl_count);
    let mut children = Vec::with_capacity(impl_count);
    for _ in 0..impl_count {
        let choice = match r.u8("implementation tag")? {
            0 => ImplChoice::Cell(CellChoice {
                cell: r.str("cell name")?,
                area: r.f64("cell area")?,
                timing: get_timing(r)?,
            }),
            1 => {
                let idx = r.u32("template index")? as usize;
                let template = templates
                    .get(idx)
                    .ok_or_else(|| format!("template index {idx} of {}", templates.len()))?;
                ImplChoice::Netlist(Arc::clone(template))
            }
            other => return Err(format!("unknown implementation tag {other}")),
        };
        let child_count = r.len("child id")?;
        let mut kids = Vec::with_capacity(child_count);
        for _ in 0..child_count {
            let child = r.u32("child id")? as usize;
            // Node ids are a topological order (children strictly
            // precede parents); anything else is a damaged file.
            if child >= id {
                return Err(format!("child {child} not below node {id}"));
            }
            kids.push(child);
        }
        impls.push(choice);
        children.push(kids);
    }
    Ok((impls, children))
}

fn put_tainted(w: &mut Writer, tainted: &HashSet<SpecId>) {
    let mut ids: Vec<SpecId> = tainted.iter().copied().collect();
    ids.sort_unstable();
    w.usize32(ids.len());
    for id in ids {
        w.u32(id as u32);
    }
}

fn get_tainted(r: &mut Reader, node_count: usize) -> Result<HashSet<SpecId>, String> {
    let tainted_count = r.len("tainted id")?;
    let mut tainted = HashSet::with_capacity(tainted_count);
    for _ in 0..tainted_count {
        let id = r.u32("tainted id")? as usize;
        if id >= node_count {
            return Err(format!("tainted id {id} of {node_count}"));
        }
        tainted.insert(id);
    }
    Ok(tainted)
}

fn put_space(w: &mut Writer, space: &DesignSpace) {
    let (templates, template_index) = intern_templates(&space.nodes);
    w.usize32(templates.len());
    for template in &templates {
        put_template(w, template);
    }
    w.usize32(space.nodes.len());
    for node in &space.nodes {
        put_spec(w, &node.spec);
        put_node_body(w, node, &template_index);
    }
    put_tainted(w, &space.tainted);
}

fn get_space(r: &mut Reader) -> Result<DesignSpace, String> {
    let template_count = r.len("template")?;
    let mut templates = Vec::with_capacity(template_count);
    for _ in 0..template_count {
        templates.push(Arc::new(get_template(r)?));
    }
    let node_count = r.len("spec node")?;
    let mut nodes: Vec<SpecNode> = Vec::with_capacity(node_count);
    let mut memo = HashMap::with_capacity(node_count);
    for id in 0..node_count {
        let spec = get_spec(r)?;
        if memo.insert(spec.clone(), id).is_some() {
            return Err(format!("duplicate spec node {spec}"));
        }
        let (impls, children) = get_node_body(r, id, &templates)?;
        nodes.push(SpecNode {
            spec,
            impls,
            children,
        });
    }
    let tainted = get_tainted(r, node_count)?;
    Ok(DesignSpace {
        nodes,
        memo,
        tainted,
    })
}

fn put_fronts(w: &mut Writer, fronts: &FrontStore, node_count: usize) {
    // The live store only grows to a node's id when a solver visits it, so
    // it can trail the space (queries that expanded but solved on a
    // private cold state). Pad to the space: absent slots are unsolved.
    w.usize32(node_count);
    for id in 0..node_count {
        match fronts.fronts.get(id).and_then(|f| f.as_ref()) {
            None => w.bool(false),
            Some(points) => {
                w.bool(true);
                w.u64(fronts.truncated[id]);
                w.usize32(points.len());
                for point in points.iter() {
                    put_design_point(w, point);
                }
            }
        }
    }
}

/// Decodes a front store written against `expected_nodes` nodes. Policy
/// bounds are checked against `space`, which may be a strict superset of
/// the space the fronts were written with (delta segments append nodes —
/// ids below `expected_nodes` are stable).
fn get_fronts(
    r: &mut Reader,
    space: &DesignSpace,
    expected_nodes: usize,
) -> Result<FrontStore, String> {
    let len = r.len("front slot")?;
    if len != expected_nodes {
        return Err(format!(
            "front store covers {len} nodes, segment recorded {expected_nodes}"
        ));
    }
    if expected_nodes > space.nodes.len() {
        return Err(format!(
            "front store covers {expected_nodes} nodes, space has {}",
            space.nodes.len()
        ));
    }
    let mut fronts = Vec::with_capacity(len);
    let mut truncated = Vec::with_capacity(len);
    for _ in 0..len {
        if r.bool("front presence")? {
            truncated.push(r.u64("front truncation")?);
            let count = r.len("design point")?;
            let mut points = Vec::with_capacity(count);
            for _ in 0..count {
                let point = get_design_point(r, space.nodes.len())?;
                check_policy_bounds(space, &point.policy)?;
                points.push(point);
            }
            fronts.push(Some(Arc::new(points)));
        } else {
            fronts.push(None);
            truncated.push(0);
        }
    }
    Ok(FrontStore { fronts, truncated })
}

/// Every `(node, choice)` a policy assigns must exist in the space.
fn check_policy_bounds(space: &DesignSpace, policy: &Policy) -> Result<(), String> {
    for (id, choice) in policy.iter() {
        let impls = space.nodes[id].impls.len();
        if choice >= impls {
            return Err(format!(
                "policy picks choice {choice} of {impls} at node {id}"
            ));
        }
    }
    Ok(())
}

/// Reconstructs the policy an implementation tree encodes, by walking it
/// against the space: cells match by (unique) data-book name,
/// decomposition templates by `Arc` identity with a structural-equality
/// fallback. The fallback matters for results solved on a *private* cold
/// space (the taint fallback path, where mutually-recursive rules forced
/// a fresh expansion): their template `Arc`s are different allocations,
/// but whenever the shared space carries a structurally identical
/// template for the same node, the reconstructed policy re-extracts to a
/// value-identical implementation tree. Returns `None` when a node or
/// template has no counterpart in this space — such results are simply
/// not persisted and re-solve on demand.
fn policy_of(space: &DesignSpace, implementation: &Implementation) -> Option<Policy> {
    let mut policy = Policy::new();
    let mut assigned: HashSet<SpecId> = HashSet::new();
    let mut stack: Vec<&Implementation> = vec![implementation];
    while let Some(node) = stack.pop() {
        let id = space.id_of(&node.spec)?;
        if !assigned.insert(id) {
            continue;
        }
        let spec_node = &space.nodes[id];
        let choice = match &node.kind {
            ImplKind::Cell { name } => spec_node
                .impls
                .iter()
                .position(|c| matches!(c, ImplChoice::Cell(cell) if cell.cell == *name))?,
            ImplKind::Netlist { template, children } => {
                let idx = spec_node.impls.iter().position(|c| match c {
                    ImplChoice::Netlist(t) => Arc::ptr_eq(t, template) || **t == **template,
                    ImplChoice::Cell(_) => false,
                })?;
                for child in children {
                    stack.push(child);
                }
                idx
            }
        };
        policy.set(id, choice);
    }
    Some(policy)
}

/// Validates that `policy` fully covers the subgraph its own choices
/// select under `root`, so the subsequent [`extract`] cannot panic.
fn check_policy_covers(space: &DesignSpace, root: SpecId, policy: &Policy) -> Result<(), String> {
    let mut seen: HashSet<SpecId> = HashSet::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        let node = &space.nodes[id];
        let choice = policy
            .get(id)
            .ok_or_else(|| format!("policy misses node {id}"))?;
        if choice >= node.impls.len() {
            return Err(format!(
                "policy picks choice {choice} of {} at node {id}",
                node.impls.len()
            ));
        }
        stack.extend(node.children[choice].iter().copied());
    }
    Ok(())
}

pub(crate) fn put_synth_error(w: &mut Writer, error: &SynthError) {
    match error {
        SynthError::Expand(m) => {
            w.u8(0);
            w.str(m);
        }
        SynthError::NoImplementation(m) => {
            w.u8(1);
            w.str(m);
        }
    }
}

pub(crate) fn get_synth_error(r: &mut Reader) -> Result<SynthError, String> {
    Ok(match r.u8("error tag")? {
        0 => SynthError::Expand(r.str("error message")?),
        1 => SynthError::NoImplementation(r.str("error message")?),
        other => return Err(format!("unknown error tag {other}")),
    })
}

// ---------------------------------------------------------------------
// Sections: the self-contained byte blobs a segment header points at.
// Each decoder consumes its entire slice ("trailing bytes" otherwise), so
// a header pointing at the wrong range cannot silently half-parse.

/// Encodes the whole design space (template table, spec nodes, taint
/// set) as a base-segment section.
pub(crate) fn encode_space_section(space: &DesignSpace) -> Vec<u8> {
    let mut w = Writer::new();
    put_space(&mut w, space);
    w.into_bytes()
}

pub(crate) fn decode_space_section(bytes: &[u8]) -> Result<DesignSpace, String> {
    let mut r = Reader::new(bytes);
    let space = get_space(&mut r)?;
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after space", r.remaining()));
    }
    Ok(space)
}

/// Encodes a front store padded to `node_count` as a base-segment section.
pub(crate) fn encode_fronts_section(fronts: &FrontStore, node_count: usize) -> Vec<u8> {
    let mut w = Writer::new();
    put_fronts(&mut w, fronts, node_count);
    w.into_bytes()
}

/// Decodes a front section written against `expected_nodes` nodes; see
/// [`get_fronts`] for the superset-space contract.
pub(crate) fn decode_fronts_section(
    bytes: &[u8],
    space: &DesignSpace,
    expected_nodes: usize,
) -> Result<FrontStore, String> {
    let mut r = Reader::new(bytes);
    let fronts = get_fronts(&mut r, space, expected_nodes)?;
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after fronts", r.remaining()));
    }
    Ok(fronts)
}

/// Encodes every persistable memoized result as its own section, so a
/// segment's header can index them for lazy per-spec decode. `Ok` results
/// are persisted as per-alternative policies; results whose
/// implementations were not built from the shared space (cold-fallback
/// solves) are skipped — they will be re-solved on demand, which is
/// always correct.
pub(crate) fn encode_result_sections(
    space: &DesignSpace,
    results: &[ResultEntry],
) -> Vec<(ComponentSpec, Vec<u8>)> {
    let mut out: Vec<(ComponentSpec, Vec<u8>)> = Vec::new();
    'results: for (spec, result) in results {
        let mut policies = Vec::new();
        if let Ok(set) = result {
            if space.id_of(spec).is_none() {
                continue;
            }
            for alt in &set.alternatives {
                match policy_of(space, &alt.implementation) {
                    Some(policy) => policies.push(policy),
                    None => continue 'results,
                }
            }
        }
        let mut w = Writer::new();
        match result {
            Err(error) => {
                w.u8(0);
                put_synth_error(&mut w, error);
            }
            Ok(set) => {
                w.u8(1);
                w.usize32(set.alternatives.len());
                for (alt, policy) in set.alternatives.iter().zip(&policies) {
                    w.f64(alt.area);
                    w.f64(alt.delay);
                    put_timing(&mut w, &alt.timing);
                    put_policy(&mut w, policy);
                }
                w.f64(set.unconstrained_size);
                w.f64(set.unconstrained_log10);
                match set.uniform_size {
                    None => w.bool(false),
                    Some(n) => {
                        w.bool(true);
                        w.u64(n);
                    }
                }
                w.u64(set.stats.spec_nodes as u64);
                w.u64(set.stats.impl_choices as u64);
                w.u64(set.stats.truncated_combinations);
            }
        }
        out.push((spec.clone(), w.into_bytes()));
    }
    out
}

/// Decodes one result body for `spec` against the (possibly grown)
/// hydrated space. This is the lazy read path: it runs when a spec is
/// first requested, not at load, and rebuilds the implementation trees
/// with the solve path's own [`extract`] so warm answers stay
/// bit-identical to cold ones.
pub(crate) fn decode_result_body(
    bytes: &[u8],
    space: &DesignSpace,
    spec: &ComponentSpec,
) -> Result<Result<Arc<DesignSet>, SynthError>, String> {
    let mut r = Reader::new(bytes);
    let result = match r.u8("result tag")? {
        0 => Err(get_synth_error(&mut r)?),
        1 => {
            let root = space
                .id_of(spec)
                .ok_or_else(|| format!("result spec {spec} not in space"))?;
            let alt_count = r.len("alternative")?;
            let mut alternatives = Vec::with_capacity(alt_count);
            for _ in 0..alt_count {
                let area = r.f64("alternative area")?;
                let delay = r.f64("alternative delay")?;
                let timing = get_timing(&mut r)?;
                let policy = get_policy(&mut r, space.nodes.len())?;
                check_policy_covers(space, root, &policy)?;
                // Rebuilding through the solve path's own `extract`
                // pins warm implementations bit-identical to cold.
                let implementation = extract::extract(space, root, &policy);
                alternatives.push(Alternative {
                    area,
                    delay,
                    timing,
                    implementation,
                });
            }
            let unconstrained_size = r.f64("unconstrained size")?;
            let unconstrained_log10 = r.f64("unconstrained log10")?;
            let uniform_size = if r.bool("uniform presence")? {
                Some(r.u64("uniform size")?)
            } else {
                None
            };
            let stats = SynthStats {
                spec_nodes: r.u64("stat spec_nodes")? as usize,
                impl_choices: r.u64("stat impl_choices")? as usize,
                // Restamped per call on delivery.
                elapsed: Duration::ZERO,
                truncated_combinations: r.u64("stat truncation")?,
            };
            Ok(Arc::new(DesignSet {
                spec: spec.clone(),
                alternatives,
                unconstrained_size,
                unconstrained_log10,
                uniform_size,
                stats,
            }))
        }
        other => return Err(format!("unknown result tag {other}")),
    };
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after result", r.remaining()));
    }
    Ok(result)
}

// ---------------------------------------------------------------------
// Delta payloads: the O(dirty) sections of a delta segment.

/// Encodes the space *extension* a delta carries: the nodes appended
/// since `first_new` (with a self-contained template table) plus the full
/// taint set (small, and replacing it wholesale keeps hydration simple
/// and order-independent).
pub(crate) fn encode_space_extension(space: &DesignSpace, first_new: usize) -> Vec<u8> {
    let new_nodes = &space.nodes[first_new..];
    let (templates, template_index) = intern_templates(new_nodes);
    let mut w = Writer::new();
    w.usize32(templates.len());
    for template in &templates {
        put_template(&mut w, template);
    }
    w.usize32(new_nodes.len());
    for node in new_nodes {
        put_spec(&mut w, &node.spec);
        put_node_body(&mut w, node, &template_index);
    }
    put_tainted(&mut w, &space.tainted);
    w.into_bytes()
}

/// Decodes a space extension spanning global ids
/// `prev_nodes..node_count`. Child references may point below
/// `prev_nodes` (into earlier segments); spec-level duplicate checks
/// against the already-hydrated space happen at hydration, where the full
/// memo exists.
pub(crate) fn decode_space_extension(
    bytes: &[u8],
    prev_nodes: usize,
    node_count: usize,
) -> Result<(Vec<SpecNode>, HashSet<SpecId>), String> {
    let mut r = Reader::new(bytes);
    let template_count = r.len("template")?;
    let mut templates = Vec::with_capacity(template_count);
    for _ in 0..template_count {
        templates.push(Arc::new(get_template(&mut r)?));
    }
    let new_count = r.len("extension node")?;
    if prev_nodes + new_count != node_count {
        return Err(format!(
            "extension carries {new_count} nodes, header spans {prev_nodes}..{node_count}"
        ));
    }
    let mut nodes = Vec::with_capacity(new_count);
    for offset in 0..new_count {
        let spec = get_spec(&mut r)?;
        let (impls, children) = get_node_body(&mut r, prev_nodes + offset, &templates)?;
        nodes.push(SpecNode {
            spec,
            impls,
            children,
        });
    }
    let tainted = get_tainted(&mut r, node_count)?;
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after extension", r.remaining()));
    }
    Ok((nodes, tainted))
}

/// Encodes the fronts newly solved since the last flush as an explicit
/// `(node id, truncation, points)` update list — O(dirty), unlike the
/// padded base encoding.
pub(crate) fn encode_front_updates(fronts: &FrontStore, ids: &[usize]) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize32(ids.len());
    for &id in ids {
        let points = fronts.fronts[id]
            .as_ref()
            .expect("dirty front ids are solved");
        w.u32(id as u32);
        w.u64(fronts.truncated[id]);
        w.usize32(points.len());
        for point in points.iter() {
            put_design_point(&mut w, point);
        }
    }
    w.into_bytes()
}

/// Decodes a delta's front updates. Node-id and policy-id bounds are
/// checked against `node_count` (the chain total after this delta);
/// policy *choice* bounds need the hydrated space and are checked there.
pub(crate) fn decode_front_updates(
    bytes: &[u8],
    node_count: usize,
) -> Result<Vec<(SpecId, u64, Vec<DesignPoint>)>, String> {
    let mut r = Reader::new(bytes);
    let update_count = r.len("front update")?;
    let mut out = Vec::with_capacity(update_count);
    for _ in 0..update_count {
        let id = r.u32("front node id")? as usize;
        if id >= node_count {
            return Err(format!("front update for node {id} of {node_count}"));
        }
        let truncated = r.u64("front truncation")?;
        let count = r.len("design point")?;
        let mut points = Vec::with_capacity(count);
        for _ in 0..count {
            points.push(get_design_point(&mut r, node_count)?);
        }
        out.push((id, truncated, points));
    }
    if r.remaining() != 0 {
        return Err(format!(
            "{} trailing bytes after front updates",
            r.remaining()
        ));
    }
    Ok(out)
}

/// Every `(node, choice)` a policy assigns must exist in the space — the
/// deferred half of delta front validation (see
/// [`decode_front_updates`]).
pub(crate) fn check_front_policies(
    space: &DesignSpace,
    points: &[DesignPoint],
) -> Result<(), String> {
    for point in points {
        check_policy_bounds(space, &point.policy)?;
    }
    Ok(())
}
