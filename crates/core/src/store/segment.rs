//! Segment framing for the tiered snapshot store.
//!
//! A key's persisted state is a *chain*: one immutable **base** segment
//! (the whole design space, every solved front, an index of memoized
//! results) plus zero or more **delta** segments, each carrying only what
//! changed since the previous flush — appended nodes, newly solved
//! fronts, new results. Every segment is self-framing:
//!
//! ```text
//! magic "DTASSEG2" · format version · kind (base/delta)
//! library/rule-set/config/canonicalization fingerprints
//! base id · seq · prev link · prev node count · node count
//! space section desc · fronts section desc
//! result index: (spec, section desc) per memoized result
//! header checksum (FNV-1a over everything above)
//! ...packed sections (each desc = absolute offset, length, checksum)...
//! ```
//!
//! The header is O(results), not O(space): loading a base verifies only
//! the header checksum and the section bounds, then leaves the body bytes
//! untouched (and, on 64-bit unix, memory-mapped — see the `mmap`
//! module). Sections are checksummed individually and verified on first
//! *access*: the space and fronts when an engine first has to grow the
//! space, each result body when its spec is first requested. Deltas are
//! small, so they are verified eagerly at load — a damaged delta rejects
//! the whole load before any of it can be served.
//!
//! Chains are validated strictly at assembly: sequence numbers must be
//! contiguous from 1, every delta must name the base's random id, carry
//! the previous segment's header checksum as its `prev link`, and agree
//! on the running node count. A *missing* suffix (crash between two delta
//! writes, concurrent compaction pruning) is a clean prefix — any prefix
//! of a chain is a valid, smaller snapshot because solves are
//! deterministic — but a segment that is present and fails any check
//! rejects the load to a cold solve.

use super::codec::{self, Reader, ResultEntry, Writer};
use super::mmap::SegmentBytes;
use super::{DirtySet, EngineSnapshot, StoreKey};
use crate::report::DesignSet;
use crate::space::{DesignSpace, FrontStore};
use crate::SynthError;
use genus::spec::ComponentSpec;
use rtl_base::hash::fnv1a_64;
use std::collections::HashMap;
use std::sync::Arc;

/// Magic prefix of every tiered-store segment (unchanged since v2 of the
/// on-disk format: the version field right behind it is what
/// discriminates layouts, and keeping the magic stable lets an old
/// segment report "format version" instead of "bad magic").
pub(crate) const SEGMENT_MAGIC: [u8; 8] = *b"DTASSEG2";

const KIND_BASE: u8 = 0;
const KIND_DELTA: u8 = 1;

/// Where one checksummed section lives inside a segment file.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SectionDesc {
    /// Absolute byte offset from the start of the segment.
    off: u64,
    /// Section length in bytes.
    len: u64,
    /// FNV-1a-64 over the section bytes.
    sum: u64,
}

impl SectionDesc {
    fn put(&self, w: &mut Writer) {
        w.u64(self.off);
        w.u64(self.len);
        w.u64(self.sum);
    }

    fn get(r: &mut Reader) -> Result<SectionDesc, String> {
        Ok(SectionDesc {
            off: r.u64("section offset")?,
            len: r.u64("section length")?,
            sum: r.u64("section checksum")?,
        })
    }

    fn of(off: usize, bytes: &[u8]) -> SectionDesc {
        SectionDesc {
            off: off as u64,
            len: bytes.len() as u64,
            sum: fnv1a_64(bytes),
        }
    }
}

/// A parsed, checksum-verified, bounds-checked segment header.
pub(crate) struct SegmentHeader {
    kind: u8,
    /// Random id stamped on a base; every delta in its chain repeats it,
    /// so a delta can never be replayed onto a different base.
    pub(crate) base_id: u64,
    /// 0 for a base; 1, 2, … for its deltas.
    pub(crate) seq: u32,
    /// Header checksum of the chain predecessor (0 for a base).
    prev_link: u64,
    /// Node count *before* this segment (0 for a base).
    pub(crate) prev_nodes: u32,
    /// Node count after this segment is applied.
    pub(crate) node_count: u32,
    space: SectionDesc,
    fronts: SectionDesc,
    /// Per-result index: the spec (decoded eagerly — it is the lookup
    /// key) and where its still-encoded body lives.
    results: Vec<(ComponentSpec, SectionDesc)>,
    /// This header's own checksum; doubles as the `prev_link` value of
    /// the chain successor.
    pub(crate) header_checksum: u64,
}

/// Writes every header field up to (not including) the checksum.
#[allow(clippy::too_many_arguments)]
fn put_header_fields(
    w: &mut Writer,
    key: &StoreKey,
    kind: u8,
    base_id: u64,
    seq: u32,
    prev_link: u64,
    prev_nodes: u32,
    node_count: u32,
    space: &SectionDesc,
    fronts: &SectionDesc,
    results: &[(ComponentSpec, SectionDesc)],
) {
    w.bytes(&SEGMENT_MAGIC);
    w.u32(key.format_version);
    w.u8(kind);
    w.u64(key.library);
    w.u64(key.rules);
    w.u64(key.config);
    w.u64(key.canon);
    w.u64(base_id);
    w.u32(seq);
    w.u64(prev_link);
    w.u32(prev_nodes);
    w.u32(node_count);
    space.put(w);
    fronts.put(w);
    w.usize32(results.len());
    for (spec, desc) in results {
        codec::put_spec(w, spec);
        desc.put(w);
    }
}

/// Parses and validates a segment header against `key`.
///
/// Check order is deliberate: magic and format version are checked
/// *before* the header checksum, so a snapshot from a different format
/// version reports "format version", not a checksum mismatch (the
/// version is at the same offset — bytes 8..12 — in every format, past
/// and future). Everything else is covered by the checksum, then every
/// section descriptor is bounds-checked against the file, so no later
/// access can read out of range.
pub(crate) fn parse_header(bytes: &[u8], key: &StoreKey) -> Result<SegmentHeader, String> {
    let mut r = Reader::new(bytes);
    let magic = r.take(SEGMENT_MAGIC.len(), "magic")?;
    if magic != SEGMENT_MAGIC {
        return Err("not a DTAS segment (bad magic)".into());
    }
    let version = r.u32("format version")?;
    if version != key.format_version {
        return Err(format!(
            "format version {version} (this build reads {})",
            key.format_version
        ));
    }
    let kind = r.u8("segment kind")?;
    if kind != KIND_BASE && kind != KIND_DELTA {
        return Err(format!("unknown segment kind {kind}"));
    }
    let library = r.u64("library fingerprint")?;
    if library != key.library {
        return Err("library fingerprint mismatch".into());
    }
    let rules = r.u64("rule-set fingerprint")?;
    if rules != key.rules {
        return Err("rule-set fingerprint mismatch".into());
    }
    let config = r.u64("config fingerprint")?;
    if config != key.config {
        return Err("configuration fingerprint mismatch".into());
    }
    let canon = r.u64("canonicalization fingerprint")?;
    if canon != key.canon {
        return Err("canonicalization fingerprint mismatch".into());
    }
    let base_id = r.u64("base id")?;
    let seq = r.u32("segment seq")?;
    let prev_link = r.u64("chain link")?;
    let prev_nodes = r.u32("previous node count")?;
    let node_count = r.u32("node count")?;
    let space = SectionDesc::get(&mut r)?;
    let fronts = SectionDesc::get(&mut r)?;
    let result_count = r.len("result index entry")?;
    let mut results = Vec::with_capacity(result_count);
    for _ in 0..result_count {
        let spec = codec::get_spec(&mut r)?;
        results.push((spec, SectionDesc::get(&mut r)?));
    }
    let checksum_at = bytes.len() - r.remaining();
    let stored = r.u64("header checksum")?;
    let computed = fnv1a_64(&bytes[..checksum_at]);
    if stored != computed {
        return Err(format!(
            "header checksum mismatch (stored {stored:016x}, computed {computed:016x})"
        ));
    }
    let header_end = checksum_at + 8;
    let check_bounds = |desc: &SectionDesc, what: &str| -> Result<(), String> {
        let off = usize::try_from(desc.off).map_err(|_| format!("{what} offset overflows"))?;
        let len = usize::try_from(desc.len).map_err(|_| format!("{what} length overflows"))?;
        if off < header_end || off.checked_add(len).is_none_or(|end| end > bytes.len()) {
            return Err(format!(
                "truncated segment: {what} section [{off}, +{len}) outside file of {} bytes",
                bytes.len()
            ));
        }
        Ok(())
    };
    check_bounds(&space, "space")?;
    check_bounds(&fronts, "fronts")?;
    for (spec, desc) in &results {
        check_bounds(desc, &format!("result {spec}"))?;
    }
    match kind {
        KIND_BASE if seq != 0 || prev_link != 0 || prev_nodes != 0 => {
            return Err("base segment carries chain fields".into())
        }
        KIND_DELTA if seq == 0 => return Err("delta segment with sequence 0".into()),
        _ => {}
    }
    if prev_nodes > node_count {
        return Err(format!(
            "node count shrinks across segment ({prev_nodes} -> {node_count})"
        ));
    }
    Ok(SegmentHeader {
        kind,
        base_id,
        seq,
        prev_link,
        prev_nodes,
        node_count,
        space,
        fronts,
        results,
        header_checksum: computed,
    })
}

/// Returns a section's bytes after verifying its checksum. Bounds were
/// established at [`parse_header`]; the checksum is what defers — this is
/// the lazy half of base-segment validation.
fn verified_section<'a>(
    bytes: &'a [u8],
    desc: &SectionDesc,
    what: &str,
) -> Result<&'a [u8], String> {
    let slice = &bytes[desc.off as usize..(desc.off + desc.len) as usize];
    let computed = fnv1a_64(slice);
    if computed != desc.sum {
        return Err(format!(
            "{what} section checksum mismatch (stored {:016x}, computed {computed:016x})",
            desc.sum
        ));
    }
    Ok(slice)
}

/// One encoded segment, ready to be written.
pub(crate) struct EncodedSegment {
    pub(crate) bytes: Vec<u8>,
    /// The written header's checksum — the `prev_link` of the next delta.
    pub(crate) header_checksum: u64,
    /// Memoized results indexed in this segment.
    pub(crate) results: usize,
}

/// Frames pre-encoded sections into one segment. Two passes: the header's
/// length does not depend on the (fixed-width) offsets it carries, so
/// pass one learns the length with zeroed offsets and pass two writes the
/// real ones.
#[allow(clippy::too_many_arguments)]
fn encode_segment(
    key: &StoreKey,
    kind: u8,
    base_id: u64,
    seq: u32,
    prev_link: u64,
    prev_nodes: u32,
    node_count: u32,
    space_bytes: &[u8],
    fronts_bytes: &[u8],
    result_bodies: &[(ComponentSpec, Vec<u8>)],
) -> EncodedSegment {
    let zeroed: Vec<(ComponentSpec, SectionDesc)> = result_bodies
        .iter()
        .map(|(spec, _)| (spec.clone(), SectionDesc::default()))
        .collect();
    let mut probe = Writer::new();
    put_header_fields(
        &mut probe,
        key,
        kind,
        base_id,
        seq,
        prev_link,
        prev_nodes,
        node_count,
        &SectionDesc::default(),
        &SectionDesc::default(),
        &zeroed,
    );
    let header_len = probe.len() + 8; // + checksum

    let mut off = header_len;
    let space = SectionDesc::of(off, space_bytes);
    off += space_bytes.len();
    let fronts = SectionDesc::of(off, fronts_bytes);
    off += fronts_bytes.len();
    let results: Vec<(ComponentSpec, SectionDesc)> = result_bodies
        .iter()
        .map(|(spec, body)| {
            let desc = SectionDesc::of(off, body);
            off += body.len();
            (spec.clone(), desc)
        })
        .collect();

    let mut w = Writer::new();
    put_header_fields(
        &mut w, key, kind, base_id, seq, prev_link, prev_nodes, node_count, &space, &fronts,
        &results,
    );
    debug_assert_eq!(w.len() + 8, header_len);
    let header_checksum = fnv1a_64(w.as_slice());
    w.u64(header_checksum);
    let mut bytes = w.into_bytes();
    bytes.reserve(off - header_len);
    bytes.extend_from_slice(space_bytes);
    bytes.extend_from_slice(fronts_bytes);
    for (_, body) in result_bodies {
        bytes.extend_from_slice(body);
    }
    EncodedSegment {
        bytes,
        header_checksum,
        results: result_bodies.len(),
    }
}

/// Encodes a whole snapshot as a base segment under a fresh `base_id`.
pub(crate) fn encode_base(
    snapshot: &EngineSnapshot,
    key: &StoreKey,
    base_id: u64,
) -> EncodedSegment {
    let node_count = snapshot.space.nodes.len();
    let space = codec::encode_space_section(&snapshot.space);
    let fronts = codec::encode_fronts_section(&snapshot.fronts, node_count);
    let results = codec::encode_result_sections(&snapshot.space, &snapshot.results);
    encode_segment(
        key,
        KIND_BASE,
        base_id,
        0,
        0,
        0,
        node_count as u32,
        &space,
        &fronts,
        &results,
    )
}

/// Encodes the dirty slice of a snapshot as delta segment `seq` chained
/// onto the segment whose header checksum is `prev_link`.
pub(crate) fn encode_delta(
    snapshot: &EngineSnapshot,
    dirty: &DirtySet,
    key: &StoreKey,
    base_id: u64,
    seq: u32,
    prev_link: u64,
) -> EncodedSegment {
    let node_count = snapshot.space.nodes.len();
    let space = codec::encode_space_extension(&snapshot.space, dirty.first_new_node);
    let fronts = codec::encode_front_updates(&snapshot.fronts, &dirty.front_ids);
    let entries: Vec<ResultEntry> = dirty
        .result_indices
        .iter()
        .map(|&i| snapshot.results[i].clone())
        .collect();
    let results = codec::encode_result_sections(&snapshot.space, &entries);
    encode_segment(
        key,
        KIND_DELTA,
        base_id,
        seq,
        prev_link,
        dirty.first_new_node as u32,
        node_count as u32,
        &space,
        &fronts,
        &results,
    )
}

/// An opened base segment: header parsed and verified, body bytes (owned
/// or memory-mapped) untouched until first access.
pub(crate) struct BaseSegment {
    bytes: SegmentBytes,
    pub(crate) header: SegmentHeader,
}

impl BaseSegment {
    pub(crate) fn open(bytes: SegmentBytes, key: &StoreKey) -> Result<BaseSegment, String> {
        let header = parse_header(&bytes, key)?;
        if header.kind != KIND_BASE {
            return Err("expected a base segment, found a delta".into());
        }
        Ok(BaseSegment { bytes, header })
    }

    fn decode_space(&self) -> Result<DesignSpace, String> {
        let slice = verified_section(&self.bytes, &self.header.space, "space")?;
        codec::decode_space_section(slice)
    }

    fn decode_fronts(&self, space: &DesignSpace) -> Result<FrontStore, String> {
        let slice = verified_section(&self.bytes, &self.header.fronts, "fronts")?;
        codec::decode_fronts_section(slice, space, self.header.node_count as usize)
    }

    fn decode_result(
        &self,
        idx: usize,
        space: &DesignSpace,
    ) -> Result<Result<Arc<DesignSet>, SynthError>, String> {
        let (spec, desc) = &self.header.results[idx];
        let slice = verified_section(&self.bytes, desc, &format!("result {spec}"))?;
        codec::decode_result_body(slice, space, spec)
    }
}

/// An opened delta segment. Deltas are eagerly *checksum*-verified (every
/// section) at open — they are O(dirty)-small, and rejecting a damaged
/// delta must happen at load, before any of the chain is served —
/// structural decoding still waits for first access.
pub(crate) struct DeltaSegment {
    bytes: SegmentBytes,
    pub(crate) header: SegmentHeader,
}

impl DeltaSegment {
    pub(crate) fn open(bytes: SegmentBytes, key: &StoreKey) -> Result<DeltaSegment, String> {
        let header = parse_header(&bytes, key)?;
        if header.kind != KIND_DELTA {
            return Err("expected a delta segment, found a base".into());
        }
        verified_section(&bytes, &header.space, "space extension")?;
        verified_section(&bytes, &header.fronts, "front updates")?;
        for (spec, desc) in &header.results {
            verified_section(&bytes, desc, &format!("result {spec}"))?;
        }
        Ok(DeltaSegment { bytes, header })
    }

    fn decode_extension(
        &self,
    ) -> Result<
        (
            Vec<crate::space::SpecNode>,
            std::collections::HashSet<usize>,
        ),
        String,
    > {
        let slice = verified_section(&self.bytes, &self.header.space, "space extension")?;
        codec::decode_space_extension(
            slice,
            self.header.prev_nodes as usize,
            self.header.node_count as usize,
        )
    }

    fn decode_front_updates(
        &self,
    ) -> Result<Vec<(usize, u64, Vec<crate::space::DesignPoint>)>, String> {
        let slice = verified_section(&self.bytes, &self.header.fronts, "front updates")?;
        codec::decode_front_updates(slice, self.header.node_count as usize)
    }

    fn decode_result(
        &self,
        idx: usize,
        space: &DesignSpace,
    ) -> Result<Result<Arc<DesignSet>, SynthError>, String> {
        let (spec, desc) = &self.header.results[idx];
        let slice = verified_section(&self.bytes, desc, &format!("result {spec}"))?;
        codec::decode_result_body(slice, space, spec)
    }
}

/// A validated chain, held by a warm-started engine as its lazy read
/// path: the base stays mapped (where supported), results decode on first
/// request, and the space/fronts hydrate only when a query actually needs
/// to grow the space.
pub struct WarmSource {
    base: BaseSegment,
    deltas: Vec<DeltaSegment>,
    /// spec -> (segment: 0 = base, i+1 = deltas[i]; result index within
    /// it). Later segments win, so a result skipped by the base (cold
    /// fallback) but persisted by a later delta resolves to the delta's.
    index: HashMap<ComponentSpec, (usize, usize)>,
    /// Encoded size of the base segment.
    pub(crate) base_bytes: u64,
    /// Total encoded size of the delta segments.
    pub(crate) delta_bytes: u64,
}

impl WarmSource {
    /// Total node count of the hydrated space this chain describes.
    pub(crate) fn node_count(&self) -> usize {
        self.deltas
            .last()
            .map(|d| d.header.node_count)
            .unwrap_or(self.base.header.node_count) as usize
    }

    /// Number of deltas chained onto the base.
    pub fn delta_count(&self) -> usize {
        self.deltas.len()
    }

    /// Memoized results still awaiting lazy materialization.
    pub fn pending_results(&self) -> usize {
        self.index.len()
    }

    /// True when the base segment is memory-mapped rather than copied.
    pub fn is_mapped(&self) -> bool {
        self.base.bytes.is_mapped()
    }

    /// True when this chain indexes a result for `spec` that has not been
    /// materialized yet.
    pub(crate) fn has_result(&self, spec: &ComponentSpec) -> bool {
        self.index.contains_key(spec)
    }

    /// The base's random id (for watermark bookkeeping).
    pub(crate) fn base_id(&self) -> u64 {
        self.base.header.base_id
    }

    /// Header checksum of the last segment — the `prev_link` a new delta
    /// must carry to chain onto this source.
    pub(crate) fn last_link(&self) -> u64 {
        self.deltas
            .last()
            .map(|d| d.header.header_checksum)
            .unwrap_or(self.base.header.header_checksum)
    }

    /// Decodes (and consumes) the stored result for `spec` against the
    /// hydrated `space`. Returns `None` when no result is indexed;
    /// `Some(Err)` when the stored bytes are damaged — the entry is
    /// removed either way, so a damaged result is reported once and then
    /// re-solved, never retried against the same bad bytes.
    pub(crate) fn take_result(
        &mut self,
        spec: &ComponentSpec,
        space: &DesignSpace,
    ) -> Option<Result<Result<Arc<DesignSet>, SynthError>, String>> {
        let (seg, idx) = self.index.remove(spec)?;
        let decoded = if seg == 0 {
            self.base.decode_result(idx, space)
        } else {
            self.deltas[seg - 1].decode_result(idx, space)
        };
        Some(decoded)
    }

    /// Every spec with a pending stored result, for diagnostics.
    pub(crate) fn pending_specs(&self) -> Vec<ComponentSpec> {
        self.index.keys().cloned().collect()
    }

    /// Fully decodes the chain into live engine state: the base space and
    /// fronts, then every delta folded on top in sequence order. Any
    /// validation failure rejects the whole hydration — the engine drops
    /// the source and re-solves cold.
    pub(crate) fn hydrate_state(&self) -> Result<(DesignSpace, FrontStore), String> {
        let mut space = self.base.decode_space()?;
        if space.nodes.len() != self.base.header.node_count as usize {
            return Err(format!(
                "base space has {} nodes, header recorded {}",
                space.nodes.len(),
                self.base.header.node_count
            ));
        }
        let mut fronts = self.base.decode_fronts(&space)?;
        for delta in &self.deltas {
            if delta.header.prev_nodes as usize != space.nodes.len() {
                return Err(format!(
                    "delta {} expects {} prior nodes, chain has {}",
                    delta.header.seq,
                    delta.header.prev_nodes,
                    space.nodes.len()
                ));
            }
            let (nodes, tainted) = delta.decode_extension()?;
            for node in nodes {
                let id = space.nodes.len();
                if space.memo.insert(node.spec.clone(), id).is_some() {
                    return Err(format!("duplicate spec node {} in delta", node.spec));
                }
                space.nodes.push(node);
            }
            // The taint set is written whole in every delta: last wins.
            space.tainted = tainted;
            while fronts.fronts.len() < space.nodes.len() {
                fronts.fronts.push(None);
                fronts.truncated.push(0);
            }
            for (id, truncated, points) in delta.decode_front_updates()? {
                codec::check_front_policies(&space, &points)?;
                fronts.fronts[id] = Some(Arc::new(points));
                fronts.truncated[id] = truncated;
            }
        }
        Ok((space, fronts))
    }
}

/// Validates a base + ordered deltas into a [`WarmSource`].
///
/// `deltas` must already be the *contiguous* sequence starting at seq 1 —
/// backends stop listing at the first gap (a missing suffix is a valid
/// prefix). Here every present segment is held to the strict chain
/// contract; any violation rejects the whole chain.
pub(crate) fn assemble_chain(
    base: SegmentBytes,
    deltas: Vec<SegmentBytes>,
    key: &StoreKey,
) -> Result<WarmSource, String> {
    let base_bytes = base.len() as u64;
    let base = BaseSegment::open(base, key)?;
    let mut index: HashMap<ComponentSpec, (usize, usize)> = HashMap::new();
    for (idx, (spec, _)) in base.header.results.iter().enumerate() {
        index.insert(spec.clone(), (0, idx));
    }
    let mut opened = Vec::with_capacity(deltas.len());
    let mut delta_bytes = 0u64;
    let mut link = base.header.header_checksum;
    let mut node_count = base.header.node_count;
    for (i, bytes) in deltas.into_iter().enumerate() {
        let expected_seq = (i + 1) as u32;
        delta_bytes += bytes.len() as u64;
        let delta = DeltaSegment::open(bytes, key)?;
        if delta.header.base_id != base.header.base_id {
            return Err(format!(
                "delta {} belongs to a different base ({:016x}, chain base {:016x})",
                delta.header.seq, delta.header.base_id, base.header.base_id
            ));
        }
        if delta.header.seq != expected_seq {
            return Err(format!(
                "delta sequence mismatch (found {}, expected {expected_seq})",
                delta.header.seq
            ));
        }
        if delta.header.prev_link != link {
            return Err(format!(
                "delta {} chain link mismatch (file was not written against its predecessor)",
                delta.header.seq
            ));
        }
        if delta.header.prev_nodes != node_count {
            return Err(format!(
                "delta {} expects {} prior nodes, chain has {node_count}",
                delta.header.seq, delta.header.prev_nodes
            ));
        }
        link = delta.header.header_checksum;
        node_count = delta.header.node_count;
        for (idx, (spec, _)) in delta.header.results.iter().enumerate() {
            index.insert(spec.clone(), (i + 1, idx));
        }
        opened.push(delta);
    }
    Ok(WarmSource {
        base,
        deltas: opened,
        index,
        base_bytes,
        delta_bytes,
    })
}
