//! The on-disk chain backend: generation-named segment files, atomic
//! publication, and the cache-directory inventory/GC that `dtas cache`
//! exposes.
//!
//! A key's chain lives as one base plus its deltas, all carrying a
//! *generation* number:
//!
//! ```text
//! dtas-v3-{lib:016x}-{rules:016x}-{cfg:016x}-{canon:016x}-g00000003.base
//! dtas-v3-{lib:016x}-{rules:016x}-{cfg:016x}-{canon:016x}-g00000003-d0001.delta
//! ```
//!
//! Every write goes to a dot-prefixed temporary in the same directory and
//! is `rename`d into place, so a concurrent reader sees whole files only.
//! A full save (including compaction) publishes generation *N+1* and then
//! best-effort unlinks generation ≤ N — readers that already mapped the
//! old base keep a consistent view (unlinked files survive their open
//! mappings on unix), readers listing the directory mid-prune simply
//! retry, and a crash between publish and prune leaves extra-but-valid
//! files that the next compaction or `dtas cache --gc` removes.
//!
//! Loads are fail-safe by construction: a missing chain is a cold start;
//! a chain that fails any header, checksum, fingerprint or link check is
//! [rejected](LoadOutcome::Rejected) with a reason and the engine falls
//! back to a clean cold solve. No damaged file can panic the decoder or
//! alter results.

use crate::store::mmap::SegmentBytes;
use crate::store::{
    fresh_base_id, segment, DirtySet, EngineSnapshot, LoadOutcome, ResultStore, SaveReport,
    StoreError, StoreKey, FORMAT_VERSION,
};
use std::collections::HashMap;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, SystemTime};

/// Monotonic discriminator for temporary file names, so concurrent saves
/// from one process never collide.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Orphaned temporaries younger than this are left alone at startup: they
/// may belong to a live writer mid-save. Anything older is a crash
/// leftover (a save takes milliseconds, not minutes).
const TMP_SWEEP_AGE: Duration = Duration::from_secs(15 * 60);

/// What this process knows about the chain it last wrote or loaded for a
/// key — the append cursor for [`ResultStore::save_delta`].
struct Chain {
    base_id: u64,
    generation: u32,
    next_seq: u32,
    last_link: u64,
    node_count: u32,
}

/// The parsed name of one cache file (see the module docs for the
/// scheme).
struct SegmentName {
    version: u32,
    library: u64,
    rules: u64,
    config: u64,
    canon: u64,
    generation: u32,
    /// `None` for a base, `Some(seq)` for a delta.
    seq: Option<u32>,
}

impl SegmentName {
    fn key_tuple(&self) -> (u32, u64, u64, u64, u64) {
        (
            self.version,
            self.library,
            self.rules,
            self.config,
            self.canon,
        )
    }
}

fn key_stem(key: &StoreKey) -> String {
    format!(
        "dtas-v{}-{:016x}-{:016x}-{:016x}-{:016x}",
        key.format_version, key.library, key.rules, key.config, key.canon
    )
}

/// Parses `dtas-v{V}-{lib}-{rules}-{cfg}-{canon}-g{GEN}[-d{SEQ}].{base|delta}`,
/// plus the retired three-fingerprint v2 layout (no canon field — reported
/// with `canon: 0` so the GC can collect it as stale format). Returns
/// `None` for anything else (including the retired v1 `.snap` layout —
/// those are handled as stale-format files by the GC).
fn parse_segment_name(name: &str) -> Option<SegmentName> {
    let (stem, seq) = if let Some(stem) = name.strip_suffix(".base") {
        (stem, None)
    } else if let Some(stem) = name.strip_suffix(".delta") {
        let (stem, d) = stem.rsplit_once("-d")?;
        (stem, Some(d.parse::<u32>().ok().filter(|&s| s > 0)?))
    } else {
        return None;
    };
    let rest = stem.strip_prefix("dtas-v")?;
    let mut parts = rest.split('-');
    let version = parts.next()?.parse::<u32>().ok()?;
    // Fingerprint fields are zero-padded hex; the generation part starts
    // with a `g`, which no hex field can, so the two never collide.
    let mut fps = Vec::new();
    let mut generation: Option<u32> = None;
    for part in parts {
        if generation.is_some() {
            return None;
        }
        match part.strip_prefix('g') {
            Some(g) => generation = Some(g.parse::<u32>().ok()?),
            None => fps.push(u64::from_str_radix(part, 16).ok()?),
        }
    }
    let generation = generation?;
    let (library, rules, config, canon) = match fps.as_slice() {
        [l, r, c] => (*l, *r, *c, 0),
        [l, r, c, k] => (*l, *r, *c, *k),
        _ => return None,
    };
    Some(SegmentName {
        version,
        library,
        rules,
        config,
        canon,
        generation,
        seq,
    })
}

/// One key's chain as listed in a `--cache-dir`, for `dtas cache`.
#[derive(Clone, Debug)]
pub struct CacheKeyEntry {
    /// Format version the chain was written with.
    pub format_version: u32,
    /// Library fingerprint from the file name.
    pub library: u64,
    /// Rule-set fingerprint from the file name.
    pub rules: u64,
    /// Configuration fingerprint from the file name.
    pub config: u64,
    /// Canonicalization-scheme fingerprint from the file name (zero for
    /// chains written by the retired three-fingerprint layouts).
    pub canon: u64,
    /// Newest generation present for this key.
    pub generation: u32,
    /// Size of that generation's base segment.
    pub base_bytes: u64,
    /// Contiguous delta segments chained onto it.
    pub delta_count: usize,
    /// Their total size.
    pub delta_bytes: u64,
    /// Total bytes across *all* files for this key (stale generations and
    /// broken-chain leftovers included).
    pub total_bytes: u64,
    /// Seconds since the newest file for this key was modified.
    pub age_secs: u64,
    /// True when this build can read the chain (format version matches).
    pub current_format: bool,
}

/// Why the GC wants a file gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcReason {
    /// A `.tmp` left behind by a crash between write and rename.
    OrphanTmp,
    /// A generation superseded by a newer base for the same key.
    StaleGeneration,
    /// A delta past a gap in its generation's sequence (or without a
    /// base) — unreachable by any load.
    BrokenChain,
    /// Written by a format version this build does not read.
    StaleFormat,
    /// The whole key is older than the requested retention age.
    Expired,
}

impl std::fmt::Display for GcReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GcReason::OrphanTmp => "orphan-tmp",
            GcReason::StaleGeneration => "stale-generation",
            GcReason::BrokenChain => "broken-chain",
            GcReason::StaleFormat => "stale-format",
            GcReason::Expired => "expired",
        })
    }
}

/// One file the GC would remove.
#[derive(Clone, Debug)]
pub struct GcItem {
    /// Absolute path of the doomed file.
    pub path: PathBuf,
    /// Its size, for reporting reclaimable space.
    pub bytes: u64,
    /// Why it is collectable.
    pub reason: GcReason,
}

/// A dry-run GC result: what would be removed and what stays.
#[derive(Clone, Debug, Default)]
pub struct GcPlan {
    /// Files to remove, with reasons.
    pub items: Vec<GcItem>,
    /// Cache files that survive the plan.
    pub kept: usize,
}

impl GcPlan {
    /// Total bytes the plan would reclaim.
    pub fn bytes(&self) -> u64 {
        self.items.iter().map(|i| i.bytes).sum()
    }
}

/// A directory of versioned segment chains: the warm-start store that
/// survives restarts and is shared across processes. See the module docs
/// for the file scheme and atomicity argument.
pub struct PersistentStore {
    dir: PathBuf,
    chains: Mutex<HashMap<StoreKey, Chain>>,
}

impl PersistentStore {
    /// A store rooted at `dir` (created on first save). Construction
    /// sweeps crash-orphaned temporary files older than fifteen minutes;
    /// younger ones may belong to a live writer and are left alone.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        let store = PersistentStore {
            dir: dir.into(),
            chains: Mutex::new(HashMap::new()),
        };
        store.sweep_orphan_tmp();
        store
    }

    /// The directory chains live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a key's generation-`gen` base is stored at.
    fn base_path(&self, key: &StoreKey, gen: u32) -> PathBuf {
        self.dir.join(format!("{}-g{gen:08}.base", key_stem(key)))
    }

    /// The file a key's generation-`gen`, sequence-`seq` delta is stored
    /// at.
    fn delta_path(&self, key: &StoreKey, gen: u32, seq: u32) -> PathBuf {
        self.dir
            .join(format!("{}-g{gen:08}-d{seq:04}.delta", key_stem(key)))
    }

    fn lock_chains(&self) -> std::sync::MutexGuard<'_, HashMap<StoreKey, Chain>> {
        // A panic mid-save leaves only this process's append cursor
        // suspect; dropping it degrades deltas to full saves, which is
        // always correct.
        self.chains.lock().unwrap_or_else(|poisoned| {
            self.chains.clear_poison();
            let mut guard = poisoned.into_inner();
            guard.clear();
            guard
        })
    }

    /// Best-effort removal of crash-orphaned temporaries (see
    /// [`TMP_SWEEP_AGE`]). Never fails: a sweep problem must not block a
    /// warm start.
    fn sweep_orphan_tmp(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let now = SystemTime::now();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !(name.starts_with('.') && name.contains(".tmp-")) {
                continue;
            }
            let stale = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|mtime| now.duration_since(mtime).ok())
                .is_some_and(|age| age >= TMP_SWEEP_AGE);
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// Writes `bytes` atomically at `path` via tmp-then-rename.
    fn publish(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| StoreError::Io(format!("{}: {e}", self.dir.display())))?;
        let tmp = self.dir.join(format!(
            ".{}.tmp-{}-{}",
            path.file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("segment"),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::write(&tmp, bytes)
            .map_err(|e| StoreError::Io(format!("{}: {e}", tmp.display())))?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(StoreError::Io(format!("{}: {e}", path.display())));
        }
        Ok(())
    }

    /// All parsed segment names for `key`'s fingerprints (any version).
    fn list_key_files(&self, key: &StoreKey) -> Result<Vec<SegmentName>, std::io::Error> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(parsed) = parse_segment_name(name) else {
                continue;
            };
            if parsed.key_tuple()
                == (
                    key.format_version,
                    key.library,
                    key.rules,
                    key.config,
                    key.canon,
                )
            {
                out.push(parsed);
            }
        }
        Ok(out)
    }

    /// One load attempt. `Err(true)` asks the caller to retry (a listed
    /// file vanished under us — concurrent compaction pruned it);
    /// `Err(false)` is wrapped by the caller as a definitive rejection.
    fn try_load(&self, key: &StoreKey) -> Result<LoadOutcome, bool> {
        let files = match self.list_key_files(key) {
            Ok(files) => files,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(LoadOutcome::Missing),
            Err(e) => {
                return Ok(LoadOutcome::Rejected {
                    reason: format!("{}: {e}", self.dir.display()),
                })
            }
        };
        let Some(gen) = files
            .iter()
            .filter(|f| f.seq.is_none())
            .map(|f| f.generation)
            .max()
        else {
            return Ok(LoadOutcome::Missing);
        };
        let base_path = self.base_path(key, gen);
        let base = match SegmentBytes::open(&base_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == ErrorKind::NotFound => return Err(true),
            Err(e) => {
                return Ok(LoadOutcome::Rejected {
                    reason: format!("{}: {e}", base_path.display()),
                })
            }
        };
        let mut max_seq = 0u32;
        for file in &files {
            if file.generation == gen {
                if let Some(seq) = file.seq {
                    max_seq = max_seq.max(seq);
                }
            }
        }
        let mut deltas = Vec::new();
        for seq in 1..=max_seq {
            let path = self.delta_path(key, gen, seq);
            match SegmentBytes::open(&path) {
                Ok(bytes) => deltas.push(bytes),
                // A gap (crash between delta writes, or concurrent
                // pruning): the contiguous prefix is a valid chain.
                Err(e) if e.kind() == ErrorKind::NotFound => break,
                Err(e) => {
                    return Ok(LoadOutcome::Rejected {
                        reason: format!("{}: {e}", path.display()),
                    })
                }
            }
        }
        let loaded = deltas.len() as u32;
        let bytes = base.len() as u64 + deltas.iter().map(|d| d.len() as u64).sum::<u64>();
        match segment::assemble_chain(base, deltas, key) {
            Ok(source) => {
                self.lock_chains().insert(
                    *key,
                    Chain {
                        base_id: source.base_id(),
                        generation: gen,
                        next_seq: loaded + 1,
                        last_link: source.last_link(),
                        node_count: source.node_count() as u32,
                    },
                );
                Ok(LoadOutcome::Loaded {
                    source: Box::new(source),
                    bytes,
                })
            }
            Err(reason) => Ok(LoadOutcome::Rejected {
                reason: format!("{}: {reason}", base_path.display()),
            }),
        }
    }

    /// Lists every chain in the directory, one entry per key, newest
    /// generation first by age.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the directory cannot be read (a missing
    /// directory is an empty inventory, not an error).
    pub fn inventory(&self) -> Result<Vec<CacheKeyEntry>, StoreError> {
        let scan = match self.scan() {
            Ok(scan) => scan,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StoreError::Io(format!("{}: {e}", self.dir.display()))),
        };
        let now = SystemTime::now();
        let mut entries: Vec<CacheKeyEntry> = Vec::new();
        for ((version, library, rules, config, canon), files) in scan.keys {
            let gen = files
                .iter()
                .filter(|f| f.name.seq.is_none())
                .map(|f| f.name.generation)
                .max()
                .unwrap_or(0);
            let mut base_bytes = 0u64;
            let mut delta_bytes = 0u64;
            let mut delta_count = 0usize;
            let mut total_bytes = 0u64;
            let mut newest: Option<SystemTime> = None;
            let live = live_seqs(&files, gen);
            for file in &files {
                total_bytes += file.bytes;
                newest = match (newest, file.mtime) {
                    (None, t) => t,
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (some, None) => some,
                };
                if file.name.generation != gen {
                    continue;
                }
                match file.name.seq {
                    None => base_bytes = file.bytes,
                    Some(seq) if seq <= live => {
                        delta_count += 1;
                        delta_bytes += file.bytes;
                    }
                    Some(_) => {}
                }
            }
            let age_secs = newest
                .and_then(|t| now.duration_since(t).ok())
                .map(|d| d.as_secs())
                .unwrap_or(0);
            entries.push(CacheKeyEntry {
                format_version: version,
                library,
                rules,
                config,
                canon,
                generation: gen,
                base_bytes,
                delta_count,
                delta_bytes,
                total_bytes,
                age_secs,
                current_format: version == FORMAT_VERSION,
            });
        }
        entries.sort_by_key(|e| (e.library, e.rules, e.config, e.canon, e.format_version));
        Ok(entries)
    }

    /// Computes what a GC pass would remove: orphaned temporaries, stale
    /// generations, broken-chain leftovers, stale-format files, and —
    /// when `max_age` is given — whole keys older than it. Nothing is
    /// deleted; pass the plan to [`apply_gc`](Self::apply_gc).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the directory cannot be read (a missing
    /// directory yields an empty plan).
    pub fn plan_gc(&self, max_age: Option<Duration>) -> Result<GcPlan, StoreError> {
        let scan = match self.scan() {
            Ok(scan) => scan,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(GcPlan::default()),
            Err(e) => return Err(StoreError::Io(format!("{}: {e}", self.dir.display()))),
        };
        let now = SystemTime::now();
        let mut plan = GcPlan::default();
        for tmp in scan.tmps {
            let stale = tmp
                .mtime
                .and_then(|mtime| now.duration_since(mtime).ok())
                .is_some_and(|age| age >= TMP_SWEEP_AGE);
            if stale {
                plan.items.push(GcItem {
                    path: tmp.path,
                    bytes: tmp.bytes,
                    reason: GcReason::OrphanTmp,
                });
            } else {
                plan.kept += 1;
            }
        }
        for ((version, ..), files) in scan.keys {
            if version != FORMAT_VERSION {
                for file in files {
                    plan.items.push(GcItem {
                        path: file.path,
                        bytes: file.bytes,
                        reason: GcReason::StaleFormat,
                    });
                }
                continue;
            }
            let newest = files.iter().filter_map(|f| f.mtime).max();
            let expired = max_age.is_some_and(|limit| {
                newest
                    .and_then(|t| now.duration_since(t).ok())
                    .is_some_and(|age| age >= limit)
            });
            if expired {
                for file in files {
                    plan.items.push(GcItem {
                        path: file.path,
                        bytes: file.bytes,
                        reason: GcReason::Expired,
                    });
                }
                continue;
            }
            let gen = files
                .iter()
                .filter(|f| f.name.seq.is_none())
                .map(|f| f.name.generation)
                .max();
            let live = gen.map(|g| live_seqs(&files, g)).unwrap_or(0);
            for file in files {
                let reason = match (gen, file.name.seq) {
                    // Deltas with no base at all are unreachable.
                    (None, _) => Some(GcReason::BrokenChain),
                    (Some(g), _) if file.name.generation < g => Some(GcReason::StaleGeneration),
                    (Some(g), Some(seq)) if file.name.generation == g && seq > live => {
                        Some(GcReason::BrokenChain)
                    }
                    // A generation *above* the newest base's cannot occur
                    // from our writers; leave such files alone.
                    _ => None,
                };
                match reason {
                    Some(reason) => plan.items.push(GcItem {
                        path: file.path,
                        bytes: file.bytes,
                        reason,
                    }),
                    None => plan.kept += 1,
                }
            }
        }
        Ok(plan)
    }

    /// Removes every file in `plan`, returning the bytes reclaimed.
    /// Already-gone files (another process collected first) are counted
    /// as reclaimed, not errors.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on the first removal the filesystem refuses.
    pub fn apply_gc(&self, plan: &GcPlan) -> Result<u64, StoreError> {
        let mut reclaimed = 0u64;
        for item in &plan.items {
            match std::fs::remove_file(&item.path) {
                Ok(()) => reclaimed += item.bytes,
                Err(e) if e.kind() == ErrorKind::NotFound => reclaimed += item.bytes,
                Err(e) => return Err(StoreError::Io(format!("{}: {e}", item.path.display()))),
            }
        }
        Ok(reclaimed)
    }

    fn scan(&self) -> Result<DirScan, std::io::Error> {
        let mut scan = DirScan::default();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let meta = entry.metadata().ok();
            let bytes = meta.as_ref().map(|m| m.len()).unwrap_or(0);
            let mtime = meta.and_then(|m| m.modified().ok());
            if name.starts_with('.') && name.contains(".tmp-") {
                scan.tmps.push(ScannedFile {
                    path,
                    bytes,
                    mtime,
                    name: SegmentName {
                        version: 0,
                        library: 0,
                        rules: 0,
                        config: 0,
                        canon: 0,
                        generation: 0,
                        seq: None,
                    },
                });
                continue;
            }
            // The retired v1 monolithic layout: collectable as stale
            // format.
            let parsed = parse_segment_name(name).or_else(|| parse_v1_snap_name(name));
            if let Some(parsed) = parsed {
                scan.keys
                    .entry(parsed.key_tuple())
                    .or_default()
                    .push(ScannedFile {
                        path,
                        bytes,
                        mtime,
                        name: parsed,
                    });
            }
        }
        Ok(scan)
    }
}

/// Parses the retired v1 layout `dtas-v{V}-{lib}-{rules}-{cfg}.snap`, so
/// pre-tiered snapshot files show up in the inventory and GC as
/// stale-format entries.
fn parse_v1_snap_name(name: &str) -> Option<SegmentName> {
    let stem = name.strip_suffix(".snap")?;
    let rest = stem.strip_prefix("dtas-v")?;
    let mut parts = rest.split('-');
    let version = parts.next()?.parse::<u32>().ok()?;
    let library = u64::from_str_radix(parts.next()?, 16).ok()?;
    let rules = u64::from_str_radix(parts.next()?, 16).ok()?;
    let config = u64::from_str_radix(parts.next()?, 16).ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some(SegmentName {
        version,
        library,
        rules,
        config,
        canon: 0,
        generation: 0,
        seq: None,
    })
}

struct ScannedFile {
    path: PathBuf,
    bytes: u64,
    mtime: Option<SystemTime>,
    name: SegmentName,
}

#[derive(Default)]
struct DirScan {
    tmps: Vec<ScannedFile>,
    keys: HashMap<(u32, u64, u64, u64, u64), Vec<ScannedFile>>,
}

/// Highest delta sequence reachable without a gap in generation `gen`.
fn live_seqs(files: &[ScannedFile], gen: u32) -> u32 {
    let mut present: Vec<u32> = files
        .iter()
        .filter(|f| f.name.generation == gen)
        .filter_map(|f| f.name.seq)
        .collect();
    present.sort_unstable();
    let mut live = 0u32;
    for seq in present {
        if seq == live + 1 {
            live = seq;
        } else if seq > live {
            break;
        }
    }
    live
}

impl ResultStore for PersistentStore {
    fn location(&self) -> String {
        self.dir.display().to_string()
    }

    fn load(&self, key: &StoreKey) -> LoadOutcome {
        // Two attempts: a file listed and then gone means a concurrent
        // compaction pruned under us; the retry sees the new generation.
        for _ in 0..2 {
            match self.try_load(key) {
                Ok(outcome) => return outcome,
                Err(_retry) => continue,
            }
        }
        LoadOutcome::Rejected {
            reason: format!(
                "{}: cache directory changed concurrently during load",
                self.dir.display()
            ),
        }
    }

    fn save_full(
        &self,
        key: &StoreKey,
        snapshot: &EngineSnapshot,
    ) -> Result<SaveReport, StoreError> {
        let mut chains = self.lock_chains();
        let disk_gen = self
            .list_key_files(key)
            .ok()
            .and_then(|files| files.iter().map(|f| f.generation).max())
            .unwrap_or(0);
        let known_gen = chains.get(key).map(|c| c.generation).unwrap_or(0);
        let gen = disk_gen.max(known_gen) + 1;
        let base_id = fresh_base_id();
        let encoded = segment::encode_base(snapshot, key, base_id);
        self.publish(&self.base_path(key, gen), &encoded.bytes)?;
        // Published: prune superseded generations best-effort. Failures
        // leave valid-but-ignored files for the GC.
        if let Ok(files) = self.list_key_files(key) {
            for file in files.iter().filter(|f| f.generation < gen) {
                let path = match file.seq {
                    None => self.base_path(key, file.generation),
                    Some(seq) => self.delta_path(key, file.generation, seq),
                };
                let _ = std::fs::remove_file(path);
            }
        }
        chains.insert(
            *key,
            Chain {
                base_id,
                generation: gen,
                next_seq: 1,
                last_link: encoded.header_checksum,
                node_count: snapshot.space.nodes.len() as u32,
            },
        );
        Ok(SaveReport {
            bytes: encoded.bytes.len() as u64,
            results: encoded.results,
        })
    }

    fn save_delta(
        &self,
        key: &StoreKey,
        snapshot: &EngineSnapshot,
        dirty: &DirtySet,
    ) -> Result<Option<SaveReport>, StoreError> {
        let mut chains = self.lock_chains();
        let Some(chain) = chains.get_mut(key) else {
            return Ok(None);
        };
        if dirty.first_new_node != chain.node_count as usize {
            return Ok(None);
        }
        let encoded = segment::encode_delta(
            snapshot,
            dirty,
            key,
            chain.base_id,
            chain.next_seq,
            chain.last_link,
        );
        self.publish(
            &self.delta_path(key, chain.generation, chain.next_seq),
            &encoded.bytes,
        )?;
        chain.next_seq += 1;
        chain.last_link = encoded.header_checksum;
        chain.node_count = snapshot.space.nodes.len() as u32;
        Ok(Some(SaveReport {
            bytes: encoded.bytes.len() as u64,
            results: encoded.results,
        }))
    }

    fn supersede(&self, key: &StoreKey) -> Result<(), StoreError> {
        // Drop the append cursor first: whatever happens on disk, this
        // process must never extend the superseded chain with a delta.
        self.lock_chains().remove(key);
        let files = match self.list_key_files(key) {
            Ok(files) => files,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(StoreError::Io(format!("{}: {e}", self.dir.display()))),
        };
        for file in files {
            let path = match file.seq {
                None => self.base_path(key, file.generation),
                Some(seq) => self.delta_path(key, file.generation, seq),
            };
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == ErrorKind::NotFound => {}
                Err(e) => return Err(StoreError::Io(format!("{}: {e}", path.display()))),
            }
        }
        Ok(())
    }
}
