//! The on-disk snapshot backend.

use crate::store::codec;
use crate::store::{EngineSnapshot, LoadOutcome, ResultStore, SaveReport, StoreError, StoreKey};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic discriminator for temporary file names, so concurrent saves
/// from one process never collide.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A directory of versioned engine snapshots: the warm-start store that
/// survives restarts and is shared across processes.
///
/// Each [`StoreKey`] (format version + library, rule-set and
/// configuration fingerprints) maps to its own file, so engines with
/// different libraries or configurations coexist in one `--cache-dir`.
/// Writes are atomic — the snapshot is encoded to a temporary file in the
/// same directory and `rename`d into place — so a concurrent reader sees
/// either the old snapshot or the new one, never a torn write; among
/// concurrent writers the last rename wins, and because every writer
/// holds a superset-or-equal of the same deterministic solve results,
/// either version is correct.
///
/// Loads are fail-safe by construction: a missing file is a cold start, a
/// file that fails the checksum, magic, version or fingerprint checks is
/// [rejected](LoadOutcome::Rejected) with a reason and the engine falls
/// back to a clean cold solve. No damaged snapshot can panic the decoder
/// or alter results.
pub struct PersistentStore {
    dir: PathBuf,
}

impl PersistentStore {
    /// A store rooted at `dir` (created on first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistentStore { dir: dir.into() }
    }

    /// The directory snapshots live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a key's snapshot is stored at:
    /// `dtas-v{version}-{library:016x}-{rules:016x}-{config:016x}.snap`.
    pub fn snapshot_path(&self, key: &StoreKey) -> PathBuf {
        self.dir.join(format!(
            "dtas-v{}-{:016x}-{:016x}-{:016x}.snap",
            key.format_version, key.library, key.rules, key.config
        ))
    }
}

impl ResultStore for PersistentStore {
    fn location(&self) -> String {
        self.dir.display().to_string()
    }

    fn load(&self, key: &StoreKey) -> LoadOutcome {
        let path = self.snapshot_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LoadOutcome::Missing,
            Err(e) => {
                return LoadOutcome::Rejected {
                    reason: format!("{}: {e}", path.display()),
                }
            }
        };
        match codec::decode_snapshot(&bytes, key) {
            Ok(snapshot) => LoadOutcome::Loaded {
                snapshot,
                bytes: bytes.len() as u64,
            },
            Err(reason) => LoadOutcome::Rejected {
                reason: format!("{}: {reason}", path.display()),
            },
        }
    }

    fn save(&self, key: &StoreKey, snapshot: &EngineSnapshot) -> Result<SaveReport, StoreError> {
        let (bytes, results) = codec::encode_snapshot(snapshot, key);
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| StoreError::Io(format!("{}: {e}", self.dir.display())))?;
        let path = self.snapshot_path(key);
        let tmp = self.dir.join(format!(
            ".{}.tmp-{}-{}",
            path.file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("snapshot"),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::write(&tmp, &bytes)
            .map_err(|e| StoreError::Io(format!("{}: {e}", tmp.display())))?;
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(StoreError::Io(format!("{}: {e}", path.display())));
        }
        Ok(SaveReport {
            bytes: bytes.len() as u64,
            results,
        })
    }
}
