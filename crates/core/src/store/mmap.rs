//! Read-only memory mapping for the lazy snapshot read path.
//!
//! The build environment is offline-vendored (no `libc` crate), so the
//! two syscalls the store needs are declared directly. The wrapper is
//! deliberately minimal and read-only: on 64-bit unix a base segment is
//! `mmap`ed shared so N server processes on one host keep a single
//! page-cache copy of the snapshot; everywhere else [`SegmentBytes`]
//! falls back to the PR 4 read-all path (`std::fs::read`) with identical
//! semantics.
//!
//! # Safety argument
//!
//! A mapping stays valid only while the underlying pages do. DTAS never
//! modifies a published segment in place — every write goes to a fresh
//! temporary file that is `rename`d over (or next to) the old one, and
//! compaction unlinks obsolete segments rather than truncating them — so
//! on unix an open mapping survives any concurrent writer (unlinked
//! files persist until the last mapping goes away). An *external* actor
//! truncating a mapped file could still fault a reader; that is the same
//! trust boundary as the rest of the cache directory (which is already
//! assumed not to be hostile at the filesystem level — hostile *bytes*
//! are fully handled by the codec).

use std::fs::File;
use std::io;
use std::ops::Deref;

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 1;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only shared mapping of a whole file.
#[cfg(all(unix, target_pointer_width = "64"))]
pub(crate) struct Mmap {
    ptr: *mut std::os::raw::c_void,
    len: usize,
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Mmap {
    /// Maps `file` read-only. Fails (for the caller to fall back on) when
    /// the kernel refuses; empty files are not mappable and must be
    /// handled by the caller.
    fn map(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        debug_assert!(len > 0, "caller handles empty files");
        // SAFETY: requesting a fresh read-only shared mapping of `len`
        // bytes backed by an open fd; the kernel validates everything and
        // returns MAP_FAILED on error. The mapping is only ever read
        // through the `Deref` slice below, whose length equals `len`.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: the mapping covers exactly `len` readable bytes for the
        // lifetime of `self` (see module safety argument).
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: unmapping the exact range returned by `mmap`.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

// SAFETY: the mapping is immutable (PROT_READ) and owned; sharing &[u8]
// views across threads is sound.
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Send for Mmap {}
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Sync for Mmap {}

/// The bytes of one on-disk segment: memory-mapped where supported,
/// otherwise read into an owned buffer. Both variants expose the same
/// immutable `&[u8]`, so every decoder above this line is
/// platform-independent.
pub(crate) enum SegmentBytes {
    /// Owned copy (the portable fallback, and all in-memory stores).
    Owned(Vec<u8>),
    /// Shared read-only mapping (64-bit unix).
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(Mmap),
}

impl SegmentBytes {
    /// Opens `path` for reading, preferring a shared mapping.
    pub(crate) fn open(path: &std::path::Path) -> io::Result<SegmentBytes> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if len > 0 && usize::try_from(len).is_ok() {
                if let Ok(map) = Mmap::map(&file, len as usize) {
                    return Ok(SegmentBytes::Mapped(map));
                }
            }
            // Unmappable (empty, oversized, or kernel refusal): fall back.
        }
        Ok(SegmentBytes::Owned(std::fs::read(path)?))
    }

    /// True when backed by a shared mapping rather than an owned copy.
    pub(crate) fn is_mapped(&self) -> bool {
        match self {
            SegmentBytes::Owned(_) => false,
            #[cfg(all(unix, target_pointer_width = "64"))]
            SegmentBytes::Mapped(_) => true,
        }
    }
}

impl Deref for SegmentBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            SegmentBytes::Owned(bytes) => bytes,
            #[cfg(all(unix, target_pointer_width = "64"))]
            SegmentBytes::Mapped(map) => map,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_round_trips_file_contents() {
        let path = std::env::temp_dir().join(format!("dtas_mmap_{}", std::process::id()));
        let payload: Vec<u8> = (0..10_000u32).flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&path, &payload).unwrap();
        let bytes = SegmentBytes::open(&path).unwrap();
        assert_eq!(&*bytes, &payload[..]);
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(bytes.is_mapped());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_files_fall_back_to_owned_bytes() {
        let path = std::env::temp_dir().join(format!("dtas_mmap_empty_{}", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let bytes = SegmentBytes::open(&path).unwrap();
        assert!(bytes.is_empty());
        assert!(!bytes.is_mapped());
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    #[test]
    fn mapping_survives_unlink_and_replacement() {
        // The compaction contract: a reader holding a mapped base keeps a
        // consistent view while a writer renames a new generation over it.
        let path = std::env::temp_dir().join(format!("dtas_mmap_unlink_{}", std::process::id()));
        std::fs::write(&path, vec![0xABu8; 4096]).unwrap();
        let bytes = SegmentBytes::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        std::fs::write(&path, vec![0xCDu8; 4096]).unwrap();
        assert!(bytes.iter().all(|&b| b == 0xAB));
        let _ = std::fs::remove_file(&path);
    }
}
