//! The engine's in-memory store: one shared design space plus a sharded,
//! read-mostly result memo.
//!
//! This is the hot-path half of the storage layer. Everything here used
//! to live inline in the engine; it is its own module so the same state
//! can be exported to — and hydrated from — a [`ResultStore`] backend
//! (see [`EngineSnapshot`]) without the engine knowing how snapshots are
//! encoded or where they live.
//!
//! The locking discipline is unchanged from the pre-store engine and is
//! what the concurrency tests pin: memoized queries take exactly one
//! shard *read* lock (never an exclusive lock), cold queries expand under
//! a brief exclusive lock and solve against snapshots, and every
//! acquisition recovers from poison by clearing the affected state.

use crate::report::DesignSet;
use crate::space::{DesignSpace, FrontStore};
use crate::store::EngineSnapshot;
use crate::template::SpecModelCache;
use crate::SynthError;
use genus::spec::ComponentSpec;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of result-memo shards. Hit-path lookups only share a lock with
/// queries that hash to the same shard — and even those take it in read
/// mode, so hits never serialize.
const RESULT_SHARDS: usize = 16;

/// Cross-query synthesis state shared by every solve on one engine: the
/// growing design space, solved per-node fronts, and the spec-model
/// cache. Whole-result memoization lives outside, in the sharded memo.
#[derive(Default)]
pub(crate) struct SharedState {
    pub(crate) space: DesignSpace,
    pub(crate) fronts: FrontStore,
    pub(crate) models: Arc<SpecModelCache>,
    /// Bumped every time the space is reset (`clear_cache`, poison
    /// recovery). Node ids restart from 0 after a reset, so fronts solved
    /// against an older generation's ids must never be absorbed back —
    /// in-flight solvers check this before merging.
    pub(crate) generation: u64,
}

impl SharedState {
    /// Drops all cached state, invalidating every outstanding snapshot
    /// (their absorb-back becomes a no-op).
    pub(crate) fn reset(&mut self) {
        let generation = self.generation.wrapping_add(1);
        *self = SharedState {
            generation,
            ..SharedState::default()
        };
    }
}

/// A memoized whole-query result: set exactly once, then served to every
/// later caller. Concurrent first callers block on the cell (one solves,
/// the rest are served its result) instead of solving redundantly.
pub(crate) type ResultCell = OnceLock<Result<Arc<DesignSet>, SynthError>>;

type MemoShard = RwLock<HashMap<ComponentSpec, Arc<ResultCell>>>;

/// The sharded in-memory engine store: shared space/front state behind an
/// `RwLock`, whole-query results behind [`RESULT_SHARDS`] read-mostly
/// shards, and the contention/recovery counters the engine reports via
/// [`CacheStats`](crate::CacheStats).
pub(crate) struct MemStore {
    state: RwLock<SharedState>,
    memo: Vec<MemoShard>,
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    /// Solves whose effects (memoized result, merged fronts) have fully
    /// landed in this store. `misses` increments when a solve *starts*,
    /// so the checkpoint skip/flush decision keys on this counter
    /// instead: a snapshot exported mid-solve must not mark that solve
    /// as flushed.
    pub(crate) settled: AtomicU64,
    pub(crate) shard_contention: AtomicU64,
    pub(crate) state_exclusive: AtomicU64,
    pub(crate) poison_recoveries: AtomicU64,
}

impl Default for MemStore {
    fn default() -> Self {
        MemStore {
            state: RwLock::new(SharedState::default()),
            memo: (0..RESULT_SHARDS).map(|_| MemoShard::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            settled: AtomicU64::new(0),
            shard_contention: AtomicU64::new(0),
            state_exclusive: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
        }
    }
}

impl MemStore {
    pub(crate) fn new() -> Self {
        MemStore::default()
    }

    /// Exclusive access to the shared space/fronts. On poison the state is
    /// dropped and rebuilt before the guard is returned.
    pub(crate) fn write_state(&self) -> RwLockWriteGuard<'_, SharedState> {
        self.state_exclusive.fetch_add(1, Ordering::Relaxed);
        match self.state.write() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.state.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.reset();
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Shared access to the shared space/fronts, recovering on poison.
    pub(crate) fn read_state(&self) -> RwLockReadGuard<'_, SharedState> {
        loop {
            match self.state.read() {
                Ok(guard) => return guard,
                // A writer panicked: clear-and-rebuild via the write
                // path, then retry the read.
                Err(_) => drop(self.write_state()),
            }
        }
    }

    /// Exclusive access to one memo shard, clearing it on poison.
    fn shard_write<'a>(
        &self,
        shard: &'a MemoShard,
    ) -> RwLockWriteGuard<'a, HashMap<ComponentSpec, Arc<ResultCell>>> {
        match shard.write() {
            Ok(guard) => guard,
            Err(poisoned) => {
                shard.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.clear();
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Shared access to one memo shard, recovering on poison.
    fn shard_read<'a>(
        &self,
        shard: &'a MemoShard,
    ) -> RwLockReadGuard<'a, HashMap<ComponentSpec, Arc<ResultCell>>> {
        loop {
            match shard.read() {
                Ok(guard) => return guard,
                Err(_) => drop(self.shard_write(shard)),
            }
        }
    }

    fn shard_of(&self, spec: &ComponentSpec) -> &MemoShard {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        spec.hash(&mut hasher);
        &self.memo[hasher.finish() as usize % self.memo.len()]
    }

    /// The memo cell for a spec, creating it if absent. The fast path is a
    /// shared read; `try_read` first so contention is observable in
    /// [`CacheStats::shard_contention`](crate::CacheStats::shard_contention).
    pub(crate) fn result_cell(&self, spec: &ComponentSpec) -> Arc<ResultCell> {
        let shard = self.shard_of(spec);
        let read = match shard.try_read() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.shard_contention.fetch_add(1, Ordering::Relaxed);
                self.shard_read(shard)
            }
            Err(std::sync::TryLockError::Poisoned(_)) => self.shard_read(shard),
        };
        if let Some(cell) = read.get(spec) {
            return cell.clone();
        }
        drop(read);
        self.shard_write(shard)
            .entry(spec.clone())
            .or_default()
            .clone()
    }

    /// Drops all cross-query synthesis state and resets every counter.
    pub(crate) fn clear(&self) {
        self.write_state().reset();
        for shard in &self.memo {
            self.shard_write(shard).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.settled.store(0, Ordering::Relaxed);
        self.shard_contention.store(0, Ordering::Relaxed);
        self.state_exclusive.store(0, Ordering::Relaxed);
        self.poison_recoveries.store(0, Ordering::Relaxed);
    }

    /// `(solved fronts, spec nodes)` under a shared state read.
    pub(crate) fn front_counts(&self) -> (usize, usize) {
        let state = self.read_state();
        (state.fronts.solved_count(), state.space.nodes.len())
    }

    /// Whole result sets currently memoized with an `Ok` value.
    pub(crate) fn cached_result_count(&self) -> usize {
        self.memo
            .iter()
            .map(|shard| {
                self.shard_read(shard)
                    .values()
                    .filter(|cell| matches!(cell.get(), Some(Ok(_))))
                    .count()
            })
            .sum()
    }

    /// Number of memo shards (fixed per store).
    pub(crate) fn shard_count(&self) -> usize {
        self.memo.len()
    }

    /// Drops every memoized result whose spec fails `keep`, returning
    /// `(retained, dropped)` counts of *settled* entries (empty cells —
    /// created by lookups that never solved — are filtered silently,
    /// they hold no answer to invalidate). Callers hold `&mut` on the
    /// engine, so no client can be mid-flight on a dropped cell.
    pub(crate) fn retain_results(&self, keep: impl Fn(&ComponentSpec) -> bool) -> (usize, usize) {
        let mut retained = 0;
        let mut dropped = 0;
        for shard in &self.memo {
            self.shard_write(shard).retain(|spec, cell| {
                let settled = cell.get().is_some();
                let keep = keep(spec);
                match (keep, settled) {
                    (true, true) => retained += 1,
                    (false, true) => dropped += 1,
                    _ => {}
                }
                keep
            });
        }
        (retained, dropped)
    }

    /// Copies the persistable state out: the shared space and fronts plus
    /// every *settled* memo entry (cells still being solved by an
    /// in-flight client are skipped — they will be persisted by a later
    /// checkpoint). Cheap relative to solving: the space clone shares
    /// templates and the fronts snapshot is `Arc` bumps.
    pub(crate) fn export_snapshot(&self) -> EngineSnapshot {
        let (space, fronts, generation) = {
            let state = self.read_state();
            (
                state.space.clone(),
                state.fronts.snapshot(),
                state.generation,
            )
        };
        let mut results: Vec<(ComponentSpec, Result<Arc<DesignSet>, SynthError>)> = Vec::new();
        for shard in &self.memo {
            for (spec, cell) in self.shard_read(shard).iter() {
                if let Some(result) = cell.get() {
                    results.push((spec.clone(), result.clone()));
                }
            }
        }
        // Shard + HashMap iteration order is nondeterministic; keep the
        // snapshot canonical so identical engine states encode to
        // identical bytes.
        results.sort_by(|(a, _), (b, _)| a.cmp(b));
        EngineSnapshot {
            space,
            fronts,
            results,
            generation,
        }
    }
}
